// Eager vs deferred cleansing (Section 1 / Section 6.1 discussion): eager
// cleansing pays one up-front pass that materializes a cleaned copy, after
// which queries are as cheap as dirty ones — but every change to any
// application's rules invalidates the copy. Deferred cleansing pays a
// per-query overhead instead. This bench measures all three costs so the
// break-even point (queries between rule changes) can be read off:
//
//   break_even ≈ eager_cleanse_once / (deferred_query - eager_query)
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "cleansing/chain.h"

namespace rfid::bench {
namespace {

// Materializes the cleaned copy of caseR (the eager pipeline's output).
Status MaterializeEager(Database* db, int num_rules, const char* table_name) {
  if (db->GetTable(table_name) != nullptr) return Status::OK();
  auto engine = MakeEngine(db, num_rules);
  std::vector<const CleansingRule*> rules;
  for (const CleansingRule& r : engine->rules()) rules.push_back(&r);
  RFID_ASSIGN_OR_RETURN(
      CleansingChain chain,
      BuildCleansingChain(rules, *db, "__input",
                          db->GetTable("caseR")->schema().columns()));
  std::string sql = "WITH __input AS (SELECT * FROM caseR)";
  for (const auto& [name, body] : chain.with_clauses) {
    sql += ", " + name + " AS (" + body + ")";
  }
  sql += " SELECT epc, rtime, reader, biz_loc, biz_step FROM " + chain.output_name;
  RFID_ASSIGN_OR_RETURN(QueryResult res, ExecuteSql(*db, sql));
  Schema schema = db->GetTable("caseR")->schema();
  RFID_ASSIGN_OR_RETURN(Table * clean, db->CreateTable(table_name, schema));
  for (Row& row : res.rows) clean->AppendUnchecked(std::move(row));
  RFID_RETURN_IF_ERROR(clean->BuildIndex("rtime"));
  RFID_RETURN_IF_ERROR(clean->BuildIndex("epc"));
  clean->ComputeStats();
  return Status::OK();
}

void BM_EagerCleanseOnce(benchmark::State& state) {
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, static_cast<int>(state.range(0)));
  std::vector<const CleansingRule*> rules;
  for (const CleansingRule& r : engine->rules()) rules.push_back(&r);
  for (auto _ : state) {
    auto chain = BuildCleansingChain(rules, *db, "__input",
                                     db->GetTable("caseR")->schema().columns());
    if (!chain.ok()) {
      state.SkipWithError(chain.status().ToString().c_str());
      return;
    }
    std::string sql = "WITH __input AS (SELECT * FROM caseR)";
    for (const auto& [name, body] : chain->with_clauses) {
      sql += ", " + name + " AS (" + body + ")";
    }
    sql += " SELECT count(*) FROM " + chain->output_name;
    RunQuery(*db, sql);
  }
}

void BM_EagerQuery(benchmark::State& state) {
  Database* db = GetDatabase(10);
  int num_rules = static_cast<int>(state.range(0));
  // Must not contain "caseR" (the query text substitution below).
  std::string clean_name = "cleanR" + std::to_string(num_rules);
  Status st = MaterializeEager(db, num_rules, clean_name.c_str());
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  std::string q1 = workload::Q1(workload::T1ForSelectivity(*db, 0.10));
  // Run q1 against the pre-cleaned copy.
  size_t pos = 0;
  while ((pos = q1.find("caseR", pos)) != std::string::npos) {
    q1.replace(pos, 5, clean_name);
    pos += clean_name.size();
  }
  for (auto _ : state) {
    RunQuery(*db, q1);
  }
}

void BM_DeferredQuery(benchmark::State& state) {
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, static_cast<int>(state.range(0)));
  std::string q1 = workload::Q1(workload::T1ForSelectivity(*db, 0.10));
  std::string sql = RewriteSql(db, engine.get(), q1, RewriteStrategy::kAuto);
  for (auto _ : state) {
    RunQuery(*db, sql);
  }
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  for (int rules : {1, 3}) {
    rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
        ("eager_vs_deferred/cleanse_once/rules:" + std::to_string(rules)).c_str(),
        &rfid::bench::BM_EagerCleanseOnce)
        ->Arg(rules)
        ->Unit(benchmark::kMillisecond));
    rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
        ("eager_vs_deferred/eager_q1/rules:" + std::to_string(rules)).c_str(),
        &rfid::bench::BM_EagerQuery)
        ->Arg(rules)
        ->Unit(benchmark::kMillisecond));
    rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
        ("eager_vs_deferred/deferred_q1/rules:" + std::to_string(rules)).c_str(),
        &rfid::bench::BM_DeferredQuery)
        ->Arg(rules)
        ->Unit(benchmark::kMillisecond));
  }
  return rfid::bench::RunBenchmarkMain(argc, argv, "eager_vs_deferred");
}
