// Eager vs deferred cleansing (Section 1 / Section 6.1 discussion): eager
// cleansing pays one up-front pass that materializes a cleaned copy, after
// which queries are as cheap as dirty ones — but every change to any
// application's rules invalidates the copy. Deferred cleansing pays a
// per-query overhead instead. This bench measures all three costs so the
// break-even point (queries between rule changes) can be read off:
//
//   break_even ≈ eager_cleanse_once / (deferred_query - eager_query)
//
// The hot_set_q1 pair measures the fragment cache's regime: the same q1
// arriving repeatedly while ingest trickles in. cache:off pays the full
// rewrite + cleansing chain per arrival; cache:on stitches cached
// cleansed regions and re-cleanses only regions the live batches
// touched.
#include <benchmark/benchmark.h>

#include <memory>
#include <utility>

#include "bench_common.h"
#include "cache/fragment_cache.h"
#include "cleansing/chain.h"
#include "ingest/ingest.h"
#include "rewrite/fragment_stitch.h"
#include "rfidgen/stream.h"

namespace rfid::bench {
namespace {

// Materializes the cleaned copy of caseR (the eager pipeline's output).
Status MaterializeEager(Database* db, int num_rules, const char* table_name) {
  if (db->GetTable(table_name) != nullptr) return Status::OK();
  auto engine = MakeEngine(db, num_rules);
  std::vector<const CleansingRule*> rules;
  for (const CleansingRule& r : engine->rules()) rules.push_back(&r);
  RFID_ASSIGN_OR_RETURN(
      CleansingChain chain,
      BuildCleansingChain(rules, *db, "__input",
                          db->GetTable("caseR")->schema().columns()));
  std::string sql = "WITH __input AS (SELECT * FROM caseR)";
  for (const auto& [name, body] : chain.with_clauses) {
    sql += ", " + name + " AS (" + body + ")";
  }
  sql += " SELECT epc, rtime, reader, biz_loc, biz_step FROM " + chain.output_name;
  RFID_ASSIGN_OR_RETURN(QueryResult res, ExecuteSql(*db, sql));
  Schema schema = db->GetTable("caseR")->schema();
  RFID_ASSIGN_OR_RETURN(Table * clean, db->CreateTable(table_name, schema));
  for (Row& row : res.rows) clean->AppendUnchecked(std::move(row));
  RFID_RETURN_IF_ERROR(clean->BuildIndex("rtime"));
  RFID_RETURN_IF_ERROR(clean->BuildIndex("epc"));
  clean->ComputeStats();
  return Status::OK();
}

void BM_EagerCleanseOnce(benchmark::State& state) {
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, static_cast<int>(state.range(0)));
  std::vector<const CleansingRule*> rules;
  for (const CleansingRule& r : engine->rules()) rules.push_back(&r);
  for (auto _ : state) {
    auto chain = BuildCleansingChain(rules, *db, "__input",
                                     db->GetTable("caseR")->schema().columns());
    if (!chain.ok()) {
      state.SkipWithError(chain.status().ToString().c_str());
      return;
    }
    std::string sql = "WITH __input AS (SELECT * FROM caseR)";
    for (const auto& [name, body] : chain->with_clauses) {
      sql += ", " + name + " AS (" + body + ")";
    }
    sql += " SELECT count(*) FROM " + chain->output_name;
    RunQuery(*db, sql);
  }
}

void BM_EagerQuery(benchmark::State& state) {
  Database* db = GetDatabase(10);
  int num_rules = static_cast<int>(state.range(0));
  // Must not contain "caseR" (the query text substitution below).
  std::string clean_name = "cleanR" + std::to_string(num_rules);
  Status st = MaterializeEager(db, num_rules, clean_name.c_str());
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }
  std::string q1 = workload::Q1(workload::T1ForSelectivity(*db, 0.10));
  // Run q1 against the pre-cleaned copy.
  size_t pos = 0;
  while ((pos = q1.find("caseR", pos)) != std::string::npos) {
    q1.replace(pos, 5, clean_name);
    pos += clean_name.size();
  }
  for (auto _ : state) {
    RunQuery(*db, q1);
  }
}

void BM_DeferredQuery(benchmark::State& state) {
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, static_cast<int>(state.range(0)));
  std::string q1 = workload::Q1(workload::T1ForSelectivity(*db, 0.10));
  std::string sql = RewriteSql(db, engine.get(), q1, RewriteStrategy::kAuto);
  for (auto _ : state) {
    RunQuery(*db, sql);
  }
}

// --- Hot working set under live ingest -------------------------------
//
// Fixed iteration counts keep the ingest schedule identical across the
// cached and uncached variants (and across repetitions), so both see the
// same data evolution.
constexpr int kHotSetIterations = 32;
// A live trickle, not a firehose: reads of in-flight cases scatter
// across the epc keyspace, so every batch invalidates several regions;
// the hot-set regime is many queries between batches (the churn-heavy
// regime is covered by fragment_concurrency_test, not measured here).
constexpr int kHotSetIngestEvery = 8;   // feed a batch every N queries
constexpr size_t kHotSetIngestRows = 24;
// Warm base comparable to the bulk-generated db the other scenarios use
// (~60k case reads at default scale) so per-query cleansing costs match
// the deferred_q1 numbers above.
constexpr size_t kHotSetWarmupRows = 100000;  // total rows fed before timing

std::vector<ingest::TableBatch> ToGroup(rfidgen::StreamBatch b) {
  std::vector<ingest::TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

struct HotSetFixture {
  Database db;
  std::unique_ptr<rfidgen::ReadStream> stream;
  ingest::IngestPipeline pipeline{&db};
  cache::FragmentCache cache;
  std::unique_ptr<CleansingRuleEngine> engine;
  std::string q1;

  explicit HotSetFixture(cache::FragmentCacheOptions copt) : cache(copt) {}
};

/// Streamed database with a warm base and a live trickle left in the
/// stream. One fixture per variant (same seed, same feed schedule) so
/// cache:on and cache:off see byte-identical data at every iteration.
HotSetFixture* GetHotSet(bool cached) {
  static HotSetFixture* fixtures[2] = {nullptr, nullptr};
  HotSetFixture*& f = fixtures[cached ? 1 : 0];
  if (f != nullptr) return f;

  cache::FragmentCacheOptions copt;
  // Regions sized so a live batch touches the tail of the scheme, not
  // the whole table — the cache's intended regime.
  copt.target_region_rows = 4096;
  copt.max_regions = 16;
  f = new HotSetFixture(copt);

  rfidgen::StreamOptions opt;
  opt.seed = kBenchSeed;
  // The stream emits far fewer reads per pallet than bulk generation;
  // scale up so the warm base plus the live trickle fit.
  opt.num_pallets = BenchPallets() * 60;
  auto stream = rfidgen::ReadStream::Create(&f->db, opt);
  if (!stream.ok()) {
    fprintf(stderr, "stream failed: %s\n", stream.status().ToString().c_str());
    exit(1);
  }
  f->stream = std::move(*stream);
  if (cached) f->pipeline.set_fragment_cache(&f->cache);

  size_t fed = 0;
  while (fed < kHotSetWarmupRows && !f->stream->exhausted()) {
    rfidgen::StreamBatch batch = f->stream->NextBatch(512);
    fed += batch.total_rows();
    Status st = f->pipeline.Apply(ToGroup(std::move(batch)));
    if (!st.ok()) {
      fprintf(stderr, "warmup feed failed: %s\n", st.ToString().c_str());
      exit(1);
    }
  }
  f->engine = MakeEngine(&f->db, 3);
  // The hot dashboard aggregates half the history per arrival. At low
  // selectivity the expanded rewrite's predicate pushdown already
  // cleanses only a sliver, which is the uncached path's best case (see
  // deferred_q1 at 0.10); a wide window is where re-cleansing per query
  // actually hurts and the memoized fragments pay off.
  f->q1 = workload::Q1(workload::T1ForSelectivity(f->db, 0.50));
  return f;
}

/// Applies one small live batch every kHotSetIngestEvery queries,
/// outside the timed region (the *effect* — invalidated fragments — is
/// what the cached variant pays for, not the feed itself).
void HotSetMaybeIngest(benchmark::State& state, HotSetFixture* f, uint64_t i) {
  if (i % kHotSetIngestEvery != 0 || f->stream->exhausted()) return;
  state.PauseTiming();
  Status st = f->pipeline.Apply(ToGroup(f->stream->NextBatch(kHotSetIngestRows)));
  state.ResumeTiming();
  if (!st.ok()) state.SkipWithError(st.ToString().c_str());
}

void BM_DeferredHotSetUncached(benchmark::State& state) {
  HotSetFixture* f = GetHotSet(/*cached=*/false);
  uint64_t i = 0;
  for (auto _ : state) {
    HotSetMaybeIngest(state, f, i++);
    ExecContext ctx;
    ctx.set_snapshot(f->pipeline.snapshot());
    QueryRewriter rewriter(&f->db, f->engine.get());
    RewriteOptions opts;
    opts.strategy = RewriteStrategy::kAuto;
    opts.exec_context = &ctx;
    auto info = rewriter.Rewrite(f->q1, opts);
    if (!info.ok()) {
      state.SkipWithError(info.status().ToString().c_str());
      return;
    }
    auto res = ExecuteSql(f->db, info->sql, &ctx);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
  }
}

void BM_DeferredHotSetCached(benchmark::State& state) {
  HotSetFixture* f = GetHotSet(/*cached=*/true);
  uint64_t i = 0;
  for (auto _ : state) {
    HotSetMaybeIngest(state, f, i++);
    ExecContext ctx;
    ctx.set_snapshot(f->pipeline.snapshot());
    auto stitch =
        StitchWithFragmentCache(f->q1, &f->db, *f->engine, &f->cache, &ctx);
    if (!stitch.ok()) {
      state.SkipWithError(stitch.status().ToString().c_str());
      return;
    }
    if (!stitch->used) {
      state.SkipWithError(("stitch not used: " + stitch->reason).c_str());
      return;
    }
    auto res = ExecuteSql(f->db, stitch->sql, &ctx);
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(res->rows.size());
  }
  cache::FragmentCache::Stats s = f->cache.stats();
  fprintf(stderr,
          "[bench] hot_set fragment cache: hits=%llu misses=%llu "
          "invalidations=%llu inserts=%llu resident=%zu\n",
          static_cast<unsigned long long>(s.hits),
          static_cast<unsigned long long>(s.misses),
          static_cast<unsigned long long>(s.invalidations),
          static_cast<unsigned long long>(s.inserts), s.resident_bytes);
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  for (int rules : {1, 3}) {
    rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
        ("eager_vs_deferred/cleanse_once/rules:" + std::to_string(rules)).c_str(),
        &rfid::bench::BM_EagerCleanseOnce)
        ->Arg(rules)
        ->Unit(benchmark::kMillisecond));
    rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
        ("eager_vs_deferred/eager_q1/rules:" + std::to_string(rules)).c_str(),
        &rfid::bench::BM_EagerQuery)
        ->Arg(rules)
        ->Unit(benchmark::kMillisecond));
    rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
        ("eager_vs_deferred/deferred_q1/rules:" + std::to_string(rules)).c_str(),
        &rfid::bench::BM_DeferredQuery)
        ->Arg(rules)
        ->Unit(benchmark::kMillisecond));
  }
  rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
      "eager_vs_deferred/hot_set_q1/cache:off",
      &rfid::bench::BM_DeferredHotSetUncached)
      ->Iterations(rfid::bench::kHotSetIterations)
      ->Unit(benchmark::kMillisecond));
  rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
      "eager_vs_deferred/hot_set_q1/cache:on",
      &rfid::bench::BM_DeferredHotSetCached)
      ->Iterations(rfid::bench::kHotSetIterations)
      ->Unit(benchmark::kMillisecond));
  return rfid::bench::RunBenchmarkMain(argc, argv, "eager_vs_deferred");
}
