// Figure 7 (a) and (d): elapsed time of q1 (dwell analysis) and q2 (site
// analysis) as the rtime-predicate selectivity varies from 1% to 40%, on
// db-10 with only the reader rule enabled — comparing the dirty baseline
// (q), the expanded rewrite (q_e), the join-back rewrite (q_j), and the
// naive rewrite (q_n).
//
// Pass --explain to additionally print the executed plans for q1/q1_e
// and q2/q2_e/q2_j at 10% selectivity (Figures 7(b,c,e,f,g)).
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace rfid::bench {
namespace {

constexpr int kSelectivities[] = {1, 5, 10, 20, 30, 40};

enum Variant { kDirty = 0, kExpanded = 1, kJoinBack = 2, kNaive = 3 };
const char* kVariantNames[] = {"dirty", "q_e", "q_j", "q_n"};

std::string BuildSql(int query, int sel_percent, Variant variant) {
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, 1);  // reader rule only
  double frac = sel_percent / 100.0;
  std::string base = (query == 1)
                         ? workload::Q1(workload::T1ForSelectivity(*db, frac))
                         : workload::Q2(workload::T2ForSelectivity(*db, frac));
  switch (variant) {
    case kDirty:
      return base;
    case kExpanded:
      return RewriteSql(db, engine.get(), base, RewriteStrategy::kExpanded);
    case kJoinBack:
      return RewriteSql(db, engine.get(), base, RewriteStrategy::kJoinBack);
    case kNaive:
      return RewriteSql(db, engine.get(), base, RewriteStrategy::kNaive);
  }
  return base;
}

void BM_Fig7(benchmark::State& state) {
  int query = static_cast<int>(state.range(0));
  int sel = static_cast<int>(state.range(1));
  Variant variant = static_cast<Variant>(state.range(2));
  Database* db = GetDatabase(10);
  std::string sql = BuildSql(query, sel, variant);
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunQuery(*db, sql);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel(kVariantNames[variant]);
}

void RegisterAll() {
  for (int query : {1, 2}) {
    for (int sel : kSelectivities) {
      for (int v = 0; v <= 3; ++v) {
        std::string name =
            std::string("fig7") + (query == 1 ? "a/q1" : "d/q2") + "_" +
            kVariantNames[v] + "/sel:" + std::to_string(sel);
        rfid::bench::ApplyStats(benchmark::RegisterBenchmark(
            name.c_str(), &BM_Fig7)
            ->Args({query, sel, v})
            ->Unit(benchmark::kMillisecond));
      }
    }
  }
}

void PrintExplains() {
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, 1);
  struct Item {
    const char* figure;
    int query;
    Variant variant;
  } items[] = {
      {"Figure 7(b): plan for q1 (dirty)", 1, kDirty},
      {"Figure 7(c): plan for q1_e", 1, kExpanded},
      {"Figure 7(e): plan for q2 (dirty)", 2, kDirty},
      {"Figure 7(f): plan for q2_e", 2, kExpanded},
      {"Figure 7(g): plan for q2_j", 2, kJoinBack},
  };
  for (const Item& item : items) {
    std::string sql = BuildSql(item.query, 10, item.variant);
    auto res = ExecuteSql(*db, sql);
    printf("\n=== %s ===\n%s", item.figure,
           res.ok() ? res->explain.c_str() : res.status().ToString().c_str());
  }
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--explain") {
      rfid::bench::PrintExplains();
      return 0;
    }
  }
  rfid::bench::RegisterAll();
  return rfid::bench::RunBenchmarkMain(argc, argv, "fig7_selectivity");
}
