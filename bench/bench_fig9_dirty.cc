// Figure 9 (c) and (d): q1 and q2 on databases with 10% to 40% anomalies
// (db-10 .. db-40), fixed 10% rtime selectivity, first three rules
// enabled. Elapsed time should grow only mildly with the anomaly
// percentage and track the dirty baseline's trend.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace rfid::bench {
namespace {

constexpr int kDirtyLevels[] = {10, 20, 30, 40};

enum Variant { kDirty = 0, kExpanded = 1, kJoinBack = 2, kNaive = 3 };
const char* kVariantNames[] = {"dirty", "q_e", "q_j", "q_n"};

void BM_Fig9Dirty(benchmark::State& state) {
  int query = static_cast<int>(state.range(0));
  int dirty = static_cast<int>(state.range(1));
  Variant variant = static_cast<Variant>(state.range(2));
  Database* db = GetDatabase(dirty);
  auto engine = MakeEngine(db, 3);
  std::string base = (query == 1)
                         ? workload::Q1(workload::T1ForSelectivity(*db, 0.10))
                         : workload::Q2(workload::T2ForSelectivity(*db, 0.10));
  std::string sql = base;
  if (variant == kExpanded) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kExpanded);
  } else if (variant == kJoinBack) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kJoinBack);
  } else if (variant == kNaive) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kNaive);
  }
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunQuery(*db, sql);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel(kVariantNames[variant]);
}

void RegisterAll() {
  for (int query : {1, 2}) {
    for (int dirty : kDirtyLevels) {
      for (int v = 0; v <= 3; ++v) {
        std::string name = std::string("fig9") + (query == 1 ? "c/q1" : "d/q2") +
                           "_" + kVariantNames[v] +
                           "/dirty:" + std::to_string(dirty);
        rfid::bench::ApplyStats(
            benchmark::RegisterBenchmark(name.c_str(), &BM_Fig9Dirty)
                ->Args({query, dirty, v})
                ->Unit(benchmark::kMillisecond));
      }
    }
  }
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  rfid::bench::RegisterAll();
  return rfid::bench::RunBenchmarkMain(argc, argv, "fig9_dirty");
}
