// Table 1: the expanded conditions the rewrite engine derives for q1 and
// q2 with respect to each of the five rules. Prints the derived context
// condition (and its sequence-key relaxation) per rule, mirroring the
// paper's table; `{}` marks rules for which no expanded condition exists
// (cycle for both queries, missing for q1).
//
// Also micro-benchmarks the rewrite step itself (correlation analysis,
// transitivity, candidate generation, and cost-based selection), which
// the paper treats as negligible compile-time work.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sql/render.h"

namespace rfid::bench {
namespace {

void PrintTable1() {
  Database* db = GetDatabase(10);
  int64_t t1 = workload::T1ForSelectivity(*db, 0.10);
  int64_t t2 = workload::T2ForSelectivity(*db, 0.10);
  struct QuerySpec {
    const char* name;
    std::string sql;
    const char* t_name;
    int64_t t_value;
  } queries[] = {
      {"q1", workload::Q1(t1), "T1", t1},
      {"q2", workload::Q2(t2), "T2", t2},
  };

  printf("=== Table 1: expanded conditions (derived) ===\n");
  printf("t1=5min, t2=10min, t3=20min; ");
  printf("T1=%lld T2=%lld (10%% selectivity)\n\n", static_cast<long long>(t1),
         static_cast<long long>(t2));
  printf("%-12s %-4s %-10s %s\n", "rule", "qry", "feasible", "context condition");

  // One rule group at a time, matching the table's rows.
  auto names = workload::StandardRuleNames();
  for (const QuerySpec& q : queries) {
    auto engine = MakeEngine(db, 5);
    QueryRewriter rewriter(db, engine.get());
    auto info = rewriter.Rewrite(q.sql);
    if (!info.ok()) {
      fprintf(stderr, "rewrite failed: %s\n", info.status().ToString().c_str());
      exit(1);
    }
    // Group missing_r1/missing_r2 into "missing".
    std::map<std::string, std::pair<bool, std::string>> by_group;
    for (const RuleContextInfo& c : info->contexts) {
      std::string group = c.rule_name.substr(0, c.rule_name.find("_r"));
      std::string cond = c.context_condition == nullptr
                             ? "{}"
                             : RenderExpr(c.context_condition);
      auto [it, inserted] = by_group.try_emplace(group, c.feasible, cond);
      if (!inserted) {
        it->second.first = it->second.first && c.feasible;
        it->second.second += "  /  " + cond;
      }
    }
    for (const std::string& rule : names) {
      const auto& [feasible, cond] = by_group.at(rule);
      printf("%-12s %-4s %-10s %s\n", rule.c_str(), q.name,
             feasible ? "yes" : "no ({})", feasible ? cond.c_str() : "{}");
    }
    if (info->relaxed_condition != nullptr) {
      printf("%-12s %-4s relaxed ec: %s\n", "(all)", q.name,
             RenderExpr(info->relaxed_condition).c_str());
    }
    printf("\n");
  }
}

void BM_RewriteLatency(benchmark::State& state) {
  int num_rules = static_cast<int>(state.range(0));
  int query = static_cast<int>(state.range(1));
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, num_rules);
  QueryRewriter rewriter(db, engine.get());
  std::string sql = (query == 1)
                        ? workload::Q1(workload::T1ForSelectivity(*db, 0.10))
                        : workload::Q2(workload::T2ForSelectivity(*db, 0.10));
  for (auto _ : state) {
    auto info = rewriter.Rewrite(sql);
    if (!info.ok()) {
      state.SkipWithError(info.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(info->sql);
  }
}

void RegisterAll() {
  for (int query : {1, 2}) {
    for (int rules : {1, 3, 5}) {
      std::string name = "table1/rewrite_latency_q" + std::to_string(query) +
                         "/rules:" + std::to_string(rules);
      rfid::bench::ApplyStats(
          benchmark::RegisterBenchmark(name.c_str(), &BM_RewriteLatency)
              ->Args({rules, query})
              ->Unit(benchmark::kMillisecond));
    }
  }
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  rfid::bench::PrintTable1();
  rfid::bench::RegisterAll();
  return rfid::bench::RunBenchmarkMain(argc, argv, "table1_expanded_conditions");
}
