// Shared infrastructure for the experiment benchmarks (Section 6): cached
// databases per anomaly level, rule-engine construction, and rewrite
// helpers. Scale is controlled by RFID_BENCH_PALLETS (default 40 pallets
// ≈ 60k case reads — the paper used ~6.7k pallets / 10M reads on a 2006
// server; the *shape* of the results is scale-robust, see EXPERIMENTS.md).
#ifndef RFID_BENCH_BENCH_COMMON_H_
#define RFID_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/simd.h"
#include "exec/parallel.h"
#include "expr/row_batch.h"
#include "plan/planner.h"
#include "storage/columnar.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/workload.h"

namespace rfid::bench {

/// Pinned data-generation seed shared by every harness (see GetDatabase);
/// recorded in the emitted JSON so a result file fully identifies its
/// input data.
constexpr uint64_t kBenchSeed = 20060912;

inline int64_t BenchPallets() {
  const char* env = std::getenv("RFID_BENCH_PALLETS");
  return env != nullptr ? atoll(env) : 40;
}

/// Repetitions per benchmark for percentile aggregates; RFID_BENCH_REPS
/// overrides (default 3 — enough for a p95 that reflects tail noise
/// without tripling CI wall-clock).
inline int BenchRepetitions() {
  const char* env = std::getenv("RFID_BENCH_REPS");
  int reps = env != nullptr ? atoi(env) : 3;
  return reps > 0 ? reps : 1;
}

/// Percentile with linear interpolation between closest ranks (matches
/// numpy's default). `v` holds one aggregate value per repetition.
inline double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  double rank = p * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (rank - static_cast<double>(lo));
}

/// Standard reporting setup applied to every registered benchmark:
/// repeated runs reported as p50/p95 aggregates (medians resist outliers
/// from CI-neighbour noise; p95 exposes tail regressions a mean hides).
inline benchmark::internal::Benchmark* ApplyStats(
    benchmark::internal::Benchmark* b) {
  return b->Repetitions(BenchRepetitions())
      ->ComputeStatistics(
          "p50",
          [](const std::vector<double>& v) { return Percentile(v, 0.50); })
      ->ComputeStatistics(
          "p95",
          [](const std::vector<double>& v) { return Percentile(v, 0.95); })
      ->ReportAggregatesOnly(true);
}

/// Database with a given anomaly percentage (e.g. 10 => db-10), generated
/// once per process and cached.
inline Database* GetDatabase(int dirty_percent) {
  static std::map<int, std::unique_ptr<Database>>* cache =
      new std::map<int, std::unique_ptr<Database>>();
  auto it = cache->find(dirty_percent);
  if (it != cache->end()) return it->second.get();

  auto db = std::make_unique<Database>();
  rfidgen::GeneratorOptions gen;
  // Seeds are pinned explicitly (not left to the header defaults) so
  // benchmark inputs stay byte-identical across runs and machines even if
  // the library defaults ever move; the anomaly seed is derived from the
  // dirty level so db-1/db-10/db-20 get independent error placements.
  gen.seed = kBenchSeed;
  gen.num_pallets = BenchPallets();
  // Keep the paper's proportions at bench scale: the reads table must
  // dwarf the dimension tables (the paper pairs 10M reads with a 13k-row
  // location table). 130 sites x 10 locations = 1303 locations against
  // ~1.5k reads per pallet.
  gen.num_stores = 100;
  gen.num_warehouses = 25;
  gen.num_dcs = 5;
  gen.locations_per_site = 10;
  auto g = rfidgen::Generate(gen, db.get());
  if (!g.ok()) {
    fprintf(stderr, "generate failed: %s\n", g.status().ToString().c_str());
    exit(1);
  }
  rfidgen::AnomalyOptions anomalies;
  anomalies.seed = 7 + static_cast<uint64_t>(dirty_percent);
  anomalies.dirty_fraction = dirty_percent / 100.0;
  auto a = rfidgen::InjectAnomalies(anomalies, db.get());
  if (!a.ok()) {
    fprintf(stderr, "inject failed: %s\n", a.status().ToString().c_str());
    exit(1);
  }
  fprintf(stderr,
          "[bench] db-%d ready: %lld case reads, %lld anomalies "
          "(dup %lld, reader %lld, repl %lld, cyc %lld, miss %lld)\n",
          dirty_percent, static_cast<long long>(db->GetTable("caseR")->num_rows()),
          static_cast<long long>(a->total()), static_cast<long long>(a->duplicates),
          static_cast<long long>(a->reader), static_cast<long long>(a->replacing),
          static_cast<long long>(a->cycles), static_cast<long long>(a->missing));
  Database* ptr = db.get();
  (*cache)[dirty_percent] = std::move(db);
  return ptr;
}

/// A rule engine with the first `num_rules` standard rules defined.
inline std::unique_ptr<CleansingRuleEngine> MakeEngine(Database* db,
                                                       int num_rules) {
  auto engine = std::make_unique<CleansingRuleEngine>(db);
  for (const std::string& def : workload::StandardRuleDefinitions(num_rules)) {
    Status st = engine->DefineRule(def);
    if (!st.ok() && st.code() != StatusCode::kAlreadyExists) {
      fprintf(stderr, "rule failed: %s\n", st.ToString().c_str());
      exit(1);
    }
  }
  return engine;
}

/// Rewrites `sql` with the given strategy; exits on failure (benchmarks
/// only request feasible combinations).
inline std::string RewriteSql(Database* db, CleansingRuleEngine* engine,
                              const std::string& sql, RewriteStrategy strategy) {
  QueryRewriter rewriter(db, engine);
  RewriteOptions opts;
  opts.strategy = strategy;
  auto info = rewriter.Rewrite(sql, opts);
  if (!info.ok()) {
    fprintf(stderr, "rewrite (%s) failed: %s\n", RewriteStrategyName(strategy),
            info.status().ToString().c_str());
    exit(1);
  }
  return info->sql;
}

/// Executes and returns the row count; exits on failure.
inline size_t RunQuery(const Database& db, const std::string& sql) {
  auto res = ExecuteSql(db, sql);
  if (!res.ok()) {
    fprintf(stderr, "query failed: %s\nsql: %s\n",
            res.status().ToString().c_str(), sql.c_str());
    exit(1);
  }
  return res->rows.size();
}

/// Console reporter that additionally captures the p50/p95 aggregates and
/// writes them — together with everything needed to reproduce the run
/// (pinned seeds, scale, batch size, max dop) — to BENCH_<harness>.json
/// in the working directory. scripts/check.sh --quick invokes the
/// harnesses from the repo root, dropping the files there so before/after
/// numbers can be diffed and committed.
struct BenchEntry {
  std::string name;
  double p50 = 0;
  double p95 = 0;
  std::string unit = "ns";
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Writes BENCH_<harness>.json in the working directory: one p50/p95
/// entry per benchmark plus everything needed to reproduce the run
/// (pinned seeds, scale, batch size, max dop).
inline void WriteBenchJson(const std::string& harness,
                           const std::vector<BenchEntry>& entries) {
  if (entries.empty()) return;  // e.g. --benchmark_list_tests
  const std::string path = "BENCH_" + harness + ".json";
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return;
  }
  fprintf(f, "{\n");
  fprintf(f, "  \"harness\": \"%s\",\n", JsonEscape(harness).c_str());
  fprintf(f, "  \"pallets\": %lld,\n", static_cast<long long>(BenchPallets()));
  fprintf(f, "  \"repetitions\": %d,\n", BenchRepetitions());
  fprintf(f, "  \"generator_seed\": %llu,\n",
          static_cast<unsigned long long>(kBenchSeed));
  fprintf(f, "  \"vectorized\": %s,\n", VectorizedEnabled() ? "true" : "false");
  fprintf(f, "  \"batch_size\": %zu,\n",
          VectorizedEnabled() ? BatchCapacity() : size_t{0});
  fprintf(f, "  \"columnar\": %s,\n", ColumnarEnabled() ? "true" : "false");
  fprintf(f, "  \"simd\": \"%s\",\n",
          ColumnarEnabled() ? simd::ActiveLevelName() : "off");
  fprintf(f, "  \"max_dop\": %d,\n", CurrentParallelPolicy().max_dop);
  fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const BenchEntry& e = entries[i];
    fprintf(f,
            "    {\"name\": \"%s\", \"unit\": \"%s\", \"p50\": %.6g, "
            "\"p95\": %.6g}%s\n",
            JsonEscape(e.name).c_str(), e.unit.c_str(), e.p50, e.p95,
            i + 1 < entries.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

class JsonBenchReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonBenchReporter(std::string harness)
      : harness_(std::move(harness)) {}
  ~JsonBenchReporter() override { WriteBenchJson(harness_, entries_); }

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Aggregate) continue;
      if (r.aggregate_name != "p50" && r.aggregate_name != "p95") continue;
      BenchEntry& e = FindEntry(r.run_name.str());
      e.unit = benchmark::GetTimeUnitString(r.time_unit);
      (r.aggregate_name == "p50" ? e.p50 : e.p95) = r.GetAdjustedRealTime();
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  BenchEntry& FindEntry(const std::string& name) {
    for (BenchEntry& e : entries_) {
      if (e.name == name) return e;
    }
    entries_.push_back(BenchEntry{name, 0, 0, "ns"});
    return entries_.back();
  }

  std::string harness_;
  std::vector<BenchEntry> entries_;
};

/// Shared main-body for every harness: parse benchmark flags, run, and
/// emit BENCH_<harness>.json alongside the console output.
inline int RunBenchmarkMain(int argc, char** argv, const char* harness) {
  benchmark::Initialize(&argc, argv);
  // Columnar-off runs (RFID_COLUMNAR=0) write to a distinct file so an
  // on/off pair can sit side by side for before/after diffs.
  std::string name = harness;
  if (!ColumnarEnabled()) name += "_columnar_off";
  JsonBenchReporter reporter(name);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}

}  // namespace rfid::bench

#endif  // RFID_BENCH_BENCH_COMMON_H_
