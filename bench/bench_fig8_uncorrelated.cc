// Figure 8: query q2' — q2 with the site predicate replaced by a
// business-step-type predicate that is deliberately uncorrelated with
// EPC sequences. Join-back loses its advantage: the type predicate
// reduces the number of reads but barely reduces the set of EPCs to be
// cleansed, so q2'_j is no longer much better than q2'_e.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace rfid::bench {
namespace {

constexpr int kSelectivities[] = {1, 5, 10, 20, 30, 40};

enum Variant { kDirty = 0, kExpanded = 1, kJoinBack = 2, kNaive = 3 };
const char* kVariantNames[] = {"dirty", "q_e", "q_j", "q_n"};

void BM_Fig8(benchmark::State& state) {
  int sel = static_cast<int>(state.range(0));
  Variant variant = static_cast<Variant>(state.range(1));
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, 1);  // reader rule only
  std::string base =
      workload::Q2Prime(workload::T2ForSelectivity(*db, sel / 100.0), 3);
  std::string sql = base;
  if (variant == kExpanded) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kExpanded);
  } else if (variant == kJoinBack) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kJoinBack);
  } else if (variant == kNaive) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kNaive);
  }
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunQuery(*db, sql);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel(kVariantNames[variant]);
}

void RegisterAll() {
  for (int sel : kSelectivities) {
    for (int v = 0; v <= 3; ++v) {
      std::string name = std::string("fig8/q2prime_") + kVariantNames[v] +
                         "/sel:" + std::to_string(sel);
      rfid::bench::ApplyStats(benchmark::RegisterBenchmark(name.c_str(), &BM_Fig8)
          ->Args({sel, v})
          ->Unit(benchmark::kMillisecond));
    }
  }
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  rfid::bench::RegisterAll();
  return rfid::bench::RunBenchmarkMain(argc, argv, "fig8_uncorrelated");
}
