// Ablation (extension beyond the paper): aggressive join pushdown in the
// expanded rewrite. The published algorithm only pushes a dimension
// restriction before cleansing when it is derivable on every context
// reference; pushing any restriction into the *query part* of the
// expanded condition is also correct (contexts remain covered by the cc
// disjuncts) and shrinks the cleansing input further. This bench
// quantifies the gap on q2, where the site restriction is not derivable
// through the reader rule's context.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace rfid::bench {
namespace {

void BM_AblationPushdown(benchmark::State& state) {
  int sel = static_cast<int>(state.range(0));
  bool aggressive = state.range(1) != 0;
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, 1);
  std::string base = workload::Q2(workload::T2ForSelectivity(*db, sel / 100.0));
  QueryRewriter rewriter(db, engine.get());
  RewriteOptions opts;
  opts.strategy = RewriteStrategy::kExpanded;
  opts.aggressive_join_pushdown = aggressive;
  auto info = rewriter.Rewrite(base, opts);
  if (!info.ok()) {
    state.SkipWithError(info.status().ToString().c_str());
    return;
  }
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunQuery(*db, info->sql);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel(aggressive ? "aggressive" : "paper");
}

void RegisterAll() {
  for (int sel : {1, 5, 10, 20, 30, 40}) {
    for (int aggressive : {0, 1}) {
      std::string name = std::string("ablation/q2_expanded_") +
                         (aggressive ? "aggressive" : "paper") +
                         "/sel:" + std::to_string(sel);
      rfid::bench::ApplyStats(
          benchmark::RegisterBenchmark(name.c_str(), &BM_AblationPushdown)
              ->Args({sel, aggressive})
              ->Unit(benchmark::kMillisecond));
    }
  }
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  rfid::bench::RegisterAll();
  return rfid::bench::RunBenchmarkMain(argc, argv, "ablation_pushdown");
}
