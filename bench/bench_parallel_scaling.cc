// DOP scaling sweep for morsel-driven parallel execution: runs the fig-9
// style cleansing query (q1, 10% rtime selectivity, first three rules)
// under each rewrite strategy at DOP 1/2/4/8, verifies every parallel run
// is bit-identical to the serial plan (exact row order and values), and
// reports p50/p95 latency plus speedup versus DOP 1.
//
// Hand-rolled main (not google-benchmark): the sweep must flip the
// process-wide ParallelPolicy between measurements and compare result
// fingerprints across runs, which the fixture-per-benchmark model makes
// awkward. Exits nonzero if any parallel result diverges from serial.
//
// Usage: bench_parallel_scaling [--quick]
//   --quick   one repetition per point (CI smoke; full mode runs 5)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "exec/parallel.h"

namespace rfid::bench {
namespace {

// Exact serialization: row order matters (bit-identical, not set-equal).
std::string Fingerprint(const QueryResult& res) {
  std::string out;
  out.reserve(res.rows.size() * 32);
  for (const Row& r : res.rows) {
    for (const Value& v : r) {
      out += v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

double ElapsedMs(const Database& db, const std::string& sql,
                 QueryResult* out) {
  auto start = std::chrono::steady_clock::now();
  auto res = ExecuteSql(db, sql);
  auto end = std::chrono::steady_clock::now();
  if (!res.ok()) {
    fprintf(stderr, "query failed: %s\n", res.status().ToString().c_str());
    exit(1);
  }
  *out = std::move(*res);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

int Run(bool quick) {
  const int reps = quick ? 1 : 5;
  const int dops[] = {1, 2, 4, 8};
  const unsigned cores = std::thread::hardware_concurrency();
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, 3);
  std::string base = workload::Q1(workload::T1ForSelectivity(*db, 0.10));

  struct StrategyCase {
    const char* name;
    RewriteStrategy strategy;
  };
  const StrategyCase cases[] = {
      {"naive", RewriteStrategy::kNaive},
      {"expanded", RewriteStrategy::kExpanded},
      {"join_back", RewriteStrategy::kJoinBack},
  };

  printf("host: %u hardware threads (speedup is bounded by physical "
         "cores; on a 1-core host all DOPs time alike)\n",
         cores);
  printf("%-10s %5s %10s %10s %9s  %s\n", "strategy", "dop", "p50_ms",
         "p95_ms", "speedup", "identical");

  int failures = 0;
  std::vector<BenchEntry> json_entries;
  for (const StrategyCase& c : cases) {
    std::string sql = RewriteSql(db, engine.get(), base, c.strategy);

    // Serial ground truth: policy forced fully off.
    SetParallelPolicyForTest(1, 0);
    QueryResult serial;
    ElapsedMs(*db, sql, &serial);
    if (serial.rows.empty()) {
      fprintf(stderr, "[%s] produced no rows; sweep would be vacuous\n",
              c.name);
      SetParallelPolicyForTest(0, 0);
      return 1;
    }
    const std::string truth = Fingerprint(serial);

    double base_p50 = 0;
    for (int dop : dops) {
      // Low threshold so bench-scale tables actually fan out.
      SetParallelPolicyForTest(dop, 1024);
      std::vector<double> times;
      bool identical = true;
      for (int r = 0; r < reps; ++r) {
        QueryResult res;
        times.push_back(ElapsedMs(*db, sql, &res));
        if (Fingerprint(res) != truth) identical = false;
      }
      if (!identical) ++failures;
      double p50 = Percentile(times, 0.50);
      double p95 = Percentile(times, 0.95);
      if (dop == 1) base_p50 = p50;
      printf("%-10s %5d %10.2f %10.2f %8.2fx  %s\n", c.name, dop, p50, p95,
             base_p50 / (p50 > 0 ? p50 : 1e-9),
             identical ? "yes" : "NO - MISMATCH");
      json_entries.push_back(
          BenchEntry{std::string("parallel_scaling/") + c.name +
                         "/dop:" + std::to_string(dop),
                     p50, p95, "ms"});
    }
  }
  SetParallelPolicyForTest(0, 0);
  WriteBenchJson("parallel_scaling", json_entries);
  if (failures > 0) {
    fprintf(stderr, "%d parallel run(s) diverged from serial output\n",
            failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) quick = true;
  }
  return rfid::bench::Run(quick);
}
