// Companion to Figure 7: the table-scan layer at the same predicate
// selectivities. The fig7 whole-query benches route their selective
// rtime predicates through IndexRangeScan and spend most of their time
// in the windows/joins/sorts above the scan, so they cannot expose what
// a table scan itself costs. This harness sweeps sargable predicates
// over the *non-indexed* caseR columns — dictionary-encoded strings
// (biz_loc, reader) and bit-packed ints (biz_step) — which plan as full
// table scans: exactly the path the columnar segment encodings and SIMD
// filter kernels accelerate. count(*) keeps the aggregate above the
// scan negligible, so elapsed time is scan-bound.
//
// Run as-is for the columnar numbers and with RFID_COLUMNAR=0 for the
// row-store baseline; the two runs emit BENCH_fig7_scan.json and
// BENCH_fig7_scan_columnar_off.json for side-by-side diffs.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "storage/table.h"

namespace rfid::bench {
namespace {

constexpr int kSelectivities[] = {1, 5, 10, 20, 30, 40};

// Value of caseR column `col` at the given quantile of its sorted value
// distribution, so `col <= cutoff` matches ~frac of the rows. Ties can
// widen a step (biz_step has a small domain), but on- and off-columnar
// runs see the identical literal either way, so the pair stays fair.
Value CutoffForSelectivity(Database* db, const char* col, double frac) {
  const Table* t = db->GetTable("caseR");
  auto c = t->schema().ResolveColumn(col);
  if (!c.ok()) {
    fprintf(stderr, "no column %s\n", col);
    exit(1);
  }
  std::vector<Value> vals;
  const size_t n = static_cast<size_t>(t->visible_rows());
  vals.reserve(n);
  for (size_t i = 0; i < n; ++i) vals.push_back(t->row(i)[*c]);
  std::sort(vals.begin(), vals.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  return vals[static_cast<size_t>(frac * static_cast<double>(n - 1))];
}

std::string Literal(const Value& v) {
  if (v.type() == DataType::kString) return "'" + v.string_value() + "'";
  return std::to_string(v.int64_value());
}

size_t CountMatches(Database* db, const std::string& sql) {
  auto res = ExecuteSql(*db, sql);
  if (!res.ok() || res->rows.empty()) {
    fprintf(stderr, "count failed: %s\n", sql.c_str());
    exit(1);
  }
  return static_cast<size_t>(res->rows[0][0].int64_value());
}

void BM_Scan(benchmark::State& state, const std::string& sql,
             size_t matched) {
  Database* db = GetDatabase(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(*db, sql));
  }
  state.counters["matched"] = static_cast<double>(matched);
}

void Register(const std::string& name, const std::string& sql) {
  Database* db = GetDatabase(10);
  size_t matched = CountMatches(db, sql);
  ApplyStats(benchmark::RegisterBenchmark(
                 name.c_str(),
                 [sql, matched](benchmark::State& s) { BM_Scan(s, sql, matched); })
                 ->Unit(benchmark::kMillisecond));
}

void RegisterAll() {
  Database* db = GetDatabase(10);
  // Dictionary-compare sweep: string range predicate over the 1.3k-value
  // location dictionary at Figure 7's selectivity points.
  for (int sel : kSelectivities) {
    Value cut = CutoffForSelectivity(db, "biz_loc", sel / 100.0);
    Register("fig7scan/biz_loc_le/sel:" + std::to_string(sel),
             "SELECT count(*) FROM caseR WHERE biz_loc <= " + Literal(cut));
  }
  // Bit-packed int sweep (coarse steps: biz_step's domain is small).
  for (int sel : {10, 40}) {
    Value cut = CutoffForSelectivity(db, "biz_step", sel / 100.0);
    Register("fig7scan/biz_step_le/sel:" + std::to_string(sel),
             "SELECT count(*) FROM caseR WHERE biz_step <= " + Literal(cut));
  }
  // Dictionary point predicates: the forklift reader opens every site
  // visit (~1/3 of reads), the complement matches the other ~2/3.
  Register("fig7scan/reader_eq",
           "SELECT count(*) FROM caseR WHERE reader = 'readerX'");
  Register("fig7scan/reader_ne",
           "SELECT count(*) FROM caseR WHERE reader <> 'readerX'");
  // Conjunct: selection vector from the string range refined by a
  // second encoded column without decoding non-survivors.
  Value loc = CutoffForSelectivity(db, "biz_loc", 0.40);
  Register("fig7scan/conjunct",
           "SELECT count(*) FROM caseR WHERE biz_loc <= " + Literal(loc) +
               " AND reader = 'readerX'");
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  rfid::bench::RegisterAll();
  return rfid::bench::RunBenchmarkMain(argc, argv, "fig7_scan");
}
