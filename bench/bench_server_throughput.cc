// SQL server throughput: concurrent sessions executing a prepared
// analytic query over the wire, at 1 / 4 / 16 / 64 sessions with the
// plan cache on and off. Each iteration runs a fixed batch of queries
// per session, so the reported time divided by items is the end-to-end
// per-query latency (admission, rewrite or cache hit, execution, result
// encoding) and items_per_second is the server's QPS. The cache-off
// rows pay the full rewrite tax on every query; cache-on rows pay it
// once per (statement, catalog, statistics) and amortize to near-pure
// execution. Emits BENCH_server_throughput.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/string_util.h"
#include "plan/planner.h"
#include "rfidgen/workload.h"
#include "server/client.h"
#include "server/server.h"

namespace rfid::bench {

constexpr int kQueriesPerSessionPerIter = 4;

namespace {

using server::Client;
using server::Server;
using server::ServerOptions;

// One server per (sessions, cache) configuration, seeded over the wire
// exactly like a production deployment: .gen + per-session rules.
struct Harness {
  std::unique_ptr<Server> server;
  std::vector<std::unique_ptr<Client>> clients;
  std::vector<uint64_t> statements;
};

// The workload statement: a per-EPC traceability lookup — the paper's
// headline use case and the natural high-QPS server workload (every
// item scan asks "where has this tag been?"). Because the cleansing
// rules cluster by epc, the equality predicate confines the rewritten
// cleansing windows to one tag's reads, so execution is cheap (~30 ms
// at 40 pallets) while the rewrite derivation (context analysis plus
// candidate costing across five rules) is a measurable slice (~5 ms)
// of every cache-off execution. This is exactly the regime the plan
// cache targets: derivation amortizes to one miss, execution does not.
// The epc comes from an embedded twin of the server's .gen (same
// generator defaults and seeds), computed once per process.
const std::string& WorkloadSql() {
  static const std::string* sql = [] {
    Database db;
    rfidgen::GeneratorOptions gen;
    gen.num_pallets = BenchPallets();
    auto g = rfidgen::Generate(gen, &db);
    if (!g.ok()) {
      fprintf(stderr, "twin generate failed: %s\n",
              g.status().ToString().c_str());
      exit(1);
    }
    rfidgen::AnomalyOptions anomalies;
    anomalies.dirty_fraction = 0.10;
    auto a = rfidgen::InjectAnomalies(anomalies, &db);
    if (!a.ok()) {
      fprintf(stderr, "twin inject failed: %s\n",
              a.status().ToString().c_str());
      exit(1);
    }
    auto probe = ExecuteSql(db, "SELECT epc FROM caseR LIMIT 1");
    if (!probe.ok() || probe->rows.empty()) {
      fprintf(stderr, "twin epc probe failed\n");
      exit(1);
    }
    return new std::string(
        "SELECT rtime, biz_loc, reader FROM caseR WHERE epc = '" +
        probe->rows[0][0].string_value() + "' ORDER BY rtime");
  }();
  return *sql;
}

std::unique_ptr<Harness> MakeHarness(int sessions, bool cache_on) {
  ServerOptions options;
  options.max_sessions = sessions + 1;
  options.admission.max_concurrent = 8;
  options.admission.queue_depth = 256;
  options.admission.queue_wait_micros = 120'000'000;
  options.plan_cache_enabled = cache_on;
  auto srv = Server::Start(options);
  if (!srv.ok()) {
    fprintf(stderr, "server start failed: %s\n",
            srv.status().ToString().c_str());
    exit(1);
  }
  auto harness = std::make_unique<Harness>();
  harness->server = std::move(*srv);

  auto seeder = Client::Connect("127.0.0.1", harness->server->port());
  if (!seeder.ok()) {
    fprintf(stderr, "connect failed: %s\n",
            seeder.status().ToString().c_str());
    exit(1);
  }
  auto gen = (*seeder)->Command(
      StrFormat(".gen %lld 10", static_cast<long long>(BenchPallets())));
  if (!gen.ok()) {
    fprintf(stderr, ".gen failed: %s\n", gen.status().ToString().c_str());
    exit(1);
  }
  auto count = (*seeder)->Query("SELECT count(*) FROM caseR");
  if (!count.ok()) {
    fprintf(stderr, "probe failed: %s\n", count.status().ToString().c_str());
    exit(1);
  }
  const std::string sql = WorkloadSql();

  for (int i = 0; i < sessions; ++i) {
    auto client = Client::Connect("127.0.0.1", harness->server->port());
    if (!client.ok()) {
      fprintf(stderr, "connect failed: %s\n",
              client.status().ToString().c_str());
      exit(1);
    }
    for (const std::string& def : workload::StandardRuleDefinitions(5)) {
      auto defined = (*client)->Command(".rule " + def);
      if (!defined.ok()) {
        fprintf(stderr, "rule failed: %s\n",
                defined.status().ToString().c_str());
        exit(1);
      }
    }
    auto stmt = (*client)->Prepare(sql);
    if (!stmt.ok()) {
      fprintf(stderr, "prepare failed: %s\n",
              stmt.status().ToString().c_str());
      exit(1);
    }
    harness->clients.push_back(std::move(*client));
    harness->statements.push_back(*stmt);
  }
  return harness;
}

void BM_ServerThroughput(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  const bool cache_on = state.range(1) != 0;
  auto harness = MakeHarness(sessions, cache_on);

  std::atomic<int> errors{0};
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(sessions));
    for (int i = 0; i < sessions; ++i) {
      workers.emplace_back([&, i] {
        for (int q = 0; q < kQueriesPerSessionPerIter; ++q) {
          auto res = harness->clients[static_cast<size_t>(i)]->Execute(
              harness->statements[static_cast<size_t>(i)]);
          if (!res.ok()) ++errors;
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  if (errors.load() != 0) {
    state.SkipWithError("query errors during benchmark");
  }
  state.SetItemsProcessed(state.iterations() * sessions *
                          kQueriesPerSessionPerIter);
  const auto cache_stats = harness->server->plan_cache_stats();
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(cache_stats.hits));
  state.counters["cache_misses"] =
      benchmark::Counter(static_cast<double>(cache_stats.misses));
  harness->server->Shutdown();
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  for (int sessions : {1, 4, 16, 64}) {
    for (int cache : {1, 0}) {
      // Pin the iteration count so each repetition measures a fixed
      // ~64-query batch; letting gbench auto-tune iterations makes the
      // 64-session configs run for minutes on small hosts.
      const int iters =
          std::max(1, 64 / (sessions * rfid::bench::kQueriesPerSessionPerIter));
      rfid::bench::ApplyStats(
          benchmark::RegisterBenchmark(
              (std::string("server_throughput/sessions:") +
               std::to_string(sessions) + "/cache:" + (cache ? "on" : "off"))
                  .c_str(),
              rfid::bench::BM_ServerThroughput)
              ->Args({sessions, cache})
              ->Iterations(iters)
              ->UseRealTime()
              ->Unit(benchmark::kMillisecond));
    }
  }
  benchmark::Initialize(&argc, argv);
  rfid::bench::JsonBenchReporter reporter("server_throughput");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
