// Durability cost benchmarks: micro-batch append throughput through a
// WAL-backed IngestPipeline under each fsync policy (plus the no-WAL
// baseline, so the logging and fsync overheads can be read off
// separately), and recovery time — checkpoint load + committed-epoch
// replay — for a directory holding a full stream's worth of epochs.
// Emits BENCH_wal_throughput.json with pinned seeds via RunBenchmarkMain.
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ingest/ingest.h"
#include "rfidgen/stream.h"
#include "wal/wal_manager.h"

namespace rfid::bench {
namespace {

using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;
using wal::FsyncPolicy;
using wal::WalManager;
using wal::WalOptions;

constexpr size_t kBatchRows = 256;
// Sentinel for the no-WAL baseline in the policy benchmark argument.
constexpr int64_t kNoWal = -1;

StreamOptions BenchStream(uint64_t seed) {
  StreamOptions opt;
  opt.seed = seed;
  opt.num_pallets = BenchPallets();
  return opt;
}

std::vector<TableBatch> ToGroup(StreamBatch b) {
  std::vector<TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

std::string FreshDir(const char* tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     (std::string("rfid_bench_wal_") + tag))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

// Full-stream micro-batch ingest with durability: rows/sec through
// Apply() including BATCH/COMMIT records and the policy's fsyncs.
// state.range(0) is the FsyncPolicy (or kNoWal for the baseline).
void BM_WalAppendThroughput(benchmark::State& state) {
  const bool logged = state.range(0) != kNoWal;
  const auto policy = static_cast<FsyncPolicy>(state.range(0));
  int64_t rows = 0;
  uint64_t seed = kBenchSeed;
  const std::string dir = FreshDir("append");
  for (auto _ : state) {
    state.PauseTiming();
    std::filesystem::remove_all(dir);
    Database db;
    auto stream = ReadStream::Create(&db, BenchStream(seed++));
    if (!stream.ok()) {
      state.SkipWithError(stream.status().ToString().c_str());
      return;
    }
    std::unique_ptr<WalManager> manager;
    if (logged) {
      WalOptions options;
      options.fsync_policy = policy;
      auto opened = WalManager::Open(dir, &db, options);
      if (!opened.ok()) {
        state.SkipWithError(opened.status().ToString().c_str());
        return;
      }
      manager = std::move(*opened);
    }
    IngestPipeline pipeline(&db, nullptr, 8, manager.get());
    state.ResumeTiming();
    while (!(*stream)->exhausted()) {
      Status st = pipeline.Apply(ToGroup((*stream)->NextBatch(kBatchRows)));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    rows += static_cast<int64_t>(pipeline.stats().rows_ingested);
    state.counters["epochs"] = static_cast<double>(pipeline.epoch());
  }
  std::filesystem::remove_all(dir);
  state.SetItemsProcessed(rows);  // items/sec == durable append rows/sec
}

// Recovery: open a prepared directory (base checkpoint + a full stream
// of committed epochs in the segment) into a fresh database. Reported
// time is the whole Open — checkpoint load, structure rebuild, replay,
// tail truncation, segment reopen. items/sec == replayed rows/sec.
void BM_Recovery(benchmark::State& state) {
  const std::string dir = FreshDir("recovery");
  uint64_t logged_rows = 0;
  {
    Database db;
    auto stream = ReadStream::Create(&db, BenchStream(kBenchSeed));
    if (!stream.ok()) {
      state.SkipWithError(stream.status().ToString().c_str());
      return;
    }
    auto manager = WalManager::Open(dir, &db);
    if (!manager.ok()) {
      state.SkipWithError(manager.status().ToString().c_str());
      return;
    }
    IngestPipeline pipeline(&db, nullptr, 8, manager->get());
    while (!(*stream)->exhausted()) {
      Status st = pipeline.Apply(ToGroup((*stream)->NextBatch(kBatchRows)));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    logged_rows = pipeline.stats().rows_ingested;
  }

  int64_t replayed = 0;
  std::vector<double> samples;
  for (auto _ : state) {
    Database db;
    auto t0 = std::chrono::steady_clock::now();
    auto manager = WalManager::Open(dir, &db);
    auto t1 = std::chrono::steady_clock::now();
    if (!manager.ok()) {
      state.SkipWithError(manager.status().ToString().c_str());
      break;
    }
    replayed += static_cast<int64_t>((*manager)->recovery().replayed_rows);
    state.counters["replayed_epochs"] =
        static_cast<double>((*manager)->recovery().replayed_epochs);
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::filesystem::remove_all(dir);
  state.counters["logged_rows"] = static_cast<double>(logged_rows);
  if (!samples.empty()) {
    state.counters["recovery_p50_ms"] = Percentile(samples, 0.50);
  }
  state.SetItemsProcessed(replayed);  // items/sec == replayed rows/sec
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  struct PolicyArg {
    const char* name;
    int64_t arg;
  };
  const PolicyArg policies[] = {
      {"none", rfid::bench::kNoWal},
      {"off", static_cast<int64_t>(rfid::wal::FsyncPolicy::kOff)},
      {"epoch", static_cast<int64_t>(rfid::wal::FsyncPolicy::kPerEpoch)},
      {"always", static_cast<int64_t>(rfid::wal::FsyncPolicy::kAlways)},
  };
  for (const PolicyArg& p : policies) {
    rfid::bench::ApplyStats(
        benchmark::RegisterBenchmark(
            (std::string("wal/append_throughput/fsync_") + p.name).c_str(),
            &rfid::bench::BM_WalAppendThroughput)
            ->Args({p.arg})
            ->Unit(benchmark::kMillisecond));
  }
  rfid::bench::ApplyStats(
      benchmark::RegisterBenchmark("wal/recovery", &rfid::bench::BM_Recovery)
          ->Unit(benchmark::kMillisecond));
  return rfid::bench::RunBenchmarkMain(argc, argv, "wal_throughput");
}
