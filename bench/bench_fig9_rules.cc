// Figure 9 (a) and (b): q1 and q2 with the number of enabled rules scaled
// from 1 to 5 (Table 1 order: reader, duplicate, replacing, cycle,
// missing) at fixed 10% rtime selectivity on db-10.
//
// The expanded rewrite is feasible only for the first three rules (the
// cycle rule's contexts are unbounded in time); join-back covers all
// five. The missing rule costs most: its derived input unions expected
// pallet reads with the case reads, doubling the data to sort.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace rfid::bench {
namespace {

enum Variant { kDirty = 0, kExpanded = 1, kJoinBack = 2, kNaive = 3 };
const char* kVariantNames[] = {"dirty", "q_e", "q_j", "q_n"};

void BM_Fig9Rules(benchmark::State& state) {
  int query = static_cast<int>(state.range(0));
  int num_rules = static_cast<int>(state.range(1));
  Variant variant = static_cast<Variant>(state.range(2));
  Database* db = GetDatabase(10);
  auto engine = MakeEngine(db, num_rules);
  std::string base = (query == 1)
                         ? workload::Q1(workload::T1ForSelectivity(*db, 0.10))
                         : workload::Q2(workload::T2ForSelectivity(*db, 0.10));
  std::string sql = base;
  if (variant == kExpanded) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kExpanded);
  } else if (variant == kJoinBack) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kJoinBack);
  } else if (variant == kNaive) {
    sql = RewriteSql(db, engine.get(), base, RewriteStrategy::kNaive);
  }
  size_t rows = 0;
  for (auto _ : state) {
    rows = RunQuery(*db, sql);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel(kVariantNames[variant]);
}

void RegisterAll() {
  for (int query : {1, 2}) {
    for (int rules = 1; rules <= 5; ++rules) {
      for (int v = 0; v <= 3; ++v) {
        // Expanded is infeasible beyond three rules (cycle, missing).
        if (v == kExpanded && rules >= 4) continue;
        std::string name = std::string("fig9") + (query == 1 ? "a/q1" : "b/q2") +
                           "_" + kVariantNames[v] +
                           "/rules:" + std::to_string(rules);
        rfid::bench::ApplyStats(
            benchmark::RegisterBenchmark(name.c_str(), &BM_Fig9Rules)
                ->Args({query, rules, v})
                ->Unit(benchmark::kMillisecond));
      }
    }
  }
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  rfid::bench::RegisterAll();
  return rfid::bench::RunBenchmarkMain(argc, argv, "fig9_rules");
}
