// Streaming ingest benchmarks: micro-batch append throughput through
// IngestPipeline (rows/sec, incremental index + stats maintenance and
// snapshot publication included), and q1 latency under concurrent load —
// queries pin an epoch snapshot while an IngestDriver keeps publishing
// new ones. Latency is reported as p50/p95 counters per rewrite
// strategy (naive, expanded, join-back), idle and under live load, so
// the snapshot-isolation overhead and the load interference can be read
// off separately.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "ingest/ingest.h"
#include "rfidgen/stream.h"

namespace rfid::bench {
namespace {

using ingest::IngestDriver;
using ingest::IngestPipeline;
using ingest::TableBatch;
using rfidgen::ReadStream;
using rfidgen::StreamBatch;
using rfidgen::StreamOptions;

constexpr size_t kBatchRows = 256;

StreamOptions BenchStream(uint64_t seed) {
  StreamOptions opt;
  opt.seed = seed;
  opt.num_pallets = BenchPallets();
  return opt;
}

std::vector<TableBatch> ToGroup(StreamBatch b) {
  std::vector<TableBatch> group;
  group.push_back({"caseR", std::move(b.case_rows)});
  group.push_back({"palletR", std::move(b.pallet_rows)});
  group.push_back({"parent", std::move(b.parent_rows)});
  group.push_back({"epc_info", std::move(b.info_rows)});
  return group;
}

double PercentileMs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

// Full-stream micro-batch ingest: rows/sec through Apply(), including
// per-epoch sorted-run inserts, sketch merges, and snapshot publication.
void BM_AppendThroughput(benchmark::State& state) {
  int64_t rows = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    auto stream = ReadStream::Create(&db, BenchStream(seed++));
    if (!stream.ok()) {
      state.SkipWithError(stream.status().ToString().c_str());
      return;
    }
    IngestPipeline pipeline(&db);
    state.ResumeTiming();
    while (!(*stream)->exhausted()) {
      Status st = pipeline.Apply(ToGroup((*stream)->NextBatch(kBatchRows)));
      if (!st.ok()) {
        state.SkipWithError(st.ToString().c_str());
        return;
      }
    }
    rows += static_cast<int64_t>(pipeline.stats().rows_ingested);
    state.counters["epochs"] = static_cast<double>(pipeline.epoch());
  }
  state.SetItemsProcessed(rows);  // items/sec == append rows/sec
}

// q1 latency with a pinned snapshot, optionally while an IngestDriver
// publishes epochs on a background thread. state.range(0) selects the
// rewrite strategy; state.range(1) is 1 for live load.
void BM_QueryLatency(benchmark::State& state) {
  const RewriteStrategy strategy =
      static_cast<RewriteStrategy>(state.range(0));
  const bool live_load = state.range(1) != 0;

  Database db;
  uint64_t seed = 100;
  auto created = ReadStream::Create(&db, BenchStream(seed));
  if (!created.ok()) {
    state.SkipWithError(created.status().ToString().c_str());
    return;
  }
  std::unique_ptr<ReadStream> stream = std::move(created).value();
  IngestPipeline pipeline(&db);
  // Warm up most of the first stream so queries see realistic data and
  // rtime stats exist for the selectivity computation.
  for (int i = 0; i < 6 && !stream->exhausted(); ++i) {
    Status st = pipeline.Apply(ToGroup(stream->NextBatch(kBatchRows)));
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  auto engine = MakeEngine(&db, 3);
  std::string q1 = workload::Q1(workload::T1ForSelectivity(db, 0.25));
  std::string sql = RewriteSql(&db, engine.get(), q1, strategy);

  // The load never runs dry: when a stream is exhausted a new generation
  // (fresh seed) takes over, so every query sample races real ingest.
  auto source = [&db, &stream, &seed]() -> std::vector<TableBatch> {
    if (stream->exhausted()) {
      auto next = ReadStream::Create(&db, BenchStream(++seed));
      if (!next.ok()) return {};
      stream = std::move(next).value();
    }
    return ToGroup(stream->NextBatch(kBatchRows));
  };
  // Pace and cap the driver so "under load" measures concurrency
  // interference, not an ever-growing table dominating later samples
  // (naive-query cost scales with table size, so unthrottled ingest
  // makes the sample loop diverge).
  IngestDriver::Options dopt;
  dopt.pause_micros = 20000;
  dopt.max_batches = 1000;
  IngestDriver driver(&pipeline, source, dopt);
  if (live_load) driver.Start();

  std::vector<double> samples;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    ExecContext ctx;
    ctx.set_snapshot(pipeline.snapshot());
    auto res = ExecuteSql(db, sql, &ctx);
    auto t1 = std::chrono::steady_clock::now();
    if (!res.ok()) {
      state.SkipWithError(res.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(res->rows.size());
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }

  if (live_load) {
    driver.RequestStop();
    Status load = driver.Join();
    if (!load.ok()) state.SkipWithError(load.ToString().c_str());
    state.counters["ingest_rows"] =
        static_cast<double>(pipeline.stats().rows_ingested);
    state.counters["epochs"] = static_cast<double>(pipeline.epoch());
  }
  state.counters["p50_ms"] = PercentileMs(samples, 0.50);
  state.counters["p95_ms"] = PercentileMs(samples, 0.95);
}

}  // namespace
}  // namespace rfid::bench

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("ingest/append_throughput",
                               &rfid::bench::BM_AppendThroughput)
      ->Unit(benchmark::kMillisecond);
  struct StrategyArg {
    const char* name;
    rfid::RewriteStrategy strategy;
  };
  const StrategyArg strategies[] = {
      {"naive", rfid::RewriteStrategy::kNaive},
      {"expanded", rfid::RewriteStrategy::kExpanded},
      {"joinback", rfid::RewriteStrategy::kJoinBack},
  };
  for (const StrategyArg& s : strategies) {
    for (int live : {0, 1}) {
      std::string name = std::string("ingest/q1_latency/") + s.name +
                         (live ? "/live_load" : "/idle");
      auto* b = benchmark::RegisterBenchmark(name.c_str(),
                                             &rfid::bench::BM_QueryLatency)
                    ->Args({static_cast<int64_t>(s.strategy), live})
                    ->Unit(benchmark::kMillisecond);
      // Fixed iteration count under live load: the table grows while we
      // measure, so time-based calibration would never converge.
      if (live) b->Iterations(100);
    }
  }
  return rfid::bench::RunBenchmarkMain(argc, argv, "ingest_throughput");
}
