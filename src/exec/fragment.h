// Operators backing the cleansed-fragment cache (see cache/ and
// rewrite/fragment_stitch.h): a leaf scan over an already-cleansed,
// shared row set, and a materializing tee that captures a sub-plan's
// output so the cache can memoize it.
//
// Neither operator knows about the cache itself — the stitcher hands the
// planner a FragmentBinding (exec/exec_context.h) whose shared rows /
// fill callback these operators consume, keeping the exec layer below
// the cleansing and cache layers.
#ifndef RFID_EXEC_FRAGMENT_H_
#define RFID_EXEC_FRAGMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/operator.h"

namespace rfid {

/// Leaf scan over an immutable, shared row vector (a cached cleansed
/// fragment). The rows are owned jointly with the cache via shared_ptr,
/// so an eviction mid-query cannot pull them out from under the scan.
class FragmentScanOp : public Operator {
 public:
  FragmentScanOp(RowDesc output_desc, std::string label,
                 std::shared_ptr<const std::vector<Row>> rows);

  std::string name() const override { return "FragmentScan"; }
  std::string detail() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  std::string label_;
  std::shared_ptr<const std::vector<Row>> rows_;
  size_t pos_ = 0;
};

/// Pass-through that records every row its child produces and, on a
/// *clean* end of stream (the child was drained to exhaustion), hands the
/// complete row set to `on_filled` exactly once. A query that stops
/// early (LIMIT, cancellation, error) closes the operator without
/// reaching end of stream, so partial fragments are never published.
/// Buffered rows are charged against the query's memory budget and
/// released on Close.
class FragmentMaterializeOp : public Operator {
 public:
  FragmentMaterializeOp(RowDesc output_desc, std::string label,
                        OperatorPtr child,
                        std::function<void(std::vector<Row>)> on_filled);

  std::string name() const override { return "FragmentMaterialize"; }
  std::string detail() const override;
  std::vector<const Operator*> children() const override {
    return {child_.get()};
  }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override;

 private:
  std::string label_;
  OperatorPtr child_;
  std::function<void(std::vector<Row>)> on_filled_;
  std::vector<Row> buffer_;
  bool done_ = false;
};

}  // namespace rfid

#endif  // RFID_EXEC_FRAGMENT_H_
