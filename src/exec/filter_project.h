// Streaming filter and projection operators.
#ifndef RFID_EXEC_FILTER_PROJECT_H_
#define RFID_EXEC_FILTER_PROJECT_H_

#include "exec/operator.h"

namespace rfid {

/// Emits child rows for which the bound predicate evaluates to TRUE
/// (NULL and FALSE are dropped — SQL WHERE semantics).
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }

  std::string name() const override { return "Filter"; }
  std::string detail() const override { return ExprToSql(predicate_); }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;  // bound
};

/// Computes one bound scalar expression per output field.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs, RowDesc output_desc);

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }

  std::string name() const override { return "Project"; }
  std::string detail() const override;
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;  // bound against child's output
};

/// Emits at most `limit` rows from the child.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit)
      : Operator(child->output_desc()), child_(std::move(child)), limit_(limit) {}

  Status Open() override {
    rows_produced_ = 0;
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Row* row) override {
    if (emitted_ >= limit_) return false;
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++emitted_;
    ++rows_produced_;
    return true;
  }
  void Close() override { child_->Close(); }

  std::string name() const override { return "Limit"; }
  std::string detail() const override { return std::to_string(limit_); }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// Pass-through operator that re-qualifies the output fields (used when a
/// WITH-clause view or derived table is given an alias).
class RenameOp : public Operator {
 public:
  RenameOp(OperatorPtr child, const std::string& qualifier);

  Status Open() override {
    rows_produced_ = 0;
    return child_->Open();
  }
  Result<bool> Next(Row* row) override {
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (has) ++rows_produced_;
    return has;
  }
  void Close() override { child_->Close(); }

  std::string name() const override { return "Rename"; }
  std::string detail() const override { return qualifier_; }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 private:
  OperatorPtr child_;
  std::string qualifier_;
};

}  // namespace rfid

#endif  // RFID_EXEC_FILTER_PROJECT_H_
