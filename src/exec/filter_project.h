// Streaming filter and projection operators.
#ifndef RFID_EXEC_FILTER_PROJECT_H_
#define RFID_EXEC_FILTER_PROJECT_H_

#include "exec/operator.h"

namespace rfid {

/// Emits child rows for which the bound predicate evaluates to TRUE
/// (NULL and FALSE are dropped — SQL WHERE semantics).
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  std::string name() const override { return "Filter"; }
  std::string detail() const override { return ExprToSql(predicate_); }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override { child_->Close(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;  // bound
};

/// Computes one bound scalar expression per output field.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs, RowDesc output_desc);

  std::string name() const override { return "Project"; }
  std::string detail() const override;
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;  // bound against child's output
};

/// Emits at most `limit` rows from the child.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit)
      : Operator(child->output_desc()), child_(std::move(child)), limit_(limit) {}

  std::string name() const override { return "Limit"; }
  std::string detail() const override { return std::to_string(limit_); }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> NextImpl(Row* row) override {
    if (emitted_ >= limit_) return false;
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++emitted_;
    ++rows_produced_;
    return true;
  }
  void CloseImpl() override { child_->Close(); }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// Pass-through operator that re-qualifies the output fields (used when a
/// WITH-clause view or derived table is given an alias).
class RenameOp : public Operator {
 public:
  RenameOp(OperatorPtr child, const std::string& qualifier);

  std::string name() const override { return "Rename"; }
  std::string detail() const override { return qualifier_; }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Row* row) override {
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (has) ++rows_produced_;
    return has;
  }
  void CloseImpl() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::string qualifier_;
};

}  // namespace rfid

#endif  // RFID_EXEC_FILTER_PROJECT_H_
