// Streaming filter and projection operators.
//
// Both have batch-native paths: on Open (with the vectorized engine on)
// the bound expressions are compiled into bytecode programs and
// NextBatchImpl evaluates them a column at a time over the child's
// batches — a selection vector for Filter, one output column per
// expression for Project. Expressions the compiler rejects fall back to
// the row interpreter per row, inside the same batch loop, so results
// are identical either way.
#ifndef RFID_EXEC_FILTER_PROJECT_H_
#define RFID_EXEC_FILTER_PROJECT_H_

#include <optional>

#include "exec/operator.h"
#include "expr/bytecode.h"

namespace rfid {

/// Emits child rows for which the bound predicate evaluates to TRUE
/// (NULL and FALSE are dropped — SQL WHERE semantics).
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, ExprPtr predicate);

  std::string name() const override { return "Filter"; }
  std::string detail() const override { return ExprToSql(predicate_); }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

  const ExprPtr& predicate() const { return predicate_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  ExprPtr predicate_;  // bound

  // Batch state: compiled conjuncts (absent -> per-row interpreter over
  // boxed rows), the current input batch, and the selection of
  // surviving rows not yet handed out.
  std::optional<FilterProgram> program_;
  RowBatch in_batch_;
  std::vector<uint32_t> sel_;
  size_t sel_pos_ = 0;
  bool in_done_ = false;
  uint64_t in_bytes_ = 0;  // scratch-batch bytes currently charged
  ExprScratch scratch_;
  Row tmp_row_;
};

/// Computes one bound scalar expression per output field.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs, RowDesc output_desc);

  std::string name() const override { return "Project"; }
  std::string detail() const override;
  std::vector<const Operator*> children() const override { return {child_.get()}; }

  const std::vector<ExprPtr>& exprs() const { return exprs_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;  // bound against child's output

  // Batch state: one program per expression (nullopt -> interpreter
  // fallback for that expression only). Empty when the vectorized
  // engine is off.
  std::vector<std::optional<ExprProgram>> progs_;
  RowBatch in_batch_;
  uint64_t in_bytes_ = 0;
  ExprScratch scratch_;
  Row tmp_row_;
};

/// Emits at most `limit` rows from the child.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit)
      : Operator(child->output_desc()), child_(std::move(child)), limit_(limit) {}

  std::string name() const override { return "Limit"; }
  std::string detail() const override { return std::to_string(limit_); }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override {
    emitted_ = 0;
    return child_->Open();
  }
  Result<bool> NextImpl(Row* row) override {
    if (emitted_ >= limit_) return false;
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++emitted_;
    ++rows_produced_;
    return true;
  }
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    if (emitted_ >= limit_) return false;
    RFID_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    if (!has) return false;
    const int64_t room = limit_ - emitted_;
    if (static_cast<int64_t>(batch->num_rows()) > room) {
      batch->set_num_rows(static_cast<size_t>(room));
    }
    emitted_ += static_cast<int64_t>(batch->num_rows());
    rows_produced_ += batch->num_rows();
    return batch->num_rows() > 0;
  }
  void CloseImpl() override { child_->Close(); }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// Pass-through operator that re-qualifies the output fields (used when a
/// WITH-clause view or derived table is given an alias).
class RenameOp : public Operator {
 public:
  RenameOp(OperatorPtr child, const std::string& qualifier);

  std::string name() const override { return "Rename"; }
  std::string detail() const override { return qualifier_; }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Row* row) override {
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (has) ++rows_produced_;
    return has;
  }
  Result<bool> NextBatchImpl(RowBatch* batch) override {
    RFID_ASSIGN_OR_RETURN(bool has, child_->NextBatch(batch));
    rows_produced_ += batch->num_rows();
    return has;
  }
  void CloseImpl() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::string qualifier_;
};

}  // namespace rfid

#endif  // RFID_EXEC_FILTER_PROJECT_H_
