#include "exec/operator.h"

namespace rfid {

Result<std::vector<Row>> CollectRows(Operator* op) {
  RFID_RETURN_IF_ERROR(op->Open());
  std::vector<Row> rows;
  Row row;
  while (true) {
    RFID_ASSIGN_OR_RETURN(bool has, op->Next(&row));
    if (!has) break;
    rows.push_back(std::move(row));
  }
  op->Close();
  return rows;
}

namespace {
void ExplainRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.name());
  std::string detail = op.detail();
  if (!detail.empty()) {
    out->append(" [");
    out->append(detail);
    out->append("]");
  }
  out->append(" rows=");
  out->append(std::to_string(op.rows_produced()));
  out->append("\n");
  for (const Operator* child : op.children()) {
    ExplainRec(*child, depth + 1, out);
  }
}
}  // namespace

std::string ExplainOperatorTree(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

}  // namespace rfid
