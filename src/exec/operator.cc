#include "exec/operator.h"

#include <algorithm>

#include "common/fault.h"
#include "common/string_util.h"

namespace rfid {

void Operator::BindExecContext(ExecContext* ctx) {
  ctx_ = ctx;
  // Children are owned (non-const) by this operator; children() only
  // exposes them const for plan printing.
  for (const Operator* child : children()) {
    const_cast<Operator*>(child)->BindExecContext(ctx);
  }
}

Status Operator::Open() {
  if (ctx_ == nullptr) BindExecContext(ExecContext::Default());
  // Mark open before running OpenImpl so Close() unwinds a partial Open.
  open_ = true;
  rows_produced_ = 0;
  RFID_FAULT_POINT(name() + ".Open");
  cancel_checks_.fetch_add(1, std::memory_order_relaxed);
  RFID_RETURN_IF_ERROR(ctx_->CheckCancelled());
  return OpenImpl();
}

Result<bool> Operator::Next(Row* row) {
  cancel_checks_.fetch_add(1, std::memory_order_relaxed);
  RFID_RETURN_IF_ERROR(exec_context()->CheckCancelled());
  RFID_FAULT_POINT(name() + ".Next");
  return NextImpl(row);
}

Result<bool> Operator::NextBatch(RowBatch* batch) {
  cancel_checks_.fetch_add(1, std::memory_order_relaxed);
  RFID_RETURN_IF_ERROR(exec_context()->CheckCancelled());
  RFID_FAULT_POINT(name() + ".NextBatch");
  if (batch->num_columns() != output_desc_.num_fields()) {
    batch->ResetColumns(output_desc_.num_fields());
  } else {
    batch->Clear();
  }
  return NextBatchImpl(batch);
}

Result<bool> Operator::NextBatchImpl(RowBatch* batch) {
  // Compatibility shim: adapts a row-at-a-time operator to the batch
  // protocol. Calls NextImpl directly — the per-batch guard already ran.
  Row row;
  while (!batch->full()) {
    RFID_ASSIGN_OR_RETURN(bool has, NextImpl(&row));
    if (!has) break;
    batch->AppendRow(std::move(row));
  }
  return !batch->empty();
}

void Operator::Close() {
  if (!open_) return;
  open_ = false;
  CloseImpl();
  uint64_t charged = mem_charged_.exchange(0, std::memory_order_relaxed);
  if (charged > 0) exec_context()->ReleaseMemory(charged);
}

Status Operator::ChargeMemory(uint64_t bytes) {
  // No fault point here when called off-thread: injectors are
  // thread-local and workers never carry one, so FaultInjectionActive()
  // short-circuits the site on worker threads.
  RFID_FAULT_POINT(name() + ".Alloc");
  RFID_RETURN_IF_ERROR(exec_context()->ChargeMemory(bytes));
  uint64_t charged =
      mem_charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = mem_peak_.load(std::memory_order_relaxed);
  while (charged > peak &&
         !mem_peak_.compare_exchange_weak(peak, charged,
                                          std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void Operator::ReleaseMemory(uint64_t bytes) {
  if (bytes == 0) return;
  mem_charged_.fetch_sub(bytes, std::memory_order_relaxed);
  exec_context()->ReleaseMemory(bytes);
}

Status Operator::TickCancel() {
  cancel_checks_.fetch_add(1, std::memory_order_relaxed);
  return exec_context()->CheckCancelled();
}

Status Operator::DrainChildAccounted(Operator* child, std::vector<Row>* out) {
  RFID_RETURN_IF_ERROR(child->Open());
  if (VectorizedEnabled()) {
    RowBatch batch;
    while (true) {
      RFID_ASSIGN_OR_RETURN(bool has, child->NextBatch(&batch));
      if (!has) break;
      uint64_t bytes = 0;
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        Row row;
        batch.MoveRowInto(i, &row);
        bytes += ApproxRowBytes(row);
        out->push_back(std::move(row));
      }
      RFID_RETURN_IF_ERROR(ChargeMemory(bytes));
    }
  } else {
    Row row;
    while (true) {
      RFID_ASSIGN_OR_RETURN(bool has, child->Next(&row));
      if (!has) break;
      RFID_RETURN_IF_ERROR(ChargeMemory(ApproxRowBytes(row)));
      out->push_back(std::move(row));
    }
  }
  child->Close();
  return Status::OK();
}

namespace {

// Releases bytes charged directly against a context on scope exit (used
// for result-row accumulation, which no operator owns).
class ScopedContextCharge {
 public:
  explicit ScopedContextCharge(ExecContext* ctx) : ctx_(ctx) {}
  ~ScopedContextCharge() {
    if (bytes_ > 0) ctx_->ReleaseMemory(bytes_);
  }
  Status Add(uint64_t bytes) {
    RFID_RETURN_IF_ERROR(ctx_->ChargeMemory(bytes));
    bytes_ += bytes;
    return Status::OK();
  }

 private:
  ExecContext* ctx_;
  uint64_t bytes_ = 0;
};

}  // namespace

Result<std::vector<Row>> CollectRows(Operator* op, ExecContext* ctx) {
  if (ctx != nullptr) op->BindExecContext(ctx);
  OperatorTreeCloser closer(op);
  RFID_RETURN_IF_ERROR(op->Open());
  ExecContext* ec = op->exec_context();
  ScopedContextCharge charge(ec);
  const uint64_t max_rows = ec->limits().max_output_rows;
  std::vector<Row> rows;
  if (VectorizedEnabled()) {
    RowBatch batch;
    while (true) {
      RFID_ASSIGN_OR_RETURN(bool has, op->NextBatch(&batch));
      if (!has) break;
      uint64_t bytes = 0;
      for (size_t i = 0; i < batch.num_rows(); ++i) {
        if (max_rows > 0 && rows.size() >= max_rows) {
          return Status::ResourceExhausted(
              StrFormat("query output exceeds the row limit (%llu rows)",
                        static_cast<unsigned long long>(max_rows)));
        }
        Row row;
        batch.MoveRowInto(i, &row);
        bytes += ApproxRowBytes(row);
        rows.push_back(std::move(row));
      }
      RFID_RETURN_IF_ERROR(charge.Add(bytes));
    }
    return rows;
  }
  Row row;
  while (true) {
    RFID_ASSIGN_OR_RETURN(bool has, op->Next(&row));
    if (!has) break;
    if (max_rows > 0 && rows.size() >= max_rows) {
      return Status::ResourceExhausted(
          StrFormat("query output exceeds the row limit (%llu rows)",
                    static_cast<unsigned long long>(max_rows)));
    }
    RFID_RETURN_IF_ERROR(charge.Add(ApproxRowBytes(row)));
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {
void ExplainRec(const Operator& op, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(op.name());
  std::string detail = op.detail();
  if (!detail.empty()) {
    out->append(" [");
    out->append(detail);
    out->append("]");
  }
  out->append(" rows=");
  out->append(std::to_string(op.rows_produced()));
  if (op.memory_peak_bytes() > 0) {
    out->append(" mem=");
    out->append(std::to_string(op.memory_peak_bytes()));
  }
  out->append(" checks=");
  out->append(std::to_string(op.cancel_checks()));
  out->append(" dop=");
  out->append(std::to_string(op.dop()));
  // batch=0 marks a row-at-a-time run; otherwise the batch capacity the
  // vectorized engine was configured with.
  out->append(" batch=");
  out->append(std::to_string(VectorizedEnabled() ? BatchCapacity() : 0));
  out->append("\n");
  for (const Operator* child : op.children()) {
    ExplainRec(*child, depth + 1, out);
  }
}
}  // namespace

std::string ExplainOperatorTree(const Operator& root) {
  std::string out;
  ExplainRec(root, 0, &out);
  return out;
}

int MaxTreeDop(const Operator& root) {
  int dop = root.dop();
  for (const Operator* child : root.children()) {
    dop = std::max(dop, MaxTreeDop(*child));
  }
  return dop;
}

}  // namespace rfid
