#include "exec/columnar_scan.h"

#include <algorithm>
#include <bit>

#include "common/simd.h"

namespace rfid {
namespace {

bool IsIntFamilyType(DataType t) {
  return t == DataType::kBool || t == DataType::kInt64 ||
         t == DataType::kTimestamp || t == DataType::kInterval;
}

/// Mirrors CompareEntryToValue (row_batch.cc), which mirrors
/// Value::Compare: string compare when the cell is a string, the double
/// path when either side is DOUBLE, raw int64 otherwise. Callers
/// guarantee comparability, exactly as with Value::Compare.
int CompareCell(DataType tag, int64_t data, const std::string* str,
                const Value& lit) {
  if (tag == DataType::kString) {
    return str->compare(lit.string_value());
  }
  if (tag == DataType::kDouble || lit.type() == DataType::kDouble) {
    double x = tag == DataType::kDouble ? std::bit_cast<double>(data)
                                        : static_cast<double>(data);
    double y = lit.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  int64_t y = lit.int64_value();
  return data < y ? -1 : (data > y ? 1 : 0);
}

bool PassCmp(int c, BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default: return false;
  }
}

simd::Cmp ToSimdCmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return simd::Cmp::kEq;
    case BinaryOp::kNe: return simd::Cmp::kNe;
    case BinaryOp::kLt: return simd::Cmp::kLt;
    case BinaryOp::kLe: return simd::Cmp::kLe;
    case BinaryOp::kGt: return simd::Cmp::kGt;
    default: return simd::Cmp::kGe;
  }
}

/// Dense int64 lane (no NULLs) vs an int-family literal: the SIMD fast
/// path. Replaces *sel with the passing indices.
void FilterDenseInt64(const int64_t* lane, uint32_t prefix,
                      const SlotLiteralCmp& c, std::vector<uint32_t>* sel,
                      ColumnarScanScratch* scratch) {
  scratch->tmp.resize(prefix);
  size_t n = simd::FilterInt64(lane, prefix, ToSimdCmp(c.op),
                               c.literal.int64_value(), 0,
                               scratch->tmp.data());
  scratch->tmp.resize(n);
  sel->swap(scratch->tmp);
}

/// Sequentially unpacks deltas [0, n) of a bit-packed column.
void UnpackAll(const BitPackColumn& b, size_t n, int64_t* out) {
  if (b.width == 0) {
    std::fill(out, out + n, b.base);
    return;
  }
  const uint64_t mask = (uint64_t{1} << b.width) - 1;
  size_t bit = 0;
  for (size_t i = 0; i < n; ++i, bit += b.width) {
    uint64_t delta = b.words[bit >> 6] >> (bit & 63);
    const unsigned used = 64 - static_cast<unsigned>(bit & 63);
    if (used < b.width) delta |= b.words[(bit >> 6) + 1] << used;
    out[i] = static_cast<int64_t>(static_cast<uint64_t>(b.base) +
                                  (delta & mask));
  }
}

void FilterPlain(const PlainColumn& p, const ZoneMap& zone,
                 const SlotLiteralCmp& c, uint32_t prefix,
                 std::vector<uint32_t>* sel, ColumnarScanScratch* scratch) {
  // Dense selection over a homogeneous NULL-free int64-family lane: the
  // zone map proves every tag matches (prunable => no mixed tags), so
  // the payload lane compares as raw int64s.
  if (sel->size() == prefix && zone.prunable && zone.null_count == 0 &&
      IsIntFamilyType(zone.min.type()) &&
      IsIntFamilyType(c.literal.type())) {
    FilterDenseInt64(p.data.data(), prefix, c, sel, scratch);
    return;
  }
  size_t kept = 0;
  for (uint32_t idx : *sel) {
    const DataType t = static_cast<DataType>(p.tags[idx]);
    if (t == DataType::kNull) continue;
    const std::string* str = t == DataType::kString ? &p.strs[idx] : nullptr;
    if (PassCmp(CompareCell(t, p.data[idx], str, c.literal), c.op)) {
      (*sel)[kept++] = idx;
    }
  }
  sel->resize(kept);
}

void FilterRle(const RleColumn& r, const SlotLiteralCmp& c,
               std::vector<uint32_t>* sel) {
  // One verdict per run, carried across every selected offset in the
  // run. Both the runs and the selection are ascending, so a single
  // forward walk suffices.
  size_t run = 0;
  int verdict = -1;  // -1: not yet evaluated for the current run
  size_t kept = 0;
  for (uint32_t idx : *sel) {
    while (r.ends[run] <= idx) {
      ++run;
      verdict = -1;
    }
    if (verdict < 0) {
      const DataType t = static_cast<DataType>(r.tags[run]);
      if (t == DataType::kNull) {
        verdict = 0;
      } else {
        const std::string* str =
            t == DataType::kString ? &r.strs[run] : nullptr;
        verdict =
            PassCmp(CompareCell(t, r.data[run], str, c.literal), c.op) ? 1 : 0;
      }
    }
    if (verdict == 1) (*sel)[kept++] = idx;
  }
  sel->resize(kept);
}

void FilterDict(const DictColumn& d, const SlotLiteralCmp& c,
                std::vector<uint32_t>* sel) {
  constexpr uint32_t kNull = DictColumn::kNullCode;
  if (c.literal.type() == DataType::kString) {
    // Dictionary-compare before decode: the dictionary is sorted in
    // Value::Compare order for strings, so one pair of binary searches
    // turns the predicate into integer compares on the code lane.
    const std::string& lit = c.literal.string_value();
    const uint32_t lb = static_cast<uint32_t>(
        std::lower_bound(d.dict.begin(), d.dict.end(), lit) - d.dict.begin());
    const uint32_t ub = static_cast<uint32_t>(
        std::upper_bound(d.dict.begin(), d.dict.end(), lit) - d.dict.begin());
    size_t kept = 0;
    for (uint32_t idx : *sel) {
      const uint32_t code = d.codes[idx];
      bool pass = false;
      switch (c.op) {
        // kNullCode is UINT32_MAX, so strict upper bounds (code < x)
        // exclude NULL for free; lower bounds check it explicitly.
        case BinaryOp::kEq: pass = code >= lb && code < ub; break;
        case BinaryOp::kNe: pass = code != kNull && (code < lb || code >= ub); break;
        case BinaryOp::kLt: pass = code < lb; break;
        case BinaryOp::kLe: pass = code < ub; break;
        case BinaryOp::kGt: pass = code != kNull && code >= ub; break;
        case BinaryOp::kGe: pass = code != kNull && code >= lb; break;
        default: break;
      }
      if (pass) (*sel)[kept++] = idx;
    }
    sel->resize(kept);
    return;
  }
  // Non-string literal against a string dictionary: unreachable from
  // bound plans (the binder type-checks comparisons); mirror the
  // entry-compare path for parity with the vectorized engine.
  size_t kept = 0;
  for (uint32_t idx : *sel) {
    const uint32_t code = d.codes[idx];
    if (code == kNull) continue;
    if (PassCmp(CompareCell(DataType::kString, 0, &d.dict[code], c.literal),
                c.op)) {
      (*sel)[kept++] = idx;
    }
  }
  sel->resize(kept);
}

void FilterBitPack(const BitPackColumn& b, const SlotLiteralCmp& c,
                   uint32_t prefix, std::vector<uint32_t>* sel,
                   ColumnarScanScratch* scratch) {
  if (b.nulls.empty() && IsIntFamilyType(c.literal.type()) &&
      sel->size() == prefix) {
    // Bulk-unpack into a dense lane, then the SIMD kernel.
    scratch->lane.resize(prefix);
    UnpackAll(b, prefix, scratch->lane.data());
    FilterDenseInt64(scratch->lane.data(), prefix, c, sel, scratch);
    return;
  }
  const DataType tag = static_cast<DataType>(b.tag);
  size_t kept = 0;
  for (uint32_t idx : *sel) {
    if (BitPackIsNull(b, idx)) continue;
    if (PassCmp(CompareCell(tag, BitPackValueAt(b, idx), nullptr, c.literal),
                c.op)) {
      (*sel)[kept++] = idx;
    }
  }
  sel->resize(kept);
}

}  // namespace

bool MatchSlotLiteralCmp(const ExprPtr& conjunct, SlotLiteralCmp* out,
                         bool* null_literal) {
  *null_literal = false;
  if (conjunct == nullptr || conjunct->kind != ExprKind::kBinary ||
      !IsComparisonOp(conjunct->op) || conjunct->children.size() != 2) {
    return false;
  }
  const Expr& l = *conjunct->children[0];
  const Expr& r = *conjunct->children[1];
  if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kLiteral) {
    if (l.slot < 0) return false;
    out->slot = l.slot;
    out->op = conjunct->op;
    out->literal = r.value;
  } else if (l.kind == ExprKind::kLiteral && r.kind == ExprKind::kColumnRef) {
    if (r.slot < 0) return false;
    out->slot = r.slot;
    out->op = SwapComparison(conjunct->op);
    out->literal = l.value;
  } else {
    return false;
  }
  if (out->literal.is_null()) {
    *null_literal = true;
    return false;
  }
  return true;
}

void ColumnarScanFilter::Init(const ExprPtr& predicate) {
  sargable_.clear();
  residual_ = nullptr;
  never_true_ = false;
  std::vector<ExprPtr> rest;
  for (const ExprPtr& conj : SplitConjuncts(predicate)) {
    SlotLiteralCmp c;
    bool null_literal = false;
    if (MatchSlotLiteralCmp(conj, &c, &null_literal)) {
      sargable_.push_back(std::move(c));
    } else if (null_literal) {
      // `slot CMP NULL` is NULL for every row, so the AND never holds.
      never_true_ = true;
    } else {
      rest.push_back(conj);
    }
  }
  residual_ = CombineConjuncts(rest);
}

bool ColumnarScanFilter::CanSkip(const EncodedSegment& seg) const {
  for (const SlotLiteralCmp& c : sargable_) {
    if (c.slot < 0 || static_cast<size_t>(c.slot) >= seg.zones.size()) {
      continue;
    }
    const ZoneMap& z = seg.zones[c.slot];
    // An all-NULL column fails every comparison outright.
    if (z.null_count == seg.num_rows) return true;
    if (!z.prunable) continue;
    if (!TypesComparable(z.min.type(), c.literal.type())) continue;
    const int cmin = z.min.Compare(c.literal);
    const int cmax = z.max.Compare(c.literal);
    switch (c.op) {
      case BinaryOp::kEq:
        if (cmin > 0 || cmax < 0) return true;
        break;
      case BinaryOp::kNe:
        // Every non-null value equals the literal; NULLs fail too.
        if (cmin == 0 && cmax == 0) return true;
        break;
      case BinaryOp::kLt:
        if (cmin >= 0) return true;
        break;
      case BinaryOp::kLe:
        if (cmin > 0) return true;
        break;
      case BinaryOp::kGt:
        if (cmax <= 0) return true;
        break;
      case BinaryOp::kGe:
        if (cmax < 0) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

void ColumnarScanFilter::FilterSargable(const EncodedSegment& seg,
                                        uint32_t prefix,
                                        std::vector<uint32_t>* sel,
                                        ColumnarScanScratch* scratch) const {
  for (const SlotLiteralCmp& c : sargable_) {
    if (sel->empty()) return;
    if (c.slot < 0 || static_cast<size_t>(c.slot) >= seg.columns.size()) {
      continue;  // defensive; scan slots always cover the schema
    }
    const EncodedColumn& col = seg.columns[c.slot];
    switch (col.encoding()) {
      case ColumnEncoding::kPlain:
        FilterPlain(*col.plain(), seg.zones[c.slot], c, prefix, sel, scratch);
        break;
      case ColumnEncoding::kRle:
        FilterRle(*col.rle(), c, sel);
        break;
      case ColumnEncoding::kDict:
        FilterDict(*col.dict(), c, sel);
        break;
      case ColumnEncoding::kBitPack:
        FilterBitPack(*col.bitpack(), c, prefix, sel, scratch);
        break;
    }
  }
}

}  // namespace rfid
