#include "exec/scan.h"

#include "common/string_util.h"

namespace rfid {

TableScanOp::TableScanOp(const Table* table, std::string alias)
    : Operator(RowDesc::FromSchema(table->schema(), alias)),
      table_(table),
      alias_(std::move(alias)) {}

Status TableScanOp::OpenImpl() {
  pos_ = 0;
  limit_ = table_->visible_rows();
  if (const SnapshotPtr& snap = exec_context()->snapshot()) {
    if (const TableSnapshot* ts = snap->ForTable(table_)) {
      limit_ = ts->watermark;
    }
  }
  return Status::OK();
}

Result<bool> TableScanOp::NextImpl(Row* row) {
  if (pos_ >= limit_) return false;
  *row = table_->row(pos_++);
  ++rows_produced_;
  return true;
}

std::string TableScanOp::detail() const {
  if (EqualsIgnoreCase(alias_, table_->name())) return table_->name();
  return table_->name() + " AS " + alias_;
}

IndexRangeScanOp::IndexRangeScanOp(const Table* table, const SortedIndex* index,
                                   std::string alias, std::optional<Bound> lo,
                                   std::optional<Bound> hi)
    : Operator(RowDesc::FromSchema(table->schema(), alias)),
      table_(table),
      index_(index),
      alias_(std::move(alias)),
      lo_(std::move(lo)),
      hi_(std::move(hi)) {}

Status IndexRangeScanOp::OpenImpl() {
  const TableSnapshot* ts = nullptr;
  if (const SnapshotPtr& snap = exec_context()->snapshot()) {
    ts = snap->ForTable(table_);
  }
  if (ts != nullptr) {
    // Pinned runs may include entries from batches published after the
    // watermark was captured; RangeScanRuns filters those out.
    SortedIndex::RunSetPtr runs = ts->RunsFor(index_);
    if (runs == nullptr) runs = index_->Pin();
    row_ids_ = SortedIndex::RangeScanRuns(*runs, lo_, hi_, ts->watermark);
  } else {
    row_ids_ = index_->RangeScan(lo_, hi_);
  }
  pos_ = 0;
  // The qualifying row-id list is the scan's only materialized state.
  return ChargeMemory(row_ids_.capacity() * sizeof(uint32_t));
}

Result<bool> IndexRangeScanOp::NextImpl(Row* row) {
  if (pos_ >= row_ids_.size()) return false;
  *row = table_->row(row_ids_[pos_++]);
  ++rows_produced_;
  return true;
}

void IndexRangeScanOp::CloseImpl() {
  row_ids_.clear();
  row_ids_.shrink_to_fit();
}

std::string IndexRangeScanOp::detail() const {
  std::string out = table_->name();
  if (!EqualsIgnoreCase(alias_, table_->name())) out += " AS " + alias_;
  out += " ON " + index_->column_name();
  if (lo_.has_value()) {
    out += StrFormat(" %s %s", lo_->inclusive ? ">=" : ">",
                     lo_->value.ToString().c_str());
  }
  if (hi_.has_value()) {
    out += StrFormat(" %s %s", hi_->inclusive ? "<=" : "<",
                     hi_->value.ToString().c_str());
  }
  return out;
}

}  // namespace rfid
