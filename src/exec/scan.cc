#include "exec/scan.h"

#include <algorithm>
#include <atomic>

#include "common/fault.h"
#include "common/string_util.h"
#include "exec/parallel.h"
#include "verify/bytecode_verifier.h"

namespace rfid {
namespace {

static_assert(kScanMorselRows == RowStore::kSegmentRows,
              "morsel index must equal segment index for the columnar path");

uint8_t EncodingMask(const EncodedSegment& seg) {
  uint8_t m = 0;
  for (const EncodedColumn& c : seg.columns) {
    m = static_cast<uint8_t>(m | (1u << static_cast<unsigned>(c.encoding())));
  }
  return m;
}

/// EXPLAIN suffix, e.g. " [segments: skipped=3/5 enc=dict,rle]".
std::string SegmentDetail(uint64_t skipped, uint64_t total, uint8_t mask) {
  std::string out =
      StrFormat(" [segments: skipped=%llu/%llu",
                static_cast<unsigned long long>(skipped),
                static_cast<unsigned long long>(total));
  if (mask != 0) {
    out += " enc=";
    bool first = true;
    for (unsigned e = 0; e < 4; ++e) {
      if (((mask >> e) & 1u) == 0) continue;
      if (!first) out += ",";
      out += ColumnEncodingName(static_cast<ColumnEncoding>(e));
      first = false;
    }
  }
  out += "]";
  return out;
}

/// Deduplicated union of the slots a filter program reads.
std::vector<int> ReferencedSlots(const FilterProgram& program) {
  std::vector<int> slots;
  for (const ExprProgram& p : program.conjuncts()) {
    slots.insert(slots.end(), p.referenced_slots().begin(),
                 p.referenced_slots().end());
  }
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

}  // namespace

TableScanOp::TableScanOp(const Table* table, std::string alias,
                         ExprPtr predicate)
    : Operator(RowDesc::FromSchema(table->schema(), alias)),
      table_(table),
      alias_(std::move(alias)),
      predicate_(std::move(predicate)),
      in_batch_(table->schema().num_columns()) {}

Status TableScanOp::OpenImpl() {
  pos_ = 0;
  limit_ = table_->visible_rows();
  if (const SnapshotPtr& snap = exec_context()->snapshot()) {
    if (const TableSnapshot* ts = snap->ForTable(table_)) {
      limit_ = ts->watermark;
    }
  }
  drain_seg_.reset();
  drain_sel_.clear();
  drain_pos_ = 0;
  row_sel_.clear();
  row_sel_pos_ = 0;
  in_bytes_ = 0;
  in_batch_.ResetColumns(table_->schema().num_columns());
  seg_total_ = seg_skipped_ = seg_scanned_ = 0;
  enc_mask_ = 0;
  full_program_.reset();
  residual_program_.reset();
  residual_slots_.clear();
  use_columnar_ = ColumnarEnabled();
  cfilter_.Init(predicate_);
  // Zone-map skipping follows the ChooseDop rule: never while a fault
  // injector is installed, so fail-at-step sweeps keep their exact
  // serial step ordering.
  allow_skip_ = use_columnar_ && !cfilter_.sargable().empty() &&
                !FaultInjectionActive();
  if (predicate_ != nullptr && cfilter_.never_true()) {
    limit_ = pos_;  // comparison against NULL: nothing can pass
  }
  if (predicate_ != nullptr && VectorizedEnabled()) {
    RFID_ASSIGN_OR_RETURN(
        std::optional<FilterProgram> compiled,
        CompileVerifiedFilter(*predicate_, output_desc(), "TableScan"));
    if (compiled.has_value()) full_program_.emplace(std::move(*compiled));
    if (use_columnar_ && cfilter_.residual() != nullptr) {
      RFID_ASSIGN_OR_RETURN(std::optional<FilterProgram> res,
                            CompileVerifiedFilter(*cfilter_.residual(),
                                                  output_desc(),
                                                  "TableScan.residual"));
      if (res.has_value()) {
        residual_program_.emplace(std::move(*res));
        residual_slots_ = ReferencedSlots(*residual_program_);
      }
    }
  }
  return Status::OK();
}

Result<bool> TableScanOp::NextImpl(Row* row) {
  while (pos_ < limit_) {
    // Segment boundary: consult the zone maps before touching rows.
    if (allow_skip_ && (pos_ & (RowStore::kSegmentRows - 1)) == 0) {
      if (EncodedSegmentPtr seg =
              table_->columnar().Get(pos_ >> RowStore::kSegmentBits)) {
        ++seg_total_;
        enc_mask_ |= EncodingMask(*seg);
        if (cfilter_.CanSkip(*seg)) {
          ++seg_skipped_;
          AddColumnarSkipped(1);
          pos_ = std::min<uint64_t>(limit_, pos_ + RowStore::kSegmentRows);
          continue;
        }
      }
    }
    const Row& r = table_->row(pos_++);
    if (predicate_ != nullptr) {
      RFID_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, r));
      if (!pass) continue;
    }
    *row = r;
    ++rows_produced_;
    return true;
  }
  return false;
}

Status TableScanOp::ApplyResidual(const EncodedSegment& seg, uint32_t prefix) {
  if (cfilter_.residual() == nullptr || drain_sel_.empty()) {
    return Status::OK();
  }
  const uint64_t base = seg.base_row;
  if (residual_program_.has_value()) {
    // Positional batch holding only the slots the residual reads, filled
    // from the row store at the surviving offsets.
    for (int slot : residual_slots_) {
      ColumnVector& cv = in_batch_.col(static_cast<size_t>(slot));
      cv.Reset(prefix);
      for (uint32_t idx : drain_sel_) {
        cv.SetValue(idx, table_->row(base + idx)[static_cast<size_t>(slot)]);
      }
    }
    in_batch_.set_num_rows(prefix);
    residual_program_->Apply(in_batch_, &drain_sel_, &scratch_);
    in_batch_.Clear();
    return Status::OK();
  }
  size_t kept = 0;
  for (uint32_t idx : drain_sel_) {
    RFID_ASSIGN_OR_RETURN(
        bool pass, EvalPredicate(*cfilter_.residual(), table_->row(base + idx)));
    if (pass) drain_sel_[kept++] = idx;
  }
  drain_sel_.resize(kept);
  return Status::OK();
}

Result<bool> TableScanOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full()) {
    // 1. Drain encoded-segment survivors (emitted from the row store —
    //    the encoded segment is a cache over the same immutable rows).
    if (drain_seg_ != nullptr) {
      const uint64_t base = drain_seg_->base_row;
      while (!batch->full() && drain_pos_ < drain_sel_.size()) {
        batch->AppendRow(table_->row(base + drain_sel_[drain_pos_++]));
      }
      if (drain_pos_ >= drain_sel_.size()) {
        drain_seg_.reset();
        drain_sel_.clear();
        drain_pos_ = 0;
      }
      continue;
    }
    // 2. Drain row-span survivors.
    if (row_sel_pos_ < row_sel_.size()) {
      batch->AppendGathered(in_batch_, row_sel_[row_sel_pos_++]);
      continue;
    }
    if (pos_ >= limit_) break;
    const uint64_t seg_base = pos_ & ~uint64_t{RowStore::kSegmentRows - 1};
    const uint64_t seg_end =
        std::min<uint64_t>(limit_, seg_base + RowStore::kSegmentRows);
    EncodedSegmentPtr seg;
    if (use_columnar_ && pos_ == seg_base) {
      seg = table_->columnar().Get(seg_base >> RowStore::kSegmentBits);
    }
    if (seg != nullptr) {
      ++seg_total_;
      enc_mask_ |= EncodingMask(*seg);
      if (allow_skip_ && cfilter_.CanSkip(*seg)) {
        ++seg_skipped_;
        AddColumnarSkipped(1);
        pos_ = seg_end;
        continue;
      }
      // Filter over the encoded columns; `prefix` may stop short of the
      // segment under an older snapshot watermark.
      const uint32_t prefix = static_cast<uint32_t>(seg_end - seg_base);
      drain_sel_.resize(prefix);
      for (uint32_t i = 0; i < prefix; ++i) drain_sel_[i] = i;
      if (predicate_ != nullptr) {
        cfilter_.FilterSargable(*seg, prefix, &drain_sel_, &cscratch_);
        RFID_RETURN_IF_ERROR(ApplyResidual(*seg, prefix));
      }
      ++seg_scanned_;
      AddColumnarScanned(1);
      drain_seg_ = std::move(seg);
      drain_pos_ = 0;
      pos_ = seg_end;
      continue;
    }
    // 3. Row-store span (hot tail / unencoded / columnar off), stopping
    //    at the segment boundary so the next iteration re-probes the
    //    directory.
    if (predicate_ == nullptr) {
      const uint64_t take = std::min<uint64_t>(
          seg_end - pos_, batch->capacity() - batch->num_rows());
      // Segment-aware walk: one segment lookup per run, not per row.
      table_->store().ForEachRow(
          pos_, pos_ + take, [batch](const Row& r) { batch->AppendRow(r); });
      pos_ += take;
      continue;
    }
    const uint64_t span_end =
        std::min<uint64_t>(seg_end, pos_ + in_batch_.capacity());
    in_batch_.Clear();
    table_->store().ForEachRow(
        pos_, span_end, [this](const Row& r) { in_batch_.AppendRow(r); });
    // The scratch batch is bounded by the batch capacity; recharge it to
    // this refill's footprint.
    ReleaseMemory(in_bytes_);
    in_bytes_ = 0;
    const uint64_t bytes = in_batch_.ApproxBytes();
    RFID_RETURN_IF_ERROR(ChargeMemory(bytes));
    in_bytes_ = bytes;
    const size_t n = in_batch_.num_rows();
    row_sel_.resize(n);
    for (size_t i = 0; i < n; ++i) row_sel_[i] = static_cast<uint32_t>(i);
    if (full_program_.has_value()) {
      full_program_->Apply(in_batch_, &row_sel_, &scratch_);
    } else {
      size_t kept = 0;
      for (size_t i = 0; i < n; ++i) {
        in_batch_.EmitRow(i, &tmp_row_);
        RFID_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, tmp_row_));
        if (pass) row_sel_[kept++] = static_cast<uint32_t>(i);
      }
      row_sel_.resize(kept);
    }
    row_sel_pos_ = 0;
    pos_ = span_end;
  }
  rows_produced_ += batch->num_rows();
  return !batch->empty();
}

void TableScanOp::CloseImpl() {
  drain_seg_.reset();
  drain_sel_.clear();
  drain_sel_.shrink_to_fit();
  drain_pos_ = 0;
  row_sel_.clear();
  row_sel_.shrink_to_fit();
  row_sel_pos_ = 0;
  in_batch_.ResetColumns(0);
  in_bytes_ = 0;
  scratch_ = ExprScratch();
  cscratch_ = ColumnarScanScratch();
}

std::string TableScanOp::detail() const {
  std::string out = table_->name();
  if (!EqualsIgnoreCase(alias_, table_->name())) out += " AS " + alias_;
  if (predicate_ != nullptr) out += " WHERE " + ExprToSql(predicate_);
  if (seg_total_ > 0) out += SegmentDetail(seg_skipped_, seg_total_, enc_mask_);
  return out;
}

ParallelTableScanOp::ParallelTableScanOp(const Table* table, std::string alias,
                                         ExprPtr predicate, int dop)
    : Operator(RowDesc::FromSchema(table->schema(), alias)),
      table_(table),
      alias_(std::move(alias)),
      predicate_(std::move(predicate)) {
  set_dop(dop);
}

Status ParallelTableScanOp::ApplyResidualWorker(uint64_t base, uint32_t prefix,
                                                std::vector<uint32_t>* sel,
                                                RowBatch* batch,
                                                ExprScratch* scratch) {
  if (cfilter_.residual() == nullptr || sel->empty()) return Status::OK();
  if (residual_program_.has_value()) {
    for (int slot : residual_slots_) {
      ColumnVector& cv = batch->col(static_cast<size_t>(slot));
      cv.Reset(prefix);
      for (uint32_t idx : *sel) {
        cv.SetValue(idx, table_->row(base + idx)[static_cast<size_t>(slot)]);
      }
    }
    batch->set_num_rows(prefix);
    residual_program_->Apply(*batch, sel, scratch);
    return Status::OK();
  }
  size_t kept = 0;
  for (uint32_t idx : *sel) {
    RFID_ASSIGN_OR_RETURN(
        bool pass, EvalPredicate(*cfilter_.residual(), table_->row(base + idx)));
    if (pass) (*sel)[kept++] = idx;
  }
  sel->resize(kept);
  return Status::OK();
}

Status ParallelTableScanOp::OpenImpl() {
  out_idx_ = 0;
  out_pos_ = 0;
  seg_total_ = seg_skipped_ = seg_scanned_ = 0;
  enc_mask_ = 0;
  uint64_t limit = table_->visible_rows();
  if (const SnapshotPtr& snap = exec_context()->snapshot()) {
    if (const TableSnapshot* ts = snap->ForTable(table_)) {
      limit = ts->watermark;
    }
  }
  cfilter_.Init(predicate_);
  if (predicate_ != nullptr && cfilter_.never_true()) {
    morsel_out_.clear();  // comparison against NULL: nothing can pass
    return Status::OK();
  }
  const bool use_columnar = ColumnarEnabled();
  // Same fault-injection rule as TableScanOp / ChooseDop.
  const bool allow_skip = use_columnar && !cfilter_.sargable().empty() &&
                          !FaultInjectionActive();
  residual_program_.reset();
  residual_slots_.clear();
  if (use_columnar && predicate_ != nullptr &&
      cfilter_.residual() != nullptr && VectorizedEnabled()) {
    RFID_ASSIGN_OR_RETURN(
        std::optional<FilterProgram> res,
        CompileVerifiedFilter(*cfilter_.residual(), output_desc(),
                              "ParallelTableScan.residual"));
    if (res.has_value()) {
      residual_program_.emplace(std::move(*res));
      residual_slots_ = ReferencedSlots(*residual_program_);
    }
  }
  MorselQueue queue(limit, kScanMorselRows);
  morsel_out_.assign(queue.num_morsels(), {});
  // Pin encoded segments and decide zone-map skips ahead of dispatch;
  // workers then never touch a skipped morsel.
  std::vector<EncodedSegmentPtr> segs;
  std::vector<uint8_t> skip;
  if (use_columnar && predicate_ != nullptr) {
    segs.assign(queue.num_morsels(), nullptr);
    skip.assign(queue.num_morsels(), 0);
    for (size_t m = 0; m < queue.num_morsels(); ++m) {
      segs[m] = table_->columnar().Get(m);
      if (segs[m] == nullptr) continue;
      ++seg_total_;
      enc_mask_ |= EncodingMask(*segs[m]);
      if (allow_skip && cfilter_.CanSkip(*segs[m])) {
        skip[m] = 1;
        ++seg_skipped_;
      }
    }
    if (seg_skipped_ > 0) AddColumnarSkipped(seg_skipped_);
  }
  std::vector<ColumnarScanScratch> cscratch(static_cast<size_t>(dop()));
  std::vector<ExprScratch> escratch(static_cast<size_t>(dop()));
  std::vector<RowBatch> wbatch;
  wbatch.reserve(static_cast<size_t>(dop()));
  for (int w = 0; w < dop(); ++w) {
    wbatch.emplace_back(table_->schema().num_columns());
  }
  std::atomic<uint64_t> scanned{0};
  Status st = ParallelRun(dop(), [&, this](int w) -> Status {
    uint64_t begin = 0, end = 0, morsel = 0;
    std::vector<uint32_t> sel;
    while (queue.Claim(&begin, &end, &morsel)) {
      RFID_RETURN_IF_ERROR(TickCancel());
      if (!skip.empty() && skip[morsel] != 0) continue;  // stays empty
      std::vector<Row> out;
      uint64_t bytes = 0;
      const EncodedSegment* seg =
          segs.empty() ? nullptr : segs[morsel].get();
      if (seg != nullptr) {
        // Morsels are segment-aligned, so begin == seg->base_row and the
        // morsel's row range is exactly the segment prefix below `limit`.
        const uint32_t prefix = static_cast<uint32_t>(end - begin);
        sel.resize(prefix);
        for (uint32_t i = 0; i < prefix; ++i) sel[i] = i;
        cfilter_.FilterSargable(*seg, prefix, &sel,
                                &cscratch[static_cast<size_t>(w)]);
        RFID_RETURN_IF_ERROR(ApplyResidualWorker(
            begin, prefix, &sel, &wbatch[static_cast<size_t>(w)],
            &escratch[static_cast<size_t>(w)]));
        scanned.fetch_add(1, std::memory_order_relaxed);
        out.reserve(sel.size());
        for (uint32_t idx : sel) {
          const Row& r = table_->row(begin + idx);
          bytes += ApproxRowBytes(r);
          out.push_back(r);
        }
      } else {
        for (uint64_t i = begin; i < end; ++i) {
          const Row& r = table_->row(i);
          if (predicate_ != nullptr) {
            RFID_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, r));
            if (!pass) continue;
          }
          bytes += ApproxRowBytes(r);
          out.push_back(r);
        }
      }
      RFID_RETURN_IF_ERROR(ChargeMemory(bytes));
      morsel_out_[morsel] = std::move(out);
    }
    return Status::OK();
  });
  seg_scanned_ = scanned.load(std::memory_order_relaxed);
  if (seg_scanned_ > 0) AddColumnarScanned(seg_scanned_);
  return st;
}

Result<bool> ParallelTableScanOp::NextImpl(Row* row) {
  while (out_idx_ < morsel_out_.size()) {
    std::vector<Row>& out = morsel_out_[out_idx_];
    if (out_pos_ < out.size()) {
      *row = std::move(out[out_pos_++]);
      ++rows_produced_;
      return true;
    }
    out.clear();
    out.shrink_to_fit();
    ++out_idx_;
    out_pos_ = 0;
  }
  return false;
}

void ParallelTableScanOp::CloseImpl() {
  morsel_out_.clear();
  morsel_out_.shrink_to_fit();
  residual_program_.reset();
  residual_slots_.clear();
}

std::string ParallelTableScanOp::detail() const {
  std::string out = table_->name();
  if (!EqualsIgnoreCase(alias_, table_->name())) out += " AS " + alias_;
  if (predicate_ != nullptr) out += " WHERE " + ExprToSql(predicate_);
  if (seg_total_ > 0) out += SegmentDetail(seg_skipped_, seg_total_, enc_mask_);
  return out;
}

IndexRangeScanOp::IndexRangeScanOp(const Table* table, const SortedIndex* index,
                                   std::string alias, std::optional<Bound> lo,
                                   std::optional<Bound> hi)
    : Operator(RowDesc::FromSchema(table->schema(), alias)),
      table_(table),
      index_(index),
      alias_(std::move(alias)),
      lo_(std::move(lo)),
      hi_(std::move(hi)) {}

Status IndexRangeScanOp::OpenImpl() {
  const TableSnapshot* ts = nullptr;
  if (const SnapshotPtr& snap = exec_context()->snapshot()) {
    ts = snap->ForTable(table_);
  }
  if (ts != nullptr) {
    // Pinned runs may include entries from batches published after the
    // watermark was captured; RangeScanRuns filters those out.
    SortedIndex::RunSetPtr runs = ts->RunsFor(index_);
    if (runs == nullptr) runs = index_->Pin();
    row_ids_ = SortedIndex::RangeScanRuns(*runs, lo_, hi_, ts->watermark);
  } else {
    row_ids_ = index_->RangeScan(lo_, hi_);
  }
  pos_ = 0;
  // The qualifying row-id list is the scan's only materialized state.
  return ChargeMemory(row_ids_.capacity() * sizeof(uint32_t));
}

Result<bool> IndexRangeScanOp::NextImpl(Row* row) {
  if (pos_ >= row_ids_.size()) return false;
  *row = table_->row(row_ids_[pos_++]);
  ++rows_produced_;
  return true;
}

Result<bool> IndexRangeScanOp::NextBatchImpl(RowBatch* batch) {
  while (pos_ < row_ids_.size() && !batch->full()) {
    batch->AppendRow(table_->row(row_ids_[pos_++]));
  }
  rows_produced_ += batch->num_rows();
  return !batch->empty();
}

void IndexRangeScanOp::CloseImpl() {
  row_ids_.clear();
  row_ids_.shrink_to_fit();
}

std::string IndexRangeScanOp::detail() const {
  std::string out = table_->name();
  if (!EqualsIgnoreCase(alias_, table_->name())) out += " AS " + alias_;
  out += " ON " + index_->column_name();
  if (lo_.has_value()) {
    out += StrFormat(" %s %s", lo_->inclusive ? ">=" : ">",
                     lo_->value.ToString().c_str());
  }
  if (hi_.has_value()) {
    out += StrFormat(" %s %s", hi_->inclusive ? "<=" : "<",
                     hi_->value.ToString().c_str());
  }
  return out;
}

}  // namespace rfid
