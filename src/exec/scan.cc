#include "exec/scan.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/parallel.h"

namespace rfid {

TableScanOp::TableScanOp(const Table* table, std::string alias)
    : Operator(RowDesc::FromSchema(table->schema(), alias)),
      table_(table),
      alias_(std::move(alias)) {}

Status TableScanOp::OpenImpl() {
  pos_ = 0;
  limit_ = table_->visible_rows();
  if (const SnapshotPtr& snap = exec_context()->snapshot()) {
    if (const TableSnapshot* ts = snap->ForTable(table_)) {
      limit_ = ts->watermark;
    }
  }
  return Status::OK();
}

Result<bool> TableScanOp::NextImpl(Row* row) {
  if (pos_ >= limit_) return false;
  *row = table_->row(pos_++);
  ++rows_produced_;
  return true;
}

Result<bool> TableScanOp::NextBatchImpl(RowBatch* batch) {
  const uint64_t end = std::min<uint64_t>(limit_, pos_ + batch->capacity());
  // Segment-aware walk: one segment lookup per run instead of per row.
  table_->store().ForEachRow(
      pos_, end, [batch](const Row& r) { batch->AppendRow(r); });
  rows_produced_ += end - pos_;
  pos_ = end;
  return !batch->empty();
}

std::string TableScanOp::detail() const {
  if (EqualsIgnoreCase(alias_, table_->name())) return table_->name();
  return table_->name() + " AS " + alias_;
}

ParallelTableScanOp::ParallelTableScanOp(const Table* table, std::string alias,
                                         ExprPtr predicate, int dop)
    : Operator(RowDesc::FromSchema(table->schema(), alias)),
      table_(table),
      alias_(std::move(alias)),
      predicate_(std::move(predicate)) {
  set_dop(dop);
}

Status ParallelTableScanOp::OpenImpl() {
  out_idx_ = 0;
  out_pos_ = 0;
  uint64_t limit = table_->visible_rows();
  if (const SnapshotPtr& snap = exec_context()->snapshot()) {
    if (const TableSnapshot* ts = snap->ForTable(table_)) {
      limit = ts->watermark;
    }
  }
  MorselQueue queue(limit, kScanMorselRows);
  morsel_out_.assign(queue.num_morsels(), {});
  return ParallelRun(dop(), [this, &queue](int) -> Status {
    uint64_t begin = 0, end = 0, morsel = 0;
    while (queue.Claim(&begin, &end, &morsel)) {
      RFID_RETURN_IF_ERROR(TickCancel());
      std::vector<Row> out;
      uint64_t bytes = 0;
      for (uint64_t i = begin; i < end; ++i) {
        const Row& r = table_->row(i);
        if (predicate_ != nullptr) {
          RFID_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, r));
          if (!pass) continue;
        }
        bytes += ApproxRowBytes(r);
        out.push_back(r);
      }
      RFID_RETURN_IF_ERROR(ChargeMemory(bytes));
      morsel_out_[morsel] = std::move(out);
    }
    return Status::OK();
  });
}

Result<bool> ParallelTableScanOp::NextImpl(Row* row) {
  while (out_idx_ < morsel_out_.size()) {
    std::vector<Row>& out = morsel_out_[out_idx_];
    if (out_pos_ < out.size()) {
      *row = std::move(out[out_pos_++]);
      ++rows_produced_;
      return true;
    }
    out.clear();
    out.shrink_to_fit();
    ++out_idx_;
    out_pos_ = 0;
  }
  return false;
}

void ParallelTableScanOp::CloseImpl() {
  morsel_out_.clear();
  morsel_out_.shrink_to_fit();
}

std::string ParallelTableScanOp::detail() const {
  std::string out = table_->name();
  if (!EqualsIgnoreCase(alias_, table_->name())) out += " AS " + alias_;
  if (predicate_ != nullptr) out += " WHERE " + ExprToSql(predicate_);
  return out;
}

IndexRangeScanOp::IndexRangeScanOp(const Table* table, const SortedIndex* index,
                                   std::string alias, std::optional<Bound> lo,
                                   std::optional<Bound> hi)
    : Operator(RowDesc::FromSchema(table->schema(), alias)),
      table_(table),
      index_(index),
      alias_(std::move(alias)),
      lo_(std::move(lo)),
      hi_(std::move(hi)) {}

Status IndexRangeScanOp::OpenImpl() {
  const TableSnapshot* ts = nullptr;
  if (const SnapshotPtr& snap = exec_context()->snapshot()) {
    ts = snap->ForTable(table_);
  }
  if (ts != nullptr) {
    // Pinned runs may include entries from batches published after the
    // watermark was captured; RangeScanRuns filters those out.
    SortedIndex::RunSetPtr runs = ts->RunsFor(index_);
    if (runs == nullptr) runs = index_->Pin();
    row_ids_ = SortedIndex::RangeScanRuns(*runs, lo_, hi_, ts->watermark);
  } else {
    row_ids_ = index_->RangeScan(lo_, hi_);
  }
  pos_ = 0;
  // The qualifying row-id list is the scan's only materialized state.
  return ChargeMemory(row_ids_.capacity() * sizeof(uint32_t));
}

Result<bool> IndexRangeScanOp::NextImpl(Row* row) {
  if (pos_ >= row_ids_.size()) return false;
  *row = table_->row(row_ids_[pos_++]);
  ++rows_produced_;
  return true;
}

Result<bool> IndexRangeScanOp::NextBatchImpl(RowBatch* batch) {
  while (pos_ < row_ids_.size() && !batch->full()) {
    batch->AppendRow(table_->row(row_ids_[pos_++]));
  }
  rows_produced_ += batch->num_rows();
  return !batch->empty();
}

void IndexRangeScanOp::CloseImpl() {
  row_ids_.clear();
  row_ids_.shrink_to_fit();
}

std::string IndexRangeScanOp::detail() const {
  std::string out = table_->name();
  if (!EqualsIgnoreCase(alias_, table_->name())) out += " AS " + alias_;
  out += " ON " + index_->column_name();
  if (lo_.has_value()) {
    out += StrFormat(" %s %s", lo_->inclusive ? ">=" : ">",
                     lo_->value.ToString().c_str());
  }
  if (hi_.has_value()) {
    out += StrFormat(" %s %s", hi_->inclusive ? "<=" : "<",
                     hi_->value.ToString().c_str());
  }
  return out;
}

}  // namespace rfid
