// Hash join (inner and left-semi). The build side is fully materialized
// into a hash table on Open; the probe side streams, so probe-side
// ordering is preserved — a property the planner exploits to avoid
// re-sorting sequence data after joining reference tables.
#ifndef RFID_EXEC_HASH_JOIN_H_
#define RFID_EXEC_HASH_JOIN_H_

#include <unordered_map>

#include "exec/operator.h"

namespace rfid {

enum class JoinType {
  kInner,
  kLeftSemi,  // emit probe row if at least one build match (dedup semantics)
};

/// Output row layout: probe fields followed by build fields (kInner), or
/// probe fields only (kLeftSemi).
///
/// With dop > 1 the join runs partitioned: build rows are split by key
/// hash into dop partitions whose hash tables are built in parallel (one
/// worker per partition, insertion order within a partition preserved),
/// and the probe side is materialized, cut into contiguous chunks, and
/// probed in parallel into per-chunk output buffers streamed in chunk
/// order. All rows of a key land in one partition and per-bucket order
/// matches build-input order, so match emission order — and therefore the
/// full output — is bit-identical to the serial streaming join.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr probe, OperatorPtr build,
             std::vector<size_t> probe_key_slots,
             std::vector<size_t> build_key_slots, JoinType type, int dop = 1);

  std::string name() const override {
    return type_ == JoinType::kInner ? "HashJoin" : "HashSemiJoin";
  }
  std::string detail() const override;
  std::vector<const Operator*> children() const override {
    return {probe_.get(), build_.get()};
  }

  const std::vector<size_t>& probe_key_slots() const { return probe_key_slots_; }
  const std::vector<size_t>& build_key_slots() const { return build_key_slots_; }
  JoinType join_type() const { return type_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  using HashTable =
      std::unordered_map<std::vector<Value>, std::vector<Row>, RowHash, RowEq>;

  // True when any key slot is NULL (SQL joins never match on NULL keys).
  // Non-null keys are hashed and probed through the transparent
  // RowKeyView/BatchKeyView overloads of RowHash/RowEq, so lookups never
  // materialize a key vector; owned keys are built only when a build row
  // starts a new bucket.
  static bool HasNullKey(const Row& row, const std::vector<size_t>& slots);

  Status BuildTables();
  Status ParallelProbe();

  OperatorPtr probe_;
  OperatorPtr build_;
  std::vector<size_t> probe_key_slots_;
  std::vector<size_t> build_key_slots_;
  JoinType type_;

  // Partitioned by RowHash(key) % tables_.size(); one partition when
  // serial.
  std::vector<HashTable> tables_;
  // Iteration state for multi-match inner joins (serial streaming path).
  Row current_probe_;
  const std::vector<Row>* current_matches_ = nullptr;
  size_t match_pos_ = 0;
  // Parallel path: pre-probed output, streamed in chunk order.
  bool materialized_ = false;
  std::vector<std::vector<Row>> out_chunks_;
  size_t chunk_idx_ = 0;
  size_t chunk_pos_ = 0;
  // Serial batch-probe state: the current probe batch, the cursor into
  // it, and the row whose matches are being emitted.
  RowBatch probe_batch_;
  size_t probe_row_ = 0;
  size_t cur_row_ = 0;
  bool probe_done_ = false;
  uint64_t probe_bytes_ = 0;
};

}  // namespace rfid

#endif  // RFID_EXEC_HASH_JOIN_H_
