#include "exec/filter_project.h"

#include "verify/bytecode_verifier.h"

namespace rfid {

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : Operator(child->output_desc()),
      child_(std::move(child)),
      predicate_(std::move(predicate)) {}

Status FilterOp::OpenImpl() {
  sel_.clear();
  sel_pos_ = 0;
  in_done_ = false;
  in_bytes_ = 0;
  program_.reset();
  if (VectorizedEnabled()) {
    RFID_ASSIGN_OR_RETURN(
        std::optional<FilterProgram> compiled,
        CompileVerifiedFilter(*predicate_, child_->output_desc(), "Filter"));
    if (compiled.has_value()) program_.emplace(std::move(*compiled));
  }
  return child_->Open();
}

Result<bool> FilterOp::NextImpl(Row* row) {
  while (true) {
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    RFID_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *row));
    if (pass) {
      ++rows_produced_;
      return true;
    }
  }
}

Result<bool> FilterOp::NextBatchImpl(RowBatch* batch) {
  while (!batch->full()) {
    if (sel_pos_ >= sel_.size()) {
      if (in_done_) break;
      RFID_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in_batch_));
      if (!has) {
        in_done_ = true;
        break;
      }
      // The scratch batch is bounded by the batch capacity; recharge it
      // to this refill's footprint.
      ReleaseMemory(in_bytes_);
      in_bytes_ = 0;
      const uint64_t bytes = in_batch_.ApproxBytes();
      RFID_RETURN_IF_ERROR(ChargeMemory(bytes));
      in_bytes_ = bytes;
      const size_t n = in_batch_.num_rows();
      sel_.resize(n);
      for (size_t i = 0; i < n; ++i) sel_[i] = static_cast<uint32_t>(i);
      if (program_.has_value()) {
        program_->Apply(in_batch_, &sel_, &scratch_);
      } else {
        size_t kept = 0;
        for (size_t i = 0; i < n; ++i) {
          in_batch_.EmitRow(i, &tmp_row_);
          RFID_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, tmp_row_));
          if (pass) sel_[kept++] = static_cast<uint32_t>(i);
        }
        sel_.resize(kept);
      }
      sel_pos_ = 0;
      continue;
    }
    batch->AppendGathered(in_batch_, sel_[sel_pos_++]);
  }
  rows_produced_ += batch->num_rows();
  return !batch->empty();
}

void FilterOp::CloseImpl() {
  in_batch_.ResetColumns(0);
  sel_.clear();
  sel_.shrink_to_fit();
  scratch_ = ExprScratch();
  child_->Close();
}

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     RowDesc output_desc)
    : Operator(std::move(output_desc)),
      child_(std::move(child)),
      exprs_(std::move(exprs)) {}

Status ProjectOp::OpenImpl() {
  progs_.clear();
  in_bytes_ = 0;
  if (VectorizedEnabled()) {
    progs_.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      RFID_ASSIGN_OR_RETURN(
          std::optional<ExprProgram> compiled,
          CompileVerified(*e, child_->output_desc(), "Project"));
      progs_.emplace_back(std::move(compiled));
    }
  }
  return child_->Open();
}

Result<bool> ProjectOp::NextImpl(Row* row) {
  Row input;
  RFID_ASSIGN_OR_RETURN(bool has, child_->Next(&input));
  if (!has) return false;
  row->clear();
  row->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, input));
    row->push_back(std::move(v));
  }
  ++rows_produced_;
  return true;
}

Result<bool> ProjectOp::NextBatchImpl(RowBatch* batch) {
  if (progs_.empty()) return Operator::NextBatchImpl(batch);
  RFID_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in_batch_));
  if (!has) return false;
  ReleaseMemory(in_bytes_);
  in_bytes_ = 0;
  const uint64_t bytes = in_batch_.ApproxBytes();
  RFID_RETURN_IF_ERROR(ChargeMemory(bytes));
  in_bytes_ = bytes;
  const size_t n = in_batch_.num_rows();
  bool any_fallback = false;
  for (size_t e = 0; e < exprs_.size(); ++e) {
    if (progs_[e].has_value()) {
      progs_[e]->Eval(in_batch_, nullptr, 0, &batch->col(e), &scratch_);
    } else {
      batch->col(e).Reset(n);
      any_fallback = true;
    }
  }
  if (any_fallback) {
    // Row-interpreter fallback for the expressions the compiler
    // rejected; boxed once per row, shared across those expressions.
    for (size_t i = 0; i < n; ++i) {
      in_batch_.EmitRow(i, &tmp_row_);
      for (size_t e = 0; e < exprs_.size(); ++e) {
        if (progs_[e].has_value()) continue;
        RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*exprs_[e], tmp_row_));
        batch->col(e).SetValue(i, v);
      }
    }
  }
  batch->set_num_rows(n);
  rows_produced_ += n;
  return true;
}

void ProjectOp::CloseImpl() {
  in_batch_.ResetColumns(0);
  scratch_ = ExprScratch();
  child_->Close();
}

namespace {
RowDesc RenamedDesc(const RowDesc& in, const std::string& qualifier) {
  RowDesc out;
  for (const Field& f : in.fields()) {
    out.AddField(qualifier, f.name, f.type);
  }
  return out;
}
}  // namespace

RenameOp::RenameOp(OperatorPtr child, const std::string& qualifier)
    : Operator(RenamedDesc(child->output_desc(), qualifier)),
      child_(std::move(child)),
      qualifier_(qualifier) {}

std::string ProjectOp::detail() const {
  std::string out;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ExprToSql(exprs_[i]);
    if (out.size() > 120) {
      out += ", ...";
      break;
    }
  }
  return out;
}

}  // namespace rfid
