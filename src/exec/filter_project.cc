#include "exec/filter_project.h"

namespace rfid {

FilterOp::FilterOp(OperatorPtr child, ExprPtr predicate)
    : Operator(child->output_desc()),
      child_(std::move(child)),
      predicate_(std::move(predicate)) {}

Status FilterOp::OpenImpl() { return child_->Open(); }

Result<bool> FilterOp::NextImpl(Row* row) {
  while (true) {
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    RFID_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *row));
    if (pass) {
      ++rows_produced_;
      return true;
    }
  }
}

ProjectOp::ProjectOp(OperatorPtr child, std::vector<ExprPtr> exprs,
                     RowDesc output_desc)
    : Operator(std::move(output_desc)),
      child_(std::move(child)),
      exprs_(std::move(exprs)) {}

Status ProjectOp::OpenImpl() { return child_->Open(); }

Result<bool> ProjectOp::NextImpl(Row* row) {
  Row input;
  RFID_ASSIGN_OR_RETURN(bool has, child_->Next(&input));
  if (!has) return false;
  row->clear();
  row->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, input));
    row->push_back(std::move(v));
  }
  ++rows_produced_;
  return true;
}

namespace {
RowDesc RenamedDesc(const RowDesc& in, const std::string& qualifier) {
  RowDesc out;
  for (const Field& f : in.fields()) {
    out.AddField(qualifier, f.name, f.type);
  }
  return out;
}
}  // namespace

RenameOp::RenameOp(OperatorPtr child, const std::string& qualifier)
    : Operator(RenamedDesc(child->output_desc(), qualifier)),
      child_(std::move(child)),
      qualifier_(qualifier) {}

std::string ProjectOp::detail() const {
  std::string out;
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ExprToSql(exprs_[i]);
    if (out.size() > 120) {
      out += ", ...";
      break;
    }
  }
  return out;
}

}  // namespace rfid
