#include "exec/aggregate.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "common/string_util.h"
#include "expr/bytecode.h"
#include "verify/bytecode_verifier.h"

namespace rfid {

AggFunc AggFuncFromName(const std::string& lower_name) {
  if (lower_name == "count") return AggFunc::kCount;
  if (lower_name == "sum") return AggFunc::kSum;
  if (lower_name == "avg") return AggFunc::kAvg;
  if (lower_name == "min") return AggFunc::kMin;
  if (lower_name == "max") return AggFunc::kMax;
  assert(false && "unknown aggregate");
  return AggFunc::kCount;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<AggSpec> aggs, RowDesc output_desc)
    : Operator(std::move(output_desc)),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {}

// Rough footprint of one group's aggregation state (the per-agg vectors
// in State below), excluding key values and distinct sets, which are
// charged separately.
constexpr uint64_t kGroupStateBytes = 96;
constexpr uint64_t kDistinctEntryOverheadBytes = 32;

Status HashAggregateOp::OpenImpl() {
  pos_ = 0;
  results_.clear();

  struct State {
    std::vector<int64_t> counts;           // per agg: row/value count
    std::vector<double> sums;              // per agg: numeric running sum
    std::vector<int64_t> int_sums;         // exact integer sums
    std::vector<bool> sum_is_double;
    std::vector<Value> minmax;             // per agg: running min/max
    std::vector<std::unordered_set<Value, ValueHash>> distinct;
  };
  std::unordered_map<std::vector<Value>, State, RowHash, RowEq> groups;
  // First-seen order; pointers into the node-based map stay stable.
  std::vector<std::pair<const std::vector<Value>*, const State*>> group_order;

  auto init_state = [this](State* st) {
    st->counts.assign(aggs_.size(), 0);
    st->sums.assign(aggs_.size(), 0.0);
    st->int_sums.assign(aggs_.size(), 0);
    st->sum_is_double.assign(aggs_.size(), false);
    st->minmax.assign(aggs_.size(), Value::Null());
    st->distinct.resize(aggs_.size());
  };
  // Moves the key into the map only when it starts a new group; the
  // caller's key buffer survives (and is cleared for reuse) otherwise.
  auto touch_group = [&](std::vector<Value>&& key) -> Result<State*> {
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) {
      RFID_RETURN_IF_ERROR(ChargeMemory(
          2 * ApproxRowBytes(it->first) +
          kGroupStateBytes * std::max<uint64_t>(1, aggs_.size())));
      init_state(&it->second);
      group_order.emplace_back(&it->first, &it->second);
    }
    return &it->second;
  };
  // Folds one non-null (or COUNT(*)) argument into the group's state.
  // `arg` is consumed: min/max keep it by move instead of copying.
  auto update_agg = [this](State* st, size_t i, const AggSpec& spec,
                           Value&& arg) -> Status {
    if (spec.distinct) {
      if (!st->distinct[i].insert(arg).second) return Status::OK();
      RFID_RETURN_IF_ERROR(ChargeMemory(ApproxValueBytes(arg) +
                                        kDistinctEntryOverheadBytes));
    }
    switch (spec.func) {
      case AggFunc::kCount:
        ++st->counts[i];
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        ++st->counts[i];
        if (arg.type() == DataType::kDouble) st->sum_is_double[i] = true;
        st->sums[i] += arg.AsDouble();
        if (arg.type() == DataType::kInt64) {
          st->int_sums[i] += arg.int64_value();
        } else if (arg.type() == DataType::kInterval) {
          st->int_sums[i] += arg.interval_value();
        }
        break;
      case AggFunc::kMin:
        if (st->minmax[i].is_null() || arg.Compare(st->minmax[i]) < 0) {
          st->minmax[i] = std::move(arg);
        }
        break;
      case AggFunc::kMax:
        if (st->minmax[i].is_null() || arg.Compare(st->minmax[i]) > 0) {
          st->minmax[i] = std::move(arg);
        }
        break;
    }
    return Status::OK();
  };

  RFID_RETURN_IF_ERROR(child_->Open());
  std::vector<Value> key;
  if (VectorizedEnabled()) {
    // Batch-at-a-time consumption: group keys and aggregate arguments are
    // evaluated a column at a time by compiled programs (falling back to
    // the interpreter over a boxed row for expressions the compiler
    // rejects); grouping itself stays row-at-a-time because the hash
    // table needs one key per row either way.
    std::vector<std::optional<ExprProgram>> key_progs;
    std::vector<std::optional<ExprProgram>> arg_progs;
    for (const ExprPtr& g : group_exprs_) {
      RFID_ASSIGN_OR_RETURN(
          std::optional<ExprProgram> c,
          CompileVerified(*g, child_->output_desc(), "HashAggregate"));
      key_progs.emplace_back(std::move(c));
    }
    for (const AggSpec& spec : aggs_) {
      if (spec.arg == nullptr) {
        arg_progs.emplace_back(std::nullopt);
        continue;
      }
      RFID_ASSIGN_OR_RETURN(
          std::optional<ExprProgram> c,
          CompileVerified(*spec.arg, child_->output_desc(), "HashAggregate"));
      arg_progs.emplace_back(std::move(c));
    }
    RowBatch batch;
    ExprScratch scratch;
    std::vector<ColumnVector> key_cols(group_exprs_.size());
    std::vector<ColumnVector> arg_cols(aggs_.size());
    Row boxed;
    uint64_t scratch_bytes = 0;
    while (true) {
      RFID_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch));
      if (!has) break;
      ReleaseMemory(scratch_bytes);
      scratch_bytes = batch.ApproxBytes();
      RFID_RETURN_IF_ERROR(ChargeMemory(scratch_bytes));
      const size_t n = batch.num_rows();
      bool need_boxed = false;
      for (size_t g = 0; g < group_exprs_.size(); ++g) {
        if (key_progs[g].has_value()) {
          key_progs[g]->Eval(batch, nullptr, 0, &key_cols[g], &scratch);
        } else {
          need_boxed = true;
        }
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        if (aggs_[a].arg == nullptr) continue;
        if (arg_progs[a].has_value()) {
          arg_progs[a]->Eval(batch, nullptr, 0, &arg_cols[a], &scratch);
        } else {
          need_boxed = true;
        }
      }
      for (size_t i = 0; i < n; ++i) {
        if (need_boxed) batch.EmitRow(i, &boxed);
        key.clear();
        for (size_t g = 0; g < group_exprs_.size(); ++g) {
          if (key_progs[g].has_value()) {
            key.push_back(key_cols[g].ValueAt(i));
          } else {
            RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*group_exprs_[g], boxed));
            key.push_back(std::move(v));
          }
        }
        RFID_ASSIGN_OR_RETURN(State * st, touch_group(std::move(key)));
        for (size_t a = 0; a < aggs_.size(); ++a) {
          const AggSpec& spec = aggs_[a];
          Value arg;
          if (spec.arg != nullptr) {
            if (arg_progs[a].has_value()) {
              arg = arg_cols[a].ValueAt(i);
            } else {
              RFID_ASSIGN_OR_RETURN(arg, EvalExpr(*spec.arg, boxed));
            }
            if (arg.is_null()) continue;  // aggregates ignore NULL inputs
          }
          RFID_RETURN_IF_ERROR(update_agg(st, a, spec, std::move(arg)));
        }
      }
    }
    ReleaseMemory(scratch_bytes);
  } else {
    Row row;
    while (true) {
      RFID_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
      if (!has) break;
      key.clear();
      for (const ExprPtr& g : group_exprs_) {
        RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, row));
        key.push_back(std::move(v));
      }
      RFID_ASSIGN_OR_RETURN(State * st, touch_group(std::move(key)));
      for (size_t i = 0; i < aggs_.size(); ++i) {
        const AggSpec& spec = aggs_[i];
        Value arg;
        if (spec.arg != nullptr) {
          RFID_ASSIGN_OR_RETURN(arg, EvalExpr(*spec.arg, row));
          if (arg.is_null()) continue;  // aggregates ignore NULL inputs
        }
        RFID_RETURN_IF_ERROR(update_agg(st, i, spec, std::move(arg)));
      }
    }
  }
  child_->Close();

  // Global aggregation with no groups still emits one row.
  if (group_exprs_.empty() && groups.empty()) {
    auto [it, inserted] = groups.try_emplace(std::vector<Value>());
    init_state(&it->second);
    group_order.emplace_back(&it->first, &it->second);
  }

  results_.reserve(group_order.size());
  for (const auto& [gkey_ptr, st_ptr] : group_order) {
    const State& st = *st_ptr;
    Row out = *gkey_ptr;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggSpec& spec = aggs_[i];
      switch (spec.func) {
        case AggFunc::kCount:
          out.push_back(Value::Int64(st.counts[i]));
          break;
        case AggFunc::kSum:
          if (st.counts[i] == 0) {
            out.push_back(Value::Null());
          } else if (spec.result_type == DataType::kDouble ||
                     st.sum_is_double[i]) {
            out.push_back(Value::Double(st.sums[i]));
          } else if (spec.result_type == DataType::kInterval) {
            out.push_back(Value::Interval(st.int_sums[i]));
          } else {
            out.push_back(Value::Int64(st.int_sums[i]));
          }
          break;
        case AggFunc::kAvg:
          if (st.counts[i] == 0) {
            out.push_back(Value::Null());
          } else if (spec.result_type == DataType::kInterval) {
            out.push_back(Value::Interval(
                st.int_sums[i] / static_cast<int64_t>(st.counts[i])));
          } else {
            out.push_back(
                Value::Double(st.sums[i] / static_cast<double>(st.counts[i])));
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          out.push_back(st.minmax[i]);
          break;
      }
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::NextImpl(Row* row) {
  if (pos_ >= results_.size()) return false;
  *row = std::move(results_[pos_++]);
  ++rows_produced_;
  return true;
}

void HashAggregateOp::CloseImpl() {
  results_.clear();
  results_.shrink_to_fit();
  child_->Close();
}

std::string HashAggregateOp::detail() const {
  std::vector<std::string> parts;
  for (const ExprPtr& g : group_exprs_) parts.push_back(ExprToSql(g));
  for (const AggSpec& a : aggs_) {
    std::string s = AggFuncName(a.func);
    s += "(";
    if (a.distinct) s += "DISTINCT ";
    s += a.arg == nullptr ? "*" : ExprToSql(a.arg);
    s += ")";
    parts.push_back(std::move(s));
  }
  return Join(parts, ", ");
}

DistinctOp::DistinctOp(OperatorPtr child)
    : Operator(child->output_desc()), child_(std::move(child)) {}

Status DistinctOp::OpenImpl() {
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctOp::NextImpl(Row* row) {
  while (true) {
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    if (seen_.insert(*row).second) {
      RFID_RETURN_IF_ERROR(
          ChargeMemory(ApproxRowBytes(*row) + kDistinctEntryOverheadBytes));
      ++rows_produced_;
      return true;
    }
  }
}

void DistinctOp::CloseImpl() {
  seen_.clear();
  child_->Close();
}

}  // namespace rfid
