#include "exec/aggregate.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace rfid {

AggFunc AggFuncFromName(const std::string& lower_name) {
  if (lower_name == "count") return AggFunc::kCount;
  if (lower_name == "sum") return AggFunc::kSum;
  if (lower_name == "avg") return AggFunc::kAvg;
  if (lower_name == "min") return AggFunc::kMin;
  if (lower_name == "max") return AggFunc::kMax;
  assert(false && "unknown aggregate");
  return AggFunc::kCount;
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "count";
    case AggFunc::kSum: return "sum";
    case AggFunc::kAvg: return "avg";
    case AggFunc::kMin: return "min";
    case AggFunc::kMax: return "max";
  }
  return "?";
}

HashAggregateOp::HashAggregateOp(OperatorPtr child,
                                 std::vector<ExprPtr> group_exprs,
                                 std::vector<AggSpec> aggs, RowDesc output_desc)
    : Operator(std::move(output_desc)),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {}

// Rough footprint of one group's aggregation state (the per-agg vectors
// in State below), excluding key values and distinct sets, which are
// charged separately.
constexpr uint64_t kGroupStateBytes = 96;
constexpr uint64_t kDistinctEntryOverheadBytes = 32;

Status HashAggregateOp::OpenImpl() {
  pos_ = 0;
  results_.clear();

  struct State {
    std::vector<int64_t> counts;           // per agg: row/value count
    std::vector<double> sums;              // per agg: numeric running sum
    std::vector<int64_t> int_sums;         // exact integer sums
    std::vector<bool> sum_is_double;
    std::vector<Value> minmax;             // per agg: running min/max
    std::vector<std::unordered_set<Value, ValueHash>> distinct;
  };
  std::unordered_map<std::vector<Value>, State, RowHash, RowEq> groups;
  std::vector<std::vector<Value>> group_order;  // first-seen order

  RFID_RETURN_IF_ERROR(child_->Open());
  Row row;
  std::vector<Value> key;
  while (true) {
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    key.clear();
    for (const ExprPtr& g : group_exprs_) {
      RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, row));
      key.push_back(std::move(v));
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      RFID_RETURN_IF_ERROR(ChargeMemory(
          2 * ApproxRowBytes(key) +
          kGroupStateBytes * std::max<uint64_t>(1, aggs_.size())));
      group_order.push_back(key);
      State& st = it->second;
      st.counts.assign(aggs_.size(), 0);
      st.sums.assign(aggs_.size(), 0.0);
      st.int_sums.assign(aggs_.size(), 0);
      st.sum_is_double.assign(aggs_.size(), false);
      st.minmax.assign(aggs_.size(), Value::Null());
      st.distinct.resize(aggs_.size());
    }
    State& st = it->second;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggSpec& spec = aggs_[i];
      Value arg;
      if (spec.arg != nullptr) {
        RFID_ASSIGN_OR_RETURN(arg, EvalExpr(*spec.arg, row));
        if (arg.is_null()) continue;  // aggregates ignore NULL inputs
      }
      if (spec.distinct) {
        if (!st.distinct[i].insert(arg).second) continue;
        RFID_RETURN_IF_ERROR(ChargeMemory(ApproxValueBytes(arg) +
                                          kDistinctEntryOverheadBytes));
      }
      switch (spec.func) {
        case AggFunc::kCount:
          ++st.counts[i];
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          ++st.counts[i];
          if (arg.type() == DataType::kDouble) st.sum_is_double[i] = true;
          st.sums[i] += arg.AsDouble();
          if (arg.type() == DataType::kInt64) {
            st.int_sums[i] += arg.int64_value();
          } else if (arg.type() == DataType::kInterval) {
            st.int_sums[i] += arg.interval_value();
          }
          break;
        case AggFunc::kMin:
          if (st.minmax[i].is_null() || arg.Compare(st.minmax[i]) < 0) {
            st.minmax[i] = arg;
          }
          break;
        case AggFunc::kMax:
          if (st.minmax[i].is_null() || arg.Compare(st.minmax[i]) > 0) {
            st.minmax[i] = arg;
          }
          break;
      }
    }
  }
  child_->Close();

  // Global aggregation with no groups still emits one row.
  if (group_exprs_.empty() && groups.empty()) {
    std::vector<Value> empty_key;
    groups.try_emplace(empty_key);
    State& st = groups.begin()->second;
    st.counts.assign(aggs_.size(), 0);
    st.sums.assign(aggs_.size(), 0.0);
    st.int_sums.assign(aggs_.size(), 0);
    st.sum_is_double.assign(aggs_.size(), false);
    st.minmax.assign(aggs_.size(), Value::Null());
    st.distinct.resize(aggs_.size());
    group_order.push_back(empty_key);
  }

  results_.reserve(group_order.size());
  for (const auto& gkey : group_order) {
    const State& st = groups.at(gkey);
    Row out = gkey;
    for (size_t i = 0; i < aggs_.size(); ++i) {
      const AggSpec& spec = aggs_[i];
      switch (spec.func) {
        case AggFunc::kCount:
          out.push_back(Value::Int64(st.counts[i]));
          break;
        case AggFunc::kSum:
          if (st.counts[i] == 0) {
            out.push_back(Value::Null());
          } else if (spec.result_type == DataType::kDouble ||
                     st.sum_is_double[i]) {
            out.push_back(Value::Double(st.sums[i]));
          } else if (spec.result_type == DataType::kInterval) {
            out.push_back(Value::Interval(st.int_sums[i]));
          } else {
            out.push_back(Value::Int64(st.int_sums[i]));
          }
          break;
        case AggFunc::kAvg:
          if (st.counts[i] == 0) {
            out.push_back(Value::Null());
          } else if (spec.result_type == DataType::kInterval) {
            out.push_back(Value::Interval(
                st.int_sums[i] / static_cast<int64_t>(st.counts[i])));
          } else {
            out.push_back(
                Value::Double(st.sums[i] / static_cast<double>(st.counts[i])));
          }
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          out.push_back(st.minmax[i]);
          break;
      }
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateOp::NextImpl(Row* row) {
  if (pos_ >= results_.size()) return false;
  *row = std::move(results_[pos_++]);
  ++rows_produced_;
  return true;
}

void HashAggregateOp::CloseImpl() {
  results_.clear();
  results_.shrink_to_fit();
  child_->Close();
}

std::string HashAggregateOp::detail() const {
  std::vector<std::string> parts;
  for (const ExprPtr& g : group_exprs_) parts.push_back(ExprToSql(g));
  for (const AggSpec& a : aggs_) {
    std::string s = AggFuncName(a.func);
    s += "(";
    if (a.distinct) s += "DISTINCT ";
    s += a.arg == nullptr ? "*" : ExprToSql(a.arg);
    s += ")";
    parts.push_back(std::move(s));
  }
  return Join(parts, ", ");
}

DistinctOp::DistinctOp(OperatorPtr child)
    : Operator(child->output_desc()), child_(std::move(child)) {}

Status DistinctOp::OpenImpl() {
  seen_.clear();
  return child_->Open();
}

Result<bool> DistinctOp::NextImpl(Row* row) {
  while (true) {
    RFID_ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    if (seen_.insert(*row).second) {
      RFID_RETURN_IF_ERROR(
          ChargeMemory(ApproxRowBytes(*row) + kDistinctEntryOverheadBytes));
      ++rows_produced_;
      return true;
    }
  }
}

void DistinctOp::CloseImpl() {
  seen_.clear();
  child_->Close();
}

}  // namespace rfid
