// Table access operators: full scan and index range scan.
#ifndef RFID_EXEC_SCAN_H_
#define RFID_EXEC_SCAN_H_

#include <optional>

#include "exec/operator.h"
#include "storage/table.h"

namespace rfid {

/// Sequential scan of a table. Output fields are qualified with the given
/// alias. Reads up to the bound context's snapshot watermark when one is
/// pinned, otherwise up to the table's published watermark — never into
/// an in-flight ingest batch.
class TableScanOp : public Operator {
 public:
  TableScanOp(const Table* table, std::string alias);

  std::string name() const override { return "TableScan"; }
  std::string detail() const override;

  const Table* table() const { return table_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;

 private:
  const Table* table_;
  std::string alias_;
  uint64_t pos_ = 0;
  uint64_t limit_ = 0;
};

/// Morsel-parallel sequential scan with an optional fused predicate
/// (the planner folds the table's local WHERE conjuncts into the scan
/// when it goes parallel, so filter evaluation — the expensive part of a
/// scan — spreads across workers too).
///
/// Workers claim segment-aligned morsels from an atomic queue and emit
/// surviving rows into per-morsel buffers; Next() streams the buffers in
/// morsel order, so output order (and therefore every downstream result)
/// is bit-identical to the serial TableScan+Filter plan. Reads stop at
/// the bound context's snapshot watermark exactly like TableScanOp.
class ParallelTableScanOp : public Operator {
 public:
  /// `predicate` is bound against this operator's output descriptor and
  /// may be null (pure scan). `dop` >= 2.
  ParallelTableScanOp(const Table* table, std::string alias, ExprPtr predicate,
                      int dop);

  std::string name() const override { return "ParallelTableScan"; }
  std::string detail() const override;

  const Table* table() const { return table_; }
  const ExprPtr& predicate() const { return predicate_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override;

 private:
  const Table* table_;
  std::string alias_;
  ExprPtr predicate_;  // bound; may be null
  std::vector<std::vector<Row>> morsel_out_;
  size_t out_idx_ = 0;
  size_t out_pos_ = 0;
};

/// Range scan via a sorted index: emits qualifying rows in index (value)
/// order — the property the planner exploits to skip sorts on rtime.
/// With a snapshot pinned, scans the snapshot's pinned run set filtered
/// to its watermark, so concurrently ingested rows never appear.
class IndexRangeScanOp : public Operator {
 public:
  IndexRangeScanOp(const Table* table, const SortedIndex* index,
                   std::string alias, std::optional<Bound> lo,
                   std::optional<Bound> hi);

  std::string name() const override { return "IndexRangeScan"; }
  std::string detail() const override;

  const Table* table() const { return table_; }
  const SortedIndex* index() const { return index_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  const Table* table_;
  const SortedIndex* index_;
  std::string alias_;
  std::optional<Bound> lo_;
  std::optional<Bound> hi_;
  std::vector<uint32_t> row_ids_;
  size_t pos_ = 0;
};

}  // namespace rfid

#endif  // RFID_EXEC_SCAN_H_
