// Table access operators: full scan and index range scan.
#ifndef RFID_EXEC_SCAN_H_
#define RFID_EXEC_SCAN_H_

#include <optional>

#include "exec/columnar_scan.h"
#include "exec/operator.h"
#include "expr/bytecode.h"
#include "storage/table.h"

namespace rfid {

/// Sequential scan of a table with an optional fused predicate. Output
/// fields are qualified with the given alias. Reads up to the bound
/// context's snapshot watermark when one is pinned, otherwise up to the
/// table's published watermark — never into an in-flight ingest batch.
///
/// The planner fuses the table's local WHERE conjuncts into the scan so
/// filtering can run where the data representation helps: encoded
/// columnar segments evaluate sargable conjuncts over compressed lanes
/// (dictionary code compares, per-run RLE verdicts, SIMD over dense
/// int64 lanes) and are skipped outright when zone maps prove them
/// empty; row-store spans (the hot tail and columnar-off builds) run
/// the same compiled FilterProgram a downstream FilterOp would have.
/// Survivors are emitted from the row store, so output is bit-identical
/// to the unfused TableScan+Filter plan in every mode.
class TableScanOp : public Operator {
 public:
  /// `predicate` is bound against this operator's output descriptor
  /// (slot i == column i) and may be null (pure scan).
  TableScanOp(const Table* table, std::string alias,
              ExprPtr predicate = nullptr);

  std::string name() const override { return "TableScan"; }
  std::string detail() const override;

  const Table* table() const { return table_; }
  const ExprPtr& predicate() const { return predicate_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  /// Narrows drain_sel_ by the residual conjuncts (compiled program over
  /// a positional batch of the referenced slots, else the interpreter).
  Status ApplyResidual(const EncodedSegment& seg, uint32_t prefix);

  const Table* table_;
  std::string alias_;
  ExprPtr predicate_;  // bound; may be null
  uint64_t pos_ = 0;
  uint64_t limit_ = 0;

  // Predicate machinery (set up per Open).
  ColumnarScanFilter cfilter_;
  std::optional<FilterProgram> full_program_;      // row-store spans
  std::optional<FilterProgram> residual_program_;  // encoded segments
  std::vector<int> residual_slots_;
  bool use_columnar_ = false;
  bool allow_skip_ = false;  // zone-map skipping (off under fault injection)

  // Encoded-segment drain: survivors of the current segment, emitted
  // across NextBatch calls of any batch size.
  EncodedSegmentPtr drain_seg_;
  std::vector<uint32_t> drain_sel_;
  size_t drain_pos_ = 0;

  // Row-span drain (FilterOp-style scratch batch + selection).
  RowBatch in_batch_;
  std::vector<uint32_t> row_sel_;
  size_t row_sel_pos_ = 0;
  uint64_t in_bytes_ = 0;
  ExprScratch scratch_;
  ColumnarScanScratch cscratch_;
  Row tmp_row_;

  // Per-scan columnar accounting for EXPLAIN.
  uint64_t seg_total_ = 0;    // encoded segments encountered
  uint64_t seg_skipped_ = 0;  // zone-map skips
  uint64_t seg_scanned_ = 0;  // encoded segments filtered/emitted
  uint8_t enc_mask_ = 0;      // ColumnEncoding bits seen
};

/// Morsel-parallel sequential scan with an optional fused predicate
/// (the planner folds the table's local WHERE conjuncts into the scan
/// when it goes parallel, so filter evaluation — the expensive part of a
/// scan — spreads across workers too).
///
/// Workers claim segment-aligned morsels from an atomic queue and emit
/// surviving rows into per-morsel buffers; Next() streams the buffers in
/// morsel order, so output order (and therefore every downstream result)
/// is bit-identical to the serial TableScan+Filter plan. Reads stop at
/// the bound context's snapshot watermark exactly like TableScanOp.
/// Morsels are segment-sized, so encoded columnar segments are filtered
/// with the same encoded kernels as the serial scan, and zone-map skips
/// are decided once, ahead of morsel dispatch.
class ParallelTableScanOp : public Operator {
 public:
  /// `predicate` is bound against this operator's output descriptor and
  /// may be null (pure scan). `dop` >= 2.
  ParallelTableScanOp(const Table* table, std::string alias, ExprPtr predicate,
                      int dop);

  std::string name() const override { return "ParallelTableScan"; }
  std::string detail() const override;

  const Table* table() const { return table_; }
  const ExprPtr& predicate() const { return predicate_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override;

 private:
  Status ApplyResidualWorker(uint64_t base, uint32_t prefix,
                             std::vector<uint32_t>* sel, RowBatch* batch,
                             ExprScratch* scratch);

  const Table* table_;
  std::string alias_;
  ExprPtr predicate_;  // bound; may be null
  ColumnarScanFilter cfilter_;
  std::optional<FilterProgram> residual_program_;
  std::vector<int> residual_slots_;
  std::vector<std::vector<Row>> morsel_out_;
  size_t out_idx_ = 0;
  size_t out_pos_ = 0;
  uint64_t seg_total_ = 0;
  uint64_t seg_skipped_ = 0;
  uint64_t seg_scanned_ = 0;
  uint8_t enc_mask_ = 0;
};

/// Range scan via a sorted index: emits qualifying rows in index (value)
/// order — the property the planner exploits to skip sorts on rtime.
/// With a snapshot pinned, scans the snapshot's pinned run set filtered
/// to its watermark, so concurrently ingested rows never appear.
class IndexRangeScanOp : public Operator {
 public:
  IndexRangeScanOp(const Table* table, const SortedIndex* index,
                   std::string alias, std::optional<Bound> lo,
                   std::optional<Bound> hi);

  std::string name() const override { return "IndexRangeScan"; }
  std::string detail() const override;

  const Table* table() const { return table_; }
  const SortedIndex* index() const { return index_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  const Table* table_;
  const SortedIndex* index_;
  std::string alias_;
  std::optional<Bound> lo_;
  std::optional<Bound> hi_;
  std::vector<uint32_t> row_ids_;
  size_t pos_ = 0;
};

}  // namespace rfid

#endif  // RFID_EXEC_SCAN_H_
