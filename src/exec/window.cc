#include "exec/window.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"
#include "exec/parallel.h"
#include "verify/bytecode_verifier.h"

namespace rfid {

namespace {

RowDesc ExtendedDesc(const Operator& child, const std::vector<WindowAggSpec>& aggs) {
  RowDesc desc = child.output_desc();
  for (const WindowAggSpec& a : aggs) {
    desc.AddField("", a.output_name, a.result_type);
  }
  return desc;
}

// Extracts the raw int64 ordering value of a RANGE order key.
bool RawOrderValue(const Value& v, int64_t* out) {
  switch (v.type()) {
    case DataType::kInt64:
      *out = v.int64_value();
      return true;
    case DataType::kTimestamp:
      *out = v.timestamp_value();
      return true;
    case DataType::kInterval:
      *out = v.interval_value();
      return true;
    default:
      return false;
  }
}

// Accumulator over a frame of rows. Arguments are read from a
// per-partition columnar cache (one eval per row instead of one per
// (row, frame member) pair); entries are boxed back into Values only
// when a MIN/MAX candidate actually wins, so frame evaluation does no
// per-member Value copies.
class FrameAggregator {
 public:
  // `args` holds spec.arg evaluated for every partition-local row; it is
  // never read for COUNT(*), whose cache stays empty.
  FrameAggregator(const WindowAggSpec& spec, const ColumnVector* args)
      : spec_(spec), args_(args) {}

  // idx is the partition-local row index into the arg cache.
  void Add(size_t idx) {
    if (spec_.arg != nullptr && args_->is_null(idx)) return;
    switch (spec_.func) {
      case AggFunc::kCount:
        ++count_;
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        ++count_;
        sum_ += args_->AsDouble(idx);
        const DataType t = args_->tag(idx);
        if (t == DataType::kInt64 || t == DataType::kInterval) {
          int_sum_ += args_->raw(idx);
        } else {
          is_double_ = true;
        }
        break;
      }
      case AggFunc::kMin:
        if (minmax_.is_null() ||
            CompareEntryToValue(*args_, idx, minmax_) < 0) {
          minmax_ = args_->ValueAt(idx);
        }
        break;
      case AggFunc::kMax:
        if (minmax_.is_null() ||
            CompareEntryToValue(*args_, idx, minmax_) > 0) {
          minmax_ = args_->ValueAt(idx);
        }
        break;
    }
  }

  Value Finish() const {
    switch (spec_.func) {
      case AggFunc::kCount:
        return Value::Int64(count_);
      case AggFunc::kSum:
        if (count_ == 0) return Value::Null();
        if (spec_.result_type == DataType::kInterval) {
          return Value::Interval(int_sum_);
        }
        if (is_double_ || spec_.result_type == DataType::kDouble) {
          return Value::Double(sum_);
        }
        return Value::Int64(int_sum_);
      case AggFunc::kAvg:
        if (count_ == 0) return Value::Null();
        if (spec_.result_type == DataType::kInterval) {
          return Value::Interval(int_sum_ / count_);
        }
        return Value::Double(sum_ / static_cast<double>(count_));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return minmax_;
    }
    return Value::Null();
  }

 private:
  const WindowAggSpec& spec_;
  const ColumnVector* args_;
  int64_t count_ = 0;
  double sum_ = 0;
  int64_t int_sum_ = 0;
  bool is_double_ = false;
  Value minmax_;
};

}  // namespace

WindowOp::WindowOp(OperatorPtr child, std::vector<size_t> partition_slots,
                   std::vector<SlotSortKey> order_keys,
                   std::vector<WindowAggSpec> aggs, int dop)
    : Operator(ExtendedDesc(*child, aggs)),
      child_(std::move(child)),
      partition_slots_(std::move(partition_slots)),
      order_keys_(std::move(order_keys)),
      aggs_(std::move(aggs)) {
  set_dop(dop);
}

Status WindowOp::OpenImpl() {
  pos_ = 0;
  rows_.clear();
  RFID_RETURN_IF_ERROR(DrainChildAccounted(child_.get(), &rows_));

  // Compile each agg's argument once; workers share the immutable
  // programs and fall back to the interpreter per agg on failure.
  arg_progs_.clear();
  if (VectorizedEnabled()) {
    for (const WindowAggSpec& a : aggs_) {
      if (a.arg == nullptr) {
        arg_progs_.emplace_back();
        continue;
      }
      RFID_ASSIGN_OR_RETURN(
          std::optional<ExprProgram> compiled,
          CompileVerified(*a.arg, child_->output_desc(), "Window"));
      arg_progs_.emplace_back(std::move(compiled));
    }
  }

  // Cut the (sorted) input at partition boundaries: groups[i] is the
  // start of the i-th maximal run of equal partition keys.
  std::vector<size_t> groups;
  size_t begin = 0;
  while (begin < rows_.size()) {
    groups.push_back(begin);
    size_t end = begin + 1;
    while (end < rows_.size()) {
      bool same = true;
      for (size_t s : partition_slots_) {
        if (!rows_[begin][s].DistinctEquals(rows_[end][s])) {
          same = false;
          break;
        }
      }
      if (!same) break;
      ++end;
    }
    begin = end;
  }
  groups.push_back(rows_.size());
  const size_t num_groups = groups.empty() ? 0 : groups.size() - 1;

  if (dop() <= 1 || num_groups < 2) {
    for (size_t g = 0; g < num_groups; ++g) {
      RFID_RETURN_IF_ERROR(ComputePartition(groups[g], groups[g + 1]));
    }
    return Status::OK();
  }

  // Partition-parallel: workers claim contiguous ranges of whole groups;
  // every group's reads and writes stay inside [groups[g], groups[g+1]),
  // so ranges are disjoint across workers and nothing is reordered.
  const uint64_t morsel =
      std::max<uint64_t>(1, num_groups / (static_cast<uint64_t>(dop()) * 8));
  MorselQueue queue(num_groups, morsel);
  return ParallelRun(dop(), [this, &queue, &groups](int) -> Status {
    uint64_t gb = 0, ge = 0, m = 0;
    while (queue.Claim(&gb, &ge, &m)) {
      RFID_RETURN_IF_ERROR(TickCancel());
      for (uint64_t g = gb; g < ge; ++g) {
        RFID_RETURN_IF_ERROR(ComputePartition(groups[g], groups[g + 1]));
      }
    }
    return Status::OK();
  });
}

Status WindowOp::FillArgCache(size_t a, size_t begin, size_t end,
                              ColumnVector* out) {
  const size_t n = end - begin;
  const WindowAggSpec& spec = aggs_[a];
  const ExprProgram* prog = a < arg_progs_.size() && arg_progs_[a].has_value()
                                ? &*arg_progs_[a]
                                : nullptr;
  if (prog != nullptr) {
    const int slot = prog->single_column_slot();
    if (slot >= 0) {
      // Plain column argument: gather it directly, no program run.
      for (size_t i = 0; i < n; ++i) {
        out->AppendValue(rows_[begin + i][static_cast<size_t>(slot)]);
      }
      return Status::OK();
    }
    // Build a partial batch holding only the referenced columns; the
    // others stay empty and are never read by the program.
    RowBatch tmp(child_->output_desc().num_fields(), n);
    for (int s : prog->referenced_slots()) {
      ColumnVector& c = tmp.col(static_cast<size_t>(s));
      for (size_t i = 0; i < n; ++i) {
        c.AppendValue(rows_[begin + i][static_cast<size_t>(s)]);
      }
    }
    tmp.set_num_rows(n);
    ExprScratch scratch;
    prog->Eval(tmp, nullptr, 0, out, &scratch);
    return Status::OK();
  }
  out->Reset(n);
  for (size_t i = 0; i < n; ++i) {
    RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*spec.arg, rows_[begin + i]));
    out->SetValue(i, v);
  }
  return Status::OK();
}

Status WindowOp::ComputePartition(size_t begin, size_t end) {
  const size_t n = end - begin;
  // Results per agg, appended to rows after all aggs are computed so that
  // no agg sees another's output (same-SELECT-level semantics).
  RFID_RETURN_IF_ERROR(
      ChargeMemory(static_cast<uint64_t>(n) * aggs_.size() * sizeof(Value)));
  std::vector<std::vector<Value>> outputs(aggs_.size());
  ColumnVector arg_cache;

  for (size_t a = 0; a < aggs_.size(); ++a) {
    const WindowAggSpec& spec = aggs_[a];
    outputs[a].resize(n);
    const FrameSpec& f = spec.frame;

    arg_cache.Clear();
    uint64_t cache_bytes = 0;
    if (spec.arg != nullptr) {
      RFID_RETURN_IF_ERROR(FillArgCache(a, begin, end, &arg_cache));
      cache_bytes = arg_cache.ApproxBytes();
      RFID_RETURN_IF_ERROR(ChargeMemory(cache_bytes));
    }

    if (f.unit == FrameUnit::kRows) {
      if (f.start.unbounded && f.end.unbounded) {
        // Whole-partition frame: one accumulation shared by every row.
        FrameAggregator agg(spec, &arg_cache);
        for (size_t j = 0; j < n; ++j) agg.Add(j);
        const Value result = agg.Finish();
        for (size_t i = 0; i < n; ++i) outputs[a][i] = result;
      } else if (f.start.unbounded && !f.end.unbounded && f.end.delta == 0) {
        // Running frame (UNBOUNDED PRECEDING .. CURRENT ROW): extend one
        // accumulator instead of recomputing each prefix. Additions
        // happen in the same order the recomputed frames would make
        // them, so sums and comparisons are bit-identical.
        FrameAggregator agg(spec, &arg_cache);
        for (size_t i = 0; i < n; ++i) {
          agg.Add(i);
          outputs[a][i] = agg.Finish();
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          int64_t lo = f.start.unbounded
                           ? 0
                           : static_cast<int64_t>(i) + f.start.delta;
          int64_t hi = f.end.unbounded ? static_cast<int64_t>(n) - 1
                                       : static_cast<int64_t>(i) + f.end.delta;
          if (lo < 0) lo = 0;
          if (hi > static_cast<int64_t>(n) - 1) {
            hi = static_cast<int64_t>(n) - 1;
          }
          FrameAggregator agg(spec, &arg_cache);
          for (int64_t j = lo; j <= hi; ++j) {
            agg.Add(static_cast<size_t>(j));
          }
          outputs[a][i] = agg.Finish();
        }
      }
      ReleaseMemory(cache_bytes);
      continue;
    }

    // RANGE frame: requires a single ascending order key of an
    // int64-represented type.
    if (order_keys_.size() != 1 || !order_keys_[0].ascending) {
      return Status::Unimplemented(
          "RANGE frames require a single ascending ORDER BY key");
    }
    size_t key_slot = order_keys_[0].slot;
    // Sliding frame endpoints: both thresholds are nondecreasing in i.
    size_t lo_ptr = 0;
    size_t hi_ptr = 0;
    for (size_t i = 0; i < n; ++i) {
      const Value& key = rows_[begin + i][key_slot];
      int64_t k;
      if (key.is_null() || !RawOrderValue(key, &k)) {
        // NULL order key: no well-defined logical frame; emit over an
        // empty frame (COUNT -> 0, others -> NULL).
        outputs[a][i] = FrameAggregator(spec, &arg_cache).Finish();
        continue;
      }
      size_t lo = 0;
      if (!f.start.unbounded) {
        int64_t threshold = k + f.start.delta;
        while (lo_ptr < n) {
          const Value& kj = rows_[begin + lo_ptr][key_slot];
          int64_t vj;
          if (kj.is_null() || !RawOrderValue(kj, &vj)) {
            ++lo_ptr;  // NULL keys sort first; skip them for RANGE frames
            continue;
          }
          if (vj >= threshold) break;
          ++lo_ptr;
        }
        lo = lo_ptr;
      }
      size_t hi = n;  // exclusive
      if (!f.end.unbounded) {
        int64_t threshold = k + f.end.delta;
        if (hi_ptr < lo_ptr) hi_ptr = lo_ptr;
        while (hi_ptr < n) {
          const Value& kj = rows_[begin + hi_ptr][key_slot];
          int64_t vj;
          if (kj.is_null() || !RawOrderValue(kj, &vj)) {
            ++hi_ptr;
            continue;
          }
          if (vj > threshold) break;
          ++hi_ptr;
        }
        hi = hi_ptr;
      }
      FrameAggregator agg(spec, &arg_cache);
      for (size_t j = (f.start.unbounded ? 0 : lo); j < hi; ++j) {
        const Value& kj = rows_[begin + j][key_slot];
        if (kj.is_null()) continue;
        agg.Add(j);
      }
      outputs[a][i] = agg.Finish();
    }
    ReleaseMemory(cache_bytes);
  }

  for (size_t i = 0; i < n; ++i) {
    Row& r = rows_[begin + i];
    for (size_t a = 0; a < aggs_.size(); ++a) {
      r.push_back(std::move(outputs[a][i]));
    }
  }
  return Status::OK();
}

Result<bool> WindowOp::NextImpl(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = std::move(rows_[pos_++]);
  ++rows_produced_;
  return true;
}

void WindowOp::CloseImpl() {
  rows_.clear();
  rows_.shrink_to_fit();
  child_->Close();
}

std::string WindowOp::detail() const {
  std::vector<std::string> parts;
  for (const WindowAggSpec& a : aggs_) {
    std::string s = AggFuncName(a.func);
    s += "(";
    s += a.arg == nullptr ? "*" : ExprToSql(a.arg);
    s += ") AS " + a.output_name;
    parts.push_back(std::move(s));
  }
  return Join(parts, ", ");
}

}  // namespace rfid
