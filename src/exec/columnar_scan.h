// Encoded-predicate evaluation for table scans over columnar segments.
//
// A ColumnarScanFilter splits a scan's bound predicate into *sargable*
// conjuncts — `slot CMP literal`, either orientation — and a residual.
// Sargable conjuncts drive two things the row interpreter cannot:
//
//   Zone-map skipping (CanSkip): a segment whose per-column min/max
//   proves no row can satisfy some conjunct is skipped before any row
//   work (ahead of morsel dispatch on the parallel path). Zone maps
//   marked non-prunable (NaN doubles, mixed tags) never skip, so
//   pruning cannot change results. Callers must not skip while fault
//   injection is active — the same rule ChooseDop applies — so
//   fail-at-step sweeps keep their exact serial step ordering.
//
//   Encoded filtering (FilterSargable): each conjunct narrows an
//   ascending selection vector of segment offsets directly over the
//   encoded column. Dictionary columns binary-search the literal once
//   and compare integer codes; RLE columns evaluate one verdict per run
//   and carry it across the run; bit-packed and plain int64-family
//   lanes go through the runtime-dispatched SIMD kernel
//   (simd::FilterInt64) when the selection is still dense. Every path
//   mirrors Value::Compare / CompareEntryToValue exactly, so survivors
//   are bit-identical to interpreter evaluation; NULL cells never pass.
//
// The residual (non-sargable conjuncts) and row materialization stay
// with the scan operators: encoded segments are a cache over the row
// store, so survivors are emitted from the store rows themselves.
#ifndef RFID_EXEC_COLUMNAR_SCAN_H_
#define RFID_EXEC_COLUMNAR_SCAN_H_

#include <cstdint>
#include <vector>

#include "expr/conjunct.h"
#include "expr/expr.h"
#include "storage/columnar.h"

namespace rfid {

/// A sargable conjunct, oriented as `slot OP literal` with a non-null
/// literal. `slot` indexes the scan's output row, which for table scans
/// is the table's column order — the property that lets it double as a
/// column index into an EncodedSegment.
struct SlotLiteralCmp {
  int slot = -1;
  BinaryOp op = BinaryOp::kEq;
  Value literal;
};

/// Reusable per-thread scratch for FilterSargable (selection and
/// bulk-unpack lanes grow to segment size and are reused).
struct ColumnarScanScratch {
  std::vector<uint32_t> tmp;
  std::vector<int64_t> lane;
};

class ColumnarScanFilter {
 public:
  /// Splits `predicate` (bound, may be null). Conjuncts comparing a slot
  /// against a NULL literal make the whole predicate unsatisfiable
  /// (comparison with NULL is never true): never_true() turns on and the
  /// scan should emit nothing.
  void Init(const ExprPtr& predicate);

  bool never_true() const { return never_true_; }
  const std::vector<SlotLiteralCmp>& sargable() const { return sargable_; }
  /// AND of the non-sargable conjuncts; nullptr when fully sargable.
  const ExprPtr& residual() const { return residual_; }

  /// True when the segment's zone maps prove no row satisfies some
  /// sargable conjunct. Sound for partial-prefix reads (an older
  /// snapshot watermark inside the segment): the maps cover a superset
  /// of any prefix. Do not call while fault injection is active.
  bool CanSkip(const EncodedSegment& seg) const;

  /// Narrows *sel — ascending offsets into [0, prefix) of `seg` — to the
  /// rows passing every sargable conjunct, evaluating over the encoded
  /// columns. `prefix` is the number of segment rows visible to the scan
  /// (== seg.num_rows except under an older snapshot watermark).
  void FilterSargable(const EncodedSegment& seg, uint32_t prefix,
                      std::vector<uint32_t>* sel,
                      ColumnarScanScratch* scratch) const;

 private:
  std::vector<SlotLiteralCmp> sargable_;
  ExprPtr residual_;
  bool never_true_ = false;
};

/// Tries to view the bound conjunct as `slot CMP literal` (either
/// orientation; op oriented as slot-on-the-left). A conjunct matching
/// the shape but with a NULL literal sets *null_literal instead.
bool MatchSlotLiteralCmp(const ExprPtr& conjunct, SlotLiteralCmp* out,
                         bool* null_literal);

}  // namespace rfid

#endif  // RFID_EXEC_COLUMNAR_SCAN_H_
