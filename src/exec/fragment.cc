#include "exec/fragment.h"

#include <utility>

#include "common/string_util.h"

namespace rfid {

FragmentScanOp::FragmentScanOp(RowDesc output_desc, std::string label,
                               std::shared_ptr<const std::vector<Row>> rows)
    : Operator(std::move(output_desc)),
      label_(std::move(label)),
      rows_(std::move(rows)) {}

std::string FragmentScanOp::detail() const {
  return StrFormat("%s (%zu rows cached)", label_.c_str(),
                   rows_ == nullptr ? size_t{0} : rows_->size());
}

Status FragmentScanOp::OpenImpl() {
  pos_ = 0;
  return Status::OK();
}

Result<bool> FragmentScanOp::NextImpl(Row* row) {
  if (rows_ == nullptr || pos_ >= rows_->size()) return false;
  *row = (*rows_)[pos_++];
  return true;
}

Result<bool> FragmentScanOp::NextBatchImpl(RowBatch* batch) {
  // Native batch fill: appends cached rows straight into the batch
  // columns instead of boxing one Row per NextImpl call.
  if (rows_ == nullptr) return false;
  const std::vector<Row>& rows = *rows_;
  while (pos_ < rows.size() && !batch->full()) {
    batch->AppendRow(rows[pos_++]);
  }
  return !batch->empty();
}

FragmentMaterializeOp::FragmentMaterializeOp(
    RowDesc output_desc, std::string label, OperatorPtr child,
    std::function<void(std::vector<Row>)> on_filled)
    : Operator(std::move(output_desc)),
      label_(std::move(label)),
      child_(std::move(child)),
      on_filled_(std::move(on_filled)) {}

std::string FragmentMaterializeOp::detail() const { return label_; }

Status FragmentMaterializeOp::OpenImpl() {
  buffer_.clear();
  done_ = false;
  child_->BindExecContext(exec_context());
  return child_->Open();
}

Result<bool> FragmentMaterializeOp::NextImpl(Row* row) {
  if (done_) return false;
  auto more = child_->Next(row);
  if (!more.ok()) return more.status();
  if (!more.value()) {
    done_ = true;
    if (on_filled_ != nullptr) {
      on_filled_(std::move(buffer_));
      on_filled_ = nullptr;
    }
    buffer_.clear();
    return false;
  }
  RFID_RETURN_IF_ERROR(ChargeMemory(ApproxRowBytes(*row)));
  buffer_.push_back(*row);
  return true;
}

void FragmentMaterializeOp::CloseImpl() {
  child_->Close();
  buffer_.clear();
  buffer_.shrink_to_fit();
}

}  // namespace rfid
