// SQL/OLAP window-function operator (SQL99 OVER clause) — the machinery
// the paper compiles cleansing rules into.
//
// Contract: the input must already be sorted by (partition keys, order
// keys); the planner inserts a Sort when the child does not provide that
// order. Keeping the sort outside the operator is what lets consecutive
// cleansing rules — and a user query's own OLAP functions — share a
// single sort, the effect Section 6.2 of the paper highlights.
//
// The operator appends one column per WindowAggSpec to every input row.
// Frames:
//   ROWS  BETWEEN <n> PRECEDING|FOLLOWING AND ...   (physical offsets)
//   RANGE BETWEEN <interval> PRECEDING|FOLLOWING AND ... (logical offsets
//         on a single ascending numeric/timestamp order key)
// evaluated with amortized O(1) sliding frame endpoints per row.
#ifndef RFID_EXEC_WINDOW_H_
#define RFID_EXEC_WINDOW_H_

#include <optional>

#include "exec/aggregate.h"
#include "exec/operator.h"
#include "exec/sort.h"
#include "expr/bytecode.h"

namespace rfid {

/// One window aggregate: FUNC(arg) OVER (... frame). The partition/order
/// keys are shared by the whole operator (all aggs in one WindowOp use the
/// same window ordering — the planner groups compatible specs).
struct WindowAggSpec {
  AggFunc func = AggFunc::kMax;
  ExprPtr arg;              // bound against child output; null for COUNT(*)
  FrameSpec frame;          // delta semantics per FrameBound
  std::string output_name;  // name of the appended column
  DataType result_type = DataType::kNull;
};

/// With dop > 1 the operator evaluates PARTITION BY groups
/// partition-parallel: the sorted input is cut at partition boundaries,
/// workers claim contiguous ranges of whole groups from a morsel queue,
/// and each group's frames are computed independently (frames never
/// cross a partition boundary). Workers write into disjoint row ranges,
/// so no result reordering happens and output is bit-identical to
/// serial. This is the hot path of every naive/expanded/join-back
/// cleansing rewrite, which compile to windows partitioned by tag/EPC.
class WindowOp : public Operator {
 public:
  /// partition_slots/order key slots index into the child's output row.
  WindowOp(OperatorPtr child, std::vector<size_t> partition_slots,
           std::vector<SlotSortKey> order_keys, std::vector<WindowAggSpec> aggs,
           int dop = 1);

  std::string name() const override { return "Window"; }
  std::string detail() const override;
  std::vector<const Operator*> children() const override { return {child_.get()}; }

  const std::vector<size_t>& partition_slots() const { return partition_slots_; }
  const std::vector<SlotSortKey>& order_keys() const { return order_keys_; }
  const std::vector<WindowAggSpec>& aggs() const { return aggs_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override;

 private:
  Status ComputePartition(size_t begin, size_t end);
  /// Evaluates agg a's argument over partition rows [begin, end) into a
  /// columnar cache — once per row instead of once per (row, frame
  /// member) pair. Uses the compiled program when available, the row
  /// interpreter otherwise; either way each row is evaluated exactly
  /// once, so results match the uncached engine bit for bit.
  Status FillArgCache(size_t a, size_t begin, size_t end, ColumnVector* out);

  OperatorPtr child_;
  std::vector<size_t> partition_slots_;
  std::vector<SlotSortKey> order_keys_;
  std::vector<WindowAggSpec> aggs_;
  // Compiled argument programs (empty when the vectorized engine is
  // off; nullopt per agg on COUNT(*) or compile fallback). Immutable
  // after Open, shared by partition workers.
  std::vector<std::optional<ExprProgram>> arg_progs_;

  std::vector<Row> rows_;  // materialized input, extended in place
  size_t pos_ = 0;
};

}  // namespace rfid

#endif  // RFID_EXEC_WINDOW_H_
