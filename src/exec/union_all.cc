#include "exec/union_all.h"

#include <cassert>

namespace rfid {

namespace {
RowDesc UnionDesc(const std::vector<OperatorPtr>& inputs) {
  assert(!inputs.empty());
  RowDesc out;
  for (const Field& f : inputs[0]->output_desc().fields()) {
    out.AddField("", f.name, f.type);
  }
  return out;
}
}  // namespace

UnionAllOp::UnionAllOp(std::vector<OperatorPtr> inputs)
    : Operator(UnionDesc(inputs)), inputs_(std::move(inputs)) {}

Status UnionAllOp::OpenImpl() {
  current_ = 0;
  if (!inputs_.empty()) return inputs_[0]->Open();
  return Status::OK();
}

Result<bool> UnionAllOp::NextImpl(Row* row) {
  while (current_ < inputs_.size()) {
    RFID_ASSIGN_OR_RETURN(bool has, inputs_[current_]->Next(row));
    if (has) {
      ++rows_produced_;
      return true;
    }
    inputs_[current_]->Close();
    ++current_;
    if (current_ < inputs_.size()) {
      RFID_RETURN_IF_ERROR(inputs_[current_]->Open());
    }
  }
  return false;
}

Result<bool> UnionAllOp::NextBatchImpl(RowBatch* batch) {
  while (current_ < inputs_.size()) {
    RFID_ASSIGN_OR_RETURN(bool has, inputs_[current_]->NextBatch(batch));
    if (has) {
      rows_produced_ += batch->num_rows();
      return true;
    }
    inputs_[current_]->Close();
    ++current_;
    if (current_ < inputs_.size()) {
      RFID_RETURN_IF_ERROR(inputs_[current_]->Open());
    }
  }
  return false;
}

void UnionAllOp::CloseImpl() {
  for (auto& in : inputs_) in->Close();
}

std::vector<const Operator*> UnionAllOp::children() const {
  std::vector<const Operator*> out;
  for (const auto& in : inputs_) out.push_back(in.get());
  return out;
}

}  // namespace rfid
