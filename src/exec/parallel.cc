#include "exec/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/sync.h"

namespace rfid {

namespace {

int HardwareDop() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

constexpr int kMaxPoolThreads = 64;
constexpr uint64_t kDefaultMinParallelRows = 8192;

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  long parsed = atol(v);
  return parsed <= 0 ? fallback : static_cast<int>(parsed);
}

ParallelPolicy DefaultPolicy() {
  ParallelPolicy p;
  p.max_dop = std::min(kMaxPoolThreads, EnvInt("RFID_MAX_DOP", HardwareDop()));
  p.min_parallel_rows = static_cast<uint64_t>(EnvInt(
      "RFID_PARALLEL_MIN_ROWS", static_cast<int>(kDefaultMinParallelRows)));
  return p;
}

// Test/bench override: max_dop == 0 means "use defaults".
std::atomic<int> g_override_max_dop{0};
std::atomic<uint64_t> g_override_min_rows{0};

// Lazily-started, never-destroyed worker pool. Threads block on the queue
// condition variable when idle; the pool grows on demand (EnsureThreads)
// up to kMaxPoolThreads so DOP-sweep benchmarks can oversubscribe a small
// host. Leaky-singleton on purpose: reachable from a static, so LSan does
// not flag it, and no destructor ever races process teardown.
class WorkerPool {
 public:
  static WorkerPool* Global() {
    static WorkerPool* pool = new WorkerPool();
    return pool;
  }

  void EnsureThreads(int n) {
    n = std::min(n, kMaxPoolThreads);
    MutexLock lock(&mu_);
    while (static_cast<int>(num_threads_) < n) {
      std::thread(&WorkerPool::WorkerLoop, this).detach();
      ++num_threads_;
    }
  }

  void Submit(std::function<void()> task) {
    {
      MutexLock lock(&mu_);
      queue_.push_back(std::move(task));
    }
    cv_.NotifyOne();
  }

 private:
  WorkerPool() = default;

  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (queue_.empty()) cv_.Wait(lock);
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  Mutex mu_{LockRank::kWorkerPool};
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  size_t num_threads_ GUARDED_BY(mu_) = 0;
};

}  // namespace

ParallelPolicy CurrentParallelPolicy() {
  int max_dop = g_override_max_dop.load(std::memory_order_relaxed);
  if (max_dop > 0) {
    return {std::min(max_dop, kMaxPoolThreads),
            g_override_min_rows.load(std::memory_order_relaxed)};
  }
  static const ParallelPolicy defaults = DefaultPolicy();
  return defaults;
}

void SetParallelPolicyForTest(int max_dop, uint64_t min_parallel_rows) {
  g_override_min_rows.store(min_parallel_rows, std::memory_order_relaxed);
  g_override_max_dop.store(max_dop, std::memory_order_relaxed);
}

int ChooseDop(double estimated_rows) {
#ifdef RFID_PARALLEL_OFF
  (void)estimated_rows;
  return 1;
#else
  // A thread-local injector means a deterministic fail-at-step sweep is
  // running; parallel workers carry no injector, so going parallel would
  // silently change which steps the sweep crosses. Stay serial.
  if (FaultInjectionActive()) return 1;
  ParallelPolicy p = CurrentParallelPolicy();
  if (p.max_dop <= 1) return 1;
  if (estimated_rows < static_cast<double>(p.min_parallel_rows)) return 1;
  // Give every worker at least half a threshold's worth of rows so tiny
  // inputs do not fan out to idle workers.
  double per_worker =
      std::max(1.0, static_cast<double>(p.min_parallel_rows) / 2.0);
  double workers = estimated_rows / per_worker;
  int dop = workers >= static_cast<double>(p.max_dop)
                ? p.max_dop
                : std::max(1, static_cast<int>(workers));
  return dop;
#endif
}

Status ParallelRun(int dop, const std::function<Status(int)>& fn) {
  if (dop <= 1) return fn(0);
  WorkerPool* pool = WorkerPool::Global();
  pool->EnsureThreads(dop - 1);

  std::vector<Status> statuses(static_cast<size_t>(dop), Status::OK());
  // Per-call completion latch. kLeaf: held only for the counter update,
  // never across another acquisition (fn runs outside the lock; workers
  // write disjoint statuses slots before taking it).
  Mutex mu{LockRank::kLeaf};
  CondVar done_cv;
  int remaining = dop - 1;

  for (int w = 1; w < dop; ++w) {
    pool->Submit([&, w]() {
      Status st = fn(w);
      statuses[static_cast<size_t>(w)] = std::move(st);
      bool last;
      {
        MutexLock lock(&mu);
        last = (--remaining == 0);
      }
      if (last) done_cv.NotifyOne();
    });
  }
  statuses[0] = fn(0);
  {
    MutexLock lock(&mu);
    while (remaining != 0) done_cv.Wait(lock);
  }
  // Lowest worker id wins so the surfaced error does not depend on
  // scheduling (all workers typically trip the same guardrail anyway).
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace rfid
