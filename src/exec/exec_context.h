// Per-query execution context: resource budgets and cooperative
// cancellation, threaded through the whole operator tree.
//
// The context carries three guardrails, all off by default:
//  - a memory accountant with a per-query byte budget, charged by every
//    blocking operator (sort, hash-join build, aggregate, window,
//    distinct) and by result-row accumulation in CollectRows;
//  - a cancellation token plus wall-clock deadline, checked in every
//    operator Next() and per row inside Open() materialization;
//  - an output-row limit enforced by CollectRows.
//
// Budget trips surface as kResourceExhausted, cancellation as kCancelled,
// deadline expiry as kDeadlineExceeded; the operator tree unwinds through
// idempotent Close() so a trip mid-Open leaks nothing.
//
// Counters are atomic so a future parallel executor can share one context
// across worker threads; RequestCancel() is safe to call from any thread.
#ifndef RFID_EXEC_EXEC_CONTEXT_H_
#define RFID_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "expr/eval.h"
#include "storage/snapshot.h"
#include "storage/table.h"

namespace rfid {

/// A named relation bound into an execution context by the fragment
/// stitcher (see rewrite/fragment_stitch.h): the planner resolves table
/// references that match no catalog table or CTE against these bindings.
/// Either `rows` is set (a cached cleansed fragment, scanned directly) or
/// `fill_sql` is set (a cache miss: the planner plans the fill statement
/// and wraps it in a materializing operator that hands the completed row
/// set to `on_filled` — invoked only on a clean end-of-stream, so an
/// early LIMIT cut never publishes a partial fragment).
struct FragmentBinding {
  RowDesc desc;  // fragment schema, unqualified; requalified at plan time
  std::shared_ptr<const std::vector<Row>> rows;
  std::string fill_sql;
  std::function<void(std::vector<Row>)> on_filled;
};

/// Per-query limits. Zero means "unlimited" for every field.
struct ExecLimits {
  uint64_t memory_budget_bytes = 0;
  int64_t timeout_micros = 0;     // wall clock, armed at context creation
  uint64_t max_output_rows = 0;   // enforced by CollectRows
};

class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(const ExecLimits& limits);

  /// Process-wide context with no limits, used by operators that were
  /// never explicitly bound (direct operator-level tests, plan-time
  /// subquery execution without a caller context).
  static ExecContext* Default();

  const ExecLimits& limits() const { return limits_; }

  // --- memory accounting ---

  /// Reserves bytes against the budget; kResourceExhausted when the
  /// budget would be exceeded (the reservation is rolled back).
  Status ChargeMemory(uint64_t bytes);
  void ReleaseMemory(uint64_t bytes);
  uint64_t memory_used() const {
    return memory_used_.load(std::memory_order_relaxed);
  }
  uint64_t memory_peak() const {
    return memory_peak_.load(std::memory_order_relaxed);
  }

  // --- cancellation / deadline ---

  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }
  /// Cancels with a reason that surfaces in the kCancelled status message
  /// (e.g. "server shutting down"). The reason is published before the
  /// flag, so any CheckCancelled that observes the flag sees the reason.
  void RequestCancel(std::string reason);
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Cooperative check: the cancellation flag on every call; the
  /// wall-clock deadline on the first call and then every
  /// kDeadlineStride calls (a clock read per row would dominate
  /// streaming operators). Once the deadline trips it stays tripped.
  Status CheckCancelled();

  /// Total cooperative checks performed across the query.
  uint64_t cancel_checks() const {
    return checks_.load(std::memory_order_relaxed);
  }

  // --- snapshot isolation ---

  /// Pins an epoch snapshot for this query: scans bound to this context
  /// read only rows below the snapshot's per-table watermarks and range-
  /// scan the snapshot's pinned index runs, and the planner costs
  /// against the snapshot's pinned statistics. Null (the default) means
  /// "live": read whatever is published at open time. Set before
  /// planning/execution starts, never during.
  void set_snapshot(SnapshotPtr snapshot) { snapshot_ = std::move(snapshot); }
  const SnapshotPtr& snapshot() const { return snapshot_; }

  // --- fragment bindings ---

  /// Binds a fragment relation under `name` (case-insensitive). Like the
  /// snapshot: installed before planning starts, never during execution —
  /// parallel workers only read the map.
  void BindFragment(std::string name, FragmentBinding binding);
  /// The binding for `name`, or nullptr. Pointer stable for the query's
  /// lifetime (bindings are never removed, only the whole context dies).
  const FragmentBinding* FindFragment(std::string_view name) const;
  void ClearFragments() { fragments_.clear(); }

 private:
  static constexpr uint64_t kDeadlineStride = 128;

  ExecLimits limits_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};

  std::atomic<uint64_t> memory_used_{0};
  std::atomic<uint64_t> memory_peak_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_hit_{false};
  std::string cancel_reason_;  // written before cancelled_ is released

  SnapshotPtr snapshot_;
  std::map<std::string, FragmentBinding> fragments_;  // lower-cased names
};

/// Approximate heap footprint of a row (vector + inline values + string
/// payloads) used by the memory accountant. An estimate, not malloc
/// truth — consistent on both charge and release, which is what budget
/// enforcement needs.
uint64_t ApproxValueBytes(const Value& v);
uint64_t ApproxRowBytes(const Row& row);

}  // namespace rfid

#endif  // RFID_EXEC_EXEC_CONTEXT_H_
