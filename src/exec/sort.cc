#include "exec/sort.h"

#include <algorithm>

#include "exec/parallel.h"

namespace rfid {

int CompareRows(const Row& a, const Row& b, const std::vector<SlotSortKey>& keys) {
  for (const SlotSortKey& k : keys) {
    const Value& va = a[k.slot];
    const Value& vb = b[k.slot];
    int c;
    if (va.is_null() || vb.is_null()) {
      // NULLs first: null < non-null.
      c = (va.is_null() ? 0 : 1) - (vb.is_null() ? 0 : 1);
    } else {
      c = va.Compare(vb);
    }
    if (c != 0) return k.ascending ? c : -c;
  }
  return 0;
}

SortOp::SortOp(OperatorPtr child, std::vector<SlotSortKey> keys, int dop)
    : Operator(child->output_desc()),
      child_(std::move(child)),
      keys_(std::move(keys)) {
  set_dop(dop);
}

Status SortOp::OpenImpl() {
  pos_ = 0;
  rows_.clear();
  RFID_RETURN_IF_ERROR(DrainChildAccounted(child_.get(), &rows_));
  rows_sorted_ += rows_.size();
  const size_t n = rows_.size();
  const size_t workers = static_cast<size_t>(dop());
  if (workers <= 1 || n < 2 * workers) {
    std::stable_sort(rows_.begin(), rows_.end(),
                     [this](const Row& a, const Row& b) {
                       return CompareRows(a, b, keys_) < 0;
                     });
    return Status::OK();
  }

  // Per-worker runs: contiguous chunks, each stable-sorted in parallel.
  const size_t chunk = (n + workers - 1) / workers;
  RFID_RETURN_IF_ERROR(ParallelRun(
      static_cast<int>(workers), [this, n, chunk](int w) -> Status {
        size_t begin = static_cast<size_t>(w) * chunk;
        if (begin >= n) return Status::OK();
        RFID_RETURN_IF_ERROR(TickCancel());
        size_t end = std::min(n, begin + chunk);
        std::stable_sort(rows_.begin() + static_cast<ptrdiff_t>(begin),
                         rows_.begin() + static_cast<ptrdiff_t>(end),
                         [this](const Row& a, const Row& b) {
                           return CompareRows(a, b, keys_) < 0;
                         });
        return Status::OK();
      }));

  // Merge the runs; ties resolve to the lower chunk index, which together
  // with per-chunk stability reproduces a whole-input stable sort.
  std::vector<size_t> head(workers), tail(workers);
  size_t num_runs = 0;
  for (size_t w = 0; w < workers; ++w) {
    size_t begin = w * chunk;
    if (begin >= n) break;
    head[num_runs] = begin;
    tail[num_runs] = std::min(n, begin + chunk);
    ++num_runs;
  }
  std::vector<Row> merged;
  merged.reserve(n);
  while (true) {
    size_t best = num_runs;
    for (size_t r = 0; r < num_runs; ++r) {
      if (head[r] >= tail[r]) continue;
      if (best == num_runs ||
          CompareRows(rows_[head[r]], rows_[head[best]], keys_) < 0) {
        best = r;
      }
    }
    if (best == num_runs) break;
    merged.push_back(std::move(rows_[head[best]++]));
  }
  rows_ = std::move(merged);
  return Status::OK();
}

Result<bool> SortOp::NextImpl(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = std::move(rows_[pos_++]);
  ++rows_produced_;
  return true;
}

void SortOp::CloseImpl() {
  rows_.clear();
  rows_.shrink_to_fit();
  child_->Close();
}

std::string SortOp::detail() const {
  std::string out;
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    const Field& f = output_desc_.field(keys_[i].slot);
    if (!f.qualifier.empty()) out += f.qualifier + ".";
    out += f.name;
    if (!keys_[i].ascending) out += " DESC";
  }
  return out;
}

}  // namespace rfid
