#include "exec/sort.h"

#include <algorithm>

namespace rfid {

int CompareRows(const Row& a, const Row& b, const std::vector<SlotSortKey>& keys) {
  for (const SlotSortKey& k : keys) {
    const Value& va = a[k.slot];
    const Value& vb = b[k.slot];
    int c;
    if (va.is_null() || vb.is_null()) {
      // NULLs first: null < non-null.
      c = (va.is_null() ? 0 : 1) - (vb.is_null() ? 0 : 1);
    } else {
      c = va.Compare(vb);
    }
    if (c != 0) return k.ascending ? c : -c;
  }
  return 0;
}

SortOp::SortOp(OperatorPtr child, std::vector<SlotSortKey> keys)
    : Operator(child->output_desc()),
      child_(std::move(child)),
      keys_(std::move(keys)) {}

Status SortOp::OpenImpl() {
  pos_ = 0;
  rows_.clear();
  RFID_RETURN_IF_ERROR(DrainChildAccounted(child_.get(), &rows_));
  rows_sorted_ += rows_.size();
  std::stable_sort(rows_.begin(), rows_.end(), [this](const Row& a, const Row& b) {
    return CompareRows(a, b, keys_) < 0;
  });
  return Status::OK();
}

Result<bool> SortOp::NextImpl(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = std::move(rows_[pos_++]);
  ++rows_produced_;
  return true;
}

void SortOp::CloseImpl() {
  rows_.clear();
  rows_.shrink_to_fit();
  child_->Close();
}

std::string SortOp::detail() const {
  std::string out;
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    const Field& f = output_desc_.field(keys_[i].slot);
    if (!f.qualifier.empty()) out += f.qualifier + ".";
    out += f.name;
    if (!keys_[i].ascending) out += " DESC";
  }
  return out;
}

}  // namespace rfid
