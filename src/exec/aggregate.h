// Hash-based grouping aggregation and DISTINCT.
#ifndef RFID_EXEC_AGGREGATE_H_
#define RFID_EXEC_AGGREGATE_H_

#include <unordered_map>
#include <unordered_set>

#include "exec/operator.h"

namespace rfid {

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

AggFunc AggFuncFromName(const std::string& lower_name);
const char* AggFuncName(AggFunc f);

/// One aggregate to compute: FUNC([DISTINCT] arg). arg == nullptr means
/// COUNT(*).
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;       // bound against child output; null for COUNT(*)
  bool distinct = false;
  DataType result_type = DataType::kInt64;
};

/// Output layout: group key values (in key order) followed by aggregate
/// results.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<AggSpec> aggs, RowDesc output_desc);

  std::string name() const override { return "HashAggregate"; }
  std::string detail() const override;
  std::vector<const Operator*> children() const override { return {child_.get()}; }

  const std::vector<ExprPtr>& group_exprs() const { return group_exprs_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;

  std::vector<Row> results_;
  size_t pos_ = 0;
};

/// Removes duplicate rows (all columns).
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child);

  std::string name() const override { return "Distinct"; }
  std::vector<const Operator*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::unordered_set<Row, RowHash, RowEq> seen_;
};

}  // namespace rfid

#endif  // RFID_EXEC_AGGREGATE_H_
