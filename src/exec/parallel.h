// Intra-query parallelism: a process-wide worker pool, morsel-driven work
// distribution, and the policy the planner uses to pick a degree of
// parallelism (DOP).
//
// Execution model (morsel-driven, in the spirit of HyPer's scheduler):
// the query's coordinating thread runs the operator tree as usual; a
// parallel operator's Open() fans work out to the pool with ParallelRun
// and gathers results *in deterministic order* before streaming them to
// its parent. Workers claim fixed-size morsels from a MorselQueue (an
// atomic cursor, so claiming is wait-free) and write results into
// per-morsel slots, which makes the merged output independent of thread
// scheduling: parallel plans are bit-identical to serial ones.
//
// Threading contract:
//  - ParallelRun may only be called from a query's coordinating thread,
//    never from inside a pool task (tasks must not fan out again), so
//    queued tasks never wait on each other and the pool cannot deadlock.
//  - Worker closures may evaluate bound expressions (immutable once
//    bound), read table storage below the query's watermark, and charge
//    memory through Operator::ChargeMemory / ExecContext::ChargeMemory
//    (both atomic). They must check cancellation per morsel via
//    Operator::TickCancel so guardrail trips stop a parallel pipeline as
//    reliably as a serial one.
//  - Fault injection is thread-local; ChooseDop returns 1 while an
//    injector is installed so fail-at-step sweeps keep their exact
//    serial step ordering.
#ifndef RFID_EXEC_PARALLEL_H_
#define RFID_EXEC_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/status.h"

namespace rfid {

/// Planner policy for parallel execution, resolved once from the
/// environment (RFID_MAX_DOP, RFID_PARALLEL_MIN_ROWS) and hardware
/// concurrency; overridable for tests and DOP-sweep benchmarks.
struct ParallelPolicy {
  int max_dop = 1;                  // upper bound on per-operator DOP
  uint64_t min_parallel_rows = 0;   // serial below this estimated row count
};

/// The active policy (env/hardware defaults unless overridden).
ParallelPolicy CurrentParallelPolicy();

/// Overrides the policy process-wide (benchmark DOP sweeps, tests that
/// force parallel paths on small data). Pass max_dop = 0 to restore the
/// environment/hardware defaults.
void SetParallelPolicyForTest(int max_dop, uint64_t min_parallel_rows);

/// Degree of parallelism for an operator expected to process
/// `estimated_rows` input rows: 1 below the policy threshold (and always
/// 1 when RFID_PARALLEL is compiled off or a fault injector is installed
/// on this thread), otherwise scaled so each worker gets a meaningful
/// share of rows, capped at the policy's max_dop.
int ChooseDop(double estimated_rows);

/// Runs fn(worker_id) for worker ids [0, dop): shard 0 on the calling
/// thread, the rest on pool threads. Blocks until every shard finishes
/// and returns the lowest-worker-id error (OK if all succeeded). dop <= 1
/// degenerates to a plain call of fn(0).
Status ParallelRun(int dop, const std::function<Status(int)>& fn);

/// Wait-free distribution of [0, total) in fixed-size morsels. Workers
/// Claim() ranges; the morsel index lets them write results into
/// per-morsel slots so gathered output keeps input order regardless of
/// which worker claimed what.
class MorselQueue {
 public:
  MorselQueue(uint64_t total, uint64_t morsel_size)
      : total_(total),
        morsel_size_(morsel_size == 0 ? 1 : morsel_size),
        num_morsels_((total + morsel_size_ - 1) / morsel_size_) {}

  /// Claims the next unclaimed morsel; false when all are claimed.
  bool Claim(uint64_t* begin, uint64_t* end, uint64_t* morsel) {
    uint64_t m = next_.fetch_add(1, std::memory_order_relaxed);
    if (m >= num_morsels_) return false;
    *morsel = m;
    *begin = m * morsel_size_;
    *end = std::min(total_, *begin + morsel_size_);
    return true;
  }

  uint64_t num_morsels() const { return num_morsels_; }

 private:
  uint64_t total_;
  uint64_t morsel_size_;
  uint64_t num_morsels_;
  std::atomic<uint64_t> next_{0};
};

/// Scan morsel granularity, aligned with RowStore segments so a morsel
/// never straddles a segment boundary (rows of one morsel are contiguous
/// in memory and never move under a concurrent ingest writer).
inline constexpr uint64_t kScanMorselRows = 2048;

}  // namespace rfid

#endif  // RFID_EXEC_PARALLEL_H_
