// Blocking sort operator. NULLs sort first (ascending).
#ifndef RFID_EXEC_SORT_H_
#define RFID_EXEC_SORT_H_

#include "exec/operator.h"

namespace rfid {

/// A sort key bound to a slot of the child's output row.
struct SlotSortKey {
  size_t slot = 0;
  bool ascending = true;
};

/// Compares rows by the given keys; returns <0, 0, >0.
int CompareRows(const Row& a, const Row& b, const std::vector<SlotSortKey>& keys);

class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SlotSortKey> keys);

  std::string name() const override { return "Sort"; }
  std::string detail() const override;
  std::vector<const Operator*> children() const override { return {child_.get()}; }

  /// Total rows this operator has sorted across Opens — the experiments
  /// track sorting volume because sequence-ordering cost dominates
  /// cleansing (Section 6.2 of the paper).
  uint64_t rows_sorted() const { return rows_sorted_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<SlotSortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  uint64_t rows_sorted_ = 0;
};

}  // namespace rfid

#endif  // RFID_EXEC_SORT_H_
