// Blocking sort operator. NULLs sort first (ascending).
#ifndef RFID_EXEC_SORT_H_
#define RFID_EXEC_SORT_H_

#include "exec/operator.h"

namespace rfid {

/// A sort key bound to a slot of the child's output row.
struct SlotSortKey {
  size_t slot = 0;
  bool ascending = true;
};

/// Compares rows by the given keys; returns <0, 0, >0.
int CompareRows(const Row& a, const Row& b, const std::vector<SlotSortKey>& keys);

/// Blocking sort. With dop > 1 the input is split into contiguous
/// chunks, each worker stable-sorts its chunk (per-worker runs), and the
/// runs are merged with ties broken by chunk index — which reproduces
/// std::stable_sort of the whole input exactly, so parallel sort output
/// is bit-identical to serial.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<SlotSortKey> keys, int dop = 1);

  std::string name() const override { return "Sort"; }
  std::string detail() const override;
  std::vector<const Operator*> children() const override { return {child_.get()}; }

  /// Total rows this operator has sorted across Opens — the experiments
  /// track sorting volume because sequence-ordering cost dominates
  /// cleansing (Section 6.2 of the paper).
  uint64_t rows_sorted() const { return rows_sorted_; }

  const std::vector<SlotSortKey>& keys() const { return keys_; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  void CloseImpl() override;

 private:
  OperatorPtr child_;
  std::vector<SlotSortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  uint64_t rows_sorted_ = 0;
};

}  // namespace rfid

#endif  // RFID_EXEC_SORT_H_
