// UNION ALL: concatenates child streams. Children must have
// positionally compatible schemas; the output takes the first child's
// row descriptor with qualifiers cleared (a union result is a new
// derived relation).
#ifndef RFID_EXEC_UNION_ALL_H_
#define RFID_EXEC_UNION_ALL_H_

#include "exec/operator.h"

namespace rfid {

class UnionAllOp : public Operator {
 public:
  explicit UnionAllOp(std::vector<OperatorPtr> inputs);

  std::string name() const override { return "UnionAll"; }
  std::vector<const Operator*> children() const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Row* row) override;
  Result<bool> NextBatchImpl(RowBatch* batch) override;
  void CloseImpl() override;

 private:
  std::vector<OperatorPtr> inputs_;
  size_t current_ = 0;
};

}  // namespace rfid

#endif  // RFID_EXEC_UNION_ALL_H_
