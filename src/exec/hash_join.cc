#include "exec/hash_join.h"

namespace rfid {

namespace {
RowDesc JoinOutputDesc(const Operator& probe, const Operator& build,
                       JoinType type) {
  if (type == JoinType::kLeftSemi) return probe.output_desc();
  return RowDesc::Concat(probe.output_desc(), build.output_desc());
}
}  // namespace

bool HashJoinOp::ExtractKey(const Row& row, const std::vector<size_t>& slots,
                            std::vector<Value>* key) {
  key->clear();
  key->reserve(slots.size());
  for (size_t s : slots) {
    if (row[s].is_null()) return false;
    key->push_back(row[s]);
  }
  return true;
}

HashJoinOp::HashJoinOp(OperatorPtr probe, OperatorPtr build,
                       std::vector<size_t> probe_key_slots,
                       std::vector<size_t> build_key_slots, JoinType type)
    : Operator(JoinOutputDesc(*probe, *build, type)),
      probe_(std::move(probe)),
      build_(std::move(build)),
      probe_key_slots_(std::move(probe_key_slots)),
      build_key_slots_(std::move(build_key_slots)),
      type_(type) {}

// Rough per-entry bookkeeping overhead of the build hash table (bucket
// array slot, node header, key vector) on top of the row payload.
constexpr uint64_t kHashEntryOverheadBytes = 64;

Status HashJoinOp::OpenImpl() {
  table_.clear();
  current_matches_ = nullptr;
  match_pos_ = 0;
  std::vector<Row> build_rows;
  RFID_RETURN_IF_ERROR(DrainChildAccounted(build_.get(), &build_rows));
  std::vector<Value> key;
  for (Row& r : build_rows) {
    if (!ExtractKey(r, build_key_slots_, &key)) continue;
    auto& bucket = table_[key];
    if (type_ == JoinType::kLeftSemi && !bucket.empty()) continue;  // presence only
    RFID_RETURN_IF_ERROR(ChargeMemory(kHashEntryOverheadBytes));
    bucket.push_back(std::move(r));
  }
  return probe_->Open();
}

Result<bool> HashJoinOp::NextImpl(Row* row) {
  std::vector<Value> key;
  while (true) {
    if (current_matches_ != nullptr && match_pos_ < current_matches_->size()) {
      *row = current_probe_;
      const Row& build_row = (*current_matches_)[match_pos_++];
      row->insert(row->end(), build_row.begin(), build_row.end());
      ++rows_produced_;
      return true;
    }
    current_matches_ = nullptr;
    RFID_ASSIGN_OR_RETURN(bool has, probe_->Next(&current_probe_));
    if (!has) return false;
    if (!ExtractKey(current_probe_, probe_key_slots_, &key)) continue;
    auto it = table_.find(key);
    if (it == table_.end()) continue;
    if (type_ == JoinType::kLeftSemi) {
      *row = std::move(current_probe_);
      ++rows_produced_;
      return true;
    }
    current_matches_ = &it->second;
    match_pos_ = 0;
  }
}

void HashJoinOp::CloseImpl() {
  current_matches_ = nullptr;
  table_.clear();
  probe_->Close();
  build_->Close();
}

std::string HashJoinOp::detail() const {
  std::string out;
  for (size_t i = 0; i < probe_key_slots_.size(); ++i) {
    if (i > 0) out += " AND ";
    const Field& pf = probe_->output_desc().field(probe_key_slots_[i]);
    const Field& bf = build_->output_desc().field(build_key_slots_[i]);
    std::string lhs = pf.qualifier.empty() ? pf.name : pf.qualifier + "." + pf.name;
    std::string rhs = bf.qualifier.empty() ? bf.name : bf.qualifier + "." + bf.name;
    out += lhs + " = " + rhs;
  }
  return out;
}

}  // namespace rfid
