#include "exec/hash_join.h"

#include <algorithm>

#include "exec/parallel.h"

namespace rfid {

namespace {
RowDesc JoinOutputDesc(const Operator& probe, const Operator& build,
                       JoinType type) {
  if (type == JoinType::kLeftSemi) return probe.output_desc();
  return RowDesc::Concat(probe.output_desc(), build.output_desc());
}

// Probe rows per cancellation check / output-charge flush on the
// parallel probe path.
constexpr size_t kProbeTickRows = 1024;
}  // namespace

bool HashJoinOp::HasNullKey(const Row& row, const std::vector<size_t>& slots) {
  for (size_t s : slots) {
    if (row[s].is_null()) return true;
  }
  return false;
}

HashJoinOp::HashJoinOp(OperatorPtr probe, OperatorPtr build,
                       std::vector<size_t> probe_key_slots,
                       std::vector<size_t> build_key_slots, JoinType type,
                       int dop)
    : Operator(JoinOutputDesc(*probe, *build, type)),
      probe_(std::move(probe)),
      build_(std::move(build)),
      probe_key_slots_(std::move(probe_key_slots)),
      build_key_slots_(std::move(build_key_slots)),
      type_(type) {
  set_dop(dop);
}

// Rough per-entry bookkeeping overhead of the build hash table (bucket
// array slot, node header, key vector) on top of the row payload.
constexpr uint64_t kHashEntryOverheadBytes = 64;

Status HashJoinOp::BuildTables() {
  std::vector<Row> build_rows;
  RFID_RETURN_IF_ERROR(DrainChildAccounted(build_.get(), &build_rows));

  const size_t parts = tables_.size();
  if (parts == 1) {
    for (Row& r : build_rows) {
      if (HasNullKey(r, build_key_slots_)) continue;
      auto it = tables_[0].find(RowKeyView{&r, &build_key_slots_});
      if (it == tables_[0].end()) {
        std::vector<Value> key;
        key.reserve(build_key_slots_.size());
        for (size_t s : build_key_slots_) key.push_back(r[s]);
        it = tables_[0].emplace(std::move(key), std::vector<Row>()).first;
      }
      std::vector<Row>& bucket = it->second;
      if (type_ == JoinType::kLeftSemi && !bucket.empty()) continue;
      RFID_RETURN_IF_ERROR(ChargeMemory(kHashEntryOverheadBytes));
      bucket.push_back(std::move(r));
    }
    return Status::OK();
  }

  // Split rows by key-hash partition (order-preserving within each
  // partition), then build the partitions' tables in parallel. All rows
  // of one key share a partition, so per-bucket order — which fixes
  // inner-join match emission order and left-semi "first row wins" — is
  // the same as the serial single-table build.
  std::vector<std::vector<uint32_t>> part_rows(parts);
  {
    RowHash hasher;
    for (size_t i = 0; i < build_rows.size(); ++i) {
      if (HasNullKey(build_rows[i], build_key_slots_)) continue;
      part_rows[hasher(RowKeyView{&build_rows[i], &build_key_slots_}) % parts]
          .push_back(static_cast<uint32_t>(i));
    }
  }
  return ParallelRun(
      static_cast<int>(parts),
      [this, &part_rows, &build_rows](int w) -> Status {
        RFID_RETURN_IF_ERROR(TickCancel());
        HashTable& table = tables_[static_cast<size_t>(w)];
        uint64_t bytes = 0;
        for (uint32_t i : part_rows[static_cast<size_t>(w)]) {
          Row& r = build_rows[i];
          auto it = table.find(RowKeyView{&r, &build_key_slots_});
          if (it == table.end()) {
            std::vector<Value> key;
            key.reserve(build_key_slots_.size());
            for (size_t s : build_key_slots_) key.push_back(r[s]);
            it = table.emplace(std::move(key), std::vector<Row>()).first;
          }
          std::vector<Row>& bucket = it->second;
          if (type_ == JoinType::kLeftSemi && !bucket.empty()) continue;
          bytes += kHashEntryOverheadBytes;
          bucket.push_back(std::move(r));
        }
        return ChargeMemory(bytes);
      });
}

Status HashJoinOp::ParallelProbe() {
  std::vector<Row> probe_rows;
  RFID_RETURN_IF_ERROR(DrainChildAccounted(probe_.get(), &probe_rows));

  const size_t n = probe_rows.size();
  const size_t workers = static_cast<size_t>(dop());
  const size_t chunk = (n + workers - 1) / workers;
  const size_t parts = tables_.size();
  out_chunks_.assign(workers, {});
  return ParallelRun(
      static_cast<int>(workers),
      [this, &probe_rows, n, chunk, parts](int w) -> Status {
        size_t begin = static_cast<size_t>(w) * chunk;
        if (begin >= n) return Status::OK();
        size_t end = std::min(n, begin + chunk);
        std::vector<Row>& out = out_chunks_[static_cast<size_t>(w)];
        RowHash hasher;
        uint64_t pending_bytes = 0;
        for (size_t i = begin; i < end; ++i) {
          if ((i - begin) % kProbeTickRows == 0) {
            RFID_RETURN_IF_ERROR(TickCancel());
            if (pending_bytes > 0) {
              RFID_RETURN_IF_ERROR(ChargeMemory(pending_bytes));
              pending_bytes = 0;
            }
          }
          Row& probe_row = probe_rows[i];
          if (HasNullKey(probe_row, probe_key_slots_)) continue;
          RowKeyView view{&probe_row, &probe_key_slots_};
          const HashTable& table = tables_[hasher(view) % parts];
          auto it = table.find(view);
          if (it == table.end()) continue;
          if (type_ == JoinType::kLeftSemi) {
            pending_bytes += ApproxRowBytes(probe_row);
            out.push_back(std::move(probe_row));
            continue;
          }
          const std::vector<Row>& matches = it->second;
          for (size_t m = 0; m < matches.size(); ++m) {
            Row joined;
            if (m + 1 == matches.size()) {
              joined = std::move(probe_row);  // last match owns the probe row
            } else {
              joined = probe_row;
            }
            const Row& build_row = matches[m];
            joined.insert(joined.end(), build_row.begin(), build_row.end());
            pending_bytes += ApproxRowBytes(joined);
            out.push_back(std::move(joined));
          }
        }
        return pending_bytes > 0 ? ChargeMemory(pending_bytes) : Status::OK();
      });
}

Status HashJoinOp::OpenImpl() {
  tables_.clear();
  out_chunks_.clear();
  current_matches_ = nullptr;
  match_pos_ = 0;
  chunk_idx_ = 0;
  chunk_pos_ = 0;
  probe_row_ = 0;
  cur_row_ = 0;
  probe_done_ = false;
  probe_bytes_ = 0;
  materialized_ = dop() > 1;
  tables_.resize(materialized_ ? static_cast<size_t>(dop()) : 1);
  RFID_RETURN_IF_ERROR(BuildTables());
  if (materialized_) return ParallelProbe();
  return probe_->Open();
}

Result<bool> HashJoinOp::NextImpl(Row* row) {
  if (materialized_) {
    while (chunk_idx_ < out_chunks_.size()) {
      std::vector<Row>& out = out_chunks_[chunk_idx_];
      if (chunk_pos_ < out.size()) {
        *row = std::move(out[chunk_pos_++]);
        ++rows_produced_;
        return true;
      }
      out.clear();
      out.shrink_to_fit();
      ++chunk_idx_;
      chunk_pos_ = 0;
    }
    return false;
  }
  while (true) {
    if (current_matches_ != nullptr && match_pos_ < current_matches_->size()) {
      const Row& build_row = (*current_matches_)[match_pos_++];
      if (match_pos_ == current_matches_->size()) {
        *row = std::move(current_probe_);  // last match owns the probe row
      } else {
        *row = current_probe_;
      }
      row->insert(row->end(), build_row.begin(), build_row.end());
      ++rows_produced_;
      return true;
    }
    current_matches_ = nullptr;
    RFID_ASSIGN_OR_RETURN(bool has, probe_->Next(&current_probe_));
    if (!has) return false;
    if (HasNullKey(current_probe_, probe_key_slots_)) continue;
    auto it = tables_[0].find(RowKeyView{&current_probe_, &probe_key_slots_});
    if (it == tables_[0].end()) continue;
    if (type_ == JoinType::kLeftSemi) {
      *row = std::move(current_probe_);
      ++rows_produced_;
      return true;
    }
    current_matches_ = &it->second;
    match_pos_ = 0;
  }
}

Result<bool> HashJoinOp::NextBatchImpl(RowBatch* batch) {
  if (materialized_) return Operator::NextBatchImpl(batch);
  const size_t probe_width = probe_->output_desc().num_fields();
  while (!batch->full()) {
    if (current_matches_ != nullptr) {
      if (match_pos_ < current_matches_->size()) {
        const Row& build_row = (*current_matches_)[match_pos_++];
        for (size_t c = 0; c < probe_width; ++c) {
          batch->col(c).AppendFrom(probe_batch_.col(c), cur_row_);
        }
        for (size_t c = 0; c < build_row.size(); ++c) {
          batch->col(probe_width + c).AppendValue(build_row[c]);
        }
        batch->set_num_rows(batch->num_rows() + 1);
        continue;
      }
      current_matches_ = nullptr;
    }
    if (probe_row_ >= probe_batch_.num_rows()) {
      if (probe_done_) break;
      RFID_ASSIGN_OR_RETURN(bool has, probe_->NextBatch(&probe_batch_));
      if (!has) {
        probe_done_ = true;
        break;
      }
      ReleaseMemory(probe_bytes_);
      probe_bytes_ = 0;
      const uint64_t bytes = probe_batch_.ApproxBytes();
      RFID_RETURN_IF_ERROR(ChargeMemory(bytes));
      probe_bytes_ = bytes;
      probe_row_ = 0;
      continue;
    }
    const size_t r = probe_row_++;
    bool null_key = false;
    for (size_t s : probe_key_slots_) {
      if (probe_batch_.col(s).is_null(r)) {
        null_key = true;
        break;
      }
    }
    if (null_key) continue;
    auto it = tables_[0].find(BatchKeyView{&probe_batch_, r, &probe_key_slots_});
    if (it == tables_[0].end()) continue;
    if (type_ == JoinType::kLeftSemi) {
      batch->AppendGathered(probe_batch_, r);
      continue;
    }
    cur_row_ = r;
    current_matches_ = &it->second;
    match_pos_ = 0;
  }
  rows_produced_ += batch->num_rows();
  return !batch->empty();
}

void HashJoinOp::CloseImpl() {
  current_matches_ = nullptr;
  tables_.clear();
  out_chunks_.clear();
  out_chunks_.shrink_to_fit();
  probe_batch_.ResetColumns(0);
  probe_->Close();
  build_->Close();
}

std::string HashJoinOp::detail() const {
  std::string out;
  for (size_t i = 0; i < probe_key_slots_.size(); ++i) {
    if (i > 0) out += " AND ";
    const Field& pf = probe_->output_desc().field(probe_key_slots_[i]);
    const Field& bf = build_->output_desc().field(build_key_slots_[i]);
    std::string lhs = pf.qualifier.empty() ? pf.name : pf.qualifier + "." + pf.name;
    std::string rhs = bf.qualifier.empty() ? bf.name : bf.qualifier + "." + bf.name;
    out += lhs + " = " + rhs;
  }
  return out;
}

}  // namespace rfid
