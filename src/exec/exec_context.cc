#include "exec/exec_context.h"

#include "common/string_util.h"

namespace rfid {

ExecContext::ExecContext(const ExecLimits& limits) : limits_(limits) {
  if (limits_.timeout_micros > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::microseconds(limits_.timeout_micros);
  }
}

ExecContext* ExecContext::Default() {
  static ExecContext* ctx = new ExecContext();
  return ctx;
}

Status ExecContext::ChargeMemory(uint64_t bytes) {
  uint64_t used =
      memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limits_.memory_budget_bytes > 0 && used > limits_.memory_budget_bytes) {
    memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::ResourceExhausted(StrFormat(
        "query memory budget exceeded: %llu bytes needed, budget %llu bytes",
        static_cast<unsigned long long>(used),
        static_cast<unsigned long long>(limits_.memory_budget_bytes)));
  }
  uint64_t peak = memory_peak_.load(std::memory_order_relaxed);
  while (used > peak &&
         !memory_peak_.compare_exchange_weak(peak, used,
                                             std::memory_order_relaxed)) {
  }
  return Status::OK();
}

void ExecContext::ReleaseMemory(uint64_t bytes) {
  memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

void ExecContext::RequestCancel(std::string reason) {
  cancel_reason_ = std::move(reason);
  cancelled_.store(true, std::memory_order_release);
}

Status ExecContext::CheckCancelled() {
  uint64_t n = checks_.fetch_add(1, std::memory_order_relaxed);
  if (cancelled_.load(std::memory_order_acquire)) {
    return Status::Cancelled(cancel_reason_.empty() ? "query cancelled"
                                                    : cancel_reason_);
  }
  if (has_deadline_) {
    if (deadline_hit_.load(std::memory_order_relaxed) ||
        (n % kDeadlineStride == 0 &&
         std::chrono::steady_clock::now() > deadline_)) {
      deadline_hit_.store(true, std::memory_order_relaxed);
      return Status::DeadlineExceeded(StrFormat(
          "query deadline exceeded (timeout %lld us)",
          static_cast<long long>(limits_.timeout_micros)));
    }
  }
  return Status::OK();
}

void ExecContext::BindFragment(std::string name, FragmentBinding binding) {
  fragments_[ToLower(name)] = std::move(binding);
}

const FragmentBinding* ExecContext::FindFragment(std::string_view name) const {
  if (fragments_.empty()) return nullptr;
  auto it = fragments_.find(ToLower(name));
  return it == fragments_.end() ? nullptr : &it->second;
}

uint64_t ApproxValueBytes(const Value& v) {
  uint64_t b = sizeof(Value);
  if (v.type() == DataType::kString) b += v.string_value().capacity();
  return b;
}

uint64_t ApproxRowBytes(const Row& row) {
  uint64_t b = sizeof(Row);
  for (const Value& v : row) b += ApproxValueBytes(v);
  return b;
}

}  // namespace rfid
