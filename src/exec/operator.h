// Volcano-style physical operator interface. Operators are built by the
// planner with all expressions already bound to child output slots.
//
// Blocking operators (sort, hash join build, aggregate, window)
// materialize on Open(); streaming operators (scan, filter, project)
// produce rows on demand. Each operator counts output rows so EXPLAIN can
// report actual cardinalities — the experiments lean on these counters to
// show *why* a rewrite wins (rows cleansed, rows sorted).
#ifndef RFID_EXEC_OPERATOR_H_
#define RFID_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/eval.h"

namespace rfid {

class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and recursively its inputs) for iteration.
  /// Blocking operators do their work here.
  virtual Status Open() = 0;

  /// Produces the next row. Returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;

  virtual void Close() {}

  const RowDesc& output_desc() const { return output_desc_; }

  /// Rows emitted so far (reset by Open).
  uint64_t rows_produced() const { return rows_produced_; }

  /// Operator name and per-operator detail for EXPLAIN.
  virtual std::string name() const = 0;
  virtual std::string detail() const { return ""; }

  /// Children, for plan printing.
  virtual std::vector<const Operator*> children() const { return {}; }

 protected:
  explicit Operator(RowDesc output_desc) : output_desc_(std::move(output_desc)) {}

  RowDesc output_desc_;
  uint64_t rows_produced_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Hash/equality over whole rows or key tuples (SQL DISTINCT semantics:
/// NULLs compare equal).
struct RowHash {
  size_t operator()(const std::vector<Value>& row) const {
    size_t h = 0x345678;
    for (const Value& v : row) h = h * 1000003 + v.Hash();
    return h;
  }
};
struct RowEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].DistinctEquals(b[i])) return false;
    }
    return true;
  }
};

/// Drains the operator into a vector of rows (Open/Next/Close).
Result<std::vector<Row>> CollectRows(Operator* op);

/// Renders the operator tree with actual row counts, one node per line.
std::string ExplainOperatorTree(const Operator& root);

}  // namespace rfid

#endif  // RFID_EXEC_OPERATOR_H_
