// Volcano-style physical operator interface. Operators are built by the
// planner with all expressions already bound to child output slots.
//
// Blocking operators (sort, hash join build, aggregate, window)
// materialize on Open(); streaming operators (scan, filter, project)
// produce rows on demand. Each operator counts output rows so EXPLAIN can
// report actual cardinalities — the experiments lean on these counters to
// show *why* a rewrite wins (rows cleansed, rows sorted).
//
// Execution guardrails: the public Open()/Next()/Close() are non-virtual
// guards around the OpenImpl/NextImpl/CloseImpl hooks subclasses
// implement. The guards thread an ExecContext through the tree (memory
// budget, cancellation token, wall-clock deadline), cross a fault
// injection point per call, and make Close() idempotent — it runs the
// subclass cleanup exactly once per Open and then returns every byte the
// operator charged, so a budget trip mid-Open unwinds leak-free.
#ifndef RFID_EXEC_OPERATOR_H_
#define RFID_EXEC_OPERATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.h"
#include "expr/eval.h"
#include "expr/row_batch.h"

namespace rfid {

class Operator {
 public:
  virtual ~Operator() = default;

  /// Prepares the operator (and recursively its inputs) for iteration.
  /// Blocking operators do their work here. If Open fails midway, the
  /// tree is left in a state where Close() still unwinds it cleanly.
  Status Open();

  /// Produces the next row. Returns false at end of stream. Checks the
  /// cancellation token / deadline on every call.
  Result<bool> Next(Row* row);

  /// Produces the next batch of rows (vectorized pull). Returns false at
  /// end of stream; on true the batch holds at least one row. The guard
  /// clears/shapes *batch to this operator's output descriptor, checks
  /// cancellation and crosses a fault point once per batch — the
  /// accounting granularity of the batch engine. Every operator is
  /// batch-drivable: the default NextBatchImpl adapts row-at-a-time
  /// operators by looping NextImpl, while batch-native operators
  /// override it. Do not interleave Next and NextBatch on one operator
  /// between Open and Close.
  Result<bool> NextBatch(RowBatch* batch);

  /// Releases operator state and accounted memory, recursively.
  /// Idempotent: safe to call multiple times, after a failed Open, or on
  /// a never-opened operator.
  void Close();

  /// Binds the execution context to this subtree. Called by CollectRows /
  /// the SQL executor on the root; operators opened without an explicit
  /// bind fall back to the unlimited default context.
  void BindExecContext(ExecContext* ctx);
  ExecContext* exec_context() const {
    return ctx_ != nullptr ? ctx_ : ExecContext::Default();
  }

  const RowDesc& output_desc() const { return output_desc_; }

  /// Rows emitted so far (reset by Open).
  uint64_t rows_produced() const { return rows_produced_; }

  /// Peak bytes this operator had charged against the query budget.
  uint64_t memory_peak_bytes() const {
    return mem_peak_.load(std::memory_order_relaxed);
  }

  /// Cancellation/deadline checks this operator performed (one per Open
  /// and per Next call, plus one per morsel from parallel workers). The
  /// counter is atomic so EXPLAIN totals stay exact under parallel
  /// execution.
  uint64_t cancel_checks() const {
    return cancel_checks_.load(std::memory_order_relaxed);
  }

  /// Degree of parallelism the planner chose for this operator (1 =
  /// serial). Printed as dop= by ExplainOperatorTree.
  int dop() const { return dop_; }

  /// Operator name and per-operator detail for EXPLAIN.
  virtual std::string name() const = 0;
  virtual std::string detail() const { return ""; }

  /// Children, for plan printing.
  virtual std::vector<const Operator*> children() const { return {}; }

 protected:
  explicit Operator(RowDesc output_desc) : output_desc_(std::move(output_desc)) {}

  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Row* row) = 0;
  virtual void CloseImpl() {}

  /// Batch production hook. The default implementation fills *batch by
  /// looping NextImpl until the batch is full or the stream ends, so any
  /// operator can sit under a batch-driven parent. Overrides share
  /// cursor state with NextImpl (both paths must drain the same stream).
  virtual Result<bool> NextBatchImpl(RowBatch* batch);

  /// Charges bytes to the query budget, attributed to this operator.
  /// Everything charged is released automatically on Close(). Thread-safe
  /// (atomic accounting at both the operator and the context level), so
  /// parallel workers charge directly.
  Status ChargeMemory(uint64_t bytes);

  /// Returns bytes previously charged with ChargeMemory before Close —
  /// used by streaming batch operators that recharge a bounded scratch
  /// batch on every refill. Release only what was actually charged.
  void ReleaseMemory(uint64_t bytes);

  /// Open-drains-close `child` into *out, charging every materialized row
  /// to this operator's budget. Pulls batches when the vectorized engine
  /// is on (cancellation and charges per batch), rows otherwise
  /// (cancellation per row). Coordinator-thread only.
  Status DrainChildAccounted(Operator* child, std::vector<Row>* out);

  /// Cooperative cancellation/deadline check for parallel workers,
  /// counted against this operator exactly like the Open/Next guards.
  /// Call once per claimed morsel.
  Status TickCancel();

  /// Records the planner's parallelism decision (constructor-time).
  void set_dop(int dop) { dop_ = dop < 1 ? 1 : dop; }

  RowDesc output_desc_;
  uint64_t rows_produced_ = 0;

 private:
  ExecContext* ctx_ = nullptr;
  bool open_ = false;
  int dop_ = 1;
  std::atomic<uint64_t> mem_charged_{0};
  std::atomic<uint64_t> mem_peak_{0};
  std::atomic<uint64_t> cancel_checks_{0};
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Closes an operator tree on scope exit — the RAII guard CollectRows and
/// the SQL executor use so early error returns still unwind the tree.
class OperatorTreeCloser {
 public:
  explicit OperatorTreeCloser(Operator* op) : op_(op) {}
  ~OperatorTreeCloser() {
    if (op_ != nullptr) op_->Close();
  }
  OperatorTreeCloser(const OperatorTreeCloser&) = delete;
  OperatorTreeCloser& operator=(const OperatorTreeCloser&) = delete;

 private:
  Operator* op_;
};

/// Non-owning views of a key tuple — selected slots of a row or of a
/// batch row. Hash-compatible with materialized std::vector<Value> keys
/// (see RowHash/RowEq below), so hash probes never box a key per row.
struct RowKeyView {
  const Row* row;
  const std::vector<size_t>* slots;
};
struct BatchKeyView {
  const RowBatch* batch;
  size_t row;
  const std::vector<size_t>* slots;
};

/// Hash/equality over whole rows or key tuples (SQL DISTINCT semantics:
/// NULLs compare equal). Transparent: the view types above hash and
/// compare against stored key vectors without materializing.
struct RowHash {
  using is_transparent = void;
  size_t operator()(const std::vector<Value>& row) const {
    size_t h = 0x345678;
    for (const Value& v : row) h = h * 1000003 + v.Hash();
    return h;
  }
  size_t operator()(const RowKeyView& v) const {
    size_t h = 0x345678;
    for (size_t s : *v.slots) h = h * 1000003 + (*v.row)[s].Hash();
    return h;
  }
  size_t operator()(const BatchKeyView& v) const {
    size_t h = 0x345678;
    for (size_t s : *v.slots) h = h * 1000003 + EntryHash(v.batch->col(s), v.row);
    return h;
  }
};
struct RowEq {
  using is_transparent = void;
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].DistinctEquals(b[i])) return false;
    }
    return true;
  }
  bool operator()(const std::vector<Value>& a, const RowKeyView& b) const {
    if (a.size() != b.slots->size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].DistinctEquals((*b.row)[(*b.slots)[i]])) return false;
    }
    return true;
  }
  bool operator()(const RowKeyView& a, const std::vector<Value>& b) const {
    return (*this)(b, a);
  }
  bool operator()(const std::vector<Value>& a, const BatchKeyView& b) const {
    if (a.size() != b.slots->size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!EntryEqualsValue(b.batch->col((*b.slots)[i]), b.row, a[i])) {
        return false;
      }
    }
    return true;
  }
  bool operator()(const BatchKeyView& a, const std::vector<Value>& b) const {
    return (*this)(b, a);
  }
};

/// Drains the operator into a vector of rows (Open/Next/Close). When
/// `ctx` is non-null it is bound to the tree first; accumulated result
/// rows are charged against its budget and its output-row limit is
/// enforced. The tree is always closed, success or error.
Result<std::vector<Row>> CollectRows(Operator* op, ExecContext* ctx = nullptr);

/// Renders the operator tree with actual row counts, peak accounted
/// memory, cancellation-check counts, and per-operator degree of
/// parallelism (dop=), one node per line.
std::string ExplainOperatorTree(const Operator& root);

/// Largest dop() anywhere in the tree — the planner's effective
/// serial-vs-parallel decision for the whole query.
int MaxTreeDop(const Operator& root);

}  // namespace rfid

#endif  // RFID_EXEC_OPERATOR_H_
