#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "common/fault.h"
#include "common/simd.h"
#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/fragment.h"
#include "exec/hash_join.h"
#include "exec/parallel.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/union_all.h"
#include "exec/window.h"
#include "expr/conjunct.h"
#include "expr/interval.h"
#include "plan/cost_model.h"
#include "sql/parser.h"
#include "verify/plan_verifier.h"
#include "verify/verify.h"

namespace rfid {

namespace {

// An operator subtree plus planner bookkeeping.
struct PlanNode {
  OperatorPtr op;
  double rows = 0;
  double cost = 0;
  std::vector<SlotSortKey> ordering;  // guaranteed output order
  const Table* base_table = nullptr;  // for (filtered) base scans
};

// True if `current` ordering satisfies `required` as a prefix.
bool OrderingSatisfies(const std::vector<SlotSortKey>& current,
                       const std::vector<SlotSortKey>& required) {
  if (required.size() > current.size()) return false;
  for (size_t i = 0; i < required.size(); ++i) {
    if (current[i].slot != required[i].slot ||
        current[i].ascending != required[i].ascending) {
      return false;
    }
  }
  return true;
}

// Replaces nodes by pointer identity (used to swap window/aggregate calls
// for references to their computed columns).
ExprPtr ReplaceNodes(const ExprPtr& e,
                     const std::map<const Expr*, ExprPtr>& replacements) {
  if (e == nullptr) return nullptr;
  auto it = replacements.find(e.get());
  if (it != replacements.end()) return it->second;
  auto copy = std::make_shared<Expr>(*e);
  bool changed = false;
  for (auto& child : copy->children) {
    ExprPtr nc = ReplaceNodes(child, replacements);
    if (nc != child) changed = true;
    child = nc;
  }
  return changed ? copy : e;
}

// Collects window-function call nodes in evaluation order.
void CollectWindowCalls(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kFuncCall && e->window.has_value()) {
    out->push_back(e);
    return;  // nested window calls are not supported
  }
  for (const auto& c : e->children) CollectWindowCalls(c, out);
}

// Collects plain aggregate call nodes.
void CollectAggCalls(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kFuncCall && !e->window.has_value()) {
    const std::string& f = e->func_name;
    if (f == "count" || f == "sum" || f == "avg" || f == "min" || f == "max") {
      out->push_back(e);
      return;
    }
  }
  for (const auto& c : e->children) CollectAggCalls(c, out);
}

bool WindowSpecsCompatible(const WindowSpec& a, const WindowSpec& b) {
  if (a.partition_by.size() != b.partition_by.size() ||
      a.order_by.size() != b.order_by.size()) {
    return false;
  }
  for (size_t i = 0; i < a.partition_by.size(); ++i) {
    if (!ExprEquals(a.partition_by[i], b.partition_by[i])) return false;
  }
  for (size_t i = 0; i < a.order_by.size(); ++i) {
    if (!ExprEquals(a.order_by[i].expr, b.order_by[i].expr) ||
        a.order_by[i].ascending != b.order_by[i].ascending) {
      return false;
    }
  }
  return true;
}

DataType AggResultType(AggFunc func, DataType arg_type) {
  switch (func) {
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg_type;
    case AggFunc::kSum:
      return arg_type == DataType::kDouble || arg_type == DataType::kInterval
                 ? arg_type
                 : DataType::kInt64;
    case AggFunc::kAvg:
      return arg_type == DataType::kInterval ? DataType::kInterval
                                             : DataType::kDouble;
  }
  return DataType::kNull;
}

bool IsAggName(const std::string& f) {
  return f == "count" || f == "sum" || f == "avg" || f == "min" || f == "max";
}

class PlannerImpl {
 public:
  explicit PlannerImpl(const Database* db, ExecContext* ctx)
      : db_(db), ctx_(ctx) {}

  // The epoch snapshot pinned on the execution context, if any: planning
  // under a snapshot must use its watermark (cardinality), its pinned
  // indexes (access-path choice), and its statistics version
  // (selectivity) so the plan matches what execution will see.
  const TableSnapshot* SnapshotFor(const Table* table) const {
    if (ctx_ == nullptr || table == nullptr) return nullptr;
    const SnapshotPtr& snap = ctx_->snapshot();
    return snap == nullptr ? nullptr : snap->ForTable(table);
  }

  StatsView ViewFor(const Table* table) const {
    if (const TableSnapshot* ts = SnapshotFor(table)) return ts->stats_view();
    return table != nullptr ? table->CurrentStatsView() : StatsView{};
  }

  // Phase-boundary invariant check (no-op unless verification is on).
  // Partial trees are fine: every phase leaves a well-formed subtree.
  Status Verify(const Operator& op, const char* phase) const {
    if (!VerifyEnabled()) return Status::OK();
    return VerifyPlan(op, phase, ctx_);
  }

  // `scope` holds enclosing WITH clauses, innermost last.
  Result<PlanNode> PlanStatement(const SelectStatement& stmt,
                                 std::vector<const WithClause*> scope) {
    for (const WithClause& w : stmt.with) {
      scope.push_back(&w);
    }
    std::vector<PlanNode> cores;
    cores.reserve(stmt.cores.size());
    for (const SelectCore& core : stmt.cores) {
      RFID_ASSIGN_OR_RETURN(PlanNode node, PlanCore(core, scope));
      cores.push_back(std::move(node));
    }
    PlanNode result;
    if (cores.size() == 1) {
      result = std::move(cores[0]);
    } else {
      size_t arity = cores[0].op->output_desc().num_fields();
      double rows = 0;
      double cost = 0;
      std::vector<OperatorPtr> inputs;
      for (PlanNode& n : cores) {
        if (n.op->output_desc().num_fields() != arity) {
          return Status::BindError("UNION ALL inputs have different arity");
        }
        rows += n.rows;
        cost += n.cost;
        inputs.push_back(std::move(n.op));
      }
      result.op = std::make_unique<UnionAllOp>(std::move(inputs));
      result.rows = rows;
      result.cost = cost;
    }
    if (stmt.limit >= 0) {
      // LIMIT is applied after ORDER BY (below) when one exists.
    }
    if (!stmt.order_by.empty()) {
      std::vector<SlotSortKey> keys;
      for (const SortKey& k : stmt.order_by) {
        RFID_ASSIGN_OR_RETURN(ExprPtr bound,
                              BindExpr(k.expr, result.op->output_desc()));
        if (bound->kind != ExprKind::kColumnRef) {
          return Status::Unimplemented("ORDER BY requires plain columns");
        }
        keys.push_back({static_cast<size_t>(bound->slot), k.ascending});
      }
      int dop = ChooseDop(result.rows);
      result.cost += SortCost(result.rows) / dop;
      result.op = std::make_unique<SortOp>(std::move(result.op), keys, dop);
      result.ordering = keys;
    }
    if (stmt.limit >= 0) {
      std::vector<SlotSortKey> ordering = result.ordering;
      result.op = std::make_unique<LimitOp>(std::move(result.op), stmt.limit);
      result.rows = std::min(result.rows, static_cast<double>(stmt.limit));
      result.ordering = std::move(ordering);
    }
    return result;
  }

 private:
  struct Source {
    TableRef ref;
    const Table* table = nullptr;  // null for CTE-backed sources
    const WithClause* cte = nullptr;
    RowDesc desc;                       // fields qualified with the alias
    std::vector<ExprPtr> local_conjuncts;
    std::vector<const WithClause*> cte_scope;  // scope for planning the CTE
    PlanNode node;                      // built lazily
    bool built = false;
    bool joined = false;
  };

  struct JoinEdge {
    size_t left_source;
    std::string left_column;
    size_t right_source;
    std::string right_column;
    bool used = false;
  };

  struct SemiJoin {
    size_t source;
    std::string column;
    const SelectStatement* subquery;
  };

  /// Plans a fragment-bound source: a direct scan over the cached rows,
  /// or — on a cache miss — the binding's fill statement wrapped in a
  /// materializing tee that publishes the completed fragment.
  Result<PlanNode> PlanFragment(const TableRef& ref,
                                const FragmentBinding& fb) {
    RowDesc desc;  // the binding's fields, requalified with the alias
    for (const Field& f : fb.desc.fields()) {
      desc.AddField(ref.alias, f.name, f.type);
    }
    PlanNode node;
    if (fb.rows != nullptr) {
      node.rows = static_cast<double>(fb.rows->size());
      node.cost = node.rows * kSeqRowCost;
      node.op = std::make_unique<FragmentScanOp>(std::move(desc),
                                                 ref.table_name, fb.rows);
      return node;
    }
    RFID_ASSIGN_OR_RETURN(StatementPtr fill, ParseSql(fb.fill_sql));
    RFID_ASSIGN_OR_RETURN(PlanNode sub, PlanStatement(*fill, {}));
    node.rows = sub.rows;
    node.cost = sub.cost + sub.rows * kSeqRowCost;
    node.ordering = sub.ordering;
    node.op = std::make_unique<FragmentMaterializeOp>(
        std::move(desc), ref.table_name, std::move(sub.op), fb.on_filled);
    return node;
  }

  Result<PlanNode> PlanCore(const SelectCore& core,
                            const std::vector<const WithClause*>& scope) {
    if (core.from.empty()) {
      return Status::Unimplemented("SELECT without FROM");
    }
    // --- resolve sources ---
    std::vector<Source> sources;
    for (const TableRef& ref : core.from) {
      Source s;
      s.ref = ref;
      // Innermost WITH clause wins; a clause may only refer to earlier ones.
      const WithClause* cte = nullptr;
      std::vector<const WithClause*> cte_scope;
      for (size_t i = scope.size(); i > 0; --i) {
        if (EqualsIgnoreCase(scope[i - 1]->name, ref.table_name)) {
          cte = scope[i - 1];
          cte_scope.assign(scope.begin(), scope.begin() + (i - 1));
          break;
        }
      }
      if (cte != nullptr) {
        s.cte = cte;
        s.cte_scope = std::move(cte_scope);
        // Descriptor comes from planning once; to avoid planning twice we
        // plan now and keep the node.
        RFID_ASSIGN_OR_RETURN(PlanNode sub,
                              PlanStatement(*cte->body, s.cte_scope));
        sub.cost += 0;  // materialization is free in this engine
        sub.op = std::make_unique<RenameOp>(std::move(sub.op), ref.alias);
        s.desc = sub.op->output_desc();
        s.node = std::move(sub);
        s.built = true;
      } else {
        const Table* table = db_->GetTable(ref.table_name);
        if (table == nullptr) {
          // Fragment bindings (cleansed-fragment cache) resolve names that
          // match neither a CTE nor a catalog table.
          const FragmentBinding* fb =
              ctx_ == nullptr ? nullptr : ctx_->FindFragment(ref.table_name);
          if (fb == nullptr) {
            return Status::NotFound("table not found: " + ref.table_name);
          }
          RFID_ASSIGN_OR_RETURN(PlanNode sub, PlanFragment(ref, *fb));
          s.desc = sub.op->output_desc();
          s.node = std::move(sub);
          s.built = true;
        } else {
          s.table = table;
          s.desc = RowDesc::FromSchema(table->schema(), ref.alias);
        }
      }
      sources.push_back(std::move(s));
    }
    // Reject duplicate aliases.
    for (size_t i = 0; i < sources.size(); ++i) {
      for (size_t j = i + 1; j < sources.size(); ++j) {
        if (EqualsIgnoreCase(sources[i].ref.alias, sources[j].ref.alias)) {
          return Status::BindError("duplicate table alias: " +
                                   sources[i].ref.alias);
        }
      }
    }

    // --- qualify and classify WHERE conjuncts ---
    std::vector<JoinEdge> edges;
    std::vector<SemiJoin> semis;
    std::vector<ExprPtr> residual;
    for (const ExprPtr& raw : SplitConjuncts(core.where)) {
      RFID_ASSIGN_OR_RETURN(ExprPtr c, QualifyExpr(raw, sources));
      c = FoldConstants(c);
      if (c->kind == ExprKind::kInSubquery) {
        const ExprPtr& probe = c->children[0];
        if (probe->kind != ExprKind::kColumnRef) {
          return Status::Unimplemented(
              "IN (SELECT ...) requires a plain column probe");
        }
        RFID_ASSIGN_OR_RETURN(size_t src, SourceIndex(sources, probe->qualifier));
        semis.push_back({src, probe->column, c->subquery.get()});
        continue;
      }
      // Equi-join between two different sources?
      if (c->kind == ExprKind::kBinary && c->op == BinaryOp::kEq &&
          c->children[0]->kind == ExprKind::kColumnRef &&
          c->children[1]->kind == ExprKind::kColumnRef &&
          !EqualsIgnoreCase(c->children[0]->qualifier,
                            c->children[1]->qualifier)) {
        RFID_ASSIGN_OR_RETURN(size_t l,
                              SourceIndex(sources, c->children[0]->qualifier));
        RFID_ASSIGN_OR_RETURN(size_t r,
                              SourceIndex(sources, c->children[1]->qualifier));
        edges.push_back(
            {l, c->children[0]->column, r, c->children[1]->column, false});
        continue;
      }
      std::set<std::string> quals = ReferencedQualifiers(c);
      if (quals.size() == 1) {
        RFID_ASSIGN_OR_RETURN(size_t src, SourceIndex(sources, *quals.begin()));
        sources[src].local_conjuncts.push_back(c);
        continue;
      }
      if (quals.empty()) {
        // Constant predicate; evaluate per row on the first source.
        sources[0].local_conjuncts.push_back(c);
        continue;
      }
      residual.push_back(c);
    }

    // --- build source access paths ---
    for (Source& s : sources) {
      double sub_cost = 0;
      for (ExprPtr& c : s.local_conjuncts) {
        RFID_ASSIGN_OR_RETURN(c, MaterializeSubqueries(c, scope, &sub_cost));
      }
      s.node.cost += sub_cost;  // no-op for unbuilt sources (cost added below)
      if (!s.built) {
        RFID_ASSIGN_OR_RETURN(s.node, BuildBaseAccess(s));
        s.built = true;
      } else if (!s.local_conjuncts.empty()) {
        // Local predicates over a CTE output: plain filter.
        RFID_ASSIGN_OR_RETURN(
            ExprPtr pred,
            BindExpr(CombineConjuncts(s.local_conjuncts), s.node.op->output_desc()));
        double sel = EstimateSelectivity(s.local_conjuncts, nullptr);
        s.node.cost += s.node.rows * kFilterEvalCost *
                       static_cast<double>(s.local_conjuncts.size());
        s.node.rows *= sel;
        std::vector<SlotSortKey> ordering = s.node.ordering;
        s.node.op = std::make_unique<FilterOp>(std::move(s.node.op), pred);
        s.node.ordering = std::move(ordering);
      }
      // Predicate pushdown, index selection and scan DOP assignment are
      // settled for this source: check the access path.
      RFID_RETURN_IF_ERROR(Verify(*s.node.op, "access-path"));
    }

    // --- apply semi-joins (IN subqueries) ---
    for (const SemiJoin& sj : semis) {
      Source& s = sources[sj.source];
      RFID_ASSIGN_OR_RETURN(PlanNode sub, PlanStatement(*sj.subquery, scope));
      if (sub.op->output_desc().num_fields() != 1) {
        return Status::BindError("IN subquery must produce exactly one column");
      }
      RFID_ASSIGN_OR_RETURN(size_t probe_slot,
                            s.node.op->output_desc().Resolve(s.ref.alias, sj.column));
      double probe_ndv =
          ColumnNdv(ViewFor(s.table), sj.column, std::max(1.0, s.node.rows));
      double sel = std::min(1.0, sub.rows / std::max(1.0, probe_ndv));
      double out_rows = s.node.rows * sel;
      // Join DOP follows the probe side: build/probe work parallelizes,
      // so its wall-clock cost shrinks by the chosen dop.
      int dop = ChooseDop(s.node.rows);
      double cost = s.node.cost + sub.cost +
                    (sub.rows * kHashBuildRowCost +
                     s.node.rows * kHashProbeRowCost) /
                        dop;
      std::vector<SlotSortKey> ordering = s.node.ordering;
      s.node.op = std::make_unique<HashJoinOp>(
          std::move(s.node.op), std::move(sub.op), std::vector<size_t>{probe_slot},
          std::vector<size_t>{0}, JoinType::kLeftSemi, dop);
      s.node.rows = out_rows;
      s.node.cost = cost;
      s.node.ordering = std::move(ordering);
    }

    // --- join ordering (greedy, fact-as-probe) ---
    size_t fact = 0;
    for (size_t i = 1; i < sources.size(); ++i) {
      if (sources[i].node.rows > sources[fact].node.rows) fact = i;
    }
    PlanNode tree = std::move(sources[fact].node);
    sources[fact].joined = true;
    // Current composite descriptor starts as the fact's.
    size_t joined_count = 1;
    while (joined_count < sources.size()) {
      // Candidate edges: one side joined, other not.
      int best_edge = -1;
      double best_rows = 0;
      for (size_t e = 0; e < edges.size(); ++e) {
        if (edges[e].used) continue;
        const JoinEdge& edge = edges[e];
        bool l_in = sources[edge.left_source].joined;
        bool r_in = sources[edge.right_source].joined;
        if (l_in == r_in) continue;
        size_t build_idx = l_in ? edge.right_source : edge.left_source;
        double build_rows = sources[build_idx].node.rows;
        if (best_edge < 0 || build_rows < best_rows) {
          best_edge = static_cast<int>(e);
          best_rows = build_rows;
        }
      }
      if (best_edge < 0) {
        return Status::Unimplemented(
            "query requires a cross product between FROM tables");
      }
      JoinEdge& edge = edges[static_cast<size_t>(best_edge)];
      edge.used = true;
      bool left_joined = sources[edge.left_source].joined;
      size_t build_idx = left_joined ? edge.right_source : edge.left_source;
      const std::string& probe_col =
          left_joined ? edge.left_column : edge.right_column;
      const std::string& build_col =
          left_joined ? edge.right_column : edge.left_column;
      const std::string& probe_alias =
          sources[left_joined ? edge.left_source : edge.right_source].ref.alias;
      Source& build = sources[build_idx];

      RFID_ASSIGN_OR_RETURN(size_t probe_slot,
                            tree.op->output_desc().Resolve(probe_alias, probe_col));
      RFID_ASSIGN_OR_RETURN(
          size_t build_slot,
          build.node.op->output_desc().Resolve(build.ref.alias, build_col));
      double build_key_ndv =
          ColumnNdv(ViewFor(build.table), build_col,
                    std::max(1.0, build.node.rows));
      double out_rows =
          tree.rows * build.node.rows / std::max(1.0, build_key_ndv);
      int dop = ChooseDop(tree.rows);
      double cost = tree.cost + build.node.cost +
                    (build.node.rows * kHashBuildRowCost +
                     tree.rows * kHashProbeRowCost +
                     out_rows * kJoinOutputRowCost) /
                        dop;
      std::vector<SlotSortKey> ordering = tree.ordering;  // probe order kept
      tree.op = std::make_unique<HashJoinOp>(
          std::move(tree.op), std::move(build.node.op),
          std::vector<size_t>{probe_slot}, std::vector<size_t>{build_slot},
          JoinType::kInner, dop);
      tree.rows = out_rows;
      tree.cost = cost;
      tree.ordering = std::move(ordering);
      build.joined = true;
      ++joined_count;
    }
    // Remaining edges between already-joined sources become filters.
    for (JoinEdge& edge : edges) {
      if (edge.used) continue;
      edge.used = true;
      ExprPtr c = MakeBinary(
          BinaryOp::kEq,
          MakeColumnRef(sources[edge.left_source].ref.alias, edge.left_column),
          MakeColumnRef(sources[edge.right_source].ref.alias, edge.right_column));
      residual.push_back(std::move(c));
    }
    if (!residual.empty()) {
      double sub_cost = 0;
      for (ExprPtr& c : residual) {
        RFID_ASSIGN_OR_RETURN(c, MaterializeSubqueries(c, scope, &sub_cost));
      }
      tree.cost += sub_cost;
      RFID_ASSIGN_OR_RETURN(ExprPtr pred,
                            BindExpr(CombineConjuncts(residual), tree.op->output_desc()));
      tree.cost += tree.rows * kFilterEvalCost *
                   static_cast<double>(residual.size());
      tree.rows *= EstimateSelectivity(residual, nullptr);
      std::vector<SlotSortKey> ordering = tree.ordering;
      tree.op = std::make_unique<FilterOp>(std::move(tree.op), pred);
      tree.ordering = std::move(ordering);
    }
    RFID_RETURN_IF_ERROR(Verify(*tree.op, "join-order"));

    // --- window functions ---
    // Output names are fixed now, before window/aggregate extraction
    // rewrites the item expressions into internal __w/__g/__a references.
    std::vector<SelectItem> items;
    std::vector<std::string> output_names;
    for (size_t i = 0; i < core.items.size(); ++i) {
      const SelectItem& item = core.items[i];
      if (item.is_star) {
        items.push_back(item);
        output_names.emplace_back();
        continue;
      }
      std::string name = item.alias;
      if (name.empty()) {
        if (item.expr->kind == ExprKind::kColumnRef) {
          name = item.expr->column;
        } else if (item.expr->kind == ExprKind::kFuncCall) {
          name = item.expr->func_name;  // e.g. "count", "avg"
        } else {
          name = StrFormat("col%zu", i);
        }
      }
      output_names.push_back(std::move(name));
      RFID_ASSIGN_OR_RETURN(ExprPtr q, QualifyExpr(item.expr, sources));
      items.push_back({q, item.alias, false});
    }
    RFID_RETURN_IF_ERROR(PlanWindows(&tree, &items));
    RFID_RETURN_IF_ERROR(Verify(*tree.op, "window"));

    // --- grouping / aggregation (with HAVING) ---
    bool has_aggregate = !core.group_by.empty() || core.having != nullptr;
    for (const SelectItem& item : items) {
      if (!item.is_star && ContainsAggregate(item.expr)) has_aggregate = true;
    }
    if (core.having != nullptr && !has_aggregate) {
      return Status::BindError("HAVING requires GROUP BY or aggregates");
    }
    if (has_aggregate) {
      std::vector<ExprPtr> group_exprs;
      for (const ExprPtr& g : core.group_by) {
        RFID_ASSIGN_OR_RETURN(ExprPtr q, QualifyExpr(g, sources));
        group_exprs.push_back(q);
      }
      // HAVING rides through aggregation as a hidden item so its group
      // references and aggregate calls are rewritten like the real ones.
      bool has_having = core.having != nullptr;
      if (has_having) {
        if (ContainsWindowCall(core.having)) {
          return Status::BindError("window functions are not allowed in HAVING");
        }
        RFID_ASSIGN_OR_RETURN(ExprPtr q, QualifyExpr(core.having, sources));
        items.push_back({q, "__having", false});
      }
      RFID_RETURN_IF_ERROR(PlanAggregate(&tree, group_exprs, &items));
      if (has_having) {
        ExprPtr having_expr = items.back().expr;
        items.pop_back();
        RFID_ASSIGN_OR_RETURN(ExprPtr bound,
                              BindExpr(having_expr, tree.op->output_desc()));
        tree.cost += tree.rows * kFilterEvalCost;
        tree.rows = std::max(1.0, tree.rows * kDefaultSelectivity);
        tree.op = std::make_unique<FilterOp>(std::move(tree.op), bound);
      }
    }

    // --- final projection ---
    bool all_star = true;
    for (const SelectItem& item : items) {
      if (!item.is_star) all_star = false;
    }
    if (all_star) {
      if (items.size() != 1) {
        return Status::Unimplemented("multiple * items");
      }
    } else {
      std::vector<ExprPtr> exprs;
      RowDesc out_desc;
      for (size_t i = 0; i < items.size(); ++i) {
        const SelectItem& item = items[i];
        if (item.is_star) {
          return Status::Unimplemented("mixing * with expressions");
        }
        RFID_ASSIGN_OR_RETURN(ExprPtr bound,
                              BindExpr(item.expr, tree.op->output_desc()));
        out_desc.AddField("", output_names[i], bound->result_type);
        exprs.push_back(std::move(bound));
      }
      // Remap ordering through bare-column projections.
      std::vector<SlotSortKey> new_ordering;
      for (const SlotSortKey& key : tree.ordering) {
        bool found = false;
        for (size_t i = 0; i < exprs.size(); ++i) {
          if (exprs[i]->kind == ExprKind::kColumnRef &&
              static_cast<size_t>(exprs[i]->slot) == key.slot) {
            new_ordering.push_back({i, key.ascending});
            found = true;
            break;
          }
        }
        if (!found) break;
      }
      tree.cost += tree.rows * kProjectExprRowCost *
                   static_cast<double>(exprs.size());
      tree.op = std::make_unique<ProjectOp>(std::move(tree.op), std::move(exprs),
                                            std::move(out_desc));
      tree.ordering = std::move(new_ordering);
    }

    if (core.distinct) {
      tree.cost += tree.rows;
      tree.rows = std::max(1.0, tree.rows * 0.9);
      std::vector<SlotSortKey> ordering = tree.ordering;
      tree.op = std::make_unique<DistinctOp>(std::move(tree.op));
      tree.ordering = std::move(ordering);  // first-seen emission keeps order
    }
    RFID_RETURN_IF_ERROR(Verify(*tree.op, "projection"));
    return tree;
  }

  // Replaces IN (SELECT ...) nodes that survive into scalar predicate
  // position (e.g. under an OR, as the rewrite engine's expanded
  // conditions produce) with a materialized hash set: the subquery is
  // planned and executed once at plan time. `extra_cost` accumulates the
  // subquery cost.
  Result<ExprPtr> MaterializeSubqueries(
      const ExprPtr& e, const std::vector<const WithClause*>& scope,
      double* extra_cost) {
    if (e == nullptr) return e;
    if (e->kind == ExprKind::kInSubquery) {
      RFID_ASSIGN_OR_RETURN(PlanNode sub, PlanStatement(*e->subquery, scope));
      if (sub.op->output_desc().num_fields() != 1) {
        return Status::BindError("IN subquery must produce exactly one column");
      }
      *extra_cost += sub.cost;
      RFID_ASSIGN_OR_RETURN(std::vector<Row> rows,
                            CollectRows(sub.op.get(), ctx_));
      auto set = std::make_shared<std::unordered_set<Value, ValueHash>>();
      bool has_null = false;
      for (const Row& r : rows) {
        if (r[0].is_null()) {
          has_null = true;
        } else {
          set->insert(r[0]);
        }
      }
      auto node = std::make_shared<Expr>();
      node->kind = ExprKind::kInValueSet;
      node->children.push_back(e->children[0]);
      node->value_set = std::move(set);
      node->value_set_has_null = has_null;
      return node;
    }
    auto copy = std::make_shared<Expr>(*e);
    for (auto& child : copy->children) {
      RFID_ASSIGN_OR_RETURN(child, MaterializeSubqueries(child, scope, extra_cost));
    }
    return copy;
  }

  // Fully qualifies column references against the FROM sources.
  Result<ExprPtr> QualifyExpr(const ExprPtr& e,
                              const std::vector<Source>& sources) {
    if (e == nullptr) return Status::Internal("null expression");
    if (e->kind == ExprKind::kColumnRef) {
      int found = -1;
      for (size_t i = 0; i < sources.size(); ++i) {
        const Source& s = sources[i];
        if (!e->qualifier.empty() &&
            !EqualsIgnoreCase(s.ref.alias, e->qualifier)) {
          continue;
        }
        bool has = false;
        for (const Field& f : s.desc.fields()) {
          if (EqualsIgnoreCase(f.name, e->column)) {
            has = true;
            break;
          }
        }
        if (!has) continue;
        if (found >= 0) {
          return Status::BindError("ambiguous column: " + e->column);
        }
        found = static_cast<int>(i);
      }
      if (found < 0) {
        return Status::BindError(StrFormat(
            "unresolved column %s%s%s", e->qualifier.c_str(),
            e->qualifier.empty() ? "" : ".", e->column.c_str()));
      }
      return MakeColumnRef(sources[static_cast<size_t>(found)].ref.alias,
                           e->column);
    }
    auto copy = std::make_shared<Expr>(*e);
    for (auto& child : copy->children) {
      RFID_ASSIGN_OR_RETURN(child, QualifyExpr(child, sources));
    }
    if (copy->window.has_value()) {
      for (auto& p : copy->window->partition_by) {
        RFID_ASSIGN_OR_RETURN(p, QualifyExpr(p, sources));
      }
      for (auto& k : copy->window->order_by) {
        RFID_ASSIGN_OR_RETURN(k.expr, QualifyExpr(k.expr, sources));
      }
    }
    return copy;
  }

  Result<size_t> SourceIndex(const std::vector<Source>& sources,
                             std::string_view alias) {
    for (size_t i = 0; i < sources.size(); ++i) {
      if (EqualsIgnoreCase(sources[i].ref.alias, alias)) return i;
    }
    return Status::BindError("unknown table alias: " + std::string(alias));
  }

  // Chooses between full scan and index range scan for a base table given
  // its local conjuncts.
  Result<PlanNode> BuildBaseAccess(Source& s) {
    const Table* table = s.table;
    const TableSnapshot* snap = SnapshotFor(table);
    const StatsView view = ViewFor(table);
    double total_rows = snap != nullptr
                            ? static_cast<double>(snap->watermark)
                            : static_cast<double>(table->visible_rows());
    // Try every indexed column: build the value interval its sargable
    // conjuncts imply, estimate selectivity, keep the best.
    const SortedIndex* best_index = nullptr;
    double best_sel = 1.0;
    ValueInterval best_interval;
    std::vector<size_t> best_absorbed;
    for (const Column& col : table->schema().columns()) {
      const SortedIndex* idx = snap != nullptr ? snap->FindIndex(col.name)
                                               : table->GetIndex(col.name);
      if (idx == nullptr) continue;
      ValueInterval interval;
      std::vector<size_t> absorbed;
      for (size_t ci = 0; ci < s.local_conjuncts.size(); ++ci) {
        ColumnLiteralCmp m;
        if (!MatchColumnLiteralCmp(s.local_conjuncts[ci], &m)) continue;
        if (!EqualsIgnoreCase(m.column->column, col.name)) continue;
        if (m.op == BinaryOp::kNe) continue;
        if (!TypesComparable(m.literal.type(), col.type)) continue;
        interval.IntersectCmp(m.op, m.literal);
        absorbed.push_back(ci);
      }
      if (interval.Unconstrained()) continue;
      ExprPtr as_conj = interval.ToConjuncts(MakeColumnRef(s.ref.alias, col.name));
      double sel = EstimateConjunctSelectivity(as_conj, view);
      if (best_index == nullptr || sel < best_sel) {
        best_index = idx;
        best_sel = sel;
        best_interval = interval;
        best_absorbed = absorbed;
      }
    }
    PlanNode node;
    node.base_table = table;
    std::vector<ExprPtr> remaining;
    // Index scan wins when the per-row random-access penalty is offset by
    // touching fewer rows: sel * kIndexRowCost < kSeqRowCost, i.e. sel < 0.4.
    // We allow up to 0.7 because index output order frequently saves a
    // sort downstream (partially time-clustered loads, as in the paper).
    if (best_index != nullptr && best_sel < 0.7) {
      std::optional<Bound> lo;
      std::optional<Bound> hi;
      if (best_interval.lo()) {
        lo = Bound{best_interval.lo()->value, best_interval.lo()->inclusive};
      }
      if (best_interval.hi()) {
        hi = Bound{best_interval.hi()->value, best_interval.hi()->inclusive};
      }
      node.op = std::make_unique<IndexRangeScanOp>(table, best_index,
                                                   s.ref.alias, lo, hi);
      node.rows = total_rows * best_sel;
      node.cost = node.rows * kIndexRowCost;
      RFID_ASSIGN_OR_RETURN(
          size_t slot, node.op->output_desc().Resolve(
                           s.ref.alias, best_index->column_name()));
      node.ordering = {{slot, true}};
      for (size_t ci = 0; ci < s.local_conjuncts.size(); ++ci) {
        if (std::find(best_absorbed.begin(), best_absorbed.end(), ci) ==
            best_absorbed.end()) {
          remaining.push_back(s.local_conjuncts[ci]);
        }
      }
    } else {
      // Full scan: morsel-parallel when the table clears the row
      // threshold. Local predicates fuse into the scan either way —
      // parallel so the filter work spreads across workers, serial so
      // the encoded columnar kernels and zone-map segment skipping can
      // evaluate them before any row materializes. The cost model is
      // identical to the scan-then-filter pair (same rows touched, same
      // per-conjunct charge), so join ordering is unaffected.
      int dop = ChooseDop(total_rows);
      if (dop > 1) {
        double sel = EstimateSelectivity(s.local_conjuncts, view);
        ExprPtr pred;
        if (!s.local_conjuncts.empty()) {
          RFID_ASSIGN_OR_RETURN(
              pred, BindExpr(CombineConjuncts(s.local_conjuncts), s.desc));
        }
        node.op = std::make_unique<ParallelTableScanOp>(table, s.ref.alias,
                                                        std::move(pred), dop);
        node.rows = total_rows * sel;
        node.cost = (total_rows * kSeqRowCost +
                     total_rows * kFilterEvalCost *
                         static_cast<double>(s.local_conjuncts.size())) /
                    dop;
        return node;
      }
      double sel = EstimateSelectivity(s.local_conjuncts, view);
      ExprPtr pred;
      if (!s.local_conjuncts.empty()) {
        RFID_ASSIGN_OR_RETURN(
            pred, BindExpr(CombineConjuncts(s.local_conjuncts), s.desc));
      }
      node.op =
          std::make_unique<TableScanOp>(table, s.ref.alias, std::move(pred));
      node.rows = total_rows * sel;
      node.cost = total_rows * kSeqRowCost +
                  total_rows * kFilterEvalCost *
                      static_cast<double>(s.local_conjuncts.size());
    }
    if (!remaining.empty()) {
      RFID_ASSIGN_OR_RETURN(ExprPtr pred,
                            BindExpr(CombineConjuncts(remaining), node.op->output_desc()));
      node.cost +=
          node.rows * kFilterEvalCost * static_cast<double>(remaining.size());
      double sel = EstimateSelectivity(remaining, view);
      std::vector<SlotSortKey> ordering = node.ordering;
      node.op = std::make_unique<FilterOp>(std::move(node.op), pred);
      node.rows *= sel;
      node.ordering = std::move(ordering);
    }
    return node;
  }

  // Plans all window functions appearing in `items`, updating the tree and
  // rewriting items to reference the computed columns.
  Status PlanWindows(PlanNode* tree, std::vector<SelectItem>* items) {
    std::vector<ExprPtr> calls;
    for (const SelectItem& item : *items) {
      if (!item.is_star) CollectWindowCalls(item.expr, &calls);
    }
    if (calls.empty()) return Status::OK();

    std::map<const Expr*, ExprPtr> replacements;
    std::vector<ExprPtr> pending = std::move(calls);
    while (!pending.empty()) {
      // Group a maximal batch of specs compatible with the first pending
      // call; incompatible ones wait for the next WindowOp.
      const WindowSpec spec = *pending[0]->window;
      std::vector<ExprPtr> batch;
      std::vector<ExprPtr> rest;
      for (const ExprPtr& call : pending) {
        if (WindowSpecsCompatible(spec, *call->window)) {
          batch.push_back(call);
        } else {
          rest.push_back(call);
        }
      }
      // Required ordering: partition keys then order keys.
      std::vector<SlotSortKey> required;
      std::vector<size_t> partition_slots;
      for (const ExprPtr& p : spec.partition_by) {
        RFID_ASSIGN_OR_RETURN(ExprPtr bound,
                              BindExpr(p, tree->op->output_desc()));
        if (bound->kind != ExprKind::kColumnRef) {
          return Status::Unimplemented("PARTITION BY requires plain columns");
        }
        required.push_back({static_cast<size_t>(bound->slot), true});
        partition_slots.push_back(static_cast<size_t>(bound->slot));
      }
      std::vector<SlotSortKey> order_keys;
      for (const SortKey& k : spec.order_by) {
        RFID_ASSIGN_OR_RETURN(ExprPtr bound,
                              BindExpr(k.expr, tree->op->output_desc()));
        if (bound->kind != ExprKind::kColumnRef) {
          return Status::Unimplemented("window ORDER BY requires plain columns");
        }
        required.push_back({static_cast<size_t>(bound->slot), k.ascending});
        order_keys.push_back({static_cast<size_t>(bound->slot), k.ascending});
      }
      if (!OrderingSatisfies(tree->ordering, required)) {
        int sort_dop = ChooseDop(tree->rows);
        tree->cost += SortCost(tree->rows) / sort_dop;
        tree->op =
            std::make_unique<SortOp>(std::move(tree->op), required, sort_dop);
        tree->ordering = required;
      }
      // Build the aggregate specs.
      std::vector<WindowAggSpec> specs;
      for (const ExprPtr& call : batch) {
        if (!IsAggName(call->func_name)) {
          return Status::Unimplemented("unsupported window function: " +
                                       call->func_name);
        }
        WindowAggSpec ws;
        ws.func = AggFuncFromName(call->func_name);
        if (call->children.empty() ||
            (call->children.size() == 1 &&
             call->children[0]->kind == ExprKind::kStar)) {
          if (ws.func != AggFunc::kCount) {
            return Status::BindError("only COUNT(*) may omit an argument");
          }
          ws.arg = nullptr;
          ws.result_type = DataType::kInt64;
        } else {
          RFID_ASSIGN_OR_RETURN(
              ws.arg, BindExpr(call->children[0], tree->op->output_desc()));
          ws.result_type = AggResultType(ws.func, ws.arg->result_type);
        }
        if (call->window->has_frame) {
          ws.frame = call->window->frame;
        } else {
          // SQL default: unbounded preceding .. current row.
          ws.frame = FrameSpec{FrameUnit::kRows, {true, -1}, {false, 0}};
        }
        ws.output_name = StrFormat("__w%zu", window_counter_++);
        ExprPtr ref = MakeColumnRef("", ws.output_name);
        replacements[call.get()] = std::move(ref);
        specs.push_back(std::move(ws));
      }
      int win_dop = ChooseDop(tree->rows);
      tree->cost += tree->rows * kWindowAggRowCost *
                    static_cast<double>(specs.size()) / win_dop;
      std::vector<SlotSortKey> ordering = tree->ordering;
      tree->op = std::make_unique<WindowOp>(std::move(tree->op), partition_slots,
                                            order_keys, std::move(specs),
                                            win_dop);
      tree->ordering = std::move(ordering);  // window preserves input order
      pending = std::move(rest);
    }
    for (SelectItem& item : *items) {
      if (!item.is_star) item.expr = ReplaceNodes(item.expr, replacements);
    }
    return Status::OK();
  }

  // Plans GROUP BY + aggregates, updating the tree and rewriting items.
  Status PlanAggregate(PlanNode* tree, const std::vector<ExprPtr>& group_exprs,
                       std::vector<SelectItem>* items) {
    // Bind group expressions.
    std::vector<ExprPtr> bound_groups;
    RowDesc agg_desc;
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      RFID_ASSIGN_OR_RETURN(ExprPtr bound,
                            BindExpr(group_exprs[i], tree->op->output_desc()));
      agg_desc.AddField("", StrFormat("__g%zu", i), bound->result_type);
      bound_groups.push_back(std::move(bound));
    }
    // Extract aggregate calls from items.
    std::vector<ExprPtr> agg_calls;
    for (const SelectItem& item : *items) {
      if (item.is_star) {
        return Status::BindError("SELECT * cannot be combined with GROUP BY");
      }
      CollectAggCalls(item.expr, &agg_calls);
    }
    std::vector<AggSpec> specs;
    std::map<const Expr*, ExprPtr> replacements;
    for (size_t i = 0; i < agg_calls.size(); ++i) {
      const ExprPtr& call = agg_calls[i];
      AggSpec spec;
      spec.func = AggFuncFromName(call->func_name);
      spec.distinct = call->distinct;
      if (call->children.empty() ||
          (call->children.size() == 1 &&
           call->children[0]->kind == ExprKind::kStar)) {
        if (spec.func != AggFunc::kCount) {
          return Status::BindError("only COUNT(*) may omit an argument");
        }
        spec.arg = nullptr;
        spec.result_type = DataType::kInt64;
      } else {
        RFID_ASSIGN_OR_RETURN(spec.arg,
                              BindExpr(call->children[0], tree->op->output_desc()));
        spec.result_type = AggResultType(spec.func, spec.arg->result_type);
      }
      std::string name = StrFormat("__a%zu", i);
      agg_desc.AddField("", name, spec.result_type);
      replacements[call.get()] = MakeColumnRef("", name);
      specs.push_back(std::move(spec));
    }
    // Rewrite items: first group-expr matches (structural), then agg calls.
    for (SelectItem& item : *items) {
      item.expr = ReplaceGroupRefs(item.expr, group_exprs);
      item.expr = ReplaceNodes(item.expr, replacements);
    }
    // Estimate output cardinality.
    double out_rows = bound_groups.empty()
                          ? 1.0
                          : std::max(1.0, std::pow(tree->rows, 0.75));
    tree->cost += tree->rows * kGroupAggRowCost;
    tree->op = std::make_unique<HashAggregateOp>(
        std::move(tree->op), std::move(bound_groups), std::move(specs),
        std::move(agg_desc));
    tree->rows = out_rows;
    tree->ordering.clear();
    return Status::OK();
  }

  // Replaces subtrees structurally equal to a group-by expression with a
  // reference to the aggregate output column __g<i>. Does not descend into
  // aggregate calls (their arguments are computed pre-aggregation).
  ExprPtr ReplaceGroupRefs(const ExprPtr& e,
                           const std::vector<ExprPtr>& group_exprs) {
    if (e == nullptr) return nullptr;
    for (size_t i = 0; i < group_exprs.size(); ++i) {
      if (ExprEquals(e, group_exprs[i])) {
        return MakeColumnRef("", StrFormat("__g%zu", i));
      }
    }
    if (e->kind == ExprKind::kFuncCall && IsAggName(e->func_name) &&
        !e->window.has_value()) {
      return e;
    }
    auto copy = std::make_shared<Expr>(*e);
    bool changed = false;
    for (auto& child : copy->children) {
      ExprPtr nc = ReplaceGroupRefs(child, group_exprs);
      if (nc != child) changed = true;
      child = nc;
    }
    return changed ? copy : e;
  }

  const Database* db_;
  ExecContext* ctx_;
  size_t window_counter_ = 0;
};

}  // namespace

Result<PlannedQuery> Planner::Plan(const SelectStatement& stmt) {
  RFID_FAULT_POINT("plan.Plan");
  PlannerImpl impl(db_, ctx_);
  RFID_ASSIGN_OR_RETURN(PlanNode node, impl.PlanStatement(stmt, {}));
  PlannedQuery out;
  out.root = std::move(node.op);
  out.estimated_rows = node.rows;
  out.estimated_cost = node.cost;
  out.max_dop = MaxTreeDop(*out.root);
  // Whole-plan invariant check over the finished tree (ORDER BY / LIMIT
  // / UNION ALL wrappers included).
  if (VerifyEnabled()) {
    RFID_RETURN_IF_ERROR(VerifyPlan(*out.root, "final", ctx_));
  }
  return out;
}

Result<PlannedQuery> PlanSql(const Database& db, std::string_view sql,
                             ExecContext* ctx) {
  RFID_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSql(sql));
  Planner planner(&db, ctx);
  return planner.Plan(*stmt);
}

Result<QueryResult> ExecuteSql(const Database& db, std::string_view sql) {
  ExecContext ctx;  // unlimited per-query context
  return ExecuteSql(db, sql, &ctx);
}

Result<QueryResult> ExecuteSql(const Database& db, std::string_view sql,
                               ExecContext* ctx) {
  if (ctx == nullptr) ctx = ExecContext::Default();
  RFID_ASSIGN_OR_RETURN(PlannedQuery plan, PlanSql(db, sql, ctx));
  QueryResult result;
  result.desc = plan.root->output_desc();
  result.estimated_cost = plan.estimated_cost;
  RFID_ASSIGN_OR_RETURN(result.rows, CollectRows(plan.root.get(), ctx));
  result.max_dop = plan.max_dop;
  // First explain line records the planner's serial-vs-parallel decision
  // next to the policy that produced it (threshold in estimated rows).
  const ParallelPolicy policy = CurrentParallelPolicy();
  std::string header;
  if (plan.max_dop > 1) {
    header = StrFormat("parallelism: dop=%d (policy max_dop=%d, threshold=%s rows)\n",
                       plan.max_dop, policy.max_dop,
                       std::to_string(policy.min_parallel_rows).c_str());
  } else {
    header = StrFormat("parallelism: serial (policy max_dop=%d, threshold=%s rows)\n",
                       policy.max_dop,
                       std::to_string(policy.min_parallel_rows).c_str());
  }
  // Second line: the engine mode — vectorized batch size, or row-at-a-time.
  if (VectorizedEnabled()) {
    header += StrFormat("vectorized: on (batch=%s)\n",
                        std::to_string(BatchCapacity()).c_str());
  } else {
    header += "vectorized: off\n";
  }
  // Third line: the storage scan mode — encoded columnar segments with
  // the active SIMD dispatch level, or row store only.
  if (ColumnarEnabled()) {
    header += StrFormat("columnar: on (simd=%s)\n", simd::ActiveLevelName());
  } else {
    header += "columnar: off\n";
  }
  result.explain = header + ExplainOperatorTree(*plan.root);
  result.peak_memory_bytes = ctx->memory_peak();
  return result;
}

}  // namespace rfid
