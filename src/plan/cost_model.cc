#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>

#include "expr/conjunct.h"

namespace rfid {

double SortCost(double rows) {
  if (rows < 2) return rows;
  return kSortRowFactor * rows * std::log2(rows);
}

namespace {

// Fraction of [min, max] below/above a literal for int64-repped types.
double RangeFraction(const ColumnStats& st, const Value& lit, BinaryOp op) {
  if (!st.HasRange()) return kDefaultRangeSelectivity;
  auto raw = [](const Value& v, double* out) {
    switch (v.type()) {
      case DataType::kInt64:
        *out = static_cast<double>(v.int64_value());
        return true;
      case DataType::kTimestamp:
        *out = static_cast<double>(v.timestamp_value());
        return true;
      case DataType::kInterval:
        *out = static_cast<double>(v.interval_value());
        return true;
      case DataType::kDouble:
        *out = v.double_value();
        return true;
      default:
        return false;
    }
  };
  double lo;
  double hi;
  double x;
  if (!raw(st.min, &lo) || !raw(st.max, &hi) || !raw(lit, &x)) {
    return kDefaultRangeSelectivity;
  }
  if (hi <= lo) return 1.0;
  double frac = (x - lo) / (hi - lo);
  frac = std::clamp(frac, 0.0, 1.0);
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return frac;
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 1.0 - frac;
    default:
      return kDefaultRangeSelectivity;
  }
}

const ColumnStats* StatsFor(const StatsView& view, std::string_view column) {
  if (view.schema == nullptr || view.stats == nullptr) return nullptr;
  int idx = view.schema->FindColumn(column);
  if (idx < 0) return nullptr;
  return &(*view.stats)[static_cast<size_t>(idx)];
}

StatsView LiveView(const Table* table) {
  return table != nullptr ? table->CurrentStatsView() : StatsView{};
}

}  // namespace

double EstimateConjunctSelectivity(const ExprPtr& conjunct,
                                   const StatsView& table) {
  if (conjunct == nullptr) return 1.0;
  // AND / OR recursion.
  if (conjunct->kind == ExprKind::kBinary && conjunct->op == BinaryOp::kAnd) {
    return EstimateConjunctSelectivity(conjunct->children[0], table) *
           EstimateConjunctSelectivity(conjunct->children[1], table);
  }
  if (conjunct->kind == ExprKind::kBinary && conjunct->op == BinaryOp::kOr) {
    double a = EstimateConjunctSelectivity(conjunct->children[0], table);
    double b = EstimateConjunctSelectivity(conjunct->children[1], table);
    return std::min(1.0, a + b - a * b);
  }
  if (conjunct->kind == ExprKind::kNot) {
    return 1.0 - EstimateConjunctSelectivity(conjunct->children[0], table);
  }
  if (conjunct->kind == ExprKind::kIsNull) {
    const Expr* ref = conjunct->children[0]->kind == ExprKind::kColumnRef
                          ? conjunct->children[0].get()
                          : nullptr;
    if (ref != nullptr) {
      const ColumnStats* st = StatsFor(table, ref->column);
      if (st != nullptr && st->row_count > 0) {
        double frac = static_cast<double>(st->null_count) /
                      static_cast<double>(st->row_count);
        return conjunct->negated ? 1.0 - frac : frac;
      }
    }
    return conjunct->negated ? 0.9 : 0.1;
  }
  if (conjunct->kind == ExprKind::kInList &&
      conjunct->children[0]->kind == ExprKind::kColumnRef) {
    const ColumnStats* st = StatsFor(table, conjunct->children[0]->column);
    double k = static_cast<double>(conjunct->children.size() - 1);
    if (st != nullptr && st->ndv > 0) {
      return std::min(1.0, k / static_cast<double>(st->ndv));
    }
    return std::min(1.0, k * kDefaultEqSelectivity);
  }
  ColumnLiteralCmp m;
  if (MatchColumnLiteralCmp(conjunct, &m)) {
    const ColumnStats* st = StatsFor(table, m.column->column);
    switch (m.op) {
      case BinaryOp::kEq:
        if (st != nullptr && st->ndv > 0) {
          return 1.0 / static_cast<double>(st->ndv);
        }
        return kDefaultEqSelectivity;
      case BinaryOp::kNe:
        if (st != nullptr && st->ndv > 0) {
          return 1.0 - 1.0 / static_cast<double>(st->ndv);
        }
        return 1.0 - kDefaultEqSelectivity;
      default:
        if (st != nullptr) return RangeFraction(*st, m.literal, m.op);
        return kDefaultRangeSelectivity;
    }
  }
  return kDefaultSelectivity;
}

double EstimateSelectivity(const std::vector<ExprPtr>& conjuncts,
                           const StatsView& view) {
  double sel = 1.0;
  for (const ExprPtr& c : conjuncts) {
    sel *= EstimateConjunctSelectivity(c, view);
  }
  return sel;
}

double ColumnNdv(const StatsView& view, std::string_view column,
                 double fallback) {
  const ColumnStats* st = StatsFor(view, column);
  if (st != nullptr && st->ndv > 0) return static_cast<double>(st->ndv);
  return fallback;
}

double EstimateConjunctSelectivity(const ExprPtr& conjunct,
                                   const Table* table) {
  return EstimateConjunctSelectivity(conjunct, LiveView(table));
}

double EstimateSelectivity(const std::vector<ExprPtr>& conjuncts,
                           const Table* table) {
  return EstimateSelectivity(conjuncts, LiveView(table));
}

double ColumnNdv(const Table* table, std::string_view column, double fallback) {
  return ColumnNdv(LiveView(table), column, fallback);
}

}  // namespace rfid
