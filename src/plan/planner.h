// Plans a parsed SelectStatement into a physical operator tree.
//
// Responsibilities (the subset of a DBMS optimizer the reproduction
// needs, with the cost structure the paper's experiments depend on):
//  - predicate pushdown to base tables, with index range-scan selection;
//  - greedy join ordering (largest input is the probe/fact side; build
//    sides are the filtered dimension tables) with IN-subqueries planned
//    as hash semi-joins;
//  - SQL/OLAP window planning with *order sharing*: a Sort is inserted
//    only when the input's guaranteed ordering does not already satisfy
//    the window's (PARTITION BY, ORDER BY) requirement, so consecutive
//    cleansing rules and the user query's own OLAP functions reuse one
//    sort (the effect Section 6.2 of the paper measures);
//  - hash aggregation / DISTINCT / UNION ALL / ORDER BY;
//  - cardinality and cost estimates for every operator, so the rewrite
//    engine can compare candidate rewrites the way the paper uses DB2
//    compile-time cost estimates.
#ifndef RFID_PLAN_PLANNER_H_
#define RFID_PLAN_PLANNER_H_

#include "exec/operator.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace rfid {

struct PlannedQuery {
  OperatorPtr root;
  double estimated_rows = 0;
  double estimated_cost = 0;
  /// Largest per-operator degree of parallelism the planner chose (1 =
  /// fully serial plan). Derived from estimated row counts (StatsView)
  /// against the ParallelPolicy row threshold.
  int max_dop = 1;
};

class Planner {
 public:
  /// `ctx` (optional) governs plan-time subquery materialization and is
  /// bound to the produced operator tree's plan-time work; passing
  /// nullptr uses the unlimited default context.
  explicit Planner(const Database* db, ExecContext* ctx = nullptr)
      : db_(db), ctx_(ctx) {}

  Result<PlannedQuery> Plan(const SelectStatement& stmt);

 private:
  const Database* db_;
  ExecContext* ctx_;
};

/// Parses, plans and returns the plan for a SQL string. `ctx` limits
/// plan-time subquery execution (nullptr = unlimited default context).
Result<PlannedQuery> PlanSql(const Database& db, std::string_view sql,
                             ExecContext* ctx = nullptr);

/// Query results: the output descriptor, all rows, and the executed
/// plan's EXPLAIN rendering with actual row counts.
struct QueryResult {
  RowDesc desc;
  std::vector<Row> rows;
  /// First line states the planner's serial-vs-parallel decision; the
  /// operator tree below it reports dop= per operator.
  std::string explain;
  double estimated_cost = 0;
  uint64_t peak_memory_bytes = 0;  // peak accounted memory during execution
  int max_dop = 1;                 // planner's chosen degree of parallelism
};

/// Parses, plans, and executes a SQL string against the database.
Result<QueryResult> ExecuteSql(const Database& db, std::string_view sql);

/// As above, but runs under `ctx`'s guardrails: memory budget, deadline,
/// cancellation, and output-row limit (see ExecLimits). Execution aborts
/// with kResourceExhausted / kDeadlineExceeded / kCancelled when a limit
/// trips; the operator tree is always closed and accounted memory
/// released before returning.
Result<QueryResult> ExecuteSql(const Database& db, std::string_view sql,
                               ExecContext* ctx);

}  // namespace rfid

#endif  // RFID_PLAN_PLANNER_H_
