// Cardinality and cost estimation. The rewrite engine mirrors the paper's
// use of DBMS cost estimates: candidate rewrites (m+1 join pushdown
// variants, expanded vs join-back) are each planned and the cheapest
// estimate wins (Sections 5.2/5.3). Only *relative* ordering of costs
// matters for those decisions, so the model is a deliberately simple
// textbook one driven by table statistics.
#ifndef RFID_PLAN_COST_MODEL_H_
#define RFID_PLAN_COST_MODEL_H_

#include "expr/expr.h"
#include "storage/table.h"

namespace rfid {

// Per-row cost constants (arbitrary units).
inline constexpr double kSeqRowCost = 1.0;
inline constexpr double kIndexRowCost = 2.5;   // random access penalty
inline constexpr double kFilterEvalCost = 0.2; // per conjunct
inline constexpr double kSortRowFactor = 0.15; // * log2(n)
inline constexpr double kHashBuildRowCost = 1.5;
inline constexpr double kHashProbeRowCost = 1.0;
inline constexpr double kJoinOutputRowCost = 0.5;
inline constexpr double kWindowAggRowCost = 1.2;  // per aggregate
inline constexpr double kGroupAggRowCost = 2.0;
inline constexpr double kProjectExprRowCost = 0.1;

// Default selectivities when statistics cannot decide.
inline constexpr double kDefaultEqSelectivity = 0.1;
inline constexpr double kDefaultRangeSelectivity = 0.3;
inline constexpr double kDefaultSelectivity = 0.25;

/// Cost of sorting n rows.
double SortCost(double rows);

/// Estimated fraction of rows satisfying `conjunct`, where column
/// references resolve against the pinned statistics in `view` (empty
/// view => defaults only). Handles col-op-literal via min/max/ndv, IN
/// lists, IS NULL, AND/OR. Estimation always goes through a StatsView so
/// a query planned under an epoch snapshot costs against the snapshot's
/// statistics version, not whatever the ingest writer publishes next.
double EstimateConjunctSelectivity(const ExprPtr& conjunct,
                                   const StatsView& view);

/// Product over conjuncts (independence assumption).
double EstimateSelectivity(const std::vector<ExprPtr>& conjuncts,
                           const StatsView& view);

/// NDV of a column, or `fallback` when unavailable.
double ColumnNdv(const StatsView& view, std::string_view column,
                 double fallback);

// Convenience overloads against a table's live statistics (nullptr =>
// defaults only).
double EstimateConjunctSelectivity(const ExprPtr& conjunct, const Table* table);
double EstimateSelectivity(const std::vector<ExprPtr>& conjuncts,
                           const Table* table);
double ColumnNdv(const Table* table, std::string_view column, double fallback);

}  // namespace rfid

#endif  // RFID_PLAN_COST_MODEL_H_
