#include "sql/lexer.h"

#include <cctype>
#include <stdexcept>

#include "common/string_util.h"

namespace rfid {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

std::string LocationString(std::string_view text, size_t offset) {
  if (offset > text.size()) offset = text.size();
  size_t line = 1;
  size_t column = 1;
  for (size_t i = 0; i < offset; ++i) {
    if (text[i] == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  }
  return StrFormat("line %zu, column %zu", line, column);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- comment
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text(sql.substr(start, i - start));
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.double_value = std::stod(text);
      } else {
        tok.type = TokenType::kInteger;
        try {
          tok.int_value = std::stoll(text);
        } catch (const std::out_of_range&) {
          return Status::ParseError("integer literal out of range: " + text);
        }
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            value += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += sql[i++];
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal (%s)",
                      LocationString(sql, tok.offset).c_str()));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(value);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string_view();
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=") {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(two);
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    static constexpr std::string_view kSingles = "(),.*=<>+-/";
    if (kSingles.find(c) != std::string_view::npos) {
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError(
        StrFormat("unexpected character '%c' (%s)", c,
                  LocationString(sql, i).c_str()));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace rfid
