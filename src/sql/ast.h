// SQL statement AST for the subset the paper's workload needs:
//   [WITH name AS (...), ...]
//   SELECT [DISTINCT] items FROM t1 [AS] a1, t2 a2, ... [WHERE ...]
//   [GROUP BY ...] [UNION ALL SELECT ...] [ORDER BY ...]
// with window functions (OVER with PARTITION BY / ORDER BY / ROWS / RANGE
// frames), CASE, IN (list | subquery), and interval literals.
#ifndef RFID_SQL_AST_H_
#define RFID_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace rfid {

struct TableRef {
  std::string table_name;  // catalog table or WITH-clause name
  std::string alias;       // defaults to table_name
};

struct SelectItem {
  ExprPtr expr;        // null when is_star
  std::string alias;   // output column name; empty = derived from expr
  bool is_star = false;
};

/// One SELECT core (no WITH, no UNION, no ORDER BY).
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null; only with aggregation
};

struct WithClause {
  std::string name;
  std::shared_ptr<SelectStatement> body;
};

struct SelectStatement {
  std::vector<WithClause> with;
  std::vector<SelectCore> cores;  // >1 => UNION ALL of the cores
  std::vector<SortKey> order_by;  // on output columns; may be empty
  int64_t limit = -1;             // -1 = no LIMIT
};

using StatementPtr = std::shared_ptr<SelectStatement>;

/// Deep copy of a statement (expressions are cloned).
StatementPtr CloneStatement(const StatementPtr& s);
SelectCore CloneCore(const SelectCore& core);

}  // namespace rfid

#endif  // RFID_SQL_AST_H_
