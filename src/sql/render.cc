#include "sql/render.h"

#include "common/string_util.h"

namespace rfid {

namespace {

std::string RenderCore(const SelectCore& core) {
  std::string out = "SELECT ";
  if (core.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < core.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = core.items[i];
    if (item.is_star) {
      out += "*";
      continue;
    }
    out += ExprToSql(item.expr);
    if (!item.alias.empty()) out += " AS " + item.alias;
  }
  out += " FROM ";
  for (size_t i = 0; i < core.from.size(); ++i) {
    if (i > 0) out += ", ";
    out += core.from[i].table_name;
    if (!EqualsIgnoreCase(core.from[i].alias, core.from[i].table_name)) {
      out += " " + core.from[i].alias;
    }
  }
  if (core.where != nullptr) {
    out += " WHERE " + ExprToSql(core.where);
  }
  if (!core.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < core.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(core.group_by[i]);
    }
  }
  if (core.having != nullptr) {
    out += " HAVING " + ExprToSql(core.having);
  }
  return out;
}

std::string RenderStatement(const SelectStatement& stmt) {
  std::string out;
  if (!stmt.with.empty()) {
    out += "WITH ";
    for (size_t i = 0; i < stmt.with.size(); ++i) {
      if (i > 0) out += ", ";
      out += stmt.with[i].name + " AS (" + RenderStatement(*stmt.with[i].body) + ")";
    }
    out += " ";
  }
  for (size_t i = 0; i < stmt.cores.size(); ++i) {
    if (i > 0) out += " UNION ALL ";
    out += RenderCore(stmt.cores[i]);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ExprToSql(stmt.order_by[i].expr);
      if (!stmt.order_by[i].ascending) out += " DESC";
    }
  }
  if (stmt.limit >= 0) {
    out += " LIMIT " + std::to_string(stmt.limit);
  }
  return out;
}

void EnsureHookInstalled() {
  if (internal::subquery_renderer == nullptr) {
    internal::subquery_renderer = &RenderStatement;
  }
}

}  // namespace

std::string StatementToSql(const SelectStatement& stmt) {
  EnsureHookInstalled();
  return RenderStatement(stmt);
}

std::string RenderExpr(const ExprPtr& e) {
  EnsureHookInstalled();
  return ExprToSql(e);
}

}  // namespace rfid
