#include "sql/ast.h"

namespace rfid {

SelectCore CloneCore(const SelectCore& core) {
  SelectCore out;
  out.distinct = core.distinct;
  for (const SelectItem& item : core.items) {
    out.items.push_back({CloneExpr(item.expr), item.alias, item.is_star});
  }
  out.from = core.from;
  out.where = CloneExpr(core.where);
  for (const ExprPtr& g : core.group_by) out.group_by.push_back(CloneExpr(g));
  out.having = CloneExpr(core.having);
  return out;
}

StatementPtr CloneStatement(const StatementPtr& s) {
  if (s == nullptr) return nullptr;
  auto out = std::make_shared<SelectStatement>();
  for (const WithClause& w : s->with) {
    out->with.push_back({w.name, CloneStatement(w.body)});
  }
  for (const SelectCore& c : s->cores) out->cores.push_back(CloneCore(c));
  for (const SortKey& k : s->order_by) {
    out->order_by.push_back({CloneExpr(k.expr), k.ascending});
  }
  out->limit = s->limit;
  return out;
}

}  // namespace rfid
