// SQL tokenizer. Keywords are not distinguished here — the parser matches
// identifier tokens case-insensitively, so identifiers and keywords share
// a token type (standard practice for small SQL dialects).
#ifndef RFID_SQL_LEXER_H_
#define RFID_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rfid {

enum class TokenType {
  kIdentifier,   // foo, SELECT (keywords included)
  kInteger,      // 42
  kFloat,        // 4.2
  kString,       // 'abc' (escaped '' handled)
  kSymbol,       // ( ) , . * = <> != < <= > >= + - /
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier/symbol text; string value for kString
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;  // byte offset in the input, for error messages
};

/// Tokenizes SQL text; "--" comments run to end of line.
Result<std::vector<Token>> Tokenize(std::string_view sql);

/// Renders a byte offset into `text` as a 1-based "line L, column C"
/// source location for error messages. Offsets at or past the end point
/// one past the last character (where missing input would go). Columns
/// count bytes, which matches terminals for the ASCII SQL this dialect
/// accepts.
std::string LocationString(std::string_view text, size_t offset);

}  // namespace rfid

#endif  // RFID_SQL_LEXER_H_
