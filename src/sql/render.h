// Renders statement ASTs back to SQL text. The rewrite engine works on
// ASTs and then emits SQL, mirroring the paper's architecture where the
// rewrite unit sits outside the DBMS and submits rewritten SQL (Figure 1,
// step 5).
#ifndef RFID_SQL_RENDER_H_
#define RFID_SQL_RENDER_H_

#include "sql/ast.h"

namespace rfid {

/// Renders a full statement (WITH, UNION ALL, ORDER BY). Idempotent with
/// ParseSql up to whitespace.
std::string StatementToSql(const SelectStatement& stmt);

/// Expression rendering that resolves IN-subqueries (installs the
/// statement renderer hook before delegating to ExprToSql).
std::string RenderExpr(const ExprPtr& e);

}  // namespace rfid

#endif  // RFID_SQL_RENDER_H_
