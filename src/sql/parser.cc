#include "sql/parser.h"

#include "common/fault.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "sql/lexer.h"

namespace rfid {

namespace {

// Interval unit keywords -> microseconds per unit.
bool IntervalUnit(const std::string& word, int64_t* unit_micros) {
  static constexpr struct {
    const char* name;
    int64_t micros;
  } kUnits[] = {
      {"microsecond", 1},
      {"microseconds", 1},
      {"second", kMicrosPerSecond},
      {"seconds", kMicrosPerSecond},
      {"sec", kMicrosPerSecond},
      {"secs", kMicrosPerSecond},
      {"minute", kMicrosPerMinute},
      {"minutes", kMicrosPerMinute},
      {"min", kMicrosPerMinute},
      {"mins", kMicrosPerMinute},
      {"hour", kMicrosPerHour},
      {"hours", kMicrosPerHour},
      {"day", kMicrosPerDay},
      {"days", kMicrosPerDay},
  };
  for (const auto& u : kUnits) {
    if (EqualsIgnoreCase(word, u.name)) {
      *unit_micros = u.micros;
      return true;
    }
  }
  return false;
}

class Parser {
 public:
  Parser(std::string_view source, std::vector<Token> tokens)
      : source_(source), tokens_(std::move(tokens)) {}

  Result<StatementPtr> ParseStatement() {
    RFID_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSelectStatement());
    MatchSymbol(";");
    if (!AtEnd()) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    RFID_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) {
      return Error("unexpected trailing input after expression");
    }
    return e;
  }

 private:
  // ---- token helpers ----
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(StrFormat("expected %s", std::string(kw).c_str()));
  }
  bool PeekSymbol(std::string_view sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool MatchSymbol(std::string_view sym) {
    if (PeekSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Error(StrFormat("expected '%s'", std::string(sym).c_str()));
  }
  Status Error(const std::string& message) const {
    const Token& t = Peek();
    std::string got = t.type == TokenType::kEnd ? "end of input" : "'" + t.text + "'";
    return Status::ParseError(
        StrFormat("%s but got %s (%s)", message.c_str(), got.c_str(),
                  LocationString(source_, t.offset).c_str()));
  }

  // Words that cannot start an implicit alias or continue an expression.
  bool PeekReservedKeyword() const {
    static constexpr const char* kReserved[] = {
        "select", "from",  "where", "group",  "order", "union",
        "and",    "or",    "not",   "as",     "on",    "when",
        "then",   "else",  "end",   "case",   "in",    "is",
        "between", "like", "distinct", "having", "with", "asc", "desc",
        "preceding", "following", "unbounded", "current", "rows", "range",
        "partition", "by", "over", "all", "limit",
    };
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier) return false;
    for (const char* kw : kReserved) {
      if (EqualsIgnoreCase(t.text, kw)) return true;
    }
    return false;
  }

  // ---- statements ----
  Result<StatementPtr> ParseSelectStatement() {
    auto stmt = std::make_shared<SelectStatement>();
    if (MatchKeyword("with")) {
      while (true) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected WITH-clause name");
        }
        std::string name = Advance().text;
        RFID_RETURN_IF_ERROR(ExpectKeyword("as"));
        RFID_RETURN_IF_ERROR(ExpectSymbol("("));
        RFID_ASSIGN_OR_RETURN(StatementPtr body, ParseSelectStatement());
        RFID_RETURN_IF_ERROR(ExpectSymbol(")"));
        stmt->with.push_back({std::move(name), std::move(body)});
        if (!MatchSymbol(",")) break;
      }
    }
    while (true) {
      RFID_ASSIGN_OR_RETURN(SelectCore core, ParseSelectCore());
      stmt->cores.push_back(std::move(core));
      if (PeekKeyword("union") && PeekKeyword("all", 1)) {
        Advance();
        Advance();
        continue;
      }
      break;
    }
    if (PeekKeyword("order") && PeekKeyword("by", 1)) {
      Advance();
      Advance();
      while (true) {
        RFID_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        bool asc = true;
        if (MatchKeyword("desc")) {
          asc = false;
        } else {
          MatchKeyword("asc");
        }
        stmt->order_by.push_back({std::move(e), asc});
        if (!MatchSymbol(",")) break;
      }
    }
    if (MatchKeyword("limit")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      stmt->limit = Advance().int_value;
    }
    return stmt;
  }

  Result<SelectCore> ParseSelectCore() {
    SelectCore core;
    RFID_RETURN_IF_ERROR(ExpectKeyword("select"));
    core.distinct = MatchKeyword("distinct");
    // select items
    while (true) {
      SelectItem item;
      if (PeekSymbol("*")) {
        Advance();
        item.is_star = true;
      } else {
        RFID_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("as")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Error("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier && !PeekReservedKeyword()) {
          item.alias = Advance().text;
        }
      }
      core.items.push_back(std::move(item));
      if (!MatchSymbol(",")) break;
    }
    RFID_RETURN_IF_ERROR(ExpectKeyword("from"));
    while (true) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected table name");
      }
      TableRef ref;
      ref.table_name = Advance().text;
      if (MatchKeyword("as")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected alias after AS");
        }
        ref.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier && !PeekReservedKeyword()) {
        ref.alias = Advance().text;
      } else {
        ref.alias = ref.table_name;
      }
      core.from.push_back(std::move(ref));
      if (!MatchSymbol(",")) break;
    }
    if (MatchKeyword("where")) {
      RFID_ASSIGN_OR_RETURN(core.where, ParseExpr());
    }
    if (PeekKeyword("group") && PeekKeyword("by", 1)) {
      Advance();
      Advance();
      while (true) {
        RFID_ASSIGN_OR_RETURN(ExprPtr g, ParseExpr());
        core.group_by.push_back(std::move(g));
        if (!MatchSymbol(",")) break;
      }
    }
    if (MatchKeyword("having")) {
      RFID_ASSIGN_OR_RETURN(core.having, ParseExpr());
    }
    return core;
  }

  // ---- expressions (precedence climbing) ----
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    RFID_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (MatchKeyword("or")) {
      RFID_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    RFID_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (PeekKeyword("and")) {
      Advance();
      RFID_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("not")) {
      RFID_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
      return MakeNot(std::move(inner));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    RFID_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    // IS [NOT] NULL
    if (PeekKeyword("is")) {
      Advance();
      bool negated = MatchKeyword("not");
      RFID_RETURN_IF_ERROR(ExpectKeyword("null"));
      return MakeIsNull(std::move(left), negated);
    }
    // [NOT] IN (...) / [NOT] BETWEEN x AND y / [NOT] LIKE pattern
    bool negated = false;
    if (PeekKeyword("not") && (PeekKeyword("in", 1) ||
                               PeekKeyword("between", 1) ||
                               PeekKeyword("like", 1))) {
      Advance();
      negated = true;
    }
    if (MatchKeyword("in")) {
      RFID_RETURN_IF_ERROR(ExpectSymbol("("));
      ExprPtr in_expr;
      if (PeekKeyword("select") || PeekKeyword("with")) {
        RFID_ASSIGN_OR_RETURN(StatementPtr sub, ParseSelectStatement());
        in_expr = MakeInSubquery(std::move(left), std::move(sub));
      } else {
        std::vector<ExprPtr> items;
        while (true) {
          RFID_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
          items.push_back(std::move(item));
          if (!MatchSymbol(",")) break;
        }
        in_expr = MakeInList(std::move(left), std::move(items));
      }
      RFID_RETURN_IF_ERROR(ExpectSymbol(")"));
      return negated ? MakeNot(std::move(in_expr)) : in_expr;
    }
    if (MatchKeyword("between")) {
      RFID_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      RFID_RETURN_IF_ERROR(ExpectKeyword("and"));
      RFID_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr range = MakeBinary(
          BinaryOp::kAnd, MakeBinary(BinaryOp::kGe, left, std::move(lo)),
          MakeBinary(BinaryOp::kLe, CloneExpr(left), std::move(hi)));
      return negated ? MakeNot(std::move(range)) : range;
    }
    // Desugars to the scalar function like(text, pattern); ExprToSql
    // renders it back in this infix form, so rewrite round-trips
    // preserve it.
    if (MatchKeyword("like")) {
      RFID_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      std::vector<ExprPtr> args;
      args.push_back(std::move(left));
      args.push_back(std::move(pattern));
      ExprPtr like = MakeFuncCall("like", std::move(args));
      return negated ? MakeNot(std::move(like)) : like;
    }
    // plain comparison
    static constexpr struct {
      const char* sym;
      BinaryOp op;
    } kCmps[] = {{"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                 {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe},
                 {"=", BinaryOp::kEq},  {"<", BinaryOp::kLt},
                 {">", BinaryOp::kGt}};
    for (const auto& c : kCmps) {
      if (PeekSymbol(c.sym)) {
        Advance();
        RFID_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return MakeBinary(c.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    RFID_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      BinaryOp op = Peek().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      RFID_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseMultiplicative() {
    RFID_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      BinaryOp op = Peek().text == "*" ? BinaryOp::kMul : BinaryOp::kDiv;
      Advance();
      RFID_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger: {
        Advance();
        // "<n> MINUTES" style interval literal.
        int64_t unit = 0;
        if (Peek().type == TokenType::kIdentifier &&
            IntervalUnit(Peek().text, &unit)) {
          Advance();
          return MakeLiteral(Value::Interval(t.int_value * unit));
        }
        return MakeLiteral(Value::Int64(t.int_value));
      }
      case TokenType::kFloat:
        Advance();
        return MakeLiteral(Value::Double(t.double_value));
      case TokenType::kString:
        Advance();
        return MakeLiteral(Value::String(t.text));
      case TokenType::kSymbol:
        if (t.text == "(") {
          Advance();
          RFID_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
          RFID_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        if (t.text == "-") {  // unary minus on numeric literal/expr
          Advance();
          RFID_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
          return MakeBinary(BinaryOp::kSub, MakeLiteral(Value::Int64(0)),
                            std::move(inner));
        }
        if (t.text == "*") {
          Advance();
          return MakeStar();
        }
        return Error("expected expression");
      case TokenType::kIdentifier:
        return ParseIdentifierExpr();
      case TokenType::kEnd:
        return Error("expected expression");
    }
    return Error("expected expression");
  }

  Result<ExprPtr> ParseIdentifierExpr() {
    // CASE WHEN ... THEN ... [ELSE ...] END
    if (PeekKeyword("case")) {
      Advance();
      std::vector<ExprPtr> children;
      bool has_else = false;
      while (MatchKeyword("when")) {
        RFID_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
        RFID_RETURN_IF_ERROR(ExpectKeyword("then"));
        RFID_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
        children.push_back(std::move(when));
        children.push_back(std::move(then));
      }
      if (children.empty()) return Error("CASE requires at least one WHEN");
      if (MatchKeyword("else")) {
        RFID_ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
        children.push_back(std::move(els));
        has_else = true;
      }
      RFID_RETURN_IF_ERROR(ExpectKeyword("end"));
      return MakeCase(std::move(children), has_else);
    }
    // NULL / TRUE / FALSE literals
    if (PeekKeyword("null")) {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (PeekKeyword("true")) {
      Advance();
      return MakeLiteral(Value::Bool(true));
    }
    if (PeekKeyword("false")) {
      Advance();
      return MakeLiteral(Value::Bool(false));
    }
    // TIMESTAMP '...' or TIMESTAMP <micros>
    if (PeekKeyword("timestamp")) {
      Advance();
      if (Peek().type == TokenType::kString) {
        int64_t micros = 0;
        if (!ParseTimestamp(Peek().text, &micros)) {
          return Error("malformed timestamp literal");
        }
        Advance();
        return MakeLiteral(Value::Timestamp(micros));
      }
      if (Peek().type == TokenType::kInteger) {
        int64_t micros = Advance().int_value;
        return MakeLiteral(Value::Timestamp(micros));
      }
      if (PeekSymbol("-") && Peek(1).type == TokenType::kInteger) {
        Advance();
        int64_t micros = -Advance().int_value;
        return MakeLiteral(Value::Timestamp(micros));
      }
      return Error("expected timestamp literal");
    }
    // INTERVAL <n> <unit>
    if (PeekKeyword("interval")) {
      Advance();
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after INTERVAL");
      }
      int64_t n = Advance().int_value;
      int64_t unit = 0;
      if (Peek().type != TokenType::kIdentifier ||
          !IntervalUnit(Peek().text, &unit)) {
        return Error("expected interval unit");
      }
      Advance();
      return MakeLiteral(Value::Interval(n * unit));
    }

    std::string name = Advance().text;
    // Function call?
    if (PeekSymbol("(")) {
      Advance();
      bool distinct = MatchKeyword("distinct");
      std::vector<ExprPtr> args;
      if (!PeekSymbol(")")) {
        while (true) {
          RFID_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
          if (!MatchSymbol(",")) break;
        }
      }
      RFID_RETURN_IF_ERROR(ExpectSymbol(")"));
      ExprPtr call = MakeFuncCall(name, std::move(args), distinct);
      if (MatchKeyword("over")) {
        RFID_ASSIGN_OR_RETURN(WindowSpec w, ParseWindowSpec());
        call->window = std::move(w);
      }
      return call;
    }
    // Column reference, optionally qualified.
    if (MatchSymbol(".")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Error("expected column name after '.'");
      }
      std::string column = Advance().text;
      return MakeColumnRef(std::move(name), std::move(column));
    }
    return MakeColumnRef("", std::move(name));
  }

  Result<WindowSpec> ParseWindowSpec() {
    RFID_RETURN_IF_ERROR(ExpectSymbol("("));
    WindowSpec w;
    if (PeekKeyword("partition")) {
      Advance();
      RFID_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        RFID_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        w.partition_by.push_back(std::move(e));
        if (!MatchSymbol(",")) break;
      }
    }
    if (PeekKeyword("order")) {
      Advance();
      RFID_RETURN_IF_ERROR(ExpectKeyword("by"));
      while (true) {
        RFID_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        bool asc = true;
        if (MatchKeyword("desc")) {
          asc = false;
        } else {
          MatchKeyword("asc");
        }
        w.order_by.push_back({std::move(e), asc});
        if (!MatchSymbol(",")) break;
      }
    }
    if (PeekKeyword("rows") || PeekKeyword("range")) {
      w.has_frame = true;
      w.frame.unit =
          EqualsIgnoreCase(Advance().text, "rows") ? FrameUnit::kRows
                                                   : FrameUnit::kRange;
      if (MatchKeyword("between")) {
        RFID_ASSIGN_OR_RETURN(w.frame.start, ParseFrameBound(w.frame.unit, true));
        RFID_RETURN_IF_ERROR(ExpectKeyword("and"));
        RFID_ASSIGN_OR_RETURN(w.frame.end, ParseFrameBound(w.frame.unit, false));
      } else {
        // Shorthand "ROWS <n> PRECEDING" = BETWEEN n PRECEDING AND CURRENT ROW.
        RFID_ASSIGN_OR_RETURN(w.frame.start, ParseFrameBound(w.frame.unit, true));
        w.frame.end = FrameBound{false, 0};
      }
    }
    RFID_RETURN_IF_ERROR(ExpectSymbol(")"));
    return w;
  }

  Result<FrameBound> ParseFrameBound(FrameUnit unit, bool is_start) {
    if (MatchKeyword("unbounded")) {
      if (MatchKeyword("preceding")) return FrameBound{true, -1};
      if (MatchKeyword("following")) return FrameBound{true, 1};
      return Error("expected PRECEDING or FOLLOWING");
    }
    if (MatchKeyword("current")) {
      RFID_RETURN_IF_ERROR(ExpectKeyword("row"));
      return FrameBound{false, 0};
    }
    int64_t amount = 0;
    if (Peek().type == TokenType::kInteger) {
      amount = Advance().int_value;
      int64_t unit_micros = 0;
      if (unit == FrameUnit::kRange) {
        if (Peek().type != TokenType::kIdentifier ||
            !IntervalUnit(Peek().text, &unit_micros)) {
          return Error("RANGE frame offsets require a time unit");
        }
        Advance();
        amount *= unit_micros;
      } else if (Peek().type == TokenType::kIdentifier &&
                 IntervalUnit(Peek().text, &unit_micros)) {
        return Error("ROWS frame offsets must be plain row counts");
      }
    } else {
      return Error("expected frame offset");
    }
    (void)is_start;
    if (MatchKeyword("preceding")) return FrameBound{false, -amount};
    if (MatchKeyword("following")) return FrameBound{false, amount};
    return Error("expected PRECEDING or FOLLOWING");
  }

  std::string_view source_;  // borrowed; outlives the parse call
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<StatementPtr> ParseSql(std::string_view sql) {
  RFID_FAULT_POINT("sql.Parse");
  RFID_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(sql, std::move(tokens));
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  RFID_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(text, std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace rfid
