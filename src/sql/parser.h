// Recursive-descent parser for the SQL subset (see sql/ast.h).
#ifndef RFID_SQL_PARSER_H_
#define RFID_SQL_PARSER_H_

#include "sql/ast.h"

namespace rfid {

/// Parses a complete SELECT statement (optionally with WITH / UNION ALL /
/// ORDER BY). Trailing semicolon allowed.
Result<StatementPtr> ParseSql(std::string_view sql);

/// Parses a standalone scalar/boolean expression (used by the rule parser
/// for WHERE conditions over pattern references).
Result<ExprPtr> ParseExpression(std::string_view text);

}  // namespace rfid

#endif  // RFID_SQL_PARSER_H_
