// Runtime-dispatched SIMD kernels for the columnar scan path.
//
// The only kernel the scan needs is "compare a dense int64 lane against a
// constant and append the indices of passing lanes to a selection
// vector". The dispatch shim probes the CPU once (__builtin_cpu_supports)
// and routes to an AVX2 or SSE4.2 implementation compiled with per-
// function target attributes, so the rest of the tree keeps the default
// architecture flags; everything falls back to a scalar loop on other
// ISAs (and on non-x86 builds, where only the scalar path is compiled).
//
// The SIMD paths are bit-exact with the scalar loop: signed 64-bit
// compares only, no reordering of survivors — output indices are always
// ascending, exactly like the scalar loop produces them.
#ifndef RFID_COMMON_SIMD_H_
#define RFID_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace rfid::simd {

/// Comparison for FilterInt64; matches the engine's int64 comparison
/// semantics (Value::Compare on two non-null INT64/TIMESTAMP/INTERVAL/
/// BOOL payloads).
enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Appends the index (base + i) of every lane i in [0, n) with
/// data[i] CMP rhs to out; returns the number of indices written. `out`
/// must have room for n entries.
size_t FilterInt64(const int64_t* data, size_t n, Cmp cmp, int64_t rhs,
                   uint32_t base, uint32_t* out);

/// The dispatch level FilterInt64 runs at: "avx2", "sse4.2" or "scalar".
const char* ActiveLevelName();

/// Forces a dispatch level for tests: 0 = scalar, 1 = sse4.2 (if
/// supported), 2 = avx2 (if supported), -1 = restore CPU-probed default.
/// Levels the CPU lacks silently degrade to the best supported one.
void SetLevelForTest(int level);

}  // namespace rfid::simd

#endif  // RFID_COMMON_SIMD_H_
