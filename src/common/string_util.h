// Small string helpers shared across modules.
#ifndef RFID_COMMON_STRING_UTIL_H_
#define RFID_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rfid {

/// Lower-cases ASCII characters.
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality (SQL identifiers and keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins the pieces with the separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// SQL LIKE pattern match: '%' matches any run of characters, '_' any
/// single character; everything else matches literally (case-sensitive,
/// no escape syntax).
bool SqlLikeMatch(std::string_view text, std::string_view pattern);

}  // namespace rfid

#endif  // RFID_COMMON_STRING_UTIL_H_
