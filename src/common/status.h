// Status / Result error-handling primitives, in the style of
// LevelDB/RocksDB. Library code never throws across module boundaries;
// fallible operations return Status or Result<T>.
#ifndef RFID_COMMON_STATUS_H_
#define RFID_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rfid {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kParseError,
  kBindError,
  kRewriteInfeasible,
  kResourceExhausted,
  kCancelled,
  kDeadlineExceeded,
};

/// Result of a fallible operation: a code plus a human-readable message.
/// Class-level [[nodiscard]]: every function returning a Status by value
/// has its result checked or explicitly voided — a silently dropped
/// error is a compile error under -Werror (and a clang-tidy finding).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status BindError(std::string m) {
    return Status(StatusCode::kBindError, std::move(m));
  }
  static Status RewriteInfeasible(std::string m) {
    return Status(StatusCode::kRewriteInfeasible, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status (a minimal StatusOr).
/// [[nodiscard]] as with Status: dropping a Result drops its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

#define RFID_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::rfid::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define RFID_CONCAT_INNER_(a, b) a##b
#define RFID_CONCAT_(a, b) RFID_CONCAT_INNER_(a, b)

#define RFID_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto RFID_CONCAT_(_res_, __LINE__) = (expr);                  \
  if (!RFID_CONCAT_(_res_, __LINE__).ok())                      \
    return RFID_CONCAT_(_res_, __LINE__).status();              \
  lhs = std::move(RFID_CONCAT_(_res_, __LINE__)).value()

}  // namespace rfid

#endif  // RFID_COMMON_STATUS_H_
