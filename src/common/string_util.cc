#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace rfid {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool SqlLikeMatch(std::string_view text, std::string_view pattern) {
  // Two-pointer wildcard match: on mismatch, backtrack to one character
  // past the last '%' anchor. Linear in practice for SQL-ish patterns.
  size_t ti = 0;
  size_t pi = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (ti < text.size()) {
    if (pi < pattern.size() &&
        (pattern[pi] == '_' || pattern[pi] == text[ti])) {
      ++ti;
      ++pi;
    } else if (pi < pattern.size() && pattern[pi] == '%') {
      star_p = pi++;
      star_t = ti;
    } else if (star_p != std::string_view::npos) {
      pi = star_p + 1;
      ti = ++star_t;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '%') ++pi;
  return pi == pattern.size();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rfid
