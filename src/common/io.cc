#include "common/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/string_util.h"

namespace rfid {

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(
      StrFormat("%s %s: %s", op, path.c_str(), strerror(errno)));
}

// Writes exactly n bytes, retrying short writes; returns bytes written
// (< n only on error).
size_t WriteRaw(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      break;
    }
    done += static_cast<size_t>(w);
  }
  return done;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  // Table-driven CRC-32 (reflected IEEE polynomial 0xEDB88320), the same
  // checksum zlib/leveldb logs use. The table is built once, lazily.
  static const uint32_t* table = [] {
    auto* t = new uint32_t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), offset_(other.offset_) {
  other.fd_ = -1;
  other.offset_ = 0;
}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    offset_ = other.offset_;
    other.fd_ = -1;
    other.offset_ = 0;
  }
  return *this;
}

DurableFile::~DurableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<DurableFile> DurableFile::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("create", path);
  DurableFile f;
  f.fd_ = fd;
  f.path_ = path;
  f.offset_ = 0;
  return f;
}

Result<DurableFile> DurableFile::OpenAppend(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return ErrnoStatus("seek", path);
  }
  DurableFile f;
  f.fd_ = fd;
  f.path_ = path;
  f.offset_ = static_cast<uint64_t>(end);
  return f;
}

Status DurableFile::Append(const void* data, size_t n) {
  if (fd_ < 0) return Status::Internal("append to closed file " + path_);
  const char* bytes = static_cast<const char*>(data);
  if (FaultInjectionActive()) {
    // Three distinct crash artifacts, swept in order by fail-at-step
    // sweeps: nothing written / torn half / full-but-corrupt.
    if (Status st = PokeFault("io.write"); !st.ok()) return st;
    if (Status st = PokeFault("io.write.short"); !st.ok()) {
      size_t half = n / 2;
      offset_ += WriteRaw(fd_, bytes, half);
      return st;
    }
    if (Status st = PokeFault("io.write.flip"); !st.ok()) {
      std::string corrupt(bytes, n);
      if (!corrupt.empty()) corrupt[corrupt.size() / 2] ^= 0x10;
      offset_ += WriteRaw(fd_, corrupt.data(), corrupt.size());
      return st;
    }
  }
  size_t done = WriteRaw(fd_, bytes, n);
  offset_ += done;
  if (done != n) return ErrnoStatus("write", path_);
  return Status::OK();
}

Status DurableFile::Sync() {
  if (fd_ < 0) return Status::Internal("sync of closed file " + path_);
  if (FaultInjectionActive()) {
    // A failed fsync leaves the data in the page cache: present for
    // subsequent reads, gone after a power cut.
    if (Status st = PokeFault("io.fsync"); !st.ok()) return st;
  }
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
  return Status::OK();
}

Status DurableFile::Close() {
  if (fd_ < 0) return Status::OK();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) return ErrnoStatus("close", path_);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    if (r == 0) break;
    out.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return out;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    Status st = ErrnoStatus("ftruncate", path);
    ::close(fd);
    return st;
  }
  if (::fsync(fd) != 0) {
    Status st = ErrnoStatus("fsync", path);
    ::close(fd);
    return st;
  }
  ::close(fd);
  return Status::OK();
}

Status AtomicReplaceFile(const std::string& tmp_path,
                         const std::string& final_path) {
  if (FaultInjectionActive()) {
    if (Status st = PokeFault("io.rename"); !st.ok()) return st;
  }
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return ErrnoStatus("rename", final_path);
  }
  size_t slash = final_path.rfind('/');
  std::string dir = slash == std::string::npos ? std::string(".")
                                               : final_path.substr(0, slash);
  return SyncDir(dir);
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  RFID_ASSIGN_OR_RETURN(DurableFile f, DurableFile::Create(tmp));
  RFID_RETURN_IF_ERROR(f.Append(content));
  RFID_RETURN_IF_ERROR(f.Sync());
  RFID_RETURN_IF_ERROR(f.Close());
  return AtomicReplaceFile(tmp, path);
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::OK();  // not syncable here; best effort
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && errno != EINVAL && errno != EBADF) {
    return ErrnoStatus("fsync dir", dir);
  }
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  if (errno == ENOENT) {
    // Missing parent: create the chain (mkdir -p).
    size_t slash = dir.rfind('/');
    if (slash != std::string::npos && slash > 0) {
      RFID_RETURN_IF_ERROR(EnsureDir(dir.substr(0, slash)));
      if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
        return Status::OK();
      }
    }
  }
  return ErrnoStatus("mkdir", dir);
}

}  // namespace rfid
