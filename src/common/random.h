// Deterministic PRNG for data generation and tests (splitmix64-seeded
// xoshiro-style generator; reproducible across platforms, unlike
// std::default_random_engine distributions).
#ifndef RFID_COMMON_RANDOM_H_
#define RFID_COMMON_RANDOM_H_

#include <cstdint>

namespace rfid {

class Random {
 public:
  explicit Random(uint64_t seed) {
    // splitmix64 to spread the seed over the state.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 2; ++i) {
      z ^= z >> 30;
      z *= 0xbf58476d1ce4e5b9ULL;
      z ^= z >> 27;
      z *= 0x94d049bb133111ebULL;
      z ^= z >> 31;
      state_[i] = z + static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
      z += 0x9e3779b97f4a7c15ULL;
    }
    if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;
  }

  uint64_t Next() {
    // xoroshiro128+
    uint64_t s0 = state_[0];
    uint64_t s1 = state_[1];
    uint64_t result = s0 + s1;
    s1 ^= s0;
    state_[0] = ((s0 << 55) | (s0 >> 9)) ^ s1 ^ (s1 << 14);
    state_[1] = (s1 << 36) | (s1 >> 28);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

 private:
  uint64_t state_[2];
};

}  // namespace rfid

#endif  // RFID_COMMON_RANDOM_H_
