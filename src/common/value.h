// Runtime value representation for the engine: a small tagged union over
// the SQL types the system needs (NULL, BOOL, INT64, DOUBLE, STRING,
// TIMESTAMP, INTERVAL).
//
// TIMESTAMP and INTERVAL are both carried as int64 microseconds;
// keeping them as distinct types lets the evaluator type-check
// timestamp arithmetic (ts - ts = interval, ts + interval = ts) and the
// renderer print them readably.
#ifndef RFID_COMMON_VALUE_H_
#define RFID_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace rfid {

enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
  kInterval,
};

const char* DataTypeName(DataType t);

/// Returns true if values of the two types can be compared with each other.
bool TypesComparable(DataType a, DataType b);

class Value {
 public:
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(DataType::kBool, v ? 1 : 0); }
  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) {
    Value val;
    val.type_ = DataType::kDouble;
    val.rep_ = v;
    return val;
  }
  static Value String(std::string v) {
    Value val;
    val.type_ = DataType::kString;
    val.rep_ = std::move(v);
    return val;
  }
  static Value Timestamp(int64_t micros) {
    return Value(DataType::kTimestamp, micros);
  }
  static Value Interval(int64_t micros) {
    return Value(DataType::kInterval, micros);
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  bool bool_value() const { return std::get<int64_t>(rep_) != 0; }
  int64_t int64_value() const { return std::get<int64_t>(rep_); }
  double double_value() const { return std::get<double>(rep_); }
  const std::string& string_value() const { return std::get<std::string>(rep_); }
  /// Moves the string payload out (value becomes an empty string); lets
  /// batch/columnar code salvage string buffers from expiring rows.
  std::string ReleaseString() && { return std::move(std::get<std::string>(rep_)); }
  int64_t timestamp_value() const { return std::get<int64_t>(rep_); }
  int64_t interval_value() const { return std::get<int64_t>(rep_); }

  /// Numeric view of INT64/DOUBLE values (used for mixed arithmetic).
  double AsDouble() const {
    return type_ == DataType::kDouble ? std::get<double>(rep_)
                                      : static_cast<double>(std::get<int64_t>(rep_));
  }

  /// Three-way comparison. Callers must ensure both values are non-null and
  /// of comparable types (see TypesComparable); violating that is a
  /// programming error checked by assert.
  int Compare(const Value& other) const;

  /// SQL equality for grouping/joins: NULLs compare equal to each other here
  /// (distinct-style semantics); used by hash tables, not by predicates.
  bool DistinctEquals(const Value& other) const;

  size_t Hash() const;

  std::string ToString() const;
  /// Renders the value as a SQL literal (quotes strings, TIMESTAMP '...').
  std::string ToSqlLiteral() const;

  bool operator==(const Value& other) const { return DistinctEquals(other); }

 private:
  Value(DataType t, int64_t v) : type_(t), rep_(v) {}

  DataType type_;
  std::variant<int64_t, double, std::string> rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace rfid

#endif  // RFID_COMMON_VALUE_H_
