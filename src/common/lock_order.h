// Global lock-rank registry: the single documented ordering every mutex
// in the system is constructed against. A thread may only acquire a
// mutex whose rank is *strictly greater* than every lock it already
// holds; the Debug/sanitizer-build runtime checker in common/sync.h
// aborts (with the acquisition stacks of both locks) on any violation,
// so every existing test doubles as a deadlock detector.
//
// The ordering is outermost-first: entry-point locks (server command
// serialization, connection bookkeeping) rank lowest, subsystem writer
// locks rank in the middle, and per-structure leaf locks rank highest.
// It encodes the real nesting of the system today:
//
//   rank  lock                         held while taking
//   ----  ---------------------------  -----------------------------------
//    10   kServerFeed                  server state, pipeline, storage
//    20   kServerShutdown              (nothing)
//    30   kServerConns                 (nothing)
//    40   kServerState                 inflight, caches, pipeline, storage
//    50   kSessionManager              (nothing)
//    60   kAdmission                   (nothing; cv waits here)
//    70   kServerInflight              (nothing)
//    80   kPlanCache                   (nothing)
//    90   kIngestPipeline              fragment cache, WAL I/O, storage
//   100   kFragmentCache               (nothing; never calls out)
//   110   kIngestDriverStatus          (nothing)
//   120   kTableStats                  (nothing)
//   130   kIndexRuns                   (nothing)
//   140   kColumnarDirectory           (nothing)
//   150   kWorkerPool                  (nothing; cv waits here)
//   160   kServerFlush                 (nothing)
//   200   kLeaf                        (nothing; per-call local mutexes)
//
// Adding a new mutex: pick the rank band that matches what the lock may
// be held *across* (everything it calls into must rank higher), add an
// enumerator here and a row to the table above and to DESIGN.md §15,
// and construct the Mutex with it. A lock that never nests with anything
// can use kLeaf. The runtime checker validates the choice in every
// Debug/sanitizer test run.
#ifndef RFID_COMMON_LOCK_ORDER_H_
#define RFID_COMMON_LOCK_ORDER_H_

namespace rfid {

enum class LockRank : int {
  kServerFeed = 10,          // Server::feed_mu_ (.feed serialization)
  kServerShutdown = 20,      // Server::shutdown_mu_ (drain handshake)
  kServerConns = 30,         // Server::conns_mu_ (connection list)
  kServerState = 40,         // Server::state_mu_ (catalog / pipeline swap)
  kSessionManager = 50,      // SessionManager::mu_
  kAdmission = 60,           // AdmissionController::mu_
  kServerInflight = 70,      // Server::inflight_mu_ (cancel registry)
  kPlanCache = 80,           // PlanCache::mu_
  kIngestPipeline = 90,      // IngestPipeline::mu_ (the writer lock)
  kFragmentCache = 100,      // cache::FragmentCache::mu_
  kIngestDriverStatus = 110, // IngestDriver::status_mu_
  kTableStats = 120,         // Table::stats_mu_
  kIndexRuns = 130,          // SortedIndex::mu_
  kColumnarDirectory = 140,  // ColumnarDirectory::mu_
  kWorkerPool = 150,         // exec WorkerPool::mu_
  kServerFlush = 160,        // Server::flush_mu_ (final WAL flush status)
  kLeaf = 200,               // never held across another acquisition
};

constexpr const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kServerFeed: return "server-feed";
    case LockRank::kServerShutdown: return "server-shutdown";
    case LockRank::kServerConns: return "server-conns";
    case LockRank::kServerState: return "server-state";
    case LockRank::kSessionManager: return "session-manager";
    case LockRank::kAdmission: return "admission";
    case LockRank::kServerInflight: return "server-inflight";
    case LockRank::kPlanCache: return "plan-cache";
    case LockRank::kIngestPipeline: return "ingest-pipeline";
    case LockRank::kFragmentCache: return "fragment-cache";
    case LockRank::kIngestDriverStatus: return "ingest-driver-status";
    case LockRank::kTableStats: return "table-stats";
    case LockRank::kIndexRuns: return "index-runs";
    case LockRank::kColumnarDirectory: return "columnar-directory";
    case LockRank::kWorkerPool: return "worker-pool";
    case LockRank::kServerFlush: return "server-flush";
    case LockRank::kLeaf: return "leaf";
  }
  return "unknown";
}

}  // namespace rfid

#endif  // RFID_COMMON_LOCK_ORDER_H_
