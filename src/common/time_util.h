// Timestamp and interval helpers. Timestamps are int64 microseconds since
// the Unix epoch; intervals are int64 microsecond durations.
#ifndef RFID_COMMON_TIME_UTIL_H_
#define RFID_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace rfid {

inline constexpr int64_t kMicrosPerSecond = 1000LL * 1000;
inline constexpr int64_t kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr int64_t kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr int64_t kMicrosPerDay = 24 * kMicrosPerHour;

inline constexpr int64_t Seconds(int64_t n) { return n * kMicrosPerSecond; }
inline constexpr int64_t Minutes(int64_t n) { return n * kMicrosPerMinute; }
inline constexpr int64_t Hours(int64_t n) { return n * kMicrosPerHour; }
inline constexpr int64_t Days(int64_t n) { return n * kMicrosPerDay; }

/// Renders a timestamp as "YYYY-MM-DD hh:mm:ss[.ffffff]" (UTC).
std::string FormatTimestamp(int64_t micros);

/// Renders an interval compactly, e.g. "5m", "1h30m", "250ms".
std::string FormatInterval(int64_t micros);

/// Renders an interval as SQL, e.g. "5 MINUTES".
std::string FormatIntervalSql(int64_t micros);

/// Parses "YYYY-MM-DD[ hh:mm:ss[.ffffff]]" (UTC) into microseconds since
/// epoch. Returns false on malformed input.
bool ParseTimestamp(const std::string& text, int64_t* micros);

}  // namespace rfid

#endif  // RFID_COMMON_TIME_UTIL_H_
