// Annotated concurrency layer: the only place in src/ allowed to name a
// raw std::mutex / std::shared_mutex / std::condition_variable
// (scripts/lint_sync.sh enforces this).
//
// Two static guarantees ride on these wrappers:
//
//  1. Clang Thread Safety Analysis. Mutex / SharedMutex are CAPABILITY
//     types and MutexLock / ReaderLock / WriterLock are scoped
//     capabilities, so a clang build with -Wthread-safety -Werror proves
//     at compile time that every GUARDED_BY field is only touched with
//     its lock held (shared vs exclusive distinguished) and that every
//     REQUIRES contract is met. The macros expand to nothing off-Clang;
//     gcc builds compile the identical code with zero overhead.
//
//  2. Lock-rank deadlock detection. Every Mutex / SharedMutex is
//     constructed with a rank from the one global ordering in
//     common/lock_order.h; in Debug and sanitizer builds
//     (RFID_SYNC_CHECK) each acquisition verifies that the new rank is
//     strictly greater than every lock the thread already holds, and
//     aborts with the acquisition stacks of *both* locks on a violation.
//     Any cycle in the lock graph must contain at least one edge that
//     acquires a lower-or-equal rank, so a run of the existing test
//     suites doubles as a deadlock detector. In Release builds the rank
//     is not even stored (static_asserts below pin the wrappers to the
//     size of the raw primitives).
//
// Condition variables deliberately have no predicate overload: a
// predicate lambda is a separate function to the analysis, so guarded
// reads inside it would need their own annotations. Callers loop:
//
//   MutexLock lock(&mu_);
//   while (queue_.empty()) cv_.Wait(lock);
#ifndef RFID_COMMON_SYNC_H_
#define RFID_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_order.h"

// --- Clang Thread Safety Analysis attribute macros -------------------------

#if defined(__clang__) && !defined(SWIG)
#define RFID_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RFID_THREAD_ANNOTATION_(x)  // no-op off-Clang
#endif

#define CAPABILITY(x) RFID_THREAD_ANNOTATION_(capability(x))
#define SCOPED_CAPABILITY RFID_THREAD_ANNOTATION_(scoped_lockable)
#define GUARDED_BY(x) RFID_THREAD_ANNOTATION_(guarded_by(x))
#define PT_GUARDED_BY(x) RFID_THREAD_ANNOTATION_(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) RFID_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) RFID_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define REQUIRES(...) RFID_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  RFID_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) RFID_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  RFID_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) RFID_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  RFID_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  RFID_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) RFID_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) RFID_THREAD_ANNOTATION_(assert_capability(x))
#define RETURN_CAPABILITY(x) RFID_THREAD_ANNOTATION_(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  RFID_THREAD_ANNOTATION_(no_thread_safety_analysis)

// --- Rank checker (Debug / sanitizer builds) -------------------------------

// RFID_SYNC_CHECK is defined by CMake for Debug and sanitizer builds
// (and can be forced per-target, e.g. tests/sync_test.cc). Falling back
// to !NDEBUG keeps ad-hoc debug compiles covered.
#if defined(RFID_SYNC_CHECK)
#define RFID_SYNC_CHECK_ENABLED 1
#elif !defined(NDEBUG)
#define RFID_SYNC_CHECK_ENABLED 1
#else
#define RFID_SYNC_CHECK_ENABLED 0
#endif

#if RFID_SYNC_CHECK_ENABLED
#include <cstdio>
#include <cstdlib>
#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define RFID_SYNC_HAVE_BACKTRACE_ 1
#endif
#endif
#endif  // RFID_SYNC_CHECK_ENABLED

namespace rfid {

#if RFID_SYNC_CHECK_ENABLED
namespace sync_internal {

inline constexpr int kMaxHeldLocks = 32;
inline constexpr int kMaxFrames = 24;

struct HeldLock {
  const void* cap = nullptr;
  int rank = 0;
  const char* name = nullptr;
  void* frames[kMaxFrames];
  int depth = 0;
};

struct HeldStack {
  HeldLock locks[kMaxHeldLocks];
  int size = 0;
};

inline HeldStack& Held() {
  static thread_local HeldStack stack;
  return stack;
}

inline void DumpStack(void* const* frames, int depth) {
#if defined(RFID_SYNC_HAVE_BACKTRACE_)
  if (depth > 0) backtrace_symbols_fd(frames, depth, 2);
#else
  (void)frames;
  (void)depth;
  std::fprintf(stderr, "  (no backtrace support on this platform)\n");
#endif
}

[[noreturn]] inline void RankViolation(const HeldLock& held, const void* cap,
                                       int rank, const char* name) {
  std::fprintf(stderr,
               "[sync] lock rank order violation: acquiring \"%s\" "
               "(rank %d, %p) while already holding \"%s\" (rank %d, %p)\n"
               "[sync] see common/lock_order.h for the global ordering\n",
               name, rank, cap, held.name, held.rank, held.cap);
#if defined(RFID_SYNC_HAVE_BACKTRACE_)
  void* frames[kMaxFrames];
  int depth = backtrace(frames, kMaxFrames);
  std::fprintf(stderr, "[sync] stack of the offending acquisition:\n");
  DumpStack(frames, depth);
#endif
  std::fprintf(stderr, "[sync] stack at acquisition of the held lock:\n");
  DumpStack(held.frames, held.depth);
  std::abort();
}

/// Called before blocking on the lock, so a would-be deadlock aborts
/// with a diagnostic instead of hanging the test run.
inline void NoteAcquire(const void* cap, LockRank lock_rank) {
  const int rank = static_cast<int>(lock_rank);
  HeldStack& held = Held();
  for (int i = 0; i < held.size; ++i) {
    if (held.locks[i].rank >= rank) {
      RankViolation(held.locks[i], cap, rank, LockRankName(lock_rank));
    }
  }
  if (held.size < kMaxHeldLocks) {
    HeldLock& h = held.locks[held.size];
    h.cap = cap;
    h.rank = rank;
    h.name = LockRankName(lock_rank);
#if defined(RFID_SYNC_HAVE_BACKTRACE_)
    h.depth = backtrace(h.frames, kMaxFrames);
#else
    h.depth = 0;
#endif
    ++held.size;
  }
}

inline void NoteRelease(const void* cap) {
  HeldStack& held = Held();
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.locks[i].cap == cap) {
      for (int j = i; j + 1 < held.size; ++j) {
        held.locks[j] = held.locks[j + 1];
      }
      --held.size;
      return;
    }
  }
}

}  // namespace sync_internal
#endif  // RFID_SYNC_CHECK_ENABLED

/// Rank-registered exclusive mutex. In Release builds this is exactly a
/// std::mutex (the rank is not stored); in Debug/sanitizer builds every
/// acquisition is checked against the global lock order.
class CAPABILITY("mutex") Mutex {
 public:
#if RFID_SYNC_CHECK_ENABLED
  explicit Mutex(LockRank rank = LockRank::kLeaf) noexcept : rank_(rank) {}
#else
  explicit Mutex(LockRank = LockRank::kLeaf) noexcept {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if RFID_SYNC_CHECK_ENABLED
    sync_internal::NoteAcquire(this, rank_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if RFID_SYNC_CHECK_ENABLED
    sync_internal::NoteRelease(this);
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if RFID_SYNC_CHECK_ENABLED
    sync_internal::NoteAcquire(this, rank_);
#endif
    return true;
  }

  /// The raw primitive, for CondVar only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
#if RFID_SYNC_CHECK_ENABLED
  LockRank rank_;
#endif
};

/// Rank-registered reader/writer mutex (same contract as Mutex; shared
/// acquisitions participate in rank checking too — a read-side lock held
/// across a lower-rank acquisition deadlocks just as well).
class CAPABILITY("mutex") SharedMutex {
 public:
#if RFID_SYNC_CHECK_ENABLED
  explicit SharedMutex(LockRank rank = LockRank::kLeaf) noexcept
      : rank_(rank) {}
#else
  explicit SharedMutex(LockRank = LockRank::kLeaf) noexcept {}
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if RFID_SYNC_CHECK_ENABLED
    sync_internal::NoteAcquire(this, rank_);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if RFID_SYNC_CHECK_ENABLED
    sync_internal::NoteRelease(this);
#endif
  }

  void LockShared() ACQUIRE_SHARED() {
#if RFID_SYNC_CHECK_ENABLED
    sync_internal::NoteAcquire(this, rank_);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if RFID_SYNC_CHECK_ENABLED
    sync_internal::NoteRelease(this);
#endif
  }

 private:
  std::shared_mutex mu_;
#if RFID_SYNC_CHECK_ENABLED
  LockRank rank_;
#endif
};

/// RAII exclusive lock over a Mutex. Exactly one pointer wide.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (e.g. to notify a CondVar without the lock held).
  void Unlock() RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderLock() RELEASE() { mu_->UnlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~WriterLock() RELEASE() { mu_->Unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Condition variable over Mutex. No predicate overloads by design (see
/// the header comment): callers re-test their guarded condition in a
/// while loop, inside the function that holds the capability.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and waits; the mutex is held
  /// again when this returns. The rank record is kept for the duration:
  /// the blocked thread acquires nothing else while parked.
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// As Wait, returning cv_status::timeout once `deadline` passes.
  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Zero-overhead proof: with the rank checker compiled out (Release), the
// wrappers are layout-identical to the raw primitives, and the RAII
// guards never exceed one pointer.
#if !RFID_SYNC_CHECK_ENABLED
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "Release Mutex must not carry rank state");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "Release SharedMutex must not carry rank state");
#endif
static_assert(sizeof(CondVar) == sizeof(std::condition_variable),
              "CondVar must add no state");
static_assert(sizeof(MutexLock) == sizeof(void*),
              "MutexLock must stay one pointer wide");
static_assert(sizeof(ReaderLock) == sizeof(void*) &&
                  sizeof(WriterLock) == sizeof(void*),
              "shared-mutex guards must stay one pointer wide");

}  // namespace rfid

#endif  // RFID_COMMON_SYNC_H_
