#include "common/simd.h"

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define RFID_SIMD_X86 1
#else
#define RFID_SIMD_X86 0
#endif

namespace rfid::simd {
namespace {

// A comparison a CMP b over signed 64-bit lanes decomposes into the two
// primitive predicates the ISA offers (eq, gt) plus a complement bit:
//   eq: eq            ne: !eq
//   gt: gt            le: !gt
//   lt: gt(swapped)   ge: !gt(swapped)
struct CmpPlan {
  bool use_eq;    // primitive is eq (else gt)
  bool swap;      // swap operands before gt
  bool negate;    // complement the mask
};

CmpPlan PlanFor(Cmp cmp) {
  switch (cmp) {
    case Cmp::kEq: return {true, false, false};
    case Cmp::kNe: return {true, false, true};
    case Cmp::kGt: return {false, false, false};
    case Cmp::kLe: return {false, false, true};
    case Cmp::kLt: return {false, true, false};
    case Cmp::kGe: return {false, true, true};
  }
  return {true, false, false};
}

bool ScalarPass(int64_t v, Cmp cmp, int64_t rhs) {
  switch (cmp) {
    case Cmp::kEq: return v == rhs;
    case Cmp::kNe: return v != rhs;
    case Cmp::kLt: return v < rhs;
    case Cmp::kLe: return v <= rhs;
    case Cmp::kGt: return v > rhs;
    case Cmp::kGe: return v >= rhs;
  }
  return false;
}

size_t FilterScalar(const int64_t* data, size_t n, Cmp cmp, int64_t rhs,
                    uint32_t base, uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (ScalarPass(data[i], cmp, rhs)) {
      out[count++] = base + static_cast<uint32_t>(i);
    }
  }
  return count;
}

#if RFID_SIMD_X86

__attribute__((target("sse4.2"))) size_t FilterSse42(const int64_t* data,
                                                     size_t n, Cmp cmp,
                                                     int64_t rhs,
                                                     uint32_t base,
                                                     uint32_t* out) {
  const CmpPlan plan = PlanFor(cmp);
  const __m128i vrhs = _mm_set1_epi64x(rhs);
  size_t count = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(data + i));
    __m128i m;
    if (plan.use_eq) {
      m = _mm_cmpeq_epi64(v, vrhs);
    } else if (plan.swap) {
      m = _mm_cmpgt_epi64(vrhs, v);
    } else {
      m = _mm_cmpgt_epi64(v, vrhs);
    }
    int mask = _mm_movemask_pd(_mm_castsi128_pd(m));
    if (plan.negate) mask = ~mask & 0x3;
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[count++] = base + static_cast<uint32_t>(i + static_cast<size_t>(lane));
      mask &= mask - 1;
    }
  }
  count += FilterScalar(data + i, n - i, cmp, rhs,
                        base + static_cast<uint32_t>(i), out + count);
  return count;
}

__attribute__((target("avx2"))) size_t FilterAvx2(const int64_t* data,
                                                  size_t n, Cmp cmp,
                                                  int64_t rhs, uint32_t base,
                                                  uint32_t* out) {
  const CmpPlan plan = PlanFor(cmp);
  const __m256i vrhs = _mm256_set1_epi64x(rhs);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(data + i));
    __m256i m;
    if (plan.use_eq) {
      m = _mm256_cmpeq_epi64(v, vrhs);
    } else if (plan.swap) {
      m = _mm256_cmpgt_epi64(vrhs, v);
    } else {
      m = _mm256_cmpgt_epi64(v, vrhs);
    }
    int mask = _mm256_movemask_pd(_mm256_castsi256_pd(m));
    if (plan.negate) mask = ~mask & 0xf;
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[count++] = base + static_cast<uint32_t>(i + static_cast<size_t>(lane));
      mask &= mask - 1;
    }
  }
  count += FilterScalar(data + i, n - i, cmp, rhs,
                        base + static_cast<uint32_t>(i), out + count);
  return count;
}

#endif  // RFID_SIMD_X86

enum Level : int { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

int ProbeLevel() {
#if RFID_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return kSse42;
#endif
  return kScalar;
}

// The probed level is immutable after first use; the test override is an
// atomic so concurrent scans see a consistent level without locking.
std::atomic<int> g_level{-1};

int ActiveLevel() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = ProbeLevel();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return lvl;
}

}  // namespace

size_t FilterInt64(const int64_t* data, size_t n, Cmp cmp, int64_t rhs,
                   uint32_t base, uint32_t* out) {
  switch (ActiveLevel()) {
#if RFID_SIMD_X86
    case kAvx2:
      return FilterAvx2(data, n, cmp, rhs, base, out);
    case kSse42:
      return FilterSse42(data, n, cmp, rhs, base, out);
#endif
    default:
      return FilterScalar(data, n, cmp, rhs, base, out);
  }
}

const char* ActiveLevelName() {
  switch (ActiveLevel()) {
    case kAvx2: return "avx2";
    case kSse42: return "sse4.2";
    default: return "scalar";
  }
}

void SetLevelForTest(int level) {
  if (level < 0) {
    g_level.store(ProbeLevel(), std::memory_order_relaxed);
    return;
  }
  const int supported = ProbeLevel();
  g_level.store(level < supported ? level : supported,
                std::memory_order_relaxed);
}

}  // namespace rfid::simd
