#include "common/status.h"

namespace rfid {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kRewriteInfeasible:
      return "RewriteInfeasible";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace rfid
