#include "common/value.h"

#include <cassert>
#include <functional>

#include "common/time_util.h"

namespace rfid {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
    case DataType::kTimestamp:
      return "TIMESTAMP";
    case DataType::kInterval:
      return "INTERVAL";
  }
  return "?";
}

bool TypesComparable(DataType a, DataType b) {
  if (a == b) return true;
  auto numeric = [](DataType t) {
    return t == DataType::kInt64 || t == DataType::kDouble;
  };
  return numeric(a) && numeric(b);
}

int Value::Compare(const Value& other) const {
  assert(!is_null() && !other.is_null());
  assert(TypesComparable(type_, other.type_));
  if (type_ == DataType::kString) {
    return string_value().compare(other.string_value());
  }
  if (type_ == DataType::kDouble || other.type_ == DataType::kDouble) {
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int64_t a = std::get<int64_t>(rep_);
  int64_t b = std::get<int64_t>(other.rep_);
  return a < b ? -1 : (a > b ? 1 : 0);
}

bool Value::DistinctEquals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (!TypesComparable(type_, other.type_)) return false;
  return Compare(other) == 0;
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kString:
      return std::hash<std::string>()(string_value());
    case DataType::kDouble: {
      double d = double_value();
      // Hash doubles holding integral values like the equal INT64 so that
      // mixed-type join keys land in the same bucket.
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<int64_t>()(as_int);
      }
      return std::hash<double>()(d);
    }
    default:
      return std::hash<int64_t>()(std::get<int64_t>(rep_));
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case DataType::kString:
      return string_value();
    case DataType::kTimestamp:
      return FormatTimestamp(timestamp_value());
    case DataType::kInterval:
      return FormatInterval(interval_value());
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  switch (type_) {
    case DataType::kString: {
      std::string out = "'";
      for (char c : string_value()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case DataType::kTimestamp:
      return "TIMESTAMP " + std::to_string(timestamp_value());
    case DataType::kInterval:
      return FormatIntervalSql(interval_value());
    default:
      return ToString();
  }
}

}  // namespace rfid
