// Durable file primitives shared by the WAL and the persistence layer:
// a POSIX append-file wrapper whose write/sync calls carry deterministic
// fault-injection sites, CRC32 checksumming, and the atomic-replace
// (temp file + rename + directory sync) pattern every on-disk manifest
// uses.
//
// Fault sites (see common/fault.h; each fires at most once per injector
// and leaves a *realistic crash artifact* behind, so recovery code is
// exercised against the states a real power cut produces):
//  - "io.write"        fails before any byte reaches the file (a crash
//                      just before the write() syscall).
//  - "io.write.short"  writes only the first half of the buffer, then
//                      fails — the torn tail a mid-write crash leaves.
//  - "io.write.flip"   writes the full buffer with one bit flipped, then
//                      fails — silent media corruption; only a checksum
//                      can catch it on the read side.
//  - "io.fsync"        returns failure without syncing: data may sit in
//                      the page cache and vanish on power loss.
//  - "io.rename"       fails before the rename() of an atomic replace.
//
// Every operation returns a structured Status carrying errno text; no
// silent truncation.
#ifndef RFID_COMMON_IO_H_
#define RFID_COMMON_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace rfid {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `n` bytes.
uint32_t Crc32(const void* data, size_t n);
uint32_t Crc32(const std::string& s);

/// Append-only file handle with explicit durability control. Move-only;
/// closes (without syncing) on destruction.
class DurableFile {
 public:
  DurableFile() = default;
  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&& other) noexcept;
  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;
  ~DurableFile();

  /// Creates (or truncates) `path` for appending.
  static Result<DurableFile> Create(const std::string& path);

  /// Opens an existing `path` for appending at its current end.
  static Result<DurableFile> OpenAppend(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Bytes appended through this handle plus the size at open.
  uint64_t offset() const { return offset_; }

  /// Appends all `n` bytes (retrying short writes). Crosses the io.write
  /// fault sites documented above.
  Status Append(const void* data, size_t n);
  Status Append(const std::string& s) { return Append(s.data(), s.size()); }

  /// fsync()s the file. Crosses the "io.fsync" fault site.
  Status Sync();

  /// Closes without syncing; returns the close() status.
  Status Close();

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t offset_ = 0;
};

/// Reads the whole file; NotFound if it does not exist.
Result<std::string> ReadFileToString(const std::string& path);

/// Truncates `path` to `size` bytes and syncs it (drops a torn tail).
Status TruncateFile(const std::string& path, uint64_t size);

/// Atomically replaces `final_path` with `tmp_path` (rename, then a sync
/// of the containing directory so the rename itself is durable). Crosses
/// the "io.rename" fault site.
Status AtomicReplaceFile(const std::string& tmp_path,
                         const std::string& final_path);

/// Writes `content` durably at `path`: ".tmp" sibling, fsync, atomic
/// rename. A crash leaves either the old file or the new one, never a
/// truncated hybrid.
Status WriteFileAtomic(const std::string& path, const std::string& content);

/// fsync()s a directory so entries created/renamed inside it survive a
/// crash. No-op success on platforms where directories cannot be synced.
Status SyncDir(const std::string& dir);

/// mkdir -p for one level; OK when the directory already exists.
Status EnsureDir(const std::string& dir);

}  // namespace rfid

#endif  // RFID_COMMON_IO_H_
