#include "common/fault.h"

namespace rfid {

namespace {
thread_local FaultInjector* g_active_injector = nullptr;
}  // namespace

Status FaultInjector::Poke(const std::string& site) {
  uint64_t step = steps_++;
  if (!fired_) {
    bool fire = false;
    switch (mode_) {
      case Mode::kCountOnly:
        break;
      case Mode::kFailAtStep:
        fire = step == fail_at_step_;
        break;
      case Mode::kRandom:
        if (!rng_init_) {
          rng_ = Random(rng_seed_);
          rng_init_ = true;
        }
        fire = rng_.Bernoulli(probability_);
        break;
    }
    if (!fire) return Status::OK();
    fired_ = true;
    fired_site_ = site;
    fired_step_ = step;
  }
  return Status::Internal("injected fault at " + fired_site_ + " (step " +
                          std::to_string(fired_step_) + ")");
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* injector)
    : previous_(g_active_injector) {
  g_active_injector = injector;
}

ScopedFaultInjector::~ScopedFaultInjector() { g_active_injector = previous_; }

bool FaultInjectionActive() { return g_active_injector != nullptr; }

Status PokeFault(const std::string& site) {
  if (g_active_injector == nullptr) return Status::OK();
  return g_active_injector->Poke(site);
}

}  // namespace rfid
