// Deterministic fault-injection harness.
//
// Injection points are sprinkled through the engine (operator Open/Next,
// allocation/charge sites, the SQL/cleansing/rewrite entry points) as
// calls to PokeFault("site"). In production no injector is installed and
// FaultInjectionActive() is a single thread-local pointer test, so call
// sites cost nothing; callers are expected to guard any site-name
// construction behind it.
//
// Tests install an injector with ScopedFaultInjector. Three modes:
//  - CountOnly      : never fires; counts the injection points a run
//                     crosses, which defines the sweep space below.
//  - FailAtStep(k)  : fires exactly at the k-th point crossed (0-based),
//                     making "fail at step k" sweeps fully deterministic.
//  - SeededRandom   : fires each point with probability p under a fixed
//                     seed — reproducible chaos testing.
//
// A fired injector keeps failing every subsequent poke (a dead subsystem
// stays dead), so partially-unwound retries inside one query cannot
// silently succeed.
//
// File-I/O sites: common/io.h's DurableFile threads this harness through
// the durability stack. Unlike the in-memory sites, each of these leaves
// a realistic crash artifact on disk when it fires (see io.h for the
// exact semantics), so fail-at-step sweeps over the WAL and checkpoint
// paths exercise recovery against torn, corrupt, and unsynced files:
//   io.write / io.write.short / io.write.flip / io.fsync / io.rename
// The site names are exported below so sweeps can assert which class of
// artifact a given step produced.
#ifndef RFID_COMMON_FAULT_H_
#define RFID_COMMON_FAULT_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/status.h"

namespace rfid {

/// Canonical file-I/O fault-site names (poked by common/io.h). Kept here
/// so tests and sweeps name the sites symbolically.
inline constexpr const char kFaultIoWrite[] = "io.write";
inline constexpr const char kFaultIoWriteShort[] = "io.write.short";
inline constexpr const char kFaultIoWriteFlip[] = "io.write.flip";
inline constexpr const char kFaultIoFsync[] = "io.fsync";
inline constexpr const char kFaultIoRename[] = "io.rename";

class FaultInjector {
 public:
  static FaultInjector CountOnly() { return FaultInjector(Mode::kCountOnly); }
  static FaultInjector FailAtStep(uint64_t step) {
    FaultInjector f(Mode::kFailAtStep);
    f.fail_at_step_ = step;
    return f;
  }
  static FaultInjector SeededRandom(uint64_t seed, double probability) {
    FaultInjector f(Mode::kRandom);
    f.rng_seed_ = seed;
    f.probability_ = probability;
    return f;
  }

  /// Crosses one injection point. Returns kInternal when the injector
  /// decides to fire (and on every poke thereafter).
  Status Poke(const std::string& site);

  /// Injection points crossed so far (including the firing one).
  uint64_t steps() const { return steps_; }
  bool fired() const { return fired_; }
  const std::string& fired_site() const { return fired_site_; }
  uint64_t fired_step() const { return fired_step_; }

 private:
  enum class Mode { kCountOnly, kFailAtStep, kRandom };

  explicit FaultInjector(Mode mode) : mode_(mode), rng_(0) {}

  Mode mode_;
  uint64_t fail_at_step_ = 0;
  double probability_ = 0;
  uint64_t rng_seed_ = 0;
  Random rng_;
  bool rng_init_ = false;

  uint64_t steps_ = 0;
  bool fired_ = false;
  std::string fired_site_;
  uint64_t fired_step_ = 0;
};

/// Installs `injector` as the calling thread's active injector for the
/// scope's lifetime; restores the previous one (usually none) on exit.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector);
  ~ScopedFaultInjector();
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

/// True when the calling thread has an injector installed.
bool FaultInjectionActive();

/// Pokes the thread's injector; OK when none is installed.
Status PokeFault(const std::string& site);

#define RFID_FAULT_POINT(site)                          \
  do {                                                  \
    if (::rfid::FaultInjectionActive()) {               \
      RFID_RETURN_IF_ERROR(::rfid::PokeFault(site));    \
    }                                                   \
  } while (0)

}  // namespace rfid

#endif  // RFID_COMMON_FAULT_H_
