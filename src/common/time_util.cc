#include "common/time_util.h"

#include <cstdio>
#include <ctime>

namespace rfid {

std::string FormatTimestamp(int64_t micros) {
  time_t secs = static_cast<time_t>(micros / kMicrosPerSecond);
  int64_t frac = micros % kMicrosPerSecond;
  if (frac < 0) {
    frac += kMicrosPerSecond;
    secs -= 1;
  }
  struct tm tm_buf;
  gmtime_r(&secs, &tm_buf);
  char buf[64];
  size_t n = strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_buf);
  std::string out(buf, n);
  if (frac != 0) {
    char fbuf[16];
    snprintf(fbuf, sizeof(fbuf), ".%06lld", static_cast<long long>(frac));
    out += fbuf;
  }
  return out;
}

std::string FormatInterval(int64_t micros) {
  bool neg = micros < 0;
  int64_t m = neg ? -micros : micros;
  std::string out = neg ? "-" : "";
  if (m % kMicrosPerSecond != 0) {
    char buf[32];
    snprintf(buf, sizeof(buf), "%.6gs",
             static_cast<double>(m) / kMicrosPerSecond);
    return out + buf;
  }
  int64_t secs = m / kMicrosPerSecond;
  int64_t hours = secs / 3600;
  int64_t mins = (secs % 3600) / 60;
  secs %= 60;
  if (hours > 0) out += std::to_string(hours) + "h";
  if (mins > 0) out += std::to_string(mins) + "m";
  if (secs > 0 || (hours == 0 && mins == 0)) out += std::to_string(secs) + "s";
  return out;
}

std::string FormatIntervalSql(int64_t micros) {
  bool neg = micros < 0;
  int64_t m = neg ? -micros : micros;
  std::string prefix = neg ? "-" : "";
  if (m % kMicrosPerHour == 0 && m != 0) {
    return prefix + std::to_string(m / kMicrosPerHour) + " HOURS";
  }
  if (m % kMicrosPerMinute == 0 && m != 0) {
    return prefix + std::to_string(m / kMicrosPerMinute) + " MINUTES";
  }
  if (m % kMicrosPerSecond == 0) {
    return prefix + std::to_string(m / kMicrosPerSecond) + " SECONDS";
  }
  return prefix + std::to_string(m) + " MICROSECONDS";
}

bool ParseTimestamp(const std::string& text, int64_t* micros) {
  int year = 0, month = 0, day = 0, hour = 0, min = 0;
  double sec = 0;
  int consumed = 0;
  int fields = sscanf(text.c_str(), "%d-%d-%d %d:%d:%lf%n", &year, &month, &day,
                      &hour, &min, &sec, &consumed);
  if (fields < 3) return false;
  if (fields >= 4 && fields < 6) return false;  // partial time of day
  if (fields == 3) {
    // Re-scan date-only to validate full consumption.
    consumed = 0;
    sscanf(text.c_str(), "%d-%d-%d%n", &year, &month, &day, &consumed);
  }
  if (static_cast<size_t>(consumed) != text.size()) return false;
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 || min > 59 ||
      sec >= 61.0 || sec < 0) {
    return false;
  }
  struct tm tm_buf = {};
  tm_buf.tm_year = year - 1900;
  tm_buf.tm_mon = month - 1;
  tm_buf.tm_mday = day;
  tm_buf.tm_hour = hour;
  tm_buf.tm_min = min;
  tm_buf.tm_sec = 0;
  time_t secs = timegm(&tm_buf);
  if (secs == static_cast<time_t>(-1)) return false;
  *micros = static_cast<int64_t>(secs) * kMicrosPerSecond +
            static_cast<int64_t>(sec * kMicrosPerSecond);
  return true;
}

}  // namespace rfid
