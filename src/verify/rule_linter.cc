#include "verify/rule_linter.h"

#include <map>
#include <utility>

#include "common/string_util.h"
#include "expr/conjunct.h"
#include "expr/eval.h"
#include "expr/interval.h"

namespace rfid {

namespace {

// Per-variable intervals implied by the sargable conjuncts of a rule
// condition, keyed by (pattern reference, column) — B.rtime and A.rtime
// are distinct variables. Non-sargable conjuncts are ignored (they can
// only narrow further, never rescue an already-empty interval).
using IntervalMap = std::map<std::pair<std::string, std::string>, ValueInterval>;

IntervalMap ConditionIntervals(const ExprPtr& condition) {
  IntervalMap out;
  for (const ExprPtr& c : SplitConjuncts(condition)) {
    ColumnLiteralCmp m;
    if (!MatchColumnLiteralCmp(FoldConstants(c), &m)) continue;
    if (m.op == BinaryOp::kNe) continue;
    auto key = std::make_pair(ToLower(m.column->qualifier),
                              ToLower(m.column->column));
    out[key].IntersectCmp(m.op, m.literal);
  }
  return out;
}

// True when the condition is provably unsatisfiable: a conjunct folds to
// literal FALSE, or some variable's interval is empty.
bool Unsatisfiable(const ExprPtr& condition, std::string* why) {
  for (const ExprPtr& c : SplitConjuncts(condition)) {
    ExprPtr folded = FoldConstants(c);
    if (folded != nullptr && folded->kind == ExprKind::kLiteral &&
        folded->value.type() == DataType::kBool &&
        !folded->value.bool_value()) {
      *why = StrFormat("conjunct %s folds to FALSE", ExprToSql(c).c_str());
      return true;
    }
  }
  for (const auto& [key, interval] : ConditionIntervals(condition)) {
    if (interval.Empty()) {
      *why = StrFormat("conjuncts on %s.%s imply the empty interval %s",
                       key.first.c_str(), key.second.c_str(),
                       interval.ToString().c_str());
      return true;
    }
  }
  return false;
}

// True when the two conditions are provably disjoint: some column
// (compared by name, pattern qualifiers stripped — both rules bind their
// references over the same input rows) is constrained to
// non-intersecting intervals. When this cannot be proven the conditions
// may overlap.
bool ProvablyDisjoint(const ExprPtr& a, const ExprPtr& b) {
  IntervalMap ia = ConditionIntervals(a);
  IntervalMap ib = ConditionIntervals(b);
  for (const auto& [ka, va] : ia) {
    for (const auto& [kb, vb] : ib) {
      if (ka.second != kb.second) continue;
      ValueInterval meet = va;
      meet.Intersect(vb);
      if (meet.Empty()) return true;
    }
  }
  return false;
}

void LintTable(const std::vector<const CleansingRule*>& rules,
               std::vector<LintFinding>* out) {
  // Unsatisfiable conditions.
  for (const CleansingRule* r : rules) {
    std::string why;
    if (r->condition != nullptr && Unsatisfiable(r->condition, &why)) {
      out->push_back({r->name, "unsatisfiable-condition",
                      StrFormat("rule can never fire: %s", why.c_str())});
    }
  }
  // DELETE/KEEP ambiguity and MODIFY correction ordering, pairwise in
  // creation order (first rule of the pair is the earlier one).
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      const CleansingRule* a = rules[i];
      const CleansingRule* b = rules[j];
      const CleansingRule* del = nullptr;
      const CleansingRule* keep = nullptr;
      if (a->action == RuleAction::kDelete && b->action == RuleAction::kKeep) {
        del = a;
        keep = b;
      } else if (a->action == RuleAction::kKeep &&
                 b->action == RuleAction::kDelete) {
        del = b;
        keep = a;
      }
      if (del != nullptr && keep != nullptr &&
          !ProvablyDisjoint(del->condition, keep->condition)) {
        out->push_back(
            {a->name, "delete-keep-overlap",
             StrFormat("DELETE rule %s and KEEP rule %s may match the same "
                       "rows (conditions not provably disjoint); which rows "
                       "survive depends on rule creation order",
                       del->name.c_str(), keep->name.c_str())});
      }
      if (a->action == RuleAction::kModify &&
          b->action == RuleAction::kModify) {
        for (const ModifyAssignment& ma : a->assignments) {
          for (const ModifyAssignment& mb : b->assignments) {
            if (EqualsIgnoreCase(ma.column, mb.column)) {
              out->push_back(
                  {a->name, "correction-order",
                   StrFormat("rules %s and %s both correct column %s; the "
                             "surviving value depends on rule creation order",
                             a->name.c_str(), b->name.c_str(),
                             ma.column.c_str())});
            }
          }
        }
      }
    }
  }
}

}  // namespace

std::string LintFinding::ToString() const {
  return StrFormat("LINT [%s] rule %s: %s", code.c_str(), rule.c_str(),
                   message.c_str());
}

std::vector<LintFinding> LintRules(const std::vector<CleansingRule>& rules) {
  std::vector<LintFinding> out;
  // Duplicate names across the whole catalog.
  for (size_t i = 0; i < rules.size(); ++i) {
    for (size_t j = i + 1; j < rules.size(); ++j) {
      if (EqualsIgnoreCase(rules[i].name, rules[j].name)) {
        out.push_back({rules[i].name, "duplicate-name",
                       StrFormat("rule name %s is defined more than once",
                                 rules[i].name.c_str())});
      }
    }
  }
  // Remaining checks group by the cleansed table.
  std::map<std::string, std::vector<const CleansingRule*>> by_table;
  for (const CleansingRule& r : rules) {
    by_table[ToLower(r.on_table)].push_back(&r);
  }
  for (const auto& [table, table_rules] : by_table) {
    LintTable(table_rules, &out);
  }
  return out;
}

std::vector<LintFinding> LintRulesFor(const std::vector<CleansingRule>& rules,
                                      std::string_view table) {
  std::vector<const CleansingRule*> table_rules;
  std::vector<LintFinding> out;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (!EqualsIgnoreCase(rules[i].on_table, table)) continue;
    for (const CleansingRule* prev : table_rules) {
      if (EqualsIgnoreCase(prev->name, rules[i].name)) {
        out.push_back({prev->name, "duplicate-name",
                       StrFormat("rule name %s is defined more than once",
                                 prev->name.c_str())});
      }
    }
    table_rules.push_back(&rules[i]);
  }
  LintTable(table_rules, &out);
  return out;
}

}  // namespace rfid
