// Bytecode verifier: abstract interpretation over a compiled
// ExprProgram / FilterProgram before its first execution.
//
// The verifier simulates the evaluation stack symbolically (one abstract
// type tag per stack cell, kNull = statically unknown) and proves, per
// instruction: operand arity and stack-depth balance, column indices in
// range for the input RowBatch layout, constant-pool and value-set-pool
// bounds, well-nested kCase structure, operator-code validity for
// kCompare/kArith, and type-tag consistency (comparisons over comparable
// types, booleans into kAnd/kOr/kNot, strings into kLike). It also
// checks the program's declared max_stack against the simulated depth —
// the ExprScratch register pool is sized from max_stack, so a lying
// bound is an out-of-bounds write at evaluation time.
//
// A Status violation names the failing instruction and invariant:
//   verify[bytecode] inst 3 (kLoadCol): invariant=column-bounds: ...
#ifndef RFID_VERIFY_BYTECODE_VERIFIER_H_
#define RFID_VERIFY_BYTECODE_VERIFIER_H_

#include <optional>

#include "expr/bytecode.h"
#include "expr/eval.h"

namespace rfid {

/// Verifies a program image against the layout of the batches it will
/// read (`input` is the producing operator's output descriptor).
Status VerifyBytecode(const BytecodeImage& image, const RowDesc& input);

/// Convenience overloads for compiled programs.
Status VerifyProgram(const ExprProgram& program, const RowDesc& input);
Status VerifyProgram(const FilterProgram& program, const RowDesc& input);

/// Compile-and-verify for operator Open paths. Returns the program when
/// it compiled and (with verification enabled) verified; nullopt when
/// the caller should fall back to the row interpreter (compile miss, or
/// soft-mode verification failure — logged); an error Status on a hard
/// verification failure, which fails the query loudly instead of
/// masking a compiler bug. `site` names the operator for diagnostics.
Result<std::optional<ExprProgram>> CompileVerified(const Expr& bound,
                                                  const RowDesc& input,
                                                  const char* site);
Result<std::optional<FilterProgram>> CompileVerifiedFilter(
    const Expr& bound_predicate, const RowDesc& input, const char* site);

}  // namespace rfid

#endif  // RFID_VERIFY_BYTECODE_VERIFIER_H_
