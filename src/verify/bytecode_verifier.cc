#include "verify/bytecode_verifier.h"

#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "verify/verify.h"

namespace rfid {

namespace {

const char* BcOpName(BcOp op) {
  switch (op) {
    case BcOp::kLoadCol: return "kLoadCol";
    case BcOp::kLoadConst: return "kLoadConst";
    case BcOp::kCompare: return "kCompare";
    case BcOp::kArith: return "kArith";
    case BcOp::kAnd: return "kAnd";
    case BcOp::kOr: return "kOr";
    case BcOp::kNot: return "kNot";
    case BcOp::kIsNull: return "kIsNull";
    case BcOp::kCase: return "kCase";
    case BcOp::kInList: return "kInList";
    case BcOp::kInValueSet: return "kInValueSet";
    case BcOp::kCoalesce: return "kCoalesce";
    case BcOp::kLike: return "kLike";
  }
  return "invalid";
}

Status Violation(size_t idx, BcOp op, const char* invariant,
                 const std::string& detail) {
  return Status::Internal(StrFormat(
      "verify[bytecode] inst %zu (%s): invariant=%s: %s", idx, BcOpName(op),
      invariant, detail.c_str()));
}

// kNull doubles as "statically unknown" on the simulated stack: a CASE
// join of differing branch types, or a column whose type the descriptor
// does not pin. Unknown operands pass every type check (the runtime
// kernels handle any tag); known operands must be consistent.
bool Unknown(DataType t) { return t == DataType::kNull; }

bool BoolLike(DataType t) { return Unknown(t) || t == DataType::kBool; }

bool ArithLike(DataType t) {
  return Unknown(t) || t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kTimestamp || t == DataType::kInterval;
}

DataType Join(DataType a, DataType b) {
  if (Unknown(a) || Unknown(b) || a != b) return DataType::kNull;
  return a;
}

}  // namespace

Status VerifyBytecode(const BytecodeImage& image, const RowDesc& input) {
  if (image.code.empty()) {
    return Status::Internal(
        "verify[bytecode]: invariant=non-empty: program has no instructions");
  }
  const int64_t num_cols = static_cast<int64_t>(input.num_fields());
  std::vector<DataType> stack;
  stack.reserve(static_cast<size_t>(image.max_stack > 0 ? image.max_stack : 1));

  for (size_t idx = 0; idx < image.code.size(); ++idx) {
    const BcInst& inst = image.code[idx];

    // Loads: bounds-check the pool index, then push.
    if (inst.op == BcOp::kLoadCol || inst.op == BcOp::kLoadConst) {
      DataType pushed;
      if (inst.op == BcOp::kLoadCol) {
        if (inst.a < 0 || inst.a >= num_cols) {
          return Violation(idx, inst.op, "column-bounds",
                           StrFormat("slot %d outside input row of %lld fields",
                                     inst.a, static_cast<long long>(num_cols)));
        }
        pushed = input.fields()[static_cast<size_t>(inst.a)].type;
      } else {
        if (inst.a < 0 ||
            static_cast<size_t>(inst.a) >= image.consts.size()) {
          return Violation(idx, inst.op, "constant-bounds",
                           StrFormat("constant %d outside pool of %zu", inst.a,
                                     image.consts.size()));
        }
        pushed = image.consts[static_cast<size_t>(inst.a)].type();
      }
      if (static_cast<int64_t>(stack.size()) >=
          static_cast<int64_t>(image.max_stack)) {
        return Violation(idx, inst.op, "stack-bound",
                         StrFormat("push to depth %zu exceeds max_stack %d — "
                                   "the scratch register pool would overflow",
                                   stack.size() + 1, image.max_stack));
      }
      stack.push_back(pushed);
      continue;
    }

    // Operand arity for every computing opcode, mirroring Eval exactly.
    int64_t arity;
    switch (inst.op) {
      case BcOp::kNot:
      case BcOp::kIsNull:
      case BcOp::kInValueSet:
        arity = 1;
        break;
      case BcOp::kCase:
        if (inst.a < 1) {
          return Violation(idx, inst.op, "case-structure",
                           StrFormat("needs at least one WHEN/THEN pair, a=%d",
                                     inst.a));
        }
        if (inst.b != 0 && inst.b != 1) {
          return Violation(idx, inst.op, "case-structure",
                           StrFormat("has_else flag must be 0 or 1, b=%d",
                                     inst.b));
        }
        arity = 2 * static_cast<int64_t>(inst.a) + inst.b;
        break;
      case BcOp::kInList:
        if (inst.a < 2) {
          return Violation(idx, inst.op, "arity",
                           StrFormat("needs a probe and at least one list "
                                     "item, a=%d", inst.a));
        }
        arity = inst.a;
        break;
      case BcOp::kCoalesce:
        if (inst.a < 1) {
          return Violation(idx, inst.op, "arity",
                           StrFormat("needs at least one operand, a=%d",
                                     inst.a));
        }
        arity = inst.a;
        break;
      case BcOp::kCompare:
      case BcOp::kArith:
      case BcOp::kAnd:
      case BcOp::kOr:
      case BcOp::kLike:
        arity = 2;
        break;
      default:
        return Violation(idx, inst.op, "opcode",
                         StrFormat("unknown opcode byte %d",
                                   static_cast<int>(inst.op)));
    }
    if (arity > static_cast<int64_t>(stack.size())) {
      return Violation(idx, inst.op, "stack-underflow",
                       StrFormat("consumes %lld operands but only %zu on the "
                                 "simulated stack",
                                 static_cast<long long>(arity), stack.size()));
    }
    const size_t base = stack.size() - static_cast<size_t>(arity);
    DataType result = DataType::kBool;

    switch (inst.op) {
      case BcOp::kCompare: {
        BinaryOp op = static_cast<BinaryOp>(inst.a);
        if (inst.a < 0 || !IsComparisonOp(op)) {
          return Violation(idx, inst.op, "operator-code",
                           StrFormat("a=%d is not a comparison operator",
                                     inst.a));
        }
        DataType l = stack[base];
        DataType r = stack[base + 1];
        if (!Unknown(l) && !Unknown(r) && !TypesComparable(l, r)) {
          return Violation(idx, inst.op, "type-consistency",
                           StrFormat("comparing %s with %s", DataTypeName(l),
                                     DataTypeName(r)));
        }
        break;
      }
      case BcOp::kArith: {
        BinaryOp op = static_cast<BinaryOp>(inst.a);
        if (op != BinaryOp::kAdd && op != BinaryOp::kSub &&
            op != BinaryOp::kMul && op != BinaryOp::kDiv) {
          return Violation(idx, inst.op, "operator-code",
                           StrFormat("a=%d is not an arithmetic operator",
                                     inst.a));
        }
        if (!ArithLike(inst.rtype) || Unknown(inst.rtype)) {
          return Violation(idx, inst.op, "result-type",
                           StrFormat("rtype %s is not numeric",
                                     DataTypeName(inst.rtype)));
        }
        for (size_t j = base; j < base + 2; ++j) {
          if (!ArithLike(stack[j])) {
            return Violation(idx, inst.op, "type-consistency",
                             StrFormat("operand %zu has non-numeric type %s",
                                       j - base, DataTypeName(stack[j])));
          }
        }
        result = inst.rtype;
        break;
      }
      case BcOp::kAnd:
      case BcOp::kOr:
      case BcOp::kNot:
        for (size_t j = base; j < stack.size(); ++j) {
          if (!BoolLike(stack[j])) {
            return Violation(idx, inst.op, "type-consistency",
                             StrFormat("operand %zu has non-boolean type %s",
                                       j - base, DataTypeName(stack[j])));
          }
        }
        break;
      case BcOp::kIsNull:
        if (inst.b != 0 && inst.b != 1) {
          return Violation(idx, inst.op, "operator-code",
                           StrFormat("negation flag must be 0 or 1, b=%d",
                                     inst.b));
        }
        break;
      case BcOp::kCase: {
        // Layout: [when0, then0, when1, then1, ..., else?]. WHEN slots
        // must be boolean; the result joins the THEN/ELSE types.
        result = stack[base + 1];
        for (int64_t p = 0; p < inst.a; ++p) {
          DataType when = stack[base + static_cast<size_t>(2 * p)];
          if (!BoolLike(when)) {
            return Violation(idx, inst.op, "case-structure",
                             StrFormat("WHEN %lld has non-boolean type %s",
                                       static_cast<long long>(p),
                                       DataTypeName(when)));
          }
          result = Join(result, stack[base + static_cast<size_t>(2 * p + 1)]);
        }
        if (inst.b != 0) result = Join(result, stack.back());
        break;
      }
      case BcOp::kInList: {
        DataType probe = stack[base];
        for (size_t j = base + 1; j < stack.size(); ++j) {
          if (!Unknown(probe) && !Unknown(stack[j]) &&
              !TypesComparable(probe, stack[j])) {
            return Violation(idx, inst.op, "type-consistency",
                             StrFormat("probe type %s vs list item type %s",
                                       DataTypeName(probe),
                                       DataTypeName(stack[j])));
          }
        }
        break;
      }
      case BcOp::kInValueSet:
        if (inst.a < 0 || static_cast<size_t>(inst.a) >= image.num_sets) {
          return Violation(idx, inst.op, "set-bounds",
                           StrFormat("set %d outside pool of %zu", inst.a,
                                     image.num_sets));
        }
        if (inst.b != 0 && inst.b != 1) {
          return Violation(idx, inst.op, "operator-code",
                           StrFormat("set_has_null flag must be 0 or 1, b=%d",
                                     inst.b));
        }
        break;
      case BcOp::kCoalesce: {
        result = stack[base];
        for (size_t j = base + 1; j < stack.size(); ++j) {
          result = Join(result, stack[j]);
        }
        break;
      }
      case BcOp::kLike:
        for (size_t j = base; j < stack.size(); ++j) {
          if (!Unknown(stack[j]) && stack[j] != DataType::kString) {
            return Violation(idx, inst.op, "type-consistency",
                             StrFormat("operand %zu has non-string type %s",
                                       j - base, DataTypeName(stack[j])));
          }
        }
        break;
      default:
        break;  // unreachable: arity switch rejected unknown opcodes
    }

    stack.resize(base);
    stack.push_back(result);
  }

  if (stack.size() != 1) {
    return Status::Internal(StrFormat(
        "verify[bytecode]: invariant=stack-balance: program ends with %zu "
        "values on the stack, expected exactly 1",
        stack.size()));
  }
  return Status::OK();
}

Status VerifyProgram(const ExprProgram& program, const RowDesc& input) {
  return VerifyBytecode(program.Image(), input);
}

Status VerifyProgram(const FilterProgram& program, const RowDesc& input) {
  for (size_t i = 0; i < program.conjuncts().size(); ++i) {
    Status st = VerifyBytecode(program.conjuncts()[i].Image(), input);
    if (!st.ok()) {
      return Status::Internal(
          StrFormat("conjunct %zu: %s", i, st.message().c_str()));
    }
  }
  return Status::OK();
}

namespace {

// Shared hard/soft failure policy for the operator compile sites.
template <typename ProgramT>
Result<std::optional<ProgramT>> Checked(Result<ProgramT> compiled,
                                        const RowDesc& input,
                                        const char* site) {
  if (!compiled.ok()) return std::optional<ProgramT>();  // interpreter path
  if (VerifyEnabled()) {
    Status st = VerifyProgram(compiled.value(), input);
    if (!st.ok()) {
      if (!VerifySoftMode()) {
        return Status::Internal(
            StrFormat("%s: %s", site, st.message().c_str()));
      }
      std::fprintf(stderr,
                   "rfid: %s: bytecode verification failed, falling back to "
                   "the row interpreter: %s\n",
                   site, st.message().c_str());
      return std::optional<ProgramT>();
    }
  }
  return std::optional<ProgramT>(std::move(compiled).value());
}

}  // namespace

Result<std::optional<ExprProgram>> CompileVerified(const Expr& bound,
                                                  const RowDesc& input,
                                                  const char* site) {
  return Checked(ExprProgram::Compile(bound), input, site);
}

Result<std::optional<FilterProgram>> CompileVerifiedFilter(
    const Expr& bound_predicate, const RowDesc& input, const char* site) {
  return Checked(FilterProgram::Compile(bound_predicate), input, site);
}

}  // namespace rfid
