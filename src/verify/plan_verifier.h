// Plan invariant checker: a structural verification pass over physical
// operator trees, run after each planner/rewriter phase (Debug default,
// RFID_VERIFY_PLANS override — see verify/verify.h).
//
// Invariant catalog (each violation's Status names phase, operator, and
// invariant, and never crashes — partially-constructed plans from fault
// sweeps are legal inputs):
//   column-ref-bound   every column reference in a bound expression
//                      resolves to a slot inside its input descriptor,
//                      with a type consistent with that field
//   output-schema      each operator's output descriptor has the arity
//                      and field types its inputs and expressions imply
//   sort-keys          sort/window key slots index into the child row
//   window-ordering    a window's required (PARTITION BY, ORDER BY)
//                      ordering is satisfied by the ordering guaranteed
//                      bottom-up through scan/sort/join/project
//   join-keys          hash-join build/probe key lists have equal arity,
//                      in-range slots, and comparable types
//   dop-bounds         per-operator dop= tags lie within the parallel
//                      policy ChooseDop was allowed to use (dop >= 2
//                      only on parallel operators, always 1 while fault
//                      injection pins plans serial)
//   snapshot-index     an index scan under a pinned TableSnapshot uses
//                      exactly the snapshot's pinned index (and a live
//                      index scan uses the table's current, non-stale
//                      index), so reads stay behind the watermark
//   null-child         operator wiring is complete (no null inputs)
#ifndef RFID_VERIFY_PLAN_VERIFIER_H_
#define RFID_VERIFY_PLAN_VERIFIER_H_

#include "exec/exec_context.h"
#include "exec/operator.h"

namespace rfid {

/// Verifies the subtree rooted at `root` (which may be a partial plan:
/// any phase's intermediate tree is a well-formed subtree). `ctx`
/// supplies the pinned snapshot, if any; nullptr means no snapshot.
/// Returns the first violation found, or OK. Does not run the
/// VerifyEnabled() gate — callers decide (the planner checks once per
/// phase).
Status VerifyPlan(const Operator& root, const char* phase,
                  const ExecContext* ctx);

}  // namespace rfid

#endif  // RFID_VERIFY_PLAN_VERIFIER_H_
