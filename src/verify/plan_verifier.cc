#include "verify/plan_verifier.h"

#include <string>
#include <vector>

#include "common/fault.h"
#include "common/string_util.h"
#include "exec/aggregate.h"
#include "exec/filter_project.h"
#include "exec/fragment.h"
#include "exec/hash_join.h"
#include "exec/parallel.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "exec/union_all.h"
#include "exec/window.h"
#include "storage/snapshot.h"

namespace rfid {

namespace {

Status Violation(const char* phase, const Operator& op, const char* invariant,
                 const std::string& detail) {
  return Status::Internal(StrFormat("verify[%s] op=%s: invariant=%s: %s",
                                    phase, op.name().c_str(), invariant,
                                    detail.c_str()));
}

// The largest dop the planner's ChooseDop could have handed out when this
// plan was built. Mirrors ChooseDop's gates: compiled-off and fault
// sweeps pin plans serial; otherwise the policy's max_dop bounds it.
int MaxAllowedDop() {
#ifdef RFID_PARALLEL_OFF
  return 1;
#else
  if (FaultInjectionActive()) return 1;
  ParallelPolicy p = CurrentParallelPolicy();
  return p.max_dop < 1 ? 1 : p.max_dop;
#endif
}

// Validates a bound expression against the descriptor of the rows it will
// be evaluated over: every column reference carries an in-range slot
// whose type agrees with the input field. kNull field/result types mean
// "statically unknown" and are exempt from the type check.
Status CheckBoundExpr(const char* phase, const Operator& op, const Expr& e,
                      const RowDesc& input) {
  if (e.kind == ExprKind::kColumnRef) {
    if (e.slot < 0 || static_cast<size_t>(e.slot) >= input.num_fields()) {
      return Violation(
          phase, op, "column-ref-bound",
          StrFormat("column %s bound to slot %d outside input row of %zu "
                    "fields",
                    e.column.c_str(), e.slot, input.num_fields()));
    }
    DataType field = input.fields()[static_cast<size_t>(e.slot)].type;
    if (field != DataType::kNull && e.result_type != DataType::kNull &&
        field != e.result_type) {
      return Violation(
          phase, op, "column-ref-bound",
          StrFormat("column %s bound as %s but slot %d holds %s",
                    e.column.c_str(), DataTypeName(e.result_type), e.slot,
                    DataTypeName(field)));
    }
  }
  for (const ExprPtr& c : e.children) {
    if (c == nullptr) continue;
    RFID_RETURN_IF_ERROR(CheckBoundExpr(phase, op, *c, input));
  }
  return Status::OK();
}

// True if `current` ordering satisfies `required` as a prefix — the same
// predicate the planner's order-sharing logic uses.
bool OrderingSatisfies(const std::vector<SlotSortKey>& current,
                       const std::vector<SlotSortKey>& required) {
  if (required.size() > current.size()) return false;
  for (size_t i = 0; i < required.size(); ++i) {
    if (current[i].slot != required[i].slot ||
        current[i].ascending != required[i].ascending) {
      return false;
    }
  }
  return true;
}

std::string OrderingToString(const std::vector<SlotSortKey>& keys) {
  std::string s = "[";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) s += ", ";
    s += StrFormat("%zu%s", keys[i].slot, keys[i].ascending ? " asc" : " desc");
  }
  return s + "]";
}

// Output descriptors that must mirror the input field-for-field
// (filter/sort/limit/distinct are pass-through operators).
Status CheckPassThroughSchema(const char* phase, const Operator& op,
                              const RowDesc& input) {
  const RowDesc& out = op.output_desc();
  if (out.num_fields() != input.num_fields()) {
    return Violation(phase, op, "output-schema",
                     StrFormat("pass-through operator emits %zu fields but "
                               "its input has %zu",
                               out.num_fields(), input.num_fields()));
  }
  for (size_t i = 0; i < out.num_fields(); ++i) {
    if (out.fields()[i].type != input.fields()[i].type) {
      return Violation(
          phase, op, "output-schema",
          StrFormat("field %zu is %s but the input field is %s", i,
                    DataTypeName(out.fields()[i].type),
                    DataTypeName(input.fields()[i].type)));
    }
  }
  return Status::OK();
}

// The snapshot pinned for `table` on the context, if any.
const TableSnapshot* SnapshotFor(const ExecContext* ctx, const Table* table) {
  if (ctx == nullptr || table == nullptr) return nullptr;
  const SnapshotPtr& snap = ctx->snapshot();
  return snap == nullptr ? nullptr : snap->ForTable(table);
}

class PlanChecker {
 public:
  PlanChecker(const char* phase, const ExecContext* ctx)
      : phase_(phase), ctx_(ctx) {}

  // Verifies the subtree and computes its guaranteed output ordering —
  // the same bottom-up propagation the planner tracks in
  // PlanNode::ordering, so the window-ordering invariant is checked
  // against what the physical tree actually provides.
  Result<std::vector<SlotSortKey>> Walk(const Operator& op) {
    RFID_RETURN_IF_ERROR(CheckDop(op));
    std::vector<const Operator*> kids = op.children();
    for (const Operator* kid : kids) {
      if (kid == nullptr) {
        return Violation(phase_, op, "null-child",
                         "operator has a null input");
      }
    }

    if (const auto* scan = dynamic_cast<const TableScanOp*>(&op)) {
      if (scan->table() == nullptr) {
        return Violation(phase_, op, "null-child", "scan has no table");
      }
      if (scan->predicate() != nullptr) {
        RFID_RETURN_IF_ERROR(CheckBoundExpr(phase_, op, *scan->predicate(),
                                            op.output_desc()));
      }
      return std::vector<SlotSortKey>{};
    }
    if (const auto* scan = dynamic_cast<const ParallelTableScanOp*>(&op)) {
      if (scan->table() == nullptr) {
        return Violation(phase_, op, "null-child", "scan has no table");
      }
      if (op.dop() < 2) {
        return Violation(phase_, op, "dop-bounds",
                         StrFormat("parallel scan with dop=%d; the planner "
                                   "only builds it for dop >= 2",
                                   op.dop()));
      }
      if (scan->predicate() != nullptr) {
        RFID_RETURN_IF_ERROR(CheckBoundExpr(phase_, op, *scan->predicate(),
                                            op.output_desc()));
      }
      return std::vector<SlotSortKey>{};
    }
    if (const auto* scan = dynamic_cast<const IndexRangeScanOp*>(&op)) {
      RFID_RETURN_IF_ERROR(CheckIndexScan(*scan));
      return IndexOrdering(*scan);
    }

    if (dynamic_cast<const FragmentScanOp*>(&op) != nullptr) {
      // Leaf over a cached cleansed fragment; claims no ordering (the
      // stitcher relies on concatenation order, not per-scan ordering).
      return std::vector<SlotSortKey>{};
    }
    if (dynamic_cast<const FragmentMaterializeOp*>(&op) != nullptr) {
      // Pass-through tee: schema mirrors the fill sub-plan, ordering is
      // whatever the child provides.
      RFID_ASSIGN_OR_RETURN(std::vector<SlotSortKey> ord, Walk(*kids[0]));
      RFID_RETURN_IF_ERROR(
          CheckPassThroughSchema(phase_, op, kids[0]->output_desc()));
      return ord;
    }

    if (const auto* filter = dynamic_cast<const FilterOp*>(&op)) {
      RFID_ASSIGN_OR_RETURN(std::vector<SlotSortKey> ord, Walk(*kids[0]));
      if (filter->predicate() == nullptr) {
        return Violation(phase_, op, "null-child", "filter has no predicate");
      }
      RFID_RETURN_IF_ERROR(CheckBoundExpr(phase_, op, *filter->predicate(),
                                          kids[0]->output_desc()));
      RFID_RETURN_IF_ERROR(
          CheckPassThroughSchema(phase_, op, kids[0]->output_desc()));
      return ord;
    }
    if (const auto* project = dynamic_cast<const ProjectOp*>(&op)) {
      return CheckProject(*project, *kids[0]);
    }
    if (dynamic_cast<const LimitOp*>(&op) != nullptr ||
        dynamic_cast<const RenameOp*>(&op) != nullptr) {
      RFID_ASSIGN_OR_RETURN(std::vector<SlotSortKey> ord, Walk(*kids[0]));
      RFID_RETURN_IF_ERROR(
          CheckPassThroughSchema(phase_, op, kids[0]->output_desc()));
      return ord;
    }
    if (dynamic_cast<const DistinctOp*>(&op) != nullptr) {
      RFID_ASSIGN_OR_RETURN(std::vector<SlotSortKey> ord, Walk(*kids[0]));
      RFID_RETURN_IF_ERROR(
          CheckPassThroughSchema(phase_, op, kids[0]->output_desc()));
      return ord;  // first-seen emission keeps the input order
    }
    if (const auto* sort = dynamic_cast<const SortOp*>(&op)) {
      RFID_RETURN_IF_ERROR(Walk(*kids[0]).status());
      const RowDesc& input = kids[0]->output_desc();
      for (const SlotSortKey& k : sort->keys()) {
        if (k.slot >= input.num_fields()) {
          return Violation(phase_, op, "sort-keys",
                           StrFormat("key slot %zu outside input row of %zu "
                                     "fields",
                                     k.slot, input.num_fields()));
        }
      }
      RFID_RETURN_IF_ERROR(CheckPassThroughSchema(phase_, op, input));
      return sort->keys();
    }
    if (const auto* window = dynamic_cast<const WindowOp*>(&op)) {
      return CheckWindow(*window, *kids[0]);
    }
    if (const auto* join = dynamic_cast<const HashJoinOp*>(&op)) {
      return CheckJoin(*join, *kids[0], *kids[1]);
    }
    if (const auto* agg = dynamic_cast<const HashAggregateOp*>(&op)) {
      RFID_RETURN_IF_ERROR(CheckAggregate(*agg, *kids[0]));
      return std::vector<SlotSortKey>{};
    }
    if (dynamic_cast<const UnionAllOp*>(&op) != nullptr) {
      for (const Operator* kid : kids) {
        RFID_RETURN_IF_ERROR(Walk(*kid).status());
        if (kid->output_desc().num_fields() != op.output_desc().num_fields()) {
          return Violation(
              phase_, op, "output-schema",
              StrFormat("input arity %zu differs from output arity %zu",
                        kid->output_desc().num_fields(),
                        op.output_desc().num_fields()));
        }
      }
      return std::vector<SlotSortKey>{};
    }

    // Unknown operator kind: verify the children, claim no ordering.
    for (const Operator* kid : kids) {
      RFID_RETURN_IF_ERROR(Walk(*kid).status());
    }
    return std::vector<SlotSortKey>{};
  }

 private:
  Status CheckDop(const Operator& op) {
    const int allowed = MaxAllowedDop();
    if (op.dop() < 1 || op.dop() > allowed) {
      return Violation(phase_, op, "dop-bounds",
                       StrFormat("dop=%d outside [1, %d] permitted by the "
                                 "parallel policy%s",
                                 op.dop(), allowed,
                                 FaultInjectionActive()
                                     ? " (fault injection pins plans serial)"
                                     : ""));
    }
    return Status::OK();
  }

  Status CheckIndexScan(const IndexRangeScanOp& scan) {
    const Table* table = scan.table();
    const SortedIndex* index = scan.index();
    if (table == nullptr || index == nullptr) {
      return Violation(phase_, scan, "null-child",
                       "index scan missing table or index");
    }
    // The scan must hold exactly the index the execution-time read path
    // will trust: the snapshot's pinned index when one covers the table
    // (reads filtered to the watermark), else the table's current,
    // non-stale index. Anything else is a stale or foreign pointer that
    // could surface rows past the watermark.
    const TableSnapshot* ts = SnapshotFor(ctx_, table);
    const SortedIndex* expected = ts != nullptr
                                      ? ts->FindIndex(index->column_name())
                                      : table->GetIndex(index->column_name());
    if (expected != index) {
      return Violation(
          phase_, scan, "snapshot-index",
          StrFormat("index on %s is not the %s for this table",
                    index->column_name().c_str(),
                    ts != nullptr ? "snapshot-pinned index"
                                  : "table's current index"));
    }
    return Status::OK();
  }

  Result<std::vector<SlotSortKey>> IndexOrdering(const IndexRangeScanOp& scan) {
    const RowDesc& out = scan.output_desc();
    for (size_t i = 0; i < out.num_fields(); ++i) {
      if (EqualsIgnoreCase(out.fields()[i].name,
                           scan.index()->column_name())) {
        return std::vector<SlotSortKey>{{i, true}};
      }
    }
    return Violation(phase_, scan, "output-schema",
                     StrFormat("indexed column %s not present in the scan "
                               "output",
                               scan.index()->column_name().c_str()));
  }

  Result<std::vector<SlotSortKey>> CheckProject(const ProjectOp& project,
                                                const Operator& child) {
    RFID_ASSIGN_OR_RETURN(std::vector<SlotSortKey> child_ord, Walk(child));
    const RowDesc& input = child.output_desc();
    const RowDesc& out = project.output_desc();
    if (project.exprs().size() != out.num_fields()) {
      return Violation(
          phase_, project, "output-schema",
          StrFormat("%zu expressions but %zu output fields",
                    project.exprs().size(), out.num_fields()));
    }
    for (size_t i = 0; i < project.exprs().size(); ++i) {
      const ExprPtr& e = project.exprs()[i];
      if (e == nullptr) {
        return Violation(phase_, project, "null-child",
                         StrFormat("expression %zu is null", i));
      }
      RFID_RETURN_IF_ERROR(CheckBoundExpr(phase_, project, *e, input));
      DataType ft = out.fields()[i].type;
      if (ft != DataType::kNull && e->result_type != DataType::kNull &&
          ft != e->result_type) {
        return Violation(
            phase_, project, "output-schema",
            StrFormat("field %zu declared %s but its expression computes %s",
                      i, DataTypeName(ft), DataTypeName(e->result_type)));
      }
    }
    // Ordering survives through bare column projections as a prefix —
    // the same remap (stop at the first non-projected key) the planner
    // applies.
    std::vector<SlotSortKey> ord;
    for (const SlotSortKey& key : child_ord) {
      bool found = false;
      for (size_t i = 0; i < project.exprs().size(); ++i) {
        const ExprPtr& e = project.exprs()[i];
        if (e->kind == ExprKind::kColumnRef &&
            static_cast<size_t>(e->slot) == key.slot) {
          ord.push_back({i, key.ascending});
          found = true;
          break;
        }
      }
      if (!found) break;
    }
    return ord;
  }

  Result<std::vector<SlotSortKey>> CheckWindow(const WindowOp& window,
                                               const Operator& child) {
    RFID_ASSIGN_OR_RETURN(std::vector<SlotSortKey> child_ord, Walk(child));
    const RowDesc& input = child.output_desc();
    std::vector<SlotSortKey> required;
    for (size_t slot : window.partition_slots()) {
      if (slot >= input.num_fields()) {
        return Violation(phase_, window, "sort-keys",
                         StrFormat("partition slot %zu outside input row of "
                                   "%zu fields",
                                   slot, input.num_fields()));
      }
      required.push_back({slot, true});
    }
    for (const SlotSortKey& k : window.order_keys()) {
      if (k.slot >= input.num_fields()) {
        return Violation(phase_, window, "sort-keys",
                         StrFormat("order key slot %zu outside input row of "
                                   "%zu fields",
                                   k.slot, input.num_fields()));
      }
      required.push_back(k);
    }
    if (!OrderingSatisfies(child_ord, required)) {
      return Violation(
          phase_, window, "window-ordering",
          StrFormat("requires input ordered by %s but the child guarantees "
                    "%s",
                    OrderingToString(required).c_str(),
                    OrderingToString(child_ord).c_str()));
    }
    const RowDesc& out = window.output_desc();
    if (out.num_fields() != input.num_fields() + window.aggs().size()) {
      return Violation(
          phase_, window, "output-schema",
          StrFormat("output arity %zu != input %zu + %zu window columns",
                    out.num_fields(), input.num_fields(),
                    window.aggs().size()));
    }
    for (size_t a = 0; a < window.aggs().size(); ++a) {
      const WindowAggSpec& spec = window.aggs()[a];
      if (spec.arg == nullptr) {
        if (spec.func != AggFunc::kCount) {
          return Violation(phase_, window, "output-schema",
                           StrFormat("window column %zu (%s) has no argument "
                                     "but is not COUNT(*)",
                                     a, AggFuncName(spec.func)));
        }
      } else {
        RFID_RETURN_IF_ERROR(CheckBoundExpr(phase_, window, *spec.arg, input));
      }
    }
    return child_ord;  // window appends columns, order untouched
  }

  Result<std::vector<SlotSortKey>> CheckJoin(const HashJoinOp& join,
                                             const Operator& probe,
                                             const Operator& build) {
    RFID_ASSIGN_OR_RETURN(std::vector<SlotSortKey> probe_ord, Walk(probe));
    RFID_RETURN_IF_ERROR(Walk(build).status());
    const RowDesc& pd = probe.output_desc();
    const RowDesc& bd = build.output_desc();
    if (join.probe_key_slots().size() != join.build_key_slots().size() ||
        join.probe_key_slots().empty()) {
      return Violation(
          phase_, join, "join-keys",
          StrFormat("%zu probe keys vs %zu build keys",
                    join.probe_key_slots().size(),
                    join.build_key_slots().size()));
    }
    for (size_t i = 0; i < join.probe_key_slots().size(); ++i) {
      size_t ps = join.probe_key_slots()[i];
      size_t bs = join.build_key_slots()[i];
      if (ps >= pd.num_fields() || bs >= bd.num_fields()) {
        return Violation(
            phase_, join, "join-keys",
            StrFormat("key %zu slots (probe %zu of %zu, build %zu of %zu) "
                      "out of range",
                      i, ps, pd.num_fields(), bs, bd.num_fields()));
      }
      DataType pt = pd.fields()[ps].type;
      DataType bt = bd.fields()[bs].type;
      if (pt != DataType::kNull && bt != DataType::kNull &&
          !TypesComparable(pt, bt)) {
        return Violation(
            phase_, join, "join-keys",
            StrFormat("key %zu joins %s with %s — the hash table would "
                      "never match",
                      i, DataTypeName(pt), DataTypeName(bt)));
      }
    }
    size_t want = join.join_type() == JoinType::kInner
                      ? pd.num_fields() + bd.num_fields()
                      : pd.num_fields();
    if (join.output_desc().num_fields() != want) {
      return Violation(
          phase_, join, "output-schema",
          StrFormat("output arity %zu, expected %zu for a %s join",
                    join.output_desc().num_fields(), want,
                    join.join_type() == JoinType::kInner ? "inner"
                                                         : "left-semi"));
    }
    return probe_ord;  // probe side streams: its order is preserved
  }

  Status CheckAggregate(const HashAggregateOp& agg, const Operator& child) {
    RFID_RETURN_IF_ERROR(Walk(child).status());
    const RowDesc& input = child.output_desc();
    if (agg.output_desc().num_fields() !=
        agg.group_exprs().size() + agg.aggs().size()) {
      return Violation(
          phase_, agg, "output-schema",
          StrFormat("output arity %zu != %zu group keys + %zu aggregates",
                    agg.output_desc().num_fields(), agg.group_exprs().size(),
                    agg.aggs().size()));
    }
    for (const ExprPtr& g : agg.group_exprs()) {
      if (g == nullptr) {
        return Violation(phase_, agg, "null-child", "null group expression");
      }
      RFID_RETURN_IF_ERROR(CheckBoundExpr(phase_, agg, *g, input));
    }
    for (size_t i = 0; i < agg.aggs().size(); ++i) {
      const AggSpec& spec = agg.aggs()[i];
      if (spec.arg == nullptr) {
        if (spec.func != AggFunc::kCount) {
          return Violation(phase_, agg, "output-schema",
                           StrFormat("aggregate %zu (%s) has no argument but "
                                     "is not COUNT(*)",
                                     i, AggFuncName(spec.func)));
        }
      } else {
        RFID_RETURN_IF_ERROR(CheckBoundExpr(phase_, agg, *spec.arg, input));
      }
    }
    return Status::OK();
  }

  const char* phase_;
  const ExecContext* ctx_;
};

}  // namespace

Status VerifyPlan(const Operator& root, const char* phase,
                  const ExecContext* ctx) {
  RFID_FAULT_POINT("verify.Plan");
  return PlanChecker(phase, ctx).Walk(root).status();
}

}  // namespace rfid
