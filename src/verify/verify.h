// Static verification layer switches.
//
// The verifiers (plan invariant checker, bytecode verifier, rule linter)
// are compiled in under the RFID_VERIFY CMake option (ON by default) and
// enabled at runtime by default in Debug builds. The RFID_VERIFY_PLANS
// environment variable overrides the runtime default:
//
//   RFID_VERIFY_PLANS=1     verification on, failures are hard errors
//   RFID_VERIFY_PLANS=soft  verification on; bytecode verification
//                           failures log and fall back to the row
//                           interpreter instead of failing the query
//                           (plan violations are always hard: a broken
//                           plan has no safe fallback)
//   RFID_VERIFY_PLANS=0     verification off
//
// scripts/check.sh and the test suite run with RFID_VERIFY_PLANS=1 so
// every planner/rewriter phase and every compiled expression program is
// verified on every existing test, and any violation fails loudly.
#ifndef RFID_VERIFY_VERIFY_H_
#define RFID_VERIFY_VERIFY_H_

namespace rfid {

/// True when the static verifiers should run (plan passes, bytecode
/// verification, rewrite schema checks).
bool VerifyEnabled();

/// True when a bytecode verification failure should fall back to the
/// interpreter (logged) instead of failing the query. Meaningless when
/// VerifyEnabled() is false.
bool VerifySoftMode();

/// Test override: -1 = env/default, 0 = off, 1 = on (hard errors),
/// 2 = on (soft bytecode fallback).
void SetVerifyForTest(int mode);

}  // namespace rfid

#endif  // RFID_VERIFY_VERIFY_H_
