// Rule linter: static checks over SQL-TS cleansing rules before their
// SQL/OLAP templates are instantiated by the rewriter. Modeled on the
// static rule analysis of streaming cleansing systems (Bleach's rule
// partitioning, denial-constraint conflict detection): a rule that can
// never fire, a DELETE/KEEP pair a row can satisfy simultaneously, or
// two corrections racing on one column are all defects detectable
// without running a single query.
//
// Lint findings are warnings, not errors — the rewrite proceeds — and
// surface through `rfidsql` (.lint, LINT output) and EXPLAIN.
#ifndef RFID_VERIFY_RULE_LINTER_H_
#define RFID_VERIFY_RULE_LINTER_H_

#include <string>
#include <vector>

#include "cleansing/rule.h"

namespace rfid {

/// One static finding about a rule (or a pair of rules).
struct LintFinding {
  std::string rule;     // rule name (first rule for pair findings)
  std::string code;     // stable check identifier, e.g. "unsatisfiable-condition"
  std::string message;  // human-readable explanation

  std::string ToString() const;
};

/// Checks performed (the `code` values):
///   duplicate-name            two rules share a name
///   unsatisfiable-condition   the WHERE conjunction can never hold
///                             (constant-folded FALSE conjunct, or the
///                             per-column value intervals its sargable
///                             conjuncts imply have an empty
///                             intersection)
///   delete-keep-overlap       a DELETE and a KEEP rule on one table
///                             whose conditions cannot be proven
///                             disjoint — which rows survive depends on
///                             rule creation order, probably
///                             unintentionally
///   correction-order          two MODIFY rules on one table assign the
///                             same column, so the surviving value
///                             depends on rule creation order
std::vector<LintFinding> LintRules(const std::vector<CleansingRule>& rules);

/// Lints only the rules defined ON `table` (still pairwise-complete for
/// that table). Used by the rewriter, which cleanses one table at a time.
std::vector<LintFinding> LintRulesFor(const std::vector<CleansingRule>& rules,
                                      std::string_view table);

}  // namespace rfid

#endif  // RFID_VERIFY_RULE_LINTER_H_
