#include "verify/verify.h"

#include <strings.h>

#include <atomic>
#include <cstdlib>

namespace rfid {

namespace {

enum Mode { kOff = 0, kHard = 1, kSoft = 2 };

int EnvMode() {
  const char* v = std::getenv("RFID_VERIFY_PLANS");
  if (v != nullptr && *v != '\0') {
    if (strcasecmp(v, "soft") == 0) return kSoft;
    if (v[0] == '0' || strcasecmp(v, "off") == 0 ||
        strcasecmp(v, "false") == 0) {
      return kOff;
    }
    return kHard;
  }
#ifdef NDEBUG
  return kOff;
#else
  return kHard;  // Debug builds verify by default
#endif
}

// -1 = use env/default; otherwise a Mode value.
std::atomic<int> g_override_verify{-1};

int CurrentMode() {
  int o = g_override_verify.load(std::memory_order_relaxed);
  if (o >= 0) return o;
  static const int env = EnvMode();
  return env;
}

}  // namespace

bool VerifyEnabled() {
#ifdef RFID_VERIFY_OFF
  return false;
#else
  return CurrentMode() != kOff;
#endif
}

bool VerifySoftMode() { return CurrentMode() == kSoft; }

void SetVerifyForTest(int mode) {
  g_override_verify.store(mode < 0 || mode > kSoft ? -1 : mode,
                          std::memory_order_relaxed);
}

}  // namespace rfid
