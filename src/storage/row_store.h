// Segmented row storage with single-writer / multi-reader visibility.
//
// Rows live in fixed-size segments whose addresses never change, so a
// reader holding a row id can dereference it while the writer appends —
// the reallocate-on-growth hazard of a flat std::vector<Row> is gone.
// The segment directory is reserved to its maximum size up front, so
// appending a segment never moves the directory either.
//
// Visibility contract (the basis of epoch snapshots):
//  - PushBack/TruncateTo are writer-side operations; rows above the
//    published watermark belong to the writer alone.
//  - PublishVisible() release-stores the current size as the visible
//    watermark; visible() acquire-loads it. A reader that bounds its row
//    ids by an acquired watermark observes fully-constructed rows: the
//    row writes happen-before the release, which happens-before the
//    reader's acquire.
//  - Readers must never touch rows at or above the watermark they
//    acquired; nothing else synchronizes those slots.
#ifndef RFID_STORAGE_ROW_STORE_H_
#define RFID_STORAGE_ROW_STORE_H_

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace rfid {

using Row = std::vector<Value>;

class RowStore {
 public:
  static constexpr size_t kSegmentBits = 11;
  static constexpr size_t kSegmentRows = size_t{1} << kSegmentBits;  // 2048
  /// Directory capacity, reserved at construction so growth never
  /// relocates it: 32768 segments = ~67M rows per table.
  static constexpr size_t kMaxSegments = size_t{1} << 15;

  RowStore() { segments_.reserve(kMaxSegments); }
  RowStore(const RowStore&) = delete;
  RowStore& operator=(const RowStore&) = delete;

  /// Committed rows (writer's view; includes unpublished rows).
  uint64_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Published watermark: rows a concurrent reader may access.
  uint64_t visible() const { return visible_.load(std::memory_order_acquire); }

  const Row& row(uint64_t i) const {
    return segments_[i >> kSegmentBits][i & (kSegmentRows - 1)];
  }
  Row& at(uint64_t i) {
    return segments_[i >> kSegmentBits][i & (kSegmentRows - 1)];
  }

  /// Appends a row above the watermark. Writer-side only.
  Status PushBack(Row row);

  /// Publishes every committed row (release barrier for their contents).
  void PublishVisible() {
    visible_.store(size(), std::memory_order_release);
  }

  /// Drops unpublished rows back to `n` (>= visible). Writer-side only;
  /// used to roll back a failed ingest batch.
  void TruncateTo(uint64_t n);

  /// Applies fn to every row in [begin, end), walking whole segments at a
  /// time so the per-row segment arithmetic of row() stays out of scan
  /// hot loops. Callers bound `end` by an acquired watermark, as with
  /// row().
  template <typename Fn>
  void ForEachRow(uint64_t begin, uint64_t end, Fn&& fn) const {
    while (begin < end) {
      const Row* seg = segments_[begin >> kSegmentBits].get();
      const uint64_t off = begin & (kSegmentRows - 1);
      const uint64_t run = std::min<uint64_t>(end - begin, kSegmentRows - off);
      for (uint64_t i = 0; i < run; ++i) fn(seg[off + i]);
      begin += run;
    }
  }

  /// Replaces the entire content. Only valid while no readers are active
  /// (single-threaded bulk-update phases); publishes the new size.
  Status ReplaceAll(std::vector<Row> rows);

 private:
  std::vector<std::unique_ptr<Row[]>> segments_;
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> visible_{0};
};

}  // namespace rfid

#endif  // RFID_STORAGE_ROW_STORE_H_
