// Per-column statistics for cardinality estimation: min/max, approximate
// number of distinct values, and null count.
#ifndef RFID_STORAGE_STATS_H_
#define RFID_STORAGE_STATS_H_

#include <cstdint>

#include "common/value.h"

namespace rfid {

struct ColumnStats {
  Value min;   // NULL if the column has no non-null values
  Value max;
  uint64_t ndv = 0;         // number of distinct non-null values
  uint64_t null_count = 0;
  uint64_t row_count = 0;

  bool HasRange() const { return !min.is_null() && !max.is_null(); }
};

}  // namespace rfid

#endif  // RFID_STORAGE_STATS_H_
