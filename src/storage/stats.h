// Per-column statistics for cardinality estimation: min/max, number of
// distinct values, and null count.
//
// Statistics are *mergeable* so the ingest path can maintain them
// incrementally: per-batch ColumnStats are folded into the table's
// cumulative stats without a full recompute. The distinct count comes
// from a KMV (k-minimum-values) sketch — order-independent and
// union-mergeable, so incremental maintenance and a from-scratch
// recompute over the same multiset produce bit-identical statistics
// (the invariant the persist round-trip test checks). Below k distinct
// hashes the estimate is exact, which keeps the NDV numbers small
// suites assert on unchanged.
#ifndef RFID_STORAGE_STATS_H_
#define RFID_STORAGE_STATS_H_

#include <cstdint>
#include <vector>

#include "common/value.h"

namespace rfid {

/// 64-bit mix of a value's hash; used as the sketch's hash space.
uint64_t StatsValueHash(const Value& v);

/// KMV distinct-count sketch: retains the k smallest distinct 64-bit
/// hashes seen. Exact while fewer than k distinct hashes exist;
/// (k-1)/u_k afterwards (u_k = largest retained hash normalized to
/// [0,1)). Merging is set union + re-truncation, so insertion order and
/// batch boundaries never change the result.
struct NdvSketch {
  static constexpr size_t kMaxHashes = 256;

  std::vector<uint64_t> hashes;  // sorted ascending, distinct, <= kMaxHashes

  void InsertHash(uint64_t h);
  void Merge(const NdvSketch& other);
  uint64_t EstimateNdv() const;

  bool operator==(const NdvSketch&) const = default;
};

struct ColumnStats {
  Value min;   // NULL if the column has no non-null values
  Value max;
  uint64_t ndv = 0;         // sketch estimate; exact below kMaxHashes
  uint64_t null_count = 0;
  uint64_t row_count = 0;
  NdvSketch sketch;

  bool HasRange() const { return !min.is_null() && !max.is_null(); }

  /// Folds one row's value into the stats (row_count, null_count,
  /// min/max, sketch). Call RefreshNdv() after a batch of Observes.
  void Observe(const Value& v);

  /// Folds another stats object over a disjoint row set into this one.
  void MergeFrom(const ColumnStats& other);

  /// Re-derives ndv from the sketch.
  void RefreshNdv() { ndv = sketch.EstimateNdv(); }

  bool operator==(const ColumnStats& other) const;
};

}  // namespace rfid

#endif  // RFID_STORAGE_STATS_H_
