// Table schemas: ordered lists of typed, named columns with
// case-insensitive name lookup (SQL identifier semantics).
#ifndef RFID_STORAGE_SCHEMA_H_
#define RFID_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace rfid {

struct Column {
  std::string name;
  DataType type = DataType::kNull;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(std::string name, DataType type) {
    columns_.push_back({std::move(name), type});
  }

  /// Returns the index of the column with the given name (case-insensitive),
  /// or -1 if absent.
  int FindColumn(std::string_view name) const;

  /// Like FindColumn but returns an error naming the missing column.
  Result<size_t> ResolveColumn(std::string_view name) const;

  bool HasColumn(std::string_view name) const { return FindColumn(name) >= 0; }

  std::vector<std::string> ColumnNames() const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace rfid

#endif  // RFID_STORAGE_SCHEMA_H_
