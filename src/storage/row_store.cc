#include "storage/row_store.h"

#include "common/string_util.h"

namespace rfid {

Status RowStore::PushBack(Row row) {
  uint64_t n = size();
  size_t seg = static_cast<size_t>(n >> kSegmentBits);
  if (seg == segments_.size()) {
    if (seg == kMaxSegments) {
      return Status::ResourceExhausted(
          StrFormat("row store full (%zu segments of %zu rows)", kMaxSegments,
                    kSegmentRows));
    }
    segments_.push_back(std::make_unique<Row[]>(kSegmentRows));
  }
  segments_[seg][n & (kSegmentRows - 1)] = std::move(row);
  size_.store(n + 1, std::memory_order_relaxed);
  return Status::OK();
}

void RowStore::TruncateTo(uint64_t n) {
  uint64_t cur = size();
  for (uint64_t i = n; i < cur; ++i) {
    at(i) = Row();  // release the payload; the slot itself stays allocated
  }
  size_.store(n, std::memory_order_relaxed);
}

Status RowStore::ReplaceAll(std::vector<Row> rows) {
  segments_.clear();
  size_.store(0, std::memory_order_relaxed);
  for (Row& r : rows) {
    RFID_RETURN_IF_ERROR(PushBack(std::move(r)));
  }
  PublishVisible();
  return Status::OK();
}

}  // namespace rfid
