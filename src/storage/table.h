// In-memory row-store table with optional sorted secondary indexes and
// per-column statistics used by the cost model.
//
// Mutation discipline: every mutating call bumps the table's mutation
// epoch. Indexes and statistics each record the epoch they were built
// at; a structure whose epoch lags the table's is *stale* and the
// accessors refuse to serve it (GetIndex returns nullptr, has_stats()
// turns false, stats() asserts in debug builds) until BuildIndex /
// ComputeStats — or the incremental ingest path — brings it current.
//
// Ingest path: IngestBatch appends a validated batch and maintains every
// existing index (sorted-run insert) and the statistics (mergeable
// sketch fold) *incrementally*, then publishes the new row watermark
// with release semantics. Concurrent readers that bound themselves by an
// acquired watermark (see RowStore and Snapshot) never observe a partial
// batch. All other mutators are single-writer, no-concurrent-reader
// operations, exactly as before.
#ifndef RFID_STORAGE_TABLE_H_
#define RFID_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "storage/columnar.h"
#include "storage/index.h"
#include "storage/row_store.h"
#include "storage/schema.h"
#include "storage/stats.h"

namespace rfid {

/// A pinned, immutable view of a table's statistics for cost estimation:
/// safe to use while a writer publishes newer statistics. `stats` is
/// null when statistics are absent or stale (estimates fall back to
/// defaults).
struct StatsView {
  const Schema* schema = nullptr;
  std::shared_ptr<const std::vector<ColumnStats>> stats;
  double row_count = 0;
};

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return static_cast<size_t>(store_.size()); }
  const Row& row(size_t i) const { return store_.row(i); }
  const RowStore& store() const { return store_; }

  /// Rows visible to concurrent readers (acquire load of the published
  /// watermark). Equal to num_rows() outside an in-flight ingest batch.
  uint64_t visible_rows() const { return store_.visible(); }

  /// Appends a row; the row must match the schema arity. Marks existing
  /// indexes and stats stale until Build*/ComputeStats runs again.
  Status Append(Row row);

  /// Bulk-append without per-row checks (generator fast path).
  void AppendUnchecked(Row row);

  /// Mutable row access for in-place updates (anomaly injection). Marks
  /// indexes and statistics stale; rebuild afterwards.
  Row& mutable_row(size_t i);

  /// Replaces the entire row set (bulk delete/update path). Marks
  /// indexes and statistics stale.
  Status ReplaceRows(std::vector<Row> rows);

  /// Builds (or rebuilds) a sorted index on the named column.
  Status BuildIndex(std::string_view column_name);

  /// Returns the index on the column, or nullptr if none exists *or the
  /// index is stale* (built before the last mutation): a stale index
  /// must never serve a scan, so callers degrade to a sequential scan.
  const SortedIndex* GetIndex(std::string_view column_name) const;

  /// Every current (non-stale) index.
  std::vector<const SortedIndex*> indexes() const;

  /// Current indexes with their pinned run sets (snapshot capture).
  std::vector<std::pair<const SortedIndex*, SortedIndex::RunSetPtr>>
  PinnedIndexes() const;

  /// Recomputes min/max/NDV statistics for every column.
  void ComputeStats();

  /// Stats for column i; valid only while statistics are current
  /// (asserts otherwise in debug builds). Not for use concurrently with
  /// ingest — concurrent readers pin a StatsView or a Snapshot instead.
  const ColumnStats& stats(size_t column) const;
  bool has_stats() const;

  /// Pinned statistics view for estimation; stats == nullptr when
  /// statistics are absent or stale.
  StatsView CurrentStatsView() const;

  /// Monotonic counter bumped on every statistics publication
  /// (ComputeStats or an ingest merge) — the "stats version" a snapshot
  /// records and the planner costs against.
  uint64_t stats_version() const {
    return stats_version_.load(std::memory_order_relaxed);
  }

  /// True when any mutation happened after the last index/stats build —
  /// the condition under which GetIndex()/stats() refuse to serve.
  bool structures_stale() const;

  /// The table's encoded cold segments (see storage/columnar.h). Scans
  /// probe this per segment; an empty directory means row-store only.
  const ColumnarDirectory& columnar() const { return columnar_; }

  /// Encodes every *cold* segment — full kSegmentRows-sized segments
  /// entirely below the published watermark — that has no current
  /// encoding. Writer-side (ingest publish / bulk-load finalize);
  /// concurrent readers are safe throughout. No-op unless
  /// ColumnarEnabled(). Returns the number of segments encoded.
  size_t EncodeColdSegments();

  /// Installs a deserialized encoded segment (checkpoint recovery).
  /// Validates shape against the schema and the published watermark.
  Status InstallEncodedSegment(EncodedSegmentPtr seg);

  /// Appends `batch` (validated up-front) and incrementally maintains
  /// every existing index and the statistics, then publishes the new
  /// visible watermark. All-or-nothing: on any error (validation, fault
  /// injection, capacity) the table is left exactly as before — no rows,
  /// runs, stats or watermark published. Returns the first row id of the
  /// batch. Writer-side only; concurrent readers are safe throughout.
  Result<uint64_t> IngestBatch(std::vector<Row> batch,
                               size_t index_compact_threshold = 8);

 private:
  struct IndexSlot {
    std::unique_ptr<SortedIndex> index;
    std::atomic<uint64_t> built_epoch{0};
  };

  Status ValidateRow(const Row& row) const;
  void MarkMutated() {
    mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t mutation_epoch() const {
    return mutation_epoch_.load(std::memory_order_relaxed);
  }
  std::shared_ptr<const std::vector<ColumnStats>> PinStats() const;
  void PublishStats(std::shared_ptr<const std::vector<ColumnStats>> stats);

  std::string name_;
  Schema schema_;
  RowStore store_;
  ColumnarDirectory columnar_;
  std::vector<std::unique_ptr<IndexSlot>> indexes_;

  // Guards stats_ pointer swaps and reads.
  mutable Mutex stats_mu_{LockRank::kTableStats};
  std::shared_ptr<const std::vector<ColumnStats>> stats_ GUARDED_BY(stats_mu_);

  // Epoch bookkeeping for staleness. Atomic so a concurrent planner's
  // freshness probe during ingest is race-free; a momentarily
  // conservative answer only costs an index-scan opportunity.
  std::atomic<uint64_t> mutation_epoch_{0};
  std::atomic<uint64_t> stats_epoch_{0};
  std::atomic<uint64_t> stats_version_{0};
};

}  // namespace rfid

#endif  // RFID_STORAGE_TABLE_H_
