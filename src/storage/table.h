// In-memory row-store table with optional sorted secondary indexes and
// per-column statistics used by the cost model.
#ifndef RFID_STORAGE_TABLE_H_
#define RFID_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/index.h"
#include "storage/schema.h"
#include "storage/stats.h"

namespace rfid {

using Row = std::vector<Value>;

class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; the row must match the schema arity. Invalidates
  /// indexes and stats until Build*/ComputeStats is called again.
  Status Append(Row row);

  /// Bulk-append without per-row checks (generator fast path).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Mutable row access for in-place updates (anomaly injection). The
  /// caller must rebuild indexes/statistics afterwards.
  Row& mutable_row(size_t i) { return rows_[i]; }

  /// Replaces the entire row set (bulk delete/update path).
  void ReplaceRows(std::vector<Row> rows) { rows_ = std::move(rows); }

  /// Builds (or rebuilds) a sorted index on the named column.
  Status BuildIndex(std::string_view column_name);

  /// Returns the index on the column, or nullptr if none exists.
  const SortedIndex* GetIndex(std::string_view column_name) const;

  /// Recomputes min/max/NDV statistics for every column.
  void ComputeStats();

  /// Stats for column i; valid only after ComputeStats().
  const ColumnStats& stats(size_t column) const { return stats_[column]; }
  bool has_stats() const { return !stats_.empty(); }

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<SortedIndex>> indexes_;
  std::vector<ColumnStats> stats_;
};

}  // namespace rfid

#endif  // RFID_STORAGE_TABLE_H_
