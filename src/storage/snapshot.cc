#include "storage/snapshot.h"

#include "common/string_util.h"

namespace rfid {

const SortedIndex* TableSnapshot::FindIndex(
    std::string_view column_name) const {
  for (const SortedIndex* idx : indexes) {
    if (EqualsIgnoreCase(idx->column_name(), column_name)) return idx;
  }
  return nullptr;
}

SortedIndex::RunSetPtr TableSnapshot::RunsFor(const SortedIndex* index) const {
  for (size_t i = 0; i < indexes.size(); ++i) {
    if (indexes[i] == index) return runs[i];
  }
  return nullptr;
}

StatsView TableSnapshot::stats_view() const {
  StatsView view;
  view.schema = table != nullptr ? &table->schema() : nullptr;
  view.stats = stats;
  view.row_count = static_cast<double>(watermark);
  return view;
}

const TableSnapshot* Snapshot::ForTable(const Table* table) const {
  auto it = tables.find(table);
  return it == tables.end() ? nullptr : &it->second;
}

TableSnapshot CaptureTableSnapshot(const Table& table) {
  TableSnapshot snap;
  snap.table = &table;
  // Watermark FIRST (acquire): every structure pinned below was
  // published at or after this row count, and RangeScanRuns filters any
  // overshoot back down to it.
  snap.watermark = table.visible_rows();
  auto pinned = table.PinnedIndexes();
  snap.indexes.reserve(pinned.size());
  snap.runs.reserve(pinned.size());
  for (auto& [idx, runs] : pinned) {
    snap.indexes.push_back(idx);
    snap.runs.push_back(std::move(runs));
  }
  StatsView view = table.CurrentStatsView();
  snap.stats = std::move(view.stats);
  snap.stats_version = table.stats_version();
  return snap;
}

SnapshotPtr CaptureDatabaseSnapshot(const Database& db, uint64_t epoch) {
  auto snap = std::make_shared<Snapshot>();
  snap->epoch = epoch;
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.GetTable(name);
    if (table == nullptr) continue;
    snap->tables.emplace(table, CaptureTableSnapshot(*table));
  }
  return snap;
}

}  // namespace rfid
