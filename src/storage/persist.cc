#include "storage/persist.h"

#include <fstream>

#include "common/fault.h"
#include "common/io.h"
#include "common/string_util.h"

namespace rfid {

namespace {

constexpr const char* kManifestMagic = "rfiddb 1";

const char* TypeTag(DataType t) {
  switch (t) {
    case DataType::kBool: return "BOOL";
    case DataType::kInt64: return "INT64";
    case DataType::kDouble: return "DOUBLE";
    case DataType::kString: return "STRING";
    case DataType::kTimestamp: return "TIMESTAMP";
    case DataType::kInterval: return "INTERVAL";
    case DataType::kNull: return "NULL";
  }
  return "?";
}

Result<DataType> TypeFromTag(const std::string& tag) {
  if (tag == "BOOL") return DataType::kBool;
  if (tag == "INT64") return DataType::kInt64;
  if (tag == "DOUBLE") return DataType::kDouble;
  if (tag == "STRING") return DataType::kString;
  if (tag == "TIMESTAMP") return DataType::kTimestamp;
  if (tag == "INTERVAL") return DataType::kInterval;
  if (tag == "NULL") return DataType::kNull;
  return Status::InvalidArgument("unknown column type tag: " + tag);
}

std::string EscapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::InvalidArgument("dangling escape in persisted field");
    }
    switch (s[++i]) {
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case '\\': out += '\\'; break;
      default:
        return Status::InvalidArgument("bad escape in persisted field");
    }
  }
  return out;
}

std::string FieldOf(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return "\\N";
    case DataType::kBool:
      return v.bool_value() ? "1" : "0";
    case DataType::kInt64:
      return std::to_string(v.int64_value());
    case DataType::kDouble: {
      char buf[40];
      snprintf(buf, sizeof(buf), "%.17g", v.double_value());
      return buf;
    }
    case DataType::kString:
      return EscapeField(v.string_value());
    case DataType::kTimestamp:
      return std::to_string(v.timestamp_value());
    case DataType::kInterval:
      return std::to_string(v.interval_value());
  }
  return "\\N";
}

Result<Value> ValueOf(const std::string& field, DataType type) {
  if (field == "\\N") return Value::Null();
  try {
    switch (type) {
      case DataType::kBool:
        return Value::Bool(field == "1");
      case DataType::kInt64:
        return Value::Int64(std::stoll(field));
      case DataType::kDouble:
        return Value::Double(std::stod(field));
      case DataType::kString: {
        RFID_ASSIGN_OR_RETURN(std::string s, UnescapeField(field));
        return Value::String(std::move(s));
      }
      case DataType::kTimestamp:
        return Value::Timestamp(std::stoll(field));
      case DataType::kInterval:
        return Value::Interval(std::stoll(field));
      case DataType::kNull:
        return Value::Null();
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("malformed persisted value: " + field);
  }
  return Status::InvalidArgument("unhandled persisted type");
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return out;
}

}  // namespace

std::string SerializeRowTsv(const Row& row) {
  std::string out;
  for (size_t c = 0; c < row.size(); ++c) {
    if (c > 0) out += '\t';
    out += FieldOf(row[c]);
  }
  return out;
}

Result<Row> ParseRowTsv(const std::string& line, const Schema& schema) {
  std::vector<std::string> fields = SplitTabs(line);
  if (fields.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("row arity mismatch: got %zu want %zu", fields.size(),
                  schema.num_columns()));
  }
  Row row;
  row.reserve(fields.size());
  for (size_t c = 0; c < fields.size(); ++c) {
    RFID_ASSIGN_OR_RETURN(Value v, ValueOf(fields[c], schema.column(c).type));
    row.push_back(std::move(v));
  }
  return row;
}

Status SaveDatabase(const Database& db, const std::string& dir) {
  RFID_RETURN_IF_ERROR(EnsureDir(dir));
  std::string manifest = std::string(kManifestMagic) + "\n";
  for (const std::string& name : db.TableNames()) {
    RFID_FAULT_POINT("persist.SaveTable");
    const Table* table = db.GetTable(name);
    manifest += name + "\n";
    std::string content;
    // Header: col:TYPE pairs.
    for (size_t c = 0; c < table->schema().num_columns(); ++c) {
      if (c > 0) content += '\t';
      const Column& col = table->schema().column(c);
      content += col.name + ':' + TypeTag(col.type);
    }
    content += '\n';
    for (size_t r = 0; r < table->num_rows(); ++r) {
      content += SerializeRowTsv(table->row(r));
      content += '\n';
    }
    RFID_RETURN_IF_ERROR(
        WriteFileAtomic(dir + "/" + name + ".tsv", content));
  }
  // The manifest lands last: a crash before this rename leaves the
  // previous dump (old manifest + old or new table files, each complete)
  // fully loadable.
  RFID_FAULT_POINT("persist.SaveManifest");
  return WriteFileAtomic(dir + "/MANIFEST", manifest);
}

Status LoadDatabase(const std::string& dir, Database* db,
                    bool skip_existing) {
  std::ifstream manifest(dir + "/MANIFEST");
  if (!manifest) {
    return Status::NotFound("no database manifest in " + dir);
  }
  std::string line;
  if (!std::getline(manifest, line) || line != kManifestMagic) {
    return Status::InvalidArgument("unrecognized database format in " + dir);
  }
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    const std::string& name = line;
    std::ifstream in(dir + "/" + name + ".tsv");
    if (!in) return Status::NotFound("missing table file for " + name);
    std::string header;
    if (!std::getline(in, header)) {
      return Status::InvalidArgument("empty table file for " + name);
    }
    Schema schema;
    for (const std::string& field : SplitTabs(header)) {
      size_t colon = field.rfind(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("malformed header in " + name);
      }
      RFID_ASSIGN_OR_RETURN(DataType type, TypeFromTag(field.substr(colon + 1)));
      schema.AddColumn(field.substr(0, colon), type);
    }
    if (skip_existing && db->GetTable(name) != nullptr) continue;
    RFID_ASSIGN_OR_RETURN(Table * table, db->CreateTable(name, schema));
    std::string row_line;
    while (std::getline(in, row_line)) {
      RFID_ASSIGN_OR_RETURN(Row row, ParseRowTsv(row_line, table->schema()));
      table->AppendUnchecked(std::move(row));
    }
  }
  return Status::OK();
}

}  // namespace rfid
