#include "storage/columnar.h"

#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "common/io.h"
#include "common/string_util.h"
#include "storage/catalog.h"

namespace rfid {

namespace {

bool EnvColumnar() {
  const char* v = std::getenv("RFID_COLUMNAR");
  if (v == nullptr || *v == '\0') return true;
  return !(strcmp(v, "0") == 0 || strcasecmp(v, "off") == 0 ||
           strcasecmp(v, "false") == 0);
}

// -1 = use env default; 0 = forced off; 1 = forced on.
std::atomic<int> g_override_columnar{-1};

std::atomic<uint64_t> g_encoded{0};
std::atomic<uint64_t> g_invalidated{0};
std::atomic<uint64_t> g_scanned{0};
std::atomic<uint64_t> g_skipped{0};

uint8_t TagOf(const Value& v) { return static_cast<uint8_t>(v.type()); }

int64_t PayloadOf(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
    case DataType::kString:
      return 0;
    case DataType::kDouble:
      return std::bit_cast<int64_t>(v.double_value());
    default:
      return v.int64_value();
  }
}

Value MakeValue(uint8_t tag, int64_t data, const std::string* str) {
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value::Bool(data != 0);
    case DataType::kInt64:
      return Value::Int64(data);
    case DataType::kDouble:
      return Value::Double(std::bit_cast<double>(data));
    case DataType::kString:
      return Value::String(str != nullptr ? *str : std::string());
    case DataType::kTimestamp:
      return Value::Timestamp(data);
    case DataType::kInterval:
      return Value::Interval(data);
  }
  return Value::Null();
}

bool IsIntFamily(uint8_t tag) {
  switch (static_cast<DataType>(tag)) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kInterval:
      return true;
    default:
      return false;
  }
}

// Bit-identical equality for run grouping: same tag, same payload bits
// (doubles by bit pattern, so distinct NaNs / -0.0 vs 0.0 stay distinct
// and decode reproduces the exact input).
bool BitIdentical(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  if (a.type() == DataType::kNull) return true;
  if (a.type() == DataType::kString) {
    return a.string_value() == b.string_value();
  }
  return PayloadOf(a) == PayloadOf(b);
}

}  // namespace

bool ColumnarEnabled() {
#ifdef RFID_COLUMNAR_OFF
  return false;
#else
  int o = g_override_columnar.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool env = EnvColumnar();
  return env;
#endif
}

void SetColumnarForTest(int mode) {
  g_override_columnar.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                            std::memory_order_relaxed);
}

const char* ColumnEncodingName(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kPlain: return "plain";
    case ColumnEncoding::kRle: return "rle";
    case ColumnEncoding::kDict: return "dict";
    case ColumnEncoding::kBitPack: return "bitpack";
  }
  return "?";
}

std::string EncodedSegment::EncodingSummary() const {
  bool seen[4] = {false, false, false, false};
  for (const EncodedColumn& c : columns) {
    seen[static_cast<size_t>(c.encoding())] = true;
  }
  std::string out;
  for (size_t e = 0; e < 4; ++e) {
    if (!seen[e]) continue;
    if (!out.empty()) out += ',';
    out += ColumnEncodingName(static_cast<ColumnEncoding>(e));
  }
  return out;
}

Value DecodeValueAt(const EncodedColumn& col, size_t i) {
  switch (col.encoding()) {
    case ColumnEncoding::kPlain: {
      const PlainColumn& p = *col.plain();
      return MakeValue(p.tags[i], p.data[i],
                       p.strs.empty() ? nullptr : &p.strs[i]);
    }
    case ColumnEncoding::kRle: {
      const RleColumn& r = *col.rle();
      const size_t run = static_cast<size_t>(
          std::upper_bound(r.ends.begin(), r.ends.end(),
                           static_cast<uint32_t>(i)) -
          r.ends.begin());
      return MakeValue(r.tags[run], r.data[run],
                       r.strs.empty() ? nullptr : &r.strs[run]);
    }
    case ColumnEncoding::kDict: {
      const DictColumn& d = *col.dict();
      const uint32_t code = d.codes[i];
      if (code == DictColumn::kNullCode) return Value::Null();
      return Value::String(d.dict[code]);
    }
    case ColumnEncoding::kBitPack: {
      const BitPackColumn& b = *col.bitpack();
      if (BitPackIsNull(b, i)) return Value::Null();
      return MakeValue(b.tag, BitPackValueAt(b, i), nullptr);
    }
  }
  return Value::Null();
}

void DecodeRowInto(const EncodedSegment& seg, size_t i, Row* out) {
  out->clear();
  out->reserve(seg.columns.size());
  for (const EncodedColumn& col : seg.columns) {
    out->push_back(DecodeValueAt(col, i));
  }
}

namespace {

uint64_t ColumnApproxBytes(const EncodedColumn& col) {
  uint64_t bytes = sizeof(EncodedColumn);
  auto strings = [](const std::vector<std::string>& v) {
    uint64_t b = v.size() * sizeof(std::string);
    for (const std::string& s : v) b += s.size();
    return b;
  };
  switch (col.encoding()) {
    case ColumnEncoding::kPlain: {
      const PlainColumn& p = *col.plain();
      bytes += p.tags.size() + p.data.size() * 8 + strings(p.strs);
      break;
    }
    case ColumnEncoding::kRle: {
      const RleColumn& r = *col.rle();
      bytes += r.tags.size() + r.data.size() * 8 + r.ends.size() * 4 +
               strings(r.strs);
      break;
    }
    case ColumnEncoding::kDict: {
      const DictColumn& d = *col.dict();
      bytes += d.codes.size() * 4 + strings(d.dict);
      break;
    }
    case ColumnEncoding::kBitPack: {
      const BitPackColumn& b = *col.bitpack();
      bytes += b.words.size() * 8 + b.nulls.size() * 8;
      break;
    }
  }
  return bytes;
}

// Builds the zone map and decides the encoding in one pass over the
// segment's values for column c.
struct ColumnProfile {
  uint32_t runs = 0;
  uint32_t null_count = 0;
  uint32_t non_null = 0;
  bool all_string = true;    // every non-null value is a string
  bool any_string = false;   // at least one string value present
  bool int_family = true;    // every non-null value shares one int tag
  uint8_t int_tag = 0;
  bool has_nan = false;
  bool mixed_tags = false;   // >1 distinct non-null tag
  uint8_t first_tag = 0;
  int64_t int_min = 0;
  int64_t int_max = 0;
  const Value* min = nullptr;
  const Value* max = nullptr;
};

ColumnProfile ProfileColumn(const RowStore& store, uint64_t base,
                            uint32_t n, size_t c) {
  ColumnProfile p;
  const Value* prev = nullptr;
  for (uint32_t i = 0; i < n; ++i) {
    const Value& v = store.row(base + i)[c];
    if (prev == nullptr || !BitIdentical(*prev, v)) ++p.runs;
    prev = &v;
    if (v.is_null()) {
      ++p.null_count;
      continue;
    }
    if (p.non_null == 0) {
      p.first_tag = TagOf(v);
    } else if (TagOf(v) != p.first_tag) {
      p.mixed_tags = true;
    }
    if (v.type() == DataType::kString) {
      p.any_string = true;
    } else {
      p.all_string = false;
    }
    if (IsIntFamily(TagOf(v))) {
      const int64_t x = v.int64_value();
      if (p.non_null == 0 || !p.int_family) {
        p.int_min = p.int_max = x;
        p.int_tag = TagOf(v);
      } else {
        p.int_min = std::min(p.int_min, x);
        p.int_max = std::max(p.int_max, x);
      }
      if (p.non_null > 0 && TagOf(v) != p.int_tag) p.int_family = false;
    } else {
      p.int_family = false;
      if (v.type() == DataType::kDouble && std::isnan(v.double_value())) {
        p.has_nan = true;
      }
    }
    ++p.non_null;
    // min/max via Value::Compare — only meaningful if the column turns
    // out prunable (single non-null tag, no NaN); tracked optimistically.
    if (!p.mixed_tags && !p.has_nan) {
      if (p.min == nullptr || v.Compare(*p.min) < 0) p.min = &v;
      if (p.max == nullptr || v.Compare(*p.max) > 0) p.max = &v;
    }
  }
  if (p.non_null == 0) {
    p.all_string = false;
    p.int_family = false;
  }
  return p;
}

EncodedColumn EncodePlain(const RowStore& store, uint64_t base, uint32_t n,
                          size_t c, bool any_string) {
  PlainColumn p;
  p.tags.reserve(n);
  p.data.reserve(n);
  if (any_string) p.strs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const Value& v = store.row(base + i)[c];
    p.tags.push_back(TagOf(v));
    p.data.push_back(PayloadOf(v));
    if (any_string) {
      p.strs.emplace_back(v.type() == DataType::kString ? v.string_value()
                                                        : std::string());
    }
  }
  return EncodedColumn{std::move(p)};
}

EncodedColumn EncodeRle(const RowStore& store, uint64_t base, uint32_t n,
                        size_t c, bool any_string) {
  RleColumn r;
  const Value* prev = nullptr;
  for (uint32_t i = 0; i < n; ++i) {
    const Value& v = store.row(base + i)[c];
    if (prev != nullptr && BitIdentical(*prev, v)) {
      r.ends.back() = i + 1;
      continue;
    }
    prev = &v;
    r.tags.push_back(TagOf(v));
    r.data.push_back(PayloadOf(v));
    if (any_string) {
      r.strs.emplace_back(v.type() == DataType::kString ? v.string_value()
                                                        : std::string());
    }
    r.ends.push_back(i + 1);
  }
  return EncodedColumn{std::move(r)};
}

EncodedColumn EncodeDict(const RowStore& store, uint64_t base, uint32_t n,
                         size_t c) {
  DictColumn d;
  // Two passes: collect + sort the distinct strings, then emit codes.
  for (uint32_t i = 0; i < n; ++i) {
    const Value& v = store.row(base + i)[c];
    if (!v.is_null()) d.dict.push_back(v.string_value());
  }
  std::sort(d.dict.begin(), d.dict.end());
  d.dict.erase(std::unique(d.dict.begin(), d.dict.end()), d.dict.end());
  d.codes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const Value& v = store.row(base + i)[c];
    if (v.is_null()) {
      d.codes.push_back(DictColumn::kNullCode);
      continue;
    }
    const auto it =
        std::lower_bound(d.dict.begin(), d.dict.end(), v.string_value());
    d.codes.push_back(static_cast<uint32_t>(it - d.dict.begin()));
  }
  return EncodedColumn{std::move(d)};
}

EncodedColumn EncodeBitPack(const RowStore& store, uint64_t base, uint32_t n,
                            size_t c, const ColumnProfile& prof,
                            uint8_t width) {
  BitPackColumn b;
  b.tag = prof.int_tag;
  b.base = prof.int_min;
  b.width = width;
  if (width > 0) {
    b.words.assign((static_cast<size_t>(n) * width + 63) / 64, 0);
  }
  if (prof.null_count > 0) b.nulls.assign((n + 63) / 64, 0);
  for (uint32_t i = 0; i < n; ++i) {
    const Value& v = store.row(base + i)[c];
    if (v.is_null()) {
      b.nulls[i >> 6] |= uint64_t{1} << (i & 63);
      continue;
    }
    if (width == 0) continue;
    const uint64_t delta = static_cast<uint64_t>(v.int64_value()) -
                           static_cast<uint64_t>(b.base);
    const size_t bit = static_cast<size_t>(i) * width;
    b.words[bit >> 6] |= delta << (bit & 63);
    const unsigned used = 64 - static_cast<unsigned>(bit & 63);
    if (used < width) {
      b.words[(bit >> 6) + 1] |= delta >> used;
    }
  }
  return EncodedColumn{std::move(b)};
}

}  // namespace

EncodedSegmentPtr EncodeSegment(const RowStore& store, uint64_t base_row,
                                uint32_t num_rows, size_t num_columns) {
  auto seg = std::make_shared<EncodedSegment>();
  seg->base_row = base_row;
  seg->num_rows = num_rows;
  seg->columns.reserve(num_columns);
  seg->zones.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    const ColumnProfile prof = ProfileColumn(store, base_row, num_rows, c);

    ZoneMap zone;
    zone.null_count = prof.null_count;
    zone.prunable = prof.non_null > 0 && !prof.mixed_tags && !prof.has_nan &&
                    prof.min != nullptr;
    if (zone.prunable) {
      zone.min = *prof.min;
      zone.max = *prof.max;
    }
    seg->zones.push_back(std::move(zone));

    const bool dict_eligible = prof.all_string && prof.non_null > 0;
    // Distinct string count for the dictionary decision (capped probe).
    size_t ndv = 0;
    if (dict_eligible && prof.runs > num_rows / 8) {
      std::unordered_set<std::string_view> distinct;
      for (uint32_t i = 0; i < num_rows && distinct.size() <= 256; ++i) {
        const Value& v = store.row(base_row + i)[c];
        if (!v.is_null()) distinct.insert(v.string_value());
      }
      ndv = distinct.size();
    }
    uint8_t width = 64;
    if (prof.int_family) {
      const uint64_t delta = static_cast<uint64_t>(prof.int_max) -
                             static_cast<uint64_t>(prof.int_min);
      width = delta == 0
                  ? 0
                  : static_cast<uint8_t>(64 - std::countl_zero(delta));
    }

    if (prof.runs <= num_rows / 8 || prof.non_null == 0) {
      seg->columns.push_back(
          EncodeRle(store, base_row, num_rows, c, prof.any_string));
    } else if (dict_eligible && ndv <= 256) {
      seg->columns.push_back(EncodeDict(store, base_row, num_rows, c));
    } else if (prof.int_family && !prof.mixed_tags && width <= 32) {
      seg->columns.push_back(
          EncodeBitPack(store, base_row, num_rows, c, prof, width));
    } else {
      seg->columns.push_back(
          EncodePlain(store, base_row, num_rows, c, prof.any_string));
    }
    seg->approx_bytes += ColumnApproxBytes(seg->columns.back());
  }
  return seg;
}

// --- serialization ---------------------------------------------------------

namespace {

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

template <typename T>
void PutVec(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutU32(out, static_cast<uint32_t>(v.size()));
  if (!v.empty()) {
    out->append(reinterpret_cast<const char*>(v.data()),
                v.size() * sizeof(T));
  }
}

void PutStrVec(std::string* out, const std::vector<std::string>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) PutString(out, s);
}

// Bounds-checked reader over the sidecar image.
struct Cursor {
  std::string_view bytes;
  size_t pos = 0;

  Status Need(size_t n) const {
    if (bytes.size() - pos < n) {
      return Status::Internal("columnar sidecar truncated");
    }
    return Status::OK();
  }
  Result<uint32_t> U32() {
    RFID_RETURN_IF_ERROR(Need(4));
    uint32_t v;
    std::memcpy(&v, bytes.data() + pos, 4);
    pos += 4;
    return v;
  }
  Result<uint64_t> U64() {
    RFID_RETURN_IF_ERROR(Need(8));
    uint64_t v;
    std::memcpy(&v, bytes.data() + pos, 8);
    pos += 8;
    return v;
  }
  Result<std::string> Str() {
    RFID_ASSIGN_OR_RETURN(uint32_t n, U32());
    RFID_RETURN_IF_ERROR(Need(n));
    std::string s(bytes.substr(pos, n));
    pos += n;
    return s;
  }
  template <typename T>
  Status Vec(std::vector<T>* out, uint32_t max_elems) {
    RFID_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > max_elems) return Status::Internal("columnar sidecar corrupt");
    RFID_RETURN_IF_ERROR(Need(static_cast<size_t>(n) * sizeof(T)));
    out->resize(n);
    if (n > 0) {
      std::memcpy(out->data(), bytes.data() + pos,
                  static_cast<size_t>(n) * sizeof(T));
    }
    pos += static_cast<size_t>(n) * sizeof(T);
    return Status::OK();
  }
  Status StrVec(std::vector<std::string>* out, uint32_t max_elems) {
    RFID_ASSIGN_OR_RETURN(uint32_t n, U32());
    if (n > max_elems) return Status::Internal("columnar sidecar corrupt");
    out->resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      RFID_ASSIGN_OR_RETURN((*out)[i], Str());
    }
    return Status::OK();
  }
};

void PutValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(TagOf(v)));
  if (v.type() == DataType::kString) {
    PutString(out, v.string_value());
  } else {
    PutU64(out, static_cast<uint64_t>(PayloadOf(v)));
  }
}

Result<Value> GetValue(Cursor* c) {
  RFID_RETURN_IF_ERROR(c->Need(1));
  const uint8_t tag = static_cast<uint8_t>(c->bytes[c->pos++]);
  if (tag > static_cast<uint8_t>(DataType::kInterval)) {
    return Status::Internal("columnar sidecar corrupt");
  }
  if (static_cast<DataType>(tag) == DataType::kString) {
    RFID_ASSIGN_OR_RETURN(std::string s, c->Str());
    return Value::String(std::move(s));
  }
  RFID_ASSIGN_OR_RETURN(uint64_t raw, c->U64());
  return MakeValue(tag, static_cast<int64_t>(raw), nullptr);
}

constexpr uint32_t kMaxSidecarElems = 1u << 24;

}  // namespace

void AppendSegmentBytes(const EncodedSegment& seg, std::string* out) {
  PutU64(out, seg.base_row);
  PutU32(out, seg.num_rows);
  PutU32(out, static_cast<uint32_t>(seg.columns.size()));
  for (size_t i = 0; i < seg.columns.size(); ++i) {
    const EncodedColumn& col = seg.columns[i];
    out->push_back(static_cast<char>(col.encoding()));
    switch (col.encoding()) {
      case ColumnEncoding::kPlain: {
        const PlainColumn& p = *col.plain();
        PutVec(out, p.tags);
        PutVec(out, p.data);
        PutStrVec(out, p.strs);
        break;
      }
      case ColumnEncoding::kRle: {
        const RleColumn& r = *col.rle();
        PutVec(out, r.tags);
        PutVec(out, r.data);
        PutStrVec(out, r.strs);
        PutVec(out, r.ends);
        break;
      }
      case ColumnEncoding::kDict: {
        const DictColumn& d = *col.dict();
        PutStrVec(out, d.dict);
        PutVec(out, d.codes);
        break;
      }
      case ColumnEncoding::kBitPack: {
        const BitPackColumn& b = *col.bitpack();
        out->push_back(static_cast<char>(b.tag));
        out->push_back(static_cast<char>(b.width));
        PutU64(out, static_cast<uint64_t>(b.base));
        PutVec(out, b.words);
        PutVec(out, b.nulls);
        break;
      }
    }
    const ZoneMap& z = seg.zones[i];
    out->push_back(z.prunable ? 1 : 0);
    PutU32(out, z.null_count);
    if (z.prunable) {
      PutValue(out, z.min);
      PutValue(out, z.max);
    }
  }
}

Result<EncodedSegmentPtr> ParseSegmentBytes(std::string_view bytes,
                                            size_t* offset) {
  Cursor c{bytes, *offset};
  auto seg = std::make_shared<EncodedSegment>();
  RFID_ASSIGN_OR_RETURN(seg->base_row, c.U64());
  RFID_ASSIGN_OR_RETURN(seg->num_rows, c.U32());
  RFID_ASSIGN_OR_RETURN(uint32_t ncols, c.U32());
  if (seg->num_rows > RowStore::kSegmentRows || ncols > 4096) {
    return Status::Internal("columnar sidecar corrupt");
  }
  const uint32_t n = seg->num_rows;
  for (uint32_t ci = 0; ci < ncols; ++ci) {
    RFID_RETURN_IF_ERROR(c.Need(1));
    const uint8_t enc = static_cast<uint8_t>(c.bytes[c.pos++]);
    EncodedColumn col;
    switch (static_cast<ColumnEncoding>(enc)) {
      case ColumnEncoding::kPlain: {
        PlainColumn p;
        RFID_RETURN_IF_ERROR(c.Vec(&p.tags, n));
        RFID_RETURN_IF_ERROR(c.Vec(&p.data, n));
        RFID_RETURN_IF_ERROR(c.StrVec(&p.strs, n));
        if (p.tags.size() != n || p.data.size() != n ||
            (!p.strs.empty() && p.strs.size() != n)) {
          return Status::Internal("columnar sidecar corrupt");
        }
        for (uint8_t t : p.tags) {
          if (t > static_cast<uint8_t>(DataType::kInterval)) {
            return Status::Internal("columnar sidecar corrupt");
          }
          if (static_cast<DataType>(t) == DataType::kString &&
              p.strs.empty()) {
            return Status::Internal("columnar sidecar corrupt");
          }
        }
        col.rep = std::move(p);
        break;
      }
      case ColumnEncoding::kRle: {
        RleColumn r;
        RFID_RETURN_IF_ERROR(c.Vec(&r.tags, n));
        RFID_RETURN_IF_ERROR(c.Vec(&r.data, n));
        RFID_RETURN_IF_ERROR(c.StrVec(&r.strs, n));
        RFID_RETURN_IF_ERROR(c.Vec(&r.ends, n));
        const size_t runs = r.tags.size();
        if (runs == 0 || r.data.size() != runs || r.ends.size() != runs ||
            (!r.strs.empty() && r.strs.size() != runs) ||
            r.ends.back() != n) {
          return Status::Internal("columnar sidecar corrupt");
        }
        uint32_t prev = 0;
        for (size_t i = 0; i < runs; ++i) {
          if (r.ends[i] <= prev) {
            return Status::Internal("columnar sidecar corrupt");
          }
          prev = r.ends[i];
          if (r.tags[i] > static_cast<uint8_t>(DataType::kInterval) ||
              (static_cast<DataType>(r.tags[i]) == DataType::kString &&
               r.strs.empty())) {
            return Status::Internal("columnar sidecar corrupt");
          }
        }
        col.rep = std::move(r);
        break;
      }
      case ColumnEncoding::kDict: {
        DictColumn d;
        RFID_RETURN_IF_ERROR(c.StrVec(&d.dict, n));
        RFID_RETURN_IF_ERROR(c.Vec(&d.codes, n));
        if (d.codes.size() != n) {
          return Status::Internal("columnar sidecar corrupt");
        }
        for (uint32_t code : d.codes) {
          if (code != DictColumn::kNullCode && code >= d.dict.size()) {
            return Status::Internal("columnar sidecar corrupt");
          }
        }
        col.rep = std::move(d);
        break;
      }
      case ColumnEncoding::kBitPack: {
        BitPackColumn b;
        RFID_RETURN_IF_ERROR(c.Need(2));
        b.tag = static_cast<uint8_t>(c.bytes[c.pos++]);
        b.width = static_cast<uint8_t>(c.bytes[c.pos++]);
        RFID_ASSIGN_OR_RETURN(uint64_t base, c.U64());
        b.base = static_cast<int64_t>(base);
        RFID_RETURN_IF_ERROR(c.Vec(&b.words, kMaxSidecarElems));
        RFID_RETURN_IF_ERROR(c.Vec(&b.nulls, kMaxSidecarElems));
        if (!IsIntFamily(b.tag) || b.width > 32 ||
            b.words.size() <
                (static_cast<size_t>(n) * b.width + 63) / 64 ||
            (!b.nulls.empty() && b.nulls.size() < (n + 63) / 64)) {
          return Status::Internal("columnar sidecar corrupt");
        }
        col.rep = std::move(b);
        break;
      }
      default:
        return Status::Internal("columnar sidecar corrupt");
    }
    ZoneMap z;
    RFID_RETURN_IF_ERROR(c.Need(1));
    const uint8_t prunable = static_cast<uint8_t>(c.bytes[c.pos++]);
    RFID_ASSIGN_OR_RETURN(z.null_count, c.U32());
    z.prunable = prunable != 0;
    if (z.prunable) {
      RFID_ASSIGN_OR_RETURN(z.min, GetValue(&c));
      RFID_ASSIGN_OR_RETURN(z.max, GetValue(&c));
      if (z.min.is_null() || z.max.is_null()) {
        return Status::Internal("columnar sidecar corrupt");
      }
    }
    seg->approx_bytes += ColumnApproxBytes(col);
    seg->columns.push_back(std::move(col));
    seg->zones.push_back(std::move(z));
  }
  *offset = c.pos;
  return EncodedSegmentPtr(std::move(seg));
}

// --- directory -------------------------------------------------------------

EncodedSegmentPtr ColumnarDirectory::Get(size_t segment) const {
  MutexLock lock(&mu_);
  if (segment >= segments_.size()) return nullptr;
  return segments_[segment];
}

void ColumnarDirectory::Install(size_t segment, EncodedSegmentPtr seg) {
  MutexLock lock(&mu_);
  if (segment >= segments_.size()) segments_.resize(segment + 1);
  segments_[segment] = std::move(seg);
}

void ColumnarDirectory::InvalidateAll() {
  uint64_t dropped = 0;
  {
    MutexLock lock(&mu_);
    for (EncodedSegmentPtr& s : segments_) {
      if (s != nullptr) ++dropped;
    }
    segments_.clear();
  }
  if (dropped > 0) AddColumnarInvalidated(dropped);
}

size_t ColumnarDirectory::encoded_segments() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const EncodedSegmentPtr& s : segments_) {
    if (s != nullptr) ++n;
  }
  return n;
}

uint64_t ColumnarDirectory::encoded_bytes() const {
  MutexLock lock(&mu_);
  uint64_t bytes = 0;
  for (const EncodedSegmentPtr& s : segments_) {
    if (s != nullptr) bytes += s->approx_bytes;
  }
  return bytes;
}

std::vector<EncodedSegmentPtr> ColumnarDirectory::SnapshotAll() const {
  MutexLock lock(&mu_);
  return segments_;
}

// --- counters --------------------------------------------------------------

ColumnarCounters GlobalColumnarCounters() {
  ColumnarCounters c;
  c.segments_encoded = g_encoded.load(std::memory_order_relaxed);
  c.segments_invalidated = g_invalidated.load(std::memory_order_relaxed);
  c.segments_scanned = g_scanned.load(std::memory_order_relaxed);
  c.segments_skipped = g_skipped.load(std::memory_order_relaxed);
  return c;
}

void AddColumnarEncoded(uint64_t n) {
  g_encoded.fetch_add(n, std::memory_order_relaxed);
}
void AddColumnarInvalidated(uint64_t n) {
  g_invalidated.fetch_add(n, std::memory_order_relaxed);
}
void AddColumnarScanned(uint64_t n) {
  g_scanned.fetch_add(n, std::memory_order_relaxed);
}
void AddColumnarSkipped(uint64_t n) {
  g_skipped.fetch_add(n, std::memory_order_relaxed);
}

// --- checkpoint sidecar ----------------------------------------------------

namespace {
constexpr char kSidecarMagic[8] = {'R', 'F', 'C', 'O', 'L', 'S', 'G', '1'};
}  // namespace

Status SaveColumnarSidecar(const std::string& path, const Database& db) {
  std::string image(kSidecarMagic, sizeof(kSidecarMagic));
  std::vector<std::string> names = db.TableNames();
  // Count tables with at least one encoded segment.
  std::string body;
  uint32_t tables_with_segments = 0;
  for (const std::string& name : names) {
    const Table* t = db.GetTable(name);
    if (t == nullptr) continue;
    std::vector<EncodedSegmentPtr> segs = t->columnar().SnapshotAll();
    uint32_t live = 0;
    for (const EncodedSegmentPtr& s : segs) {
      if (s != nullptr) ++live;
    }
    if (live == 0) continue;
    ++tables_with_segments;
    PutString(&body, t->name());
    PutU32(&body, live);
    for (const EncodedSegmentPtr& s : segs) {
      if (s != nullptr) AppendSegmentBytes(*s, &body);
    }
  }
  PutU32(&image, tables_with_segments);
  image += body;
  const uint32_t crc = Crc32(image.data(), image.size());
  PutU32(&image, crc);
  return WriteFileAtomic(path, image);
}

Status LoadColumnarSidecar(const std::string& path, Database* db) {
  Result<std::string> image = ReadFileToString(path);
  if (!image.ok()) return Status::OK();  // pre-columnar checkpoint
  const std::string& bytes = *image;
  if (bytes.size() < sizeof(kSidecarMagic) + 8 ||
      std::memcmp(bytes.data(), kSidecarMagic, sizeof(kSidecarMagic)) != 0) {
    return Status::OK();  // unrecognized: degrade to row-store scans
  }
  const uint32_t stored_crc = [&] {
    uint32_t v;
    std::memcpy(&v, bytes.data() + bytes.size() - 4, 4);
    return v;
  }();
  if (Crc32(bytes.data(), bytes.size() - 4) != stored_crc) {
    return Status::OK();  // torn write: segments re-encode lazily instead
  }
  Cursor c{std::string_view(bytes.data(), bytes.size() - 4),
           sizeof(kSidecarMagic)};
  auto parse = [&]() -> Status {
    RFID_ASSIGN_OR_RETURN(uint32_t ntables, c.U32());
    for (uint32_t ti = 0; ti < ntables; ++ti) {
      RFID_ASSIGN_OR_RETURN(std::string name, c.Str());
      RFID_ASSIGN_OR_RETURN(uint32_t nsegs, c.U32());
      Table* t = db->GetTable(name);
      for (uint32_t si = 0; si < nsegs; ++si) {
        RFID_ASSIGN_OR_RETURN(EncodedSegmentPtr seg,
                              ParseSegmentBytes(c.bytes, &c.pos));
        if (t == nullptr) continue;  // dropped table: skip its segments
        RFID_RETURN_IF_ERROR(t->InstallEncodedSegment(seg));
      }
    }
    return Status::OK();
  };
  Status st = parse();
  // A corrupt tail degrades: whatever installed so far is individually
  // validated, the rest re-encodes from rows.
  (void)st;
  return Status::OK();
}

}  // namespace rfid
