#include "storage/index.h"

#include <algorithm>
#include <queue>

namespace rfid {

namespace {

// Total order matching a full rebuild: value order, row id tie-break
// (Build used to push entries in row order and stable_sort by value).
bool EntryLess(const SortedIndex::Entry& a, const SortedIndex::Entry& b) {
  int c = a.value.Compare(b.value);
  if (c != 0) return c < 0;
  return a.row_id < b.row_id;
}

using RunRange = std::pair<SortedIndex::Run::const_iterator,
                           SortedIndex::Run::const_iterator>;

// Qualifying slice of one sorted run.
RunRange SliceRun(const SortedIndex::Run& run, const std::optional<Bound>& lo,
                  const std::optional<Bound>& hi) {
  auto begin = run.begin();
  if (lo.has_value()) {
    begin = std::lower_bound(run.begin(), run.end(), *lo,
                             [](const SortedIndex::Entry& e, const Bound& b) {
                               int c = e.value.Compare(b.value);
                               return b.inclusive ? c < 0 : c <= 0;
                             });
  }
  auto end = run.end();
  if (hi.has_value()) {
    end = std::upper_bound(begin, run.end(), *hi,
                           [](const Bound& b, const SortedIndex::Entry& e) {
                             int c = e.value.Compare(b.value);
                             return b.inclusive ? c > 0 : c >= 0;
                           });
  }
  return {begin, end};
}

}  // namespace

SortedIndex::SortedIndex(std::string column_name, size_t column_index)
    : column_name_(std::move(column_name)),
      column_index_(column_index),
      runs_(std::make_shared<const RunSet>()) {}

void SortedIndex::Build(const RowStore& rows, uint64_t num_rows) {
  auto run = std::make_shared<Run>();
  run->reserve(num_rows);
  for (uint64_t i = 0; i < num_rows; ++i) {
    const Value& v = rows.row(i)[column_index_];
    if (v.is_null()) continue;
    run->push_back({v, static_cast<uint32_t>(i)});
  }
  std::sort(run->begin(), run->end(), EntryLess);
  auto set = std::make_shared<RunSet>();
  set->push_back(std::move(run));
  MutexLock lock(&mu_);
  runs_ = std::move(set);
}

SortedIndex::RunPtr SortedIndex::MakeRun(const RowStore& rows, uint64_t first,
                                         uint64_t count) const {
  auto run = std::make_shared<Run>();
  run->reserve(count);
  for (uint64_t i = first; i < first + count; ++i) {
    const Value& v = rows.row(i)[column_index_];
    if (v.is_null()) continue;
    run->push_back({v, static_cast<uint32_t>(i)});
  }
  std::sort(run->begin(), run->end(), EntryLess);
  return run;
}

void SortedIndex::PublishRun(RunPtr run, size_t compact_threshold) {
  RunSetPtr current = Pin();
  auto next = std::make_shared<RunSet>(*current);
  if (!run->empty()) next->push_back(std::move(run));
  if (compact_threshold > 0 && next->size() > compact_threshold) {
    size_t total = 0;
    for (const RunPtr& r : *next) total += r->size();
    auto merged = std::make_shared<Run>();
    merged->reserve(total);
    for (const RunPtr& r : *next) {
      merged->insert(merged->end(), r->begin(), r->end());
    }
    std::sort(merged->begin(), merged->end(), EntryLess);
    next = std::make_shared<RunSet>();
    next->push_back(std::move(merged));
  }
  MutexLock lock(&mu_);
  runs_ = std::move(next);
}

SortedIndex::RunSetPtr SortedIndex::Pin() const {
  MutexLock lock(&mu_);
  return runs_;
}

std::vector<uint32_t> SortedIndex::RangeScan(
    const std::optional<Bound>& lo, const std::optional<Bound>& hi) const {
  RunSetPtr runs = Pin();
  return RangeScanRuns(*runs, lo, hi, UINT64_MAX);
}

std::vector<uint32_t> SortedIndex::RangeScanRuns(const RunSet& runs,
                                                 const std::optional<Bound>& lo,
                                                 const std::optional<Bound>& hi,
                                                 uint64_t watermark) {
  std::vector<RunRange> ranges;
  size_t total = 0;
  for (const RunPtr& run : runs) {
    RunRange r = SliceRun(*run, lo, hi);
    if (r.first != r.second) {
      ranges.push_back(r);
      total += static_cast<size_t>(r.second - r.first);
    }
  }
  std::vector<uint32_t> out;
  out.reserve(total);
  auto emit = [&out, watermark](const Entry& e) {
    if (e.row_id < watermark) out.push_back(e.row_id);
  };
  if (ranges.size() == 1) {
    for (auto it = ranges[0].first; it != ranges[0].second; ++it) emit(*it);
    return out;
  }
  // k-way merge by (value, row id) — the rebuild order.
  auto greater = [](const RunRange& a, const RunRange& b) {
    return EntryLess(*b.first, *a.first);
  };
  std::priority_queue<RunRange, std::vector<RunRange>, decltype(greater)> heap(
      greater, std::move(ranges));
  while (!heap.empty()) {
    RunRange top = heap.top();
    heap.pop();
    emit(*top.first);
    ++top.first;
    if (top.first != top.second) heap.push(top);
  }
  return out;
}

size_t SortedIndex::num_entries() const {
  RunSetPtr runs = Pin();
  size_t n = 0;
  for (const RunPtr& r : *runs) n += r->size();
  return n;
}

size_t SortedIndex::num_runs() const { return Pin()->size(); }

}  // namespace rfid
