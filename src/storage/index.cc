#include "storage/index.h"

#include <algorithm>

namespace rfid {

void SortedIndex::Build(const std::vector<std::vector<Value>>& rows) {
  entries_.clear();
  entries_.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Value& v = rows[i][column_index_];
    if (v.is_null()) continue;
    entries_.push_back({v, static_cast<uint32_t>(i)});
  }
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.value.Compare(b.value) < 0;
                   });
}

std::vector<uint32_t> SortedIndex::RangeScan(const std::optional<Bound>& lo,
                                             const std::optional<Bound>& hi) const {
  // Lower bound: first entry >= lo (or > lo when exclusive).
  auto begin = entries_.begin();
  if (lo.has_value()) {
    begin = std::lower_bound(entries_.begin(), entries_.end(), *lo,
                             [](const Entry& e, const Bound& b) {
                               int c = e.value.Compare(b.value);
                               return b.inclusive ? c < 0 : c <= 0;
                             });
  }
  auto end = entries_.end();
  if (hi.has_value()) {
    end = std::upper_bound(begin, entries_.end(), *hi,
                           [](const Bound& b, const Entry& e) {
                             int c = e.value.Compare(b.value);
                             return b.inclusive ? c > 0 : c >= 0;
                           });
  }
  std::vector<uint32_t> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (auto it = begin; it != end; ++it) out.push_back(it->row_id);
  return out;
}

}  // namespace rfid
