#include "storage/catalog.h"

#include "common/string_util.h"

namespace rfid {

Result<Table*> Database::CreateTable(std::string name, Schema schema) {
  std::string key = ToLower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(std::move(name), std::move(schema));
  Table* ptr = table.get();
  tables_[key] = std::move(table);
  return ptr;
}

Table* Database::GetTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Table*> Database::ResolveTable(std::string_view name) {
  Table* t = GetTable(name);
  if (t == nullptr) {
    return Status::NotFound("table not found: " + std::string(name));
  }
  return t;
}

Status Database::DropTable(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + std::string(name));
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

}  // namespace rfid
