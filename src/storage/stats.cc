#include "storage/stats.h"

namespace rfid {
// ColumnStats is a plain aggregate; computation lives in Table::ComputeStats.
}  // namespace rfid
