#include "storage/stats.h"

#include <algorithm>

namespace rfid {

namespace {

// splitmix64 finalizer: Value::Hash is std::hash-based and can be close
// to identity for integers; the sketch needs uniform high bits.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t StatsValueHash(const Value& v) {
  return Mix64(static_cast<uint64_t>(v.Hash()));
}

void NdvSketch::InsertHash(uint64_t h) {
  if (hashes.size() == kMaxHashes && h >= hashes.back()) return;
  auto it = std::lower_bound(hashes.begin(), hashes.end(), h);
  if (it != hashes.end() && *it == h) return;
  hashes.insert(it, h);
  if (hashes.size() > kMaxHashes) hashes.pop_back();
}

void NdvSketch::Merge(const NdvSketch& other) {
  for (uint64_t h : other.hashes) InsertHash(h);
}

uint64_t NdvSketch::EstimateNdv() const {
  if (hashes.size() < kMaxHashes) {
    return hashes.size();  // exact: every distinct hash is retained
  }
  // u_k = largest retained hash as a fraction of the 64-bit hash space.
  double u_k = (static_cast<double>(hashes.back()) + 1.0) / 18446744073709551616.0;
  double est = static_cast<double>(kMaxHashes - 1) / u_k;
  return static_cast<uint64_t>(est + 0.5);
}

void ColumnStats::Observe(const Value& v) {
  ++row_count;
  if (v.is_null()) {
    ++null_count;
    return;
  }
  if (min.is_null() || v.Compare(min) < 0) min = v;
  if (max.is_null() || v.Compare(max) > 0) max = v;
  sketch.InsertHash(StatsValueHash(v));
}

void ColumnStats::MergeFrom(const ColumnStats& other) {
  row_count += other.row_count;
  null_count += other.null_count;
  if (!other.min.is_null() && (min.is_null() || other.min.Compare(min) < 0)) {
    min = other.min;
  }
  if (!other.max.is_null() && (max.is_null() || other.max.Compare(max) > 0)) {
    max = other.max;
  }
  sketch.Merge(other.sketch);
  RefreshNdv();
}

bool ColumnStats::operator==(const ColumnStats& other) const {
  auto value_eq = [](const Value& a, const Value& b) {
    if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
    return a.type() == b.type() && a.Compare(b) == 0;
  };
  return value_eq(min, other.min) && value_eq(max, other.max) &&
         ndv == other.ndv && null_count == other.null_count &&
         row_count == other.row_count && sketch == other.sketch;
}

}  // namespace rfid
