// The Database catalog: owns tables by (case-insensitive) name. This is
// the "DBMS" boundary of the reproduction — the rule engine and rewrite
// engine sit above it, as in the paper's Figure 1.
#ifndef RFID_STORAGE_CATALOG_H_
#define RFID_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.h"

namespace rfid {

class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; fails if one with the same name exists.
  Result<Table*> CreateTable(std::string name, Schema schema);

  /// Returns the table or nullptr.
  Table* GetTable(std::string_view name);
  const Table* GetTable(std::string_view name) const;

  /// Returns the table or a NotFound status.
  Result<Table*> ResolveTable(std::string_view name);

  Status DropTable(std::string_view name);

  std::vector<std::string> TableNames() const;

 private:
  // Keyed by lower-cased name.
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace rfid

#endif  // RFID_STORAGE_CATALOG_H_
