#include "storage/schema.h"

#include "common/string_util.h"

namespace rfid {

int Schema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

Result<size_t> Schema::ResolveColumn(std::string_view name) const {
  int idx = FindColumn(name);
  if (idx < 0) {
    return Status::NotFound("column not found: " + std::string(name));
  }
  return static_cast<size_t>(idx);
}

std::vector<std::string> Schema::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name);
  return names;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace rfid
