// Sorted single-column secondary index: (value, row id) pairs in value
// order, supporting range scans via binary search. This plays the role a
// B-tree index plays in the paper's DB2 setup — the cost structure
// (touch only qualifying rows vs scan everything) is what matters.
#ifndef RFID_STORAGE_INDEX_H_
#define RFID_STORAGE_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace rfid {

/// One endpoint of a range scan; unset means unbounded.
struct Bound {
  Value value;
  bool inclusive = true;
};

class SortedIndex {
 public:
  SortedIndex(std::string column_name, size_t column_index)
      : column_name_(std::move(column_name)), column_index_(column_index) {}

  const std::string& column_name() const { return column_name_; }
  size_t column_index() const { return column_index_; }

  /// Rebuilds the index from the rows. NULL values are excluded (a range
  /// predicate never matches NULL).
  void Build(const std::vector<std::vector<Value>>& rows);

  /// Returns row ids whose column value lies within [lo, hi] (either bound
  /// optional), in index (value) order.
  std::vector<uint32_t> RangeScan(const std::optional<Bound>& lo,
                                  const std::optional<Bound>& hi) const;

  size_t num_entries() const { return entries_.size(); }

 private:
  struct Entry {
    Value value;
    uint32_t row_id;
  };

  std::string column_name_;
  size_t column_index_;
  std::vector<Entry> entries_;
};

}  // namespace rfid

#endif  // RFID_STORAGE_INDEX_H_
