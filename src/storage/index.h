// Sorted single-column secondary index: (value, row id) pairs in value
// order, supporting range scans via binary search. This plays the role a
// B-tree index plays in the paper's DB2 setup — the cost structure
// (touch only qualifying rows vs scan everything) is what matters.
//
// The index is log-structured so the ingest path can maintain it
// incrementally: it is a set of immutable sorted *runs* (a base run from
// the last full Build plus one run per ingested batch, compacted when
// the run count grows). A range scan merges the qualifying slices of
// every run by (value, row id), which is exactly the order a full
// rebuild produces — incremental maintenance and Build are
// observationally identical.
//
// Concurrency: runs are immutable once published and the current run set
// is swapped atomically under a mutex. A reader Pin()s the run set once
// (e.g. at snapshot-capture time) and can then scan it freely while the
// writer publishes newer runs. Entries above a snapshot's row watermark
// are filtered out at scan time, so a pinned run set that is newer than
// the pinned watermark still yields exactly the snapshot's rows.
#ifndef RFID_STORAGE_INDEX_H_
#define RFID_STORAGE_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/value.h"
#include "storage/row_store.h"

namespace rfid {

/// One endpoint of a range scan; unset means unbounded.
struct Bound {
  Value value;
  bool inclusive = true;
};

class SortedIndex {
 public:
  struct Entry {
    Value value;
    uint32_t row_id;
  };
  using Run = std::vector<Entry>;
  using RunPtr = std::shared_ptr<const Run>;
  using RunSet = std::vector<RunPtr>;
  using RunSetPtr = std::shared_ptr<const RunSet>;

  SortedIndex(std::string column_name, size_t column_index);

  const std::string& column_name() const { return column_name_; }
  size_t column_index() const { return column_index_; }

  /// Rebuilds the index from rows [0, num_rows) as a single base run.
  /// NULL values are excluded (a range predicate never matches NULL).
  void Build(const RowStore& rows, uint64_t num_rows);

  /// Builds (but does not publish) a sorted run over rows
  /// [first, first + count) — the staging half of an ingest batch.
  RunPtr MakeRun(const RowStore& rows, uint64_t first, uint64_t count) const;

  /// Publishes a staged run. When the run count would exceed
  /// `compact_threshold`, all runs are merged into a single base run
  /// first (equal to what Build over the union would produce).
  void PublishRun(RunPtr run, size_t compact_threshold);

  /// Pins the current run set for lock-free scanning.
  RunSetPtr Pin() const;

  /// Returns row ids whose column value lies within [lo, hi] (either
  /// bound optional), merged across the current runs in (value, row id)
  /// order.
  std::vector<uint32_t> RangeScan(const std::optional<Bound>& lo,
                                  const std::optional<Bound>& hi) const;

  /// As RangeScan, over an explicitly pinned run set, excluding entries
  /// at or above `watermark` (UINT64_MAX = no filtering).
  static std::vector<uint32_t> RangeScanRuns(const RunSet& runs,
                                             const std::optional<Bound>& lo,
                                             const std::optional<Bound>& hi,
                                             uint64_t watermark);

  size_t num_entries() const;
  size_t num_runs() const;

 private:
  std::string column_name_;
  size_t column_index_;

  // Guards runs_ pointer swaps and reads. Publication is single-writer
  // (the ingest pipeline's writer lock serializes PublishRun callers);
  // this mutex only makes the pointer swap safe against readers.
  mutable Mutex mu_{LockRank::kIndexRuns};
  RunSetPtr runs_ GUARDED_BY(mu_);  // never null; runs are immutable
};

}  // namespace rfid

#endif  // RFID_STORAGE_INDEX_H_
