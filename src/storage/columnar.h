// Compressed columnar encodings for cold row-store segments.
//
// The segmented RowStore (row_store.h) appends rows in fixed 2048-row
// segments behind a published visibility watermark. Once a segment is
// *cold* — every row published, no in-place mutation since — its rows are
// immutable for the rest of the table's life (ingest only appends above
// the watermark; the in-place mutators below invalidate encodings). That
// makes a per-segment columnar encoding a pure cache over the row store:
// scans may read either representation and must observe identical values.
//
// Per column a segment stores one of four encodings, chosen by the
// encoder from the segment's value distribution:
//   kPlain   — tag/payload lanes, a direct columnar copy (any column).
//   kRle     — runs of bit-identical values; the fallback for long runs
//              of equal timestamps/locations and all-NULL columns.
//   kDict    — sorted distinct string dictionary + per-row codes; string
//              predicates become binary searches plus integer code
//              compares (dictionary-compare before decode).
//   kBitPack — base + w-bit deltas for the int64 family; bulk-unpacks
//              into a dense lane for the SIMD compare kernels.
// "Bit-identical" is literal: doubles are grouped/round-tripped by bit
// pattern, so -0.0 vs 0.0 and NaN payloads survive encode/decode.
//
// Each column also carries a zone map (min/max/null_count computed with
// Value::Compare semantics) used to skip whole segments ahead of morsel
// dispatch. Zone maps are marked non-prunable when Compare is not a
// total order over the segment's values (NaN doubles, mixed tags), so
// pruning never changes results.
//
// A ColumnarDirectory on each Table publishes encoded segments under a
// mutex (one lock per 2048 rows on the scan path); readers pin segments
// by shared_ptr so invalidation can never free memory under a scan.
#ifndef RFID_STORAGE_COLUMNAR_H_
#define RFID_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/value.h"
#include "storage/row_store.h"

namespace rfid {

class Database;

/// Whether tables encode cold segments and scans use them. Compiled out
/// by RFID_COLUMNAR=OFF; otherwise the RFID_COLUMNAR env var (0/off/
/// false disables) with a test override. SetColumnarForTest: -1 restores
/// the env default, 0 forces off, 1 on.
bool ColumnarEnabled();
void SetColumnarForTest(int mode);

enum class ColumnEncoding : uint8_t { kPlain = 0, kRle = 1, kDict = 2, kBitPack = 3 };
const char* ColumnEncodingName(ColumnEncoding e);

/// Direct columnar copy: a tag lane (DataType per row; kNull doubles as
/// the null marker, mirroring ColumnVector) plus payload lanes.
struct PlainColumn {
  std::vector<uint8_t> tags;
  std::vector<int64_t> data;
  std::vector<std::string> strs;  // sized only when a string is present
};

/// Run-length encoding over bit-identical values. ends[r] is the
/// exclusive row offset where run r stops; ends.back() == num_rows.
struct RleColumn {
  std::vector<uint8_t> tags;
  std::vector<int64_t> data;
  std::vector<std::string> strs;  // sized only when a string run exists
  std::vector<uint32_t> ends;
};

/// String dictionary: `dict` is sorted ascending (std::string order ==
/// Value::Compare order for strings) and distinct; codes[i] indexes it,
/// kNullCode marks NULL.
struct DictColumn {
  static constexpr uint32_t kNullCode = UINT32_MAX;
  std::vector<std::string> dict;
  std::vector<uint32_t> codes;
};

/// Bit-packed int64 family: value i = base + w-bit little-endian-bit
/// delta at bit offset i*w. NULL rows (bit set in `nulls`, empty when
/// none) pack delta 0. `tag` is the column's non-null DataType.
struct BitPackColumn {
  uint8_t tag = 0;
  uint8_t width = 0;  // 0..32; 0 means every non-null value equals base
  int64_t base = 0;
  std::vector<uint64_t> words;
  std::vector<uint64_t> nulls;
};

/// Per-column min/max for segment skipping. `prunable` is false when the
/// map must not be used (no non-null values, NaN doubles, mixed tags).
struct ZoneMap {
  Value min;
  Value max;
  uint32_t null_count = 0;
  bool prunable = false;
};

struct EncodedColumn {
  std::variant<PlainColumn, RleColumn, DictColumn, BitPackColumn> rep;

  ColumnEncoding encoding() const {
    return static_cast<ColumnEncoding>(rep.index());
  }
  const PlainColumn* plain() const { return std::get_if<PlainColumn>(&rep); }
  const RleColumn* rle() const { return std::get_if<RleColumn>(&rep); }
  const DictColumn* dict() const { return std::get_if<DictColumn>(&rep); }
  const BitPackColumn* bitpack() const {
    return std::get_if<BitPackColumn>(&rep);
  }
};

/// One encoded 2048-row (or shorter, for tests) segment: column
/// encodings plus zone maps, immutable once built.
struct EncodedSegment {
  uint64_t base_row = 0;
  uint32_t num_rows = 0;
  std::vector<EncodedColumn> columns;
  std::vector<ZoneMap> zones;
  uint64_t approx_bytes = 0;

  /// Distinct encodings present, e.g. "dict,rle" (enum order).
  std::string EncodingSummary() const;
};

using EncodedSegmentPtr = std::shared_ptr<const EncodedSegment>;

/// Unpacks the w-bit delta for row i of a bit-packed column.
inline int64_t BitPackValueAt(const BitPackColumn& c, size_t i) {
  if (c.width == 0) return c.base;
  const size_t bit = i * c.width;
  const uint64_t lo = c.words[bit >> 6] >> (bit & 63);
  uint64_t delta = lo;
  const unsigned used = 64 - static_cast<unsigned>(bit & 63);
  if (used < c.width) {
    delta |= c.words[(bit >> 6) + 1] << used;
  }
  delta &= (uint64_t{1} << c.width) - 1;
  return static_cast<int64_t>(static_cast<uint64_t>(c.base) + delta);
}

inline bool BitPackIsNull(const BitPackColumn& c, size_t i) {
  return !c.nulls.empty() && ((c.nulls[i >> 6] >> (i & 63)) & 1) != 0;
}

/// Random access into any encoding (RLE does a binary search over run
/// ends; the scan kernels iterate runs directly instead).
Value DecodeValueAt(const EncodedColumn& col, size_t i);

/// Appends the decoded row at segment offset i to *out (out is cleared).
void DecodeRowInto(const EncodedSegment& seg, size_t i, Row* out);

/// Encodes rows [base_row, base_row + num_rows) of the store; all rows
/// must be published (below an acquired watermark). Deterministic: the
/// same rows always produce the same encoding.
EncodedSegmentPtr EncodeSegment(const RowStore& store, uint64_t base_row,
                                uint32_t num_rows, size_t num_columns);

/// Serialized form (checkpoint sidecar payload): appends a
/// self-delimiting byte image of the segment to *out.
void AppendSegmentBytes(const EncodedSegment& seg, std::string* out);

/// Parses a segment written by AppendSegmentBytes starting at *offset;
/// advances *offset past it. Bounds-checked: corrupt input yields an
/// error, never UB.
Result<EncodedSegmentPtr> ParseSegmentBytes(std::string_view bytes,
                                            size_t* offset);

/// Per-table directory of encoded segments, indexed by segment number
/// (row id >> RowStore::kSegmentBits). Publication and lookup are
/// mutex-guarded; segments themselves are immutable and shared.
class ColumnarDirectory {
 public:
  EncodedSegmentPtr Get(size_t segment) const;
  void Install(size_t segment, EncodedSegmentPtr seg);
  /// Drops every encoded segment (in-place mutation of the row store).
  void InvalidateAll();

  size_t encoded_segments() const;
  uint64_t encoded_bytes() const;
  /// Dense snapshot for checkpointing (null entries elided by caller).
  std::vector<EncodedSegmentPtr> SnapshotAll() const;

 private:
  mutable Mutex mu_{LockRank::kColumnarDirectory};
  std::vector<EncodedSegmentPtr> segments_ GUARDED_BY(mu_);
};

/// Process-wide columnar activity counters (monotonic; for `.stats` and
/// EXPLAIN surfaces).
struct ColumnarCounters {
  uint64_t segments_encoded = 0;
  uint64_t segments_invalidated = 0;
  uint64_t segments_scanned = 0;   // encoded segments served to scans
  uint64_t segments_skipped = 0;   // zone-map skips ahead of scan work
};
ColumnarCounters GlobalColumnarCounters();
void AddColumnarEncoded(uint64_t n);
void AddColumnarInvalidated(uint64_t n);
void AddColumnarScanned(uint64_t n);
void AddColumnarSkipped(uint64_t n);

/// Checkpoint sidecar: saves every table's encoded segments to `path`
/// ("RFIDCOL1" image, trailing CRC32). Written inside the checkpoint tmp
/// directory, so atomicity rides on the directory rename.
Status SaveColumnarSidecar(const std::string& path, const Database& db);

/// Restores encoded segments from a sidecar into matching tables.
/// A missing file is not an error (pre-columnar checkpoints); a corrupt
/// file degrades to row-store scans rather than failing recovery.
Status LoadColumnarSidecar(const std::string& path, Database* db);

}  // namespace rfid

#endif  // RFID_STORAGE_COLUMNAR_H_
