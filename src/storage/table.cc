#include "storage/table.h"

#include <cassert>
#include <utility>

#include "common/fault.h"
#include "common/string_util.h"

namespace rfid {

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "row arity %zu does not match schema arity %zu for table %s",
        row.size(), schema_.num_columns(), name_.c_str()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(StrFormat(
          "type mismatch in column %s of table %s: expected %s got %s",
          schema_.column(i).name.c_str(), name_.c_str(),
          DataTypeName(schema_.column(i).type), DataTypeName(row[i].type())));
    }
  }
  return Status::OK();
}

Status Table::Append(Row row) {
  RFID_FAULT_POINT("storage.Append");
  RFID_RETURN_IF_ERROR(ValidateRow(row));
  RFID_RETURN_IF_ERROR(store_.PushBack(std::move(row)));
  store_.PublishVisible();
  MarkMutated();
  return Status::OK();
}

void Table::AppendUnchecked(Row row) {
  Status st = store_.PushBack(std::move(row));
  assert(st.ok() && "RowStore capacity exceeded");
  (void)st;
  store_.PublishVisible();
  MarkMutated();
}

Row& Table::mutable_row(size_t i) {
  MarkMutated();
  // In-place mutation breaks the "published rows are immutable"
  // invariant the columnar cache rests on; drop every encoding. (Appends
  // never invalidate: encoded segments cover only rows below the
  // watermark at encode time, which appends cannot touch.)
  columnar_.InvalidateAll();
  return store_.at(i);
}

Status Table::ReplaceRows(std::vector<Row> rows) {
  MarkMutated();
  columnar_.InvalidateAll();
  return store_.ReplaceAll(std::move(rows));
}

size_t Table::EncodeColdSegments() {
  if (!ColumnarEnabled()) return 0;
  const uint64_t visible = store_.visible();
  const size_t cold_segments = visible >> RowStore::kSegmentBits;
  size_t encoded = 0;
  for (size_t s = 0; s < cold_segments; ++s) {
    if (columnar_.Get(s) != nullptr) continue;
    columnar_.Install(
        s, EncodeSegment(store_, uint64_t{s} << RowStore::kSegmentBits,
                         RowStore::kSegmentRows, schema_.num_columns()));
    ++encoded;
  }
  if (encoded > 0) AddColumnarEncoded(encoded);
  return encoded;
}

Status Table::InstallEncodedSegment(EncodedSegmentPtr seg) {
  if (seg == nullptr) return Status::InvalidArgument("null encoded segment");
  if (seg->columns.size() != schema_.num_columns() ||
      seg->zones.size() != schema_.num_columns() ||
      seg->num_rows != RowStore::kSegmentRows ||
      (seg->base_row & (RowStore::kSegmentRows - 1)) != 0 ||
      seg->base_row + seg->num_rows > store_.visible()) {
    return Status::InvalidArgument(StrFormat(
        "encoded segment does not fit table %s", name_.c_str()));
  }
  const size_t segment = seg->base_row >> RowStore::kSegmentBits;
  columnar_.Install(segment, std::move(seg));
  return Status::OK();
}

Status Table::BuildIndex(std::string_view column_name) {
  RFID_FAULT_POINT("storage.BuildIndex");
  RFID_ASSIGN_OR_RETURN(size_t col, schema_.ResolveColumn(column_name));
  uint64_t epoch = mutation_epoch();
  for (auto& slot : indexes_) {
    if (slot->index->column_index() == col) {
      slot->index->Build(store_, store_.size());
      slot->built_epoch.store(epoch, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  auto slot = std::make_unique<IndexSlot>();
  slot->index = std::make_unique<SortedIndex>(schema_.column(col).name, col);
  slot->index->Build(store_, store_.size());
  slot->built_epoch.store(epoch, std::memory_order_relaxed);
  indexes_.push_back(std::move(slot));
  return Status::OK();
}

const SortedIndex* Table::GetIndex(std::string_view column_name) const {
  uint64_t epoch = mutation_epoch();
  for (const auto& slot : indexes_) {
    if (EqualsIgnoreCase(slot->index->column_name(), column_name)) {
      if (slot->built_epoch.load(std::memory_order_relaxed) != epoch) {
        return nullptr;  // stale: degrade to sequential scan
      }
      return slot->index.get();
    }
  }
  return nullptr;
}

std::vector<const SortedIndex*> Table::indexes() const {
  uint64_t epoch = mutation_epoch();
  std::vector<const SortedIndex*> out;
  out.reserve(indexes_.size());
  for (const auto& slot : indexes_) {
    if (slot->built_epoch.load(std::memory_order_relaxed) == epoch) {
      out.push_back(slot->index.get());
    }
  }
  return out;
}

std::vector<std::pair<const SortedIndex*, SortedIndex::RunSetPtr>>
Table::PinnedIndexes() const {
  uint64_t epoch = mutation_epoch();
  std::vector<std::pair<const SortedIndex*, SortedIndex::RunSetPtr>> out;
  out.reserve(indexes_.size());
  for (const auto& slot : indexes_) {
    if (slot->built_epoch.load(std::memory_order_relaxed) == epoch) {
      out.emplace_back(slot->index.get(), slot->index->Pin());
    }
  }
  return out;
}

void Table::ComputeStats() {
  uint64_t epoch = mutation_epoch();
  uint64_t num_rows = store_.size();
  auto stats = std::make_shared<std::vector<ColumnStats>>(
      schema_.num_columns(), ColumnStats{});
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    ColumnStats& st = (*stats)[c];
    for (uint64_t i = 0; i < num_rows; ++i) {
      st.Observe(store_.row(i)[c]);
    }
    st.RefreshNdv();
  }
  PublishStats(std::move(stats));
  stats_epoch_.store(epoch, std::memory_order_relaxed);
}

std::shared_ptr<const std::vector<ColumnStats>> Table::PinStats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

void Table::PublishStats(
    std::shared_ptr<const std::vector<ColumnStats>> stats) {
  {
    MutexLock lock(&stats_mu_);
    stats_ = std::move(stats);
  }
  stats_version_.fetch_add(1, std::memory_order_relaxed);
}

bool Table::has_stats() const {
  if (stats_epoch_.load(std::memory_order_relaxed) != mutation_epoch()) {
    return false;  // stale statistics must not inform estimates
  }
  return PinStats() != nullptr;
}

const ColumnStats& Table::stats(size_t column) const {
  assert(stats_epoch_.load(std::memory_order_relaxed) == mutation_epoch() &&
         "stats() on stale statistics; call ComputeStats() after mutating");
  auto pinned = PinStats();
  assert(pinned != nullptr && "stats() before ComputeStats()");
  // The table keeps the vector alive: stats_ only ever swaps to a newer
  // vector, and single-threaded callers (the contract of this accessor)
  // observe no swap while holding the reference.
  return (*pinned)[column];
}

StatsView Table::CurrentStatsView() const {
  StatsView view;
  view.schema = &schema_;
  view.row_count = static_cast<double>(visible_rows());
  if (stats_epoch_.load(std::memory_order_relaxed) == mutation_epoch()) {
    view.stats = PinStats();
  }
  return view;
}

bool Table::structures_stale() const {
  uint64_t epoch = mutation_epoch();
  for (const auto& slot : indexes_) {
    if (slot->built_epoch.load(std::memory_order_relaxed) != epoch) return true;
  }
  if (PinStats() != nullptr &&
      stats_epoch_.load(std::memory_order_relaxed) != epoch) {
    return true;
  }
  return false;
}

Result<uint64_t> Table::IngestBatch(std::vector<Row> batch,
                                    size_t index_compact_threshold) {
  RFID_FAULT_POINT("ingest.Batch");
  for (const Row& row : batch) {
    RFID_RETURN_IF_ERROR(ValidateRow(row));
  }

  const uint64_t first = store_.size();
  const uint64_t count = batch.size();

  // Stage 1: append rows above the watermark. Invisible to readers until
  // the publish below, so any failure rolls back with TruncateTo.
  auto rollback = [this, first] { store_.TruncateTo(first); };
  for (Row& row : batch) {
    if (FaultInjectionActive()) {
      Status st = PokeFault("ingest.AppendRow");
      if (!st.ok()) {
        rollback();
        return st;
      }
    }
    Status st = store_.PushBack(std::move(row));
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  // Stage 2: stage one sorted run per *fresh* index and the merged
  // statistics — still nothing published, so failures only need the row
  // rollback. An index that was already stale stays stale: a batch run
  // covers only the new rows, not whatever mutation it missed.
  const uint64_t pre_epoch = mutation_epoch();
  std::vector<std::pair<IndexSlot*, SortedIndex::RunPtr>> staged_runs;
  staged_runs.reserve(indexes_.size());
  for (auto& slot : indexes_) {
    if (slot->built_epoch.load(std::memory_order_relaxed) != pre_epoch) {
      continue;
    }
    if (FaultInjectionActive()) {
      Status st = PokeFault("ingest.IndexRun");
      if (!st.ok()) {
        rollback();
        return st;
      }
    }
    staged_runs.emplace_back(slot.get(),
                             slot->index->MakeRun(store_, first, count));
  }

  std::shared_ptr<std::vector<ColumnStats>> merged;
  auto base = PinStats();
  bool stats_fresh =
      base != nullptr &&
      stats_epoch_.load(std::memory_order_relaxed) == pre_epoch;
  if (stats_fresh) {
    if (FaultInjectionActive()) {
      Status st = PokeFault("ingest.StatsMerge");
      if (!st.ok()) {
        rollback();
        return st;
      }
    }
    merged = std::make_shared<std::vector<ColumnStats>>(*base);
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      ColumnStats& st = (*merged)[c];
      for (uint64_t i = first; i < first + count; ++i) {
        st.Observe(store_.row(i)[c]);
      }
      st.RefreshNdv();
    }
  }

  // Stage 3: publish. Past this fault point the batch is committed; the
  // index/stats/watermark publications below are infallible.
  if (FaultInjectionActive()) {
    Status st = PokeFault("ingest.Publish");
    if (!st.ok()) {
      rollback();
      return st;
    }
  }

  uint64_t epoch = mutation_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  for (auto& [slot, run] : staged_runs) {
    slot->index->PublishRun(std::move(run), index_compact_threshold);
    slot->built_epoch.store(epoch, std::memory_order_relaxed);
  }
  if (stats_fresh) {
    PublishStats(std::move(merged));
    stats_epoch_.store(epoch, std::memory_order_relaxed);
  }
  store_.PublishVisible();
  return first;
}

}  // namespace rfid
