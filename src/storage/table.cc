#include "storage/table.h"

#include <unordered_set>

#include "common/fault.h"
#include "common/string_util.h"

namespace rfid {

Status Table::Append(Row row) {
  RFID_FAULT_POINT("storage.Append");
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(StrFormat(
        "row arity %zu does not match schema arity %zu for table %s",
        row.size(), schema_.num_columns(), name_.c_str()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    if (row[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument(StrFormat(
          "type mismatch in column %s of table %s: expected %s got %s",
          schema_.column(i).name.c_str(), name_.c_str(),
          DataTypeName(schema_.column(i).type), DataTypeName(row[i].type())));
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::BuildIndex(std::string_view column_name) {
  RFID_FAULT_POINT("storage.BuildIndex");
  RFID_ASSIGN_OR_RETURN(size_t col, schema_.ResolveColumn(column_name));
  for (auto& idx : indexes_) {
    if (idx->column_index() == col) {
      idx->Build(rows_);
      return Status::OK();
    }
  }
  auto idx = std::make_unique<SortedIndex>(schema_.column(col).name, col);
  idx->Build(rows_);
  indexes_.push_back(std::move(idx));
  return Status::OK();
}

const SortedIndex* Table::GetIndex(std::string_view column_name) const {
  for (const auto& idx : indexes_) {
    if (EqualsIgnoreCase(idx->column_name(), column_name)) return idx.get();
  }
  return nullptr;
}

void Table::ComputeStats() {
  stats_.assign(schema_.num_columns(), ColumnStats{});
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    ColumnStats& st = stats_[c];
    st.row_count = rows_.size();
    std::unordered_set<Value, ValueHash> distinct;
    for (const Row& r : rows_) {
      const Value& v = r[c];
      if (v.is_null()) {
        ++st.null_count;
        continue;
      }
      if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
      if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
      distinct.insert(v);
    }
    st.ndv = distinct.size();
  }
}

}  // namespace rfid
