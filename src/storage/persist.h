// Database persistence: saves/loads every table to a directory as a
// manifest plus one tab-separated file per table. Used to cache generated
// benchmark databases and by the rfidsql shell's .save/.load commands.
//
// Format, version 1:
//   <dir>/MANIFEST        "rfiddb 1" then one table name per line
//   <dir>/<table>.tsv     line 1: col:TYPE\t...; then one row per line.
// Values are tab-separated; NULL is "\N"; strings are escaped (\t, \n,
// \\, and \N). Timestamps/intervals are raw microsecond integers.
#ifndef RFID_STORAGE_PERSIST_H_
#define RFID_STORAGE_PERSIST_H_

#include <string>

#include "storage/catalog.h"

namespace rfid {

/// Writes every table of the database into `dir` (created if needed).
Status SaveDatabase(const Database& db, const std::string& dir);

/// Loads all tables from `dir` into `db` (tables must not already exist
/// unless `skip_existing`, in which case clashing tables are left
/// untouched). Indexes and statistics are NOT rebuilt; call the
/// appropriate Build/ComputeStats afterwards (or
/// rfidgen::FinalizeDatabase for RFID data).
Status LoadDatabase(const std::string& dir, Database* db,
                    bool skip_existing = false);

}  // namespace rfid

#endif  // RFID_STORAGE_PERSIST_H_
