// Database persistence: saves/loads every table to a directory as a
// manifest plus one tab-separated file per table. Used to cache generated
// benchmark databases, by the rfidsql shell's .save/.load commands, and
// as the checkpoint image format of the durability subsystem (src/wal).
//
// Format, version 1:
//   <dir>/MANIFEST        "rfiddb 1" then one table name per line
//   <dir>/<table>.tsv     line 1: col:TYPE\t...; then one row per line.
// Values are tab-separated; NULL is "\N"; strings are escaped (\t, \n,
// \\, and \N). Timestamps/intervals are raw microsecond integers;
// doubles use %.17g so the round trip is bit-exact.
//
// Crash safety: every file is written to a ".tmp" sibling, fsync()ed,
// and atomically renamed into place, with the manifest renamed last — a
// crash mid-Save never clobbers a previous dump, and readers only ever
// see a directory whose manifest matches complete table files. Partial
// writes and fsync failures surface as structured Status (never silent
// truncation).
#ifndef RFID_STORAGE_PERSIST_H_
#define RFID_STORAGE_PERSIST_H_

#include <string>

#include "storage/catalog.h"

namespace rfid {

/// Writes every table of the database into `dir` (created if needed).
/// Atomic per file: on any error the previous contents of `dir` remain
/// loadable (at worst stray ".tmp" files are left behind).
Status SaveDatabase(const Database& db, const std::string& dir);

/// Loads all tables from `dir` into `db` (tables must not already exist
/// unless `skip_existing`, in which case clashing tables are left
/// untouched). Indexes and statistics are NOT rebuilt; call the
/// appropriate Build/ComputeStats afterwards (or
/// rfidgen::FinalizeDatabase for RFID data).
Status LoadDatabase(const std::string& dir, Database* db,
                    bool skip_existing = false);

/// One row as a persistence-format TSV line (no trailing newline). The
/// WAL logs rows in exactly this encoding, so log replay and dump
/// loading share one codec.
std::string SerializeRowTsv(const Row& row);

/// Parses a persistence-format TSV line against `schema` (arity and
/// types checked).
Result<Row> ParseRowTsv(const std::string& line, const Schema& schema);

}  // namespace rfid

#endif  // RFID_STORAGE_PERSIST_H_
