// Epoch snapshots: an immutable, consistent view of the database for
// query execution while an ingest writer appends.
//
// A TableSnapshot pins three things per table:
//  - watermark: the row count visible to this snapshot. Captured with an
//    acquire load *before* anything else, so every pinned structure is
//    at least as new as the watermark.
//  - pinned index run sets: immutable runs that cover at least
//    [0, watermark); entries at or above the watermark are filtered at
//    scan time (SortedIndex::RangeScanRuns), so a run set that raced
//    ahead of the watermark still yields exactly the snapshot's rows.
//  - pinned statistics + stats version: the estimates the planner costs
//    this query against, recorded so EXPLAIN output and benchmarks can
//    attribute a plan to the stats generation that produced it.
//
// Snapshots are plain immutable data published via shared_ptr; queries
// hold one for their whole lifetime (planning through execution) and a
// query planned against epoch k never sees rows from epoch k+1.
#ifndef RFID_STORAGE_SNAPSHOT_H_
#define RFID_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/index.h"
#include "storage/stats.h"
#include "storage/table.h"

namespace rfid {

struct TableSnapshot {
  const Table* table = nullptr;
  uint64_t watermark = 0;

  /// Pinned run set per fresh index, parallel to `indexes`.
  std::vector<const SortedIndex*> indexes;
  std::vector<SortedIndex::RunSetPtr> runs;

  /// Pinned statistics (null when absent or stale at capture time) and
  /// the version counter they were published under.
  std::shared_ptr<const std::vector<ColumnStats>> stats;
  uint64_t stats_version = 0;

  /// Pinned run set for the index on `column_name`, or nullptr. The
  /// returned index must be scanned via RangeScanRuns with this
  /// snapshot's watermark, never via its live RangeScan.
  const SortedIndex* FindIndex(std::string_view column_name) const;
  SortedIndex::RunSetPtr RunsFor(const SortedIndex* index) const;

  /// Estimation view over the pinned statistics.
  StatsView stats_view() const;
};

/// A consistent view over every table captured at one epoch.
struct Snapshot {
  /// Monotonic capture counter (diagnostic; epoch k+1 > k).
  uint64_t epoch = 0;
  std::map<const Table*, TableSnapshot> tables;

  const TableSnapshot* ForTable(const Table* table) const;
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

/// Captures one table. Safe concurrently with an IngestBatch writer on
/// the same table (watermark first, structures after).
TableSnapshot CaptureTableSnapshot(const Table& table);

/// Captures every table in the database. `epoch` is caller-assigned
/// (the IngestPipeline uses its batch counter; ad-hoc callers pass 0).
SnapshotPtr CaptureDatabaseSnapshot(const Database& db, uint64_t epoch = 0);

}  // namespace rfid

#endif  // RFID_STORAGE_SNAPSHOT_H_
