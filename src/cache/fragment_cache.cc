#include "cache/fragment_cache.h"

#include <algorithm>

#include "common/string_util.h"
#include "exec/exec_context.h"

namespace rfid::cache {

namespace {

uint64_t HashMix(uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a
  }
  h ^= '\x1f';
  h *= 1099511628211ULL;
  return h;
}

bool ValueLess(const Value& a, const Value& b) { return a.Compare(b) < 0; }

}  // namespace

size_t RegionScheme::RegionOf(const Value& v) const {
  if (boundaries.empty()) return 0;
  if (v.is_null() || !TypesComparable(v.type(), boundaries.front().type())) {
    return 0;
  }
  // Region r covers [b[r-1], b[r]); the region index is the number of
  // boundaries <= v. lower_bound counts boundaries < v; +1 when v sits
  // exactly on a boundary (it belongs to the region starting there).
  auto le = std::lower_bound(boundaries.begin(), boundaries.end(), v, ValueLess);
  return static_cast<size_t>(le - boundaries.begin()) +
         ((le != boundaries.end() && le->Compare(v) == 0) ? 1 : 0);
}

std::string RegionScheme::RegionPredicateSql(size_t region) const {
  if (boundaries.empty()) return "";
  const std::string col = ckey;
  if (region == 0) {
    return col + " IS NULL OR " + col + " < " + boundaries[0].ToSqlLiteral();
  }
  if (region == boundaries.size()) {
    return col + " >= " + boundaries[region - 1].ToSqlLiteral();
  }
  return col + " >= " + boundaries[region - 1].ToSqlLiteral() + " AND " + col +
         " < " + boundaries[region].ToSqlLiteral();
}

std::string RegionScheme::RegionLabel(size_t region) const {
  if (boundaries.empty()) return "[*)";
  if (region == 0) return "[null.." + boundaries[0].ToString() + ")";
  if (region == boundaries.size()) {
    return "[" + boundaries[region - 1].ToString() + "..)";
  }
  return "[" + boundaries[region - 1].ToString() + ".." +
         boundaries[region].ToString() + ")";
}

bool FragmentKey::operator<(const FragmentKey& other) const {
  if (table != other.table) return table < other.table;
  if (rule_fingerprint != other.rule_fingerprint) {
    return rule_fingerprint < other.rule_fingerprint;
  }
  if (scheme_fingerprint != other.scheme_fingerprint) {
    return scheme_fingerprint < other.scheme_fingerprint;
  }
  return region < other.region;
}

RegionSchemePtr FragmentCache::SchemeFor(const Table& table,
                                         std::string_view ckey,
                                         uint64_t watermark) {
  MutexLock lock(&mu_);
  if (!options_.enabled) return nullptr;
  const std::string table_lower = ToLower(table.name());
  const std::string ckey_lower = ToLower(ckey);
  TableState* state = StateFor(table_lower);
  if (state->scheme != nullptr) {
    return state->scheme->ckey == ckey_lower ? state->scheme : nullptr;
  }

  int slot = table.schema().FindColumn(ckey_lower);
  if (slot < 0) return nullptr;

  auto scheme = std::make_shared<RegionScheme>();
  scheme->table = table_lower;
  scheme->ckey = ckey_lower;
  scheme->ckey_slot = static_cast<size_t>(slot);

  // Stride-sample the visible ckey values and take quantile boundaries.
  size_t target =
      options_.target_region_rows == 0 ? 1 : options_.target_region_rows;
  size_t want_regions = static_cast<size_t>(watermark) / target;
  want_regions = std::max<size_t>(1, std::min(want_regions, options_.max_regions));
  if (want_regions > 1) {
    constexpr size_t kMaxSample = 4096;
    size_t stride = std::max<uint64_t>(1, watermark / kMaxSample);
    std::vector<Value> sample;
    sample.reserve(kMaxSample + 1);
    for (uint64_t i = 0; i < watermark; i += stride) {
      const Row& row = table.row(static_cast<size_t>(i));
      const Value& v = row[scheme->ckey_slot];
      if (v.is_null()) continue;
      if (!sample.empty() && !TypesComparable(v.type(), sample.front().type())) {
        sample.clear();  // mixed types: give up on partitioning
        break;
      }
      sample.push_back(v);
    }
    if (sample.size() >= want_regions) {
      std::sort(sample.begin(), sample.end(), ValueLess);
      for (size_t r = 1; r < want_regions; ++r) {
        const Value& b = sample[r * sample.size() / want_regions];
        if (!scheme->boundaries.empty() &&
            scheme->boundaries.back().Compare(b) >= 0) {
          continue;  // dedup: boundaries must be strictly ascending
        }
        scheme->boundaries.push_back(b);
      }
    }
  }

  uint64_t fp = 1469598103934665603ULL;
  fp = HashMix(fp, scheme->table);
  fp = HashMix(fp, scheme->ckey);
  for (const Value& b : scheme->boundaries) fp = HashMix(fp, b.ToString());
  scheme->fingerprint = fp;

  state->scheme = scheme;
  state->known_watermark = std::max(state->known_watermark, watermark);
  // Every region's content is only known "as of" the first-seen
  // watermark: the arrival history of the rows already in the table is
  // unknown, so a query pinned below it must not be served fragments
  // built above it (and vice versa). Seeding touched with the watermark
  // makes both directions fail the validity check.
  state->touched.assign(scheme->num_regions(), watermark);
  return scheme;
}

FragmentRowsPtr FragmentCache::Lookup(const FragmentKey& key,
                                      uint64_t query_watermark) {
  MutexLock lock(&mu_);
  if (!options_.enabled) return nullptr;
  TableState* state = StateFor(key.table);
  if (query_watermark > state->known_watermark) {
    AbsorbUnknownAdvance(key.table, state, query_watermark);
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  uint64_t touched = (state->scheme != nullptr &&
                      key.scheme_fingerprint == state->scheme->fingerprint &&
                      key.region < state->touched.size())
                         ? state->touched[key.region]
                         : UINT64_MAX;  // superseded scheme: always stale
  if (touched > it->second.built_watermark || touched > query_watermark) {
    DropEntry(it, /*eviction=*/false);
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  ++stats_.hits;
  return it->second.rows;
}

void FragmentCache::Insert(const FragmentKey& key, uint64_t built_watermark,
                           std::vector<Row> rows) {
  MutexLock lock(&mu_);
  if (!options_.enabled) return;
  TableState* state = StateFor(key.table);
  if (state->scheme == nullptr ||
      key.scheme_fingerprint != state->scheme->fingerprint ||
      key.region >= state->touched.size()) {
    return;
  }
  if (built_watermark > state->known_watermark) {
    AbsorbUnknownAdvance(key.table, state, built_watermark);
  }
  if (state->touched[key.region] > built_watermark) return;  // stale build

  auto it = entries_.find(key);
  if (it != entries_.end()) DropEntry(it, /*eviction=*/false);

  size_t bytes = sizeof(Entry) + sizeof(FragmentKey);
  for (const Row& row : rows) {
    bytes += static_cast<size_t>(ApproxRowBytes(row));
  }
  if (bytes > options_.capacity_bytes) return;  // never fits; skip

  Entry entry;
  entry.rows = std::make_shared<const std::vector<Row>>(std::move(rows));
  entry.built_watermark = built_watermark;
  entry.bytes = bytes;
  lru_.push_front(key);
  entry.lru = lru_.begin();
  entries_.emplace(key, std::move(entry));
  resident_bytes_ += bytes;
  ++stats_.inserts;
  EvictToCapacity();
}

void FragmentCache::OnIngest(const Table& table, const std::vector<Row>& rows,
                             uint64_t new_watermark) {
  MutexLock lock(&mu_);
  if (!options_.enabled) return;
  const std::string table_lower = ToLower(table.name());
  auto state_it = tables_.find(table_lower);
  if (state_it == tables_.end()) return;  // nothing cached, nothing to do
  TableState* state = &state_it->second;
  state->known_watermark = std::max(state->known_watermark, new_watermark);
  if (state->scheme == nullptr) return;
  const RegionScheme& scheme = *state->scheme;
  for (const Row& row : rows) {
    if (scheme.ckey_slot >= row.size()) {
      AbsorbUnknownAdvance(table_lower, state, new_watermark);
      return;
    }
    size_t r = scheme.RegionOf(row[scheme.ckey_slot]);
    state->touched[r] = std::max(state->touched[r], new_watermark);
  }
  // Eagerly drop entries these touches invalidated so resident bytes
  // track reality (the lazy check in Lookup would catch them too).
  auto it = entries_.lower_bound(FragmentKey{table_lower, 0, 0, 0});
  while (it != entries_.end() && it->first.table == table_lower) {
    auto next = std::next(it);
    uint64_t touched = (it->first.scheme_fingerprint == scheme.fingerprint &&
                        it->first.region < state->touched.size())
                           ? state->touched[it->first.region]
                           : UINT64_MAX;
    if (touched > it->second.built_watermark) DropEntry(it, /*eviction=*/false);
    it = next;
  }
}

void FragmentCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  lru_.clear();
  tables_.clear();
  resident_bytes_ = 0;
}

void FragmentCache::set_enabled(bool enabled) {
  MutexLock lock(&mu_);
  options_.enabled = enabled;
  if (!enabled) {
    entries_.clear();
    lru_.clear();
    tables_.clear();
    resident_bytes_ = 0;
  }
}

bool FragmentCache::enabled() const {
  MutexLock lock(&mu_);
  return options_.enabled;
}

void FragmentCache::set_capacity_bytes(size_t bytes) {
  MutexLock lock(&mu_);
  options_.capacity_bytes = bytes;
  EvictToCapacity();
}

size_t FragmentCache::capacity_bytes() const {
  MutexLock lock(&mu_);
  return options_.capacity_bytes;
}

FragmentCache::Stats FragmentCache::stats() const {
  MutexLock lock(&mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  s.resident_bytes = resident_bytes_;
  return s;
}

FragmentCacheOptions FragmentCache::options() const {
  MutexLock lock(&mu_);
  return options_;
}

FragmentCache::TableState* FragmentCache::StateFor(
    const std::string& table_lower) {
  return &tables_[table_lower];
}

void FragmentCache::AbsorbUnknownAdvance(const std::string& table_lower,
                                         TableState* state,
                                         uint64_t watermark) {
  state->known_watermark = watermark;
  for (uint64_t& t : state->touched) t = std::max(t, watermark);
  DropTableEntries(table_lower);
}

void FragmentCache::DropEntry(std::map<FragmentKey, Entry>::iterator it,
                              bool eviction) {
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  entries_.erase(it);
  if (eviction) {
    ++stats_.evictions;
  } else {
    ++stats_.invalidations;
  }
}

void FragmentCache::DropTableEntries(const std::string& table_lower) {
  auto it = entries_.lower_bound(FragmentKey{table_lower, 0, 0, 0});
  while (it != entries_.end() && it->first.table == table_lower) {
    auto next = std::next(it);
    DropEntry(it, /*eviction=*/false);
    it = next;
  }
}

void FragmentCache::EvictToCapacity() {
  while (resident_bytes_ > options_.capacity_bytes && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    DropEntry(it, /*eviction=*/true);
  }
}

}  // namespace rfid::cache
