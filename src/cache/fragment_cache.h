// Cleansed-fragment cache: memoized results of applying a rule set to a
// region of the read store, shared across queries and sessions.
//
// Deferred cleansing re-derives the same window chains over the same raw
// reads on every query (BENCH_eager_vs_deferred.json: 16-26 ms of rewrite
// plus the full cleansing sort per q1). This cache makes deferred
// cleansing *incremental*: the read table is partitioned into regions —
// contiguous cluster-key value ranges, so every compiled rule window
// (which partitions by the rule's ckey) distributes over them — and the
// cleansed rows of each region are memoized keyed by
//
//   (table, rule-set fingerprint, region-scheme fingerprint, region id).
//
// The rule-set fingerprint hashes the *content* of the rules that apply
// to the table, so per-session catalogs (SQL server) share fragments
// whenever their definitions match, regardless of unrelated rules.
//
// Invalidation is watermark-based. The ingest pipeline notifies the cache
// of every batch before the rows become visible; the cache records, per
// region, the highest watermark at which the region's content changed
// (`touched`). An entry built at watermark Wb answers a query pinned at
// watermark Wq iff touched[region] <= min(Wb, Wq): the region's rows
// below both watermarks are then identical (the store is append-only
// between Clear() calls), so epoch k+1 invalidates only touched regions.
// A watermark the cache was never notified about (direct appends without
// a pipeline) is absorbed conservatively: every region is marked touched
// at that watermark and the table's entries are dropped.
//
// Memory is bounded (LRU by resident bytes, ApproxRowBytes accounting)
// and observable; the SQL server carves the capacity out of its global
// admission pool. Thread-safe throughout: one mutex, taken by query
// threads (Lookup/Insert) and by the ingest writer (OnIngest) — the
// writer already holds the pipeline lock, and the cache never calls out
// while holding its own, so the order pipeline -> cache is acyclic.
#ifndef RFID_CACHE_FRAGMENT_CACHE_H_
#define RFID_CACHE_FRAGMENT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "storage/table.h"

namespace rfid::cache {

/// Partition of a table's rows into contiguous cluster-key value ranges.
/// Region 0 additionally absorbs NULL cluster keys (they sort first in
/// every cleansing chain's output order). Immutable once built.
struct RegionScheme {
  std::string table;  // lower-cased
  std::string ckey;   // lower-cased column name
  size_t ckey_slot = 0;
  /// Ascending, non-null, distinct boundary values; region r covers
  /// [boundaries[r-1], boundaries[r]) with the first region open below
  /// and the last open above. Empty = a single region.
  std::vector<Value> boundaries;
  uint64_t fingerprint = 0;

  size_t num_regions() const { return boundaries.size() + 1; }
  /// Region of a cluster-key value (NULL and non-comparable values -> 0).
  size_t RegionOf(const Value& v) const;
  /// SQL predicate selecting exactly this region's rows, over the
  /// unqualified ckey column (for the restricted-input WITH clause).
  std::string RegionPredicateSql(size_t region) const;
  /// Human-readable range, for verbose EXPLAIN output.
  std::string RegionLabel(size_t region) const;
};

using RegionSchemePtr = std::shared_ptr<const RegionScheme>;
using FragmentRowsPtr = std::shared_ptr<const std::vector<Row>>;

struct FragmentKey {
  std::string table;  // lower-cased
  uint64_t rule_fingerprint = 0;
  uint64_t scheme_fingerprint = 0;
  size_t region = 0;

  bool operator<(const FragmentKey& other) const;
};

struct FragmentCacheOptions {
  size_t capacity_bytes = 64ULL << 20;
  /// Region sizing: aim for ~this many rows per region, capped at
  /// max_regions regions per table.
  size_t target_region_rows = 4096;
  size_t max_regions = 64;
  bool enabled = true;
};

class FragmentCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;  // entries dropped as stale
    uint64_t evictions = 0;      // entries dropped for capacity
    uint64_t inserts = 0;
    size_t entries = 0;
    size_t resident_bytes = 0;
  };

  explicit FragmentCache(FragmentCacheOptions options = {})
      : options_(options) {}

  /// Returns (building it on first use) the region scheme for the table.
  /// `watermark` bounds the rows sampled for boundaries and seeds the
  /// table's known watermark. One scheme per table: a request with a
  /// different ckey than the existing scheme's returns nullptr (callers
  /// fall back to uncached cleansing). Nullptr while disabled.
  RegionSchemePtr SchemeFor(const Table& table, std::string_view ckey,
                            uint64_t watermark);

  /// Returns the cached fragment when it is valid for a query pinned at
  /// `query_watermark`, else nullptr. Stale entries are dropped (counted
  /// as invalidations); a disabled cache always misses and records
  /// nothing.
  FragmentRowsPtr Lookup(const FragmentKey& key, uint64_t query_watermark);

  /// Inserts a fragment built from the rows below `built_watermark`.
  /// Rejected (dropped silently) when the region was touched past the
  /// build watermark or the scheme has been superseded. No-op while
  /// disabled.
  void Insert(const FragmentKey& key, uint64_t built_watermark,
              std::vector<Row> rows);

  /// Ingest notification: `rows` are about to become visible, advancing
  /// the table's watermark to `new_watermark`. Marks their regions
  /// touched and eagerly drops entries those touches invalidate. Called
  /// by the ingest writer *before* the rows are published, so no reader
  /// can observe new rows with un-bumped touch marks.
  void OnIngest(const Table& table, const std::vector<Row>& rows,
                uint64_t new_watermark);

  /// Drops everything: entries, schemes, watermark state. For bulk
  /// loads / recovery, which break the append-only assumption.
  void Clear();

  void set_enabled(bool enabled);
  bool enabled() const;
  void set_capacity_bytes(size_t bytes);
  size_t capacity_bytes() const;

  Stats stats() const;
  /// Snapshot by value: options_ (enabled, capacity) mutates under mu_,
  /// so handing out a reference would let callers read it unlocked.
  FragmentCacheOptions options() const;

 private:
  using LruList = std::list<FragmentKey>;
  struct Entry {
    FragmentRowsPtr rows;
    uint64_t built_watermark = 0;
    size_t bytes = 0;
    LruList::iterator lru;
  };
  struct TableState {
    RegionSchemePtr scheme;
    uint64_t known_watermark = 0;
    /// Per region: highest watermark at which its content changed.
    std::vector<uint64_t> touched;
  };

  TableState* StateFor(const std::string& table_lower) REQUIRES(mu_);
  void AbsorbUnknownAdvance(const std::string& table_lower, TableState* state,
                            uint64_t watermark) REQUIRES(mu_);
  void DropEntry(std::map<FragmentKey, Entry>::iterator it, bool eviction)
      REQUIRES(mu_);
  void DropTableEntries(const std::string& table_lower) REQUIRES(mu_);
  void EvictToCapacity() REQUIRES(mu_);

  mutable Mutex mu_{LockRank::kFragmentCache};
  FragmentCacheOptions options_ GUARDED_BY(mu_);  // enabled/capacity mutate
  std::map<std::string, TableState> tables_ GUARDED_BY(mu_);
  std::map<FragmentKey, Entry> entries_ GUARDED_BY(mu_);
  LruList lru_ GUARDED_BY(mu_);  // front = most recently used
  size_t resident_bytes_ GUARDED_BY(mu_) = 0;
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace rfid::cache

#endif  // RFID_CACHE_FRAGMENT_CACHE_H_
