#include "ingest/ingest.h"

#include <algorithm>
#include <chrono>

#include "cache/fragment_cache.h"
#include "common/fault.h"

namespace rfid::ingest {

IngestPipeline::IngestPipeline(Database* db, ExecContext* accounting,
                               size_t index_compact_threshold,
                               wal::WalManager* wal)
    : db_(db),
      accounting_(accounting),
      compact_threshold_(index_compact_threshold),
      wal_(wal) {
  MutexLock lock(&mu_);
  snapshot_ = CaptureDatabaseSnapshot(*db_, epoch_);
}

Status IngestPipeline::Apply(std::vector<TableBatch> batches) {
  MutexLock lock(&mu_);

  uint64_t charged = 0;
  auto release = [this, &charged] {
    if (charged > 0) accounting_->ReleaseMemory(charged);
    charged = 0;
  };
  auto fail = [this, &release](Status st) {
    release();
    ++stats_.batches_failed;
    return st;
  };

  if (accounting_ != nullptr) {
    uint64_t bytes = 0;
    for (const TableBatch& tb : batches) {
      for (const Row& row : tb.rows) bytes += ApproxRowBytes(row);
    }
    Status st = accounting_->ChargeMemory(bytes);
    if (!st.ok()) return fail(std::move(st));
    charged = bytes;
  }

  if (FaultInjectionActive()) {
    Status st = PokeFault("ingest.Apply");
    if (!st.ok()) return fail(std::move(st));
  }

  // Log before publish: every batch of the epoch reaches the WAL before
  // any row becomes visible through a snapshot. The epoch is not durable
  // yet — that takes the COMMIT record below.
  bool logging = wal_ != nullptr;
  if (logging) {
    for (const TableBatch& tb : batches) {
      if (tb.rows.empty()) continue;
      Status st = wal_->LogBatch(tb.table, tb.rows);
      if (!st.ok()) {
        wal_->LogAbort();
        return fail(std::move(st));
      }
    }
  }

  uint64_t rows_applied = 0;
  std::vector<Table*> touched;
  for (TableBatch& tb : batches) {
    if (tb.rows.empty()) continue;
    Result<Table*> table = db_->ResolveTable(tb.table);
    if (!table.ok()) {
      if (logging) wal_->LogAbort();
      return fail(table.status());
    }
    size_t n = tb.rows.size();
    // Invalidate cached cleansed fragments before the rows become
    // visible: no reader can then observe the new rows while the cache
    // still serves entries built without them. A batch that fails below
    // only over-invalidates, which is conservative and safe.
    if (fragment_cache_ != nullptr) {
      fragment_cache_->OnIngest(**table, tb.rows,
                                (*table)->visible_rows() + n);
    }
    Result<uint64_t> first =
        (*table)->IngestBatch(std::move(tb.rows), compact_threshold_);
    if (!first.ok()) {
      if (logging) wal_->LogAbort();
      return fail(first.status());
    }
    rows_applied += n;
    if (std::find(touched.begin(), touched.end(), *table) == touched.end()) {
      touched.push_back(*table);
    }
  }

  // Durability point: the COMMIT record seals the epoch in the log
  // (fsync per policy). A crash before it discards the epoch on replay.
  if (logging) {
    Status st = wal_->LogCommit();
    if (!st.ok()) return fail(std::move(st));
  }

  // Segments the batch filled past the watermark are now immutable
  // (cold): build their columnar encodings once, under the writer lock,
  // so every future scan gets the encoded kernels. Infallible and
  // unlogged — encodings are a cache rebuilt on demand after recovery.
  for (Table* t : touched) t->EncodeColdSegments();

  // Commit point: all table batches landed; publish the epoch snapshot.
  ++epoch_;
  snapshot_ = CaptureDatabaseSnapshot(*db_, epoch_);
  ++stats_.epochs_published;
  stats_.rows_ingested += rows_applied;
  release();
  return Status::OK();
}

Status IngestPipeline::Checkpoint(uint64_t* durable_epoch) {
  MutexLock lock(&mu_);
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "checkpoint requires a WAL-backed pipeline");
  }
  Status st = wal_->Checkpoint();
  if (st.ok() && durable_epoch != nullptr) {
    *durable_epoch = wal_->durable_epoch();
  }
  return st;
}

SnapshotPtr IngestPipeline::snapshot() const {
  MutexLock lock(&mu_);
  return snapshot_;
}

PipelineStats IngestPipeline::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

uint64_t IngestPipeline::epoch() const {
  MutexLock lock(&mu_);
  return epoch_;
}

uint64_t IngestPipeline::stats_version() const {
  SnapshotPtr snap = snapshot();
  uint64_t version = 0;
  for (const auto& [table, ts] : snap->tables) {
    version = std::max(version, ts.stats_version);
  }
  return version;
}

IngestDriver::IngestDriver(IngestPipeline* pipeline, BatchSource source,
                           Options options)
    : pipeline_(pipeline), source_(std::move(source)), options_(options) {}

IngestDriver::~IngestDriver() {
  RequestStop();
  if (thread_.joinable()) thread_.join();
}

void IngestDriver::Start() {
  if (thread_.joinable()) return;  // already started
  stop_.store(false, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void IngestDriver::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
}

Status IngestDriver::Join() {
  if (thread_.joinable()) thread_.join();
  MutexLock lock(&status_mu_);
  return status_;
}

void IngestDriver::Run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (options_.max_batches > 0 &&
        batches_applied_.load(std::memory_order_relaxed) >=
            options_.max_batches) {
      break;
    }
    std::vector<TableBatch> group = source_();
    bool empty = true;
    for (const TableBatch& tb : group) {
      if (!tb.rows.empty()) empty = false;
    }
    if (empty) break;  // source exhausted
    Status st = pipeline_->Apply(std::move(group));
    if (!st.ok()) {
      {
        MutexLock lock(&status_mu_);
        if (status_.ok()) status_ = st;
      }
      if (options_.stop_on_error) break;
    } else {
      batches_applied_.fetch_add(1, std::memory_order_relaxed);
    }
    if (options_.pause_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(options_.pause_micros));
    }
  }
  running_.store(false, std::memory_order_release);
}

}  // namespace rfid::ingest
