// Micro-batch ingest subsystem with epoch-based snapshot isolation.
//
// IngestPipeline is the single writer of a database under load: each
// Apply() call takes one epoch's worth of rows (grouped by destination
// table), appends them under the writer lock while maintaining every
// index and the statistics incrementally (sorted-run insert; sketch
// merge — never a full rebuild), and then atomically publishes a new
// Snapshot: per-table row watermarks plus pinned index runs and a stats
// version. Queries pin the current snapshot into their ExecContext and
// are isolated for their whole lifetime — a query planned against epoch
// k never sees rows from epoch k+1, no matter how many batches land
// while it runs.
//
// Failure semantics (exercised by the fault-injection sweep): a failed
// Apply() publishes nothing — no snapshot, no watermark advance on the
// failing table, no charged bytes left behind. Tables earlier in the
// same Apply() group keep their (individually atomic) batches; they
// become visible with the next successful epoch.
//
// Durability (optional): constructed with a wal::WalManager the pipeline
// logs before it publishes — every table batch is appended to the WAL,
// the in-memory apply runs, and the epoch's COMMIT record seals it
// (fsync per the manager's policy) before the snapshot is published. An
// Apply() that returns OK is therefore durable to the configured policy;
// an Apply() that fails is a crash-equivalent event for the log (its
// epoch has no COMMIT and is discarded on replay — reopen the directory
// to resynchronize disk and memory, or Checkpoint() to re-anchor the
// current in-memory state).
//
// IngestDriver wraps a pipeline and a batch source in a background
// thread: the load half of the query-during-load experiments.
#ifndef RFID_INGEST_INGEST_H_
#define RFID_INGEST_INGEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "exec/exec_context.h"
#include "storage/catalog.h"
#include "storage/snapshot.h"
#include "wal/wal_manager.h"

namespace rfid::cache {
class FragmentCache;
}  // namespace rfid::cache

namespace rfid::ingest {

/// Rows destined for one table within an epoch's batch group.
struct TableBatch {
  std::string table;
  std::vector<Row> rows;
};

struct PipelineStats {
  uint64_t epochs_published = 0;
  uint64_t rows_ingested = 0;
  uint64_t batches_failed = 0;
};

class IngestPipeline {
 public:
  /// `accounting` (optional) charges each in-flight batch's approximate
  /// bytes against that context's memory budget while it is being
  /// applied — a budget trip rejects the batch like any other failure.
  /// `index_compact_threshold` bounds index run counts (see
  /// SortedIndex::PublishRun). `wal` (optional) makes every published
  /// epoch durable (log-before-publish; see the header comment).
  explicit IngestPipeline(Database* db, ExecContext* accounting = nullptr,
                          size_t index_compact_threshold = 8,
                          wal::WalManager* wal = nullptr);

  /// Applies one epoch's batches and publishes the next snapshot.
  /// Thread-safe: concurrent callers serialize on the writer lock.
  Status Apply(std::vector<TableBatch> batches);

  /// Writes a durability checkpoint at the current epoch (requires a
  /// WAL). Takes the writer lock, so the image is a consistent epoch
  /// boundary even while an IngestDriver is feeding. On success
  /// *durable_epoch (optional) receives the checkpointed epoch — read
  /// under the writer lock, since the WAL's own accessor is only safe
  /// under the pipeline's serialization.
  Status Checkpoint(uint64_t* durable_epoch = nullptr);

  /// The most recently published snapshot (never null; epoch 0 is
  /// captured at construction). Queries bind this to their ExecContext.
  SnapshotPtr snapshot() const;

  PipelineStats stats() const;
  uint64_t epoch() const;

  /// Statistics version of the most recently published snapshot: the
  /// maximum per-table stats version it pinned. Plan caches key on this —
  /// a bump means the planner's cost inputs moved, so cached rewrite
  /// choices derived from the old statistics must be re-costed.
  uint64_t stats_version() const;

  /// Wires the cleansed-fragment cache for watermark invalidation: every
  /// Apply() notifies it of the touched regions *before* the rows become
  /// visible (see cache/fragment_cache.h). Takes the writer lock so the
  /// swap cannot tear against a concurrent Apply().
  void set_fragment_cache(cache::FragmentCache* cache) {
    MutexLock lock(&mu_);
    fragment_cache_ = cache;
  }

 private:
  Database* db_;
  ExecContext* accounting_;
  size_t compact_threshold_;
  wal::WalManager* wal_;  // externally synchronized: only touched under mu_

  /// The writer lock: serializes Apply()/Checkpoint() and guards the
  /// published snapshot, stats, and the fragment-cache wiring.
  mutable Mutex mu_{LockRank::kIngestPipeline};
  cache::FragmentCache* fragment_cache_ GUARDED_BY(mu_) = nullptr;
  SnapshotPtr snapshot_ GUARDED_BY(mu_);
  PipelineStats stats_ GUARDED_BY(mu_);
  uint64_t epoch_ GUARDED_BY(mu_) = 0;
};

/// Pulls batch groups from `source` and applies them on a background
/// thread until the source is exhausted (returns an empty group), the
/// batch limit is reached, or RequestStop(). Join() returns the first
/// Apply() error; by default the driver stops on it.
class IngestDriver {
 public:
  using BatchSource = std::function<std::vector<TableBatch>()>;

  struct Options {
    uint64_t max_batches = 0;      // 0 = until the source is exhausted
    int64_t pause_micros = 0;      // sleep between batches (pacing)
    bool stop_on_error = true;
  };

  IngestDriver(IngestPipeline* pipeline, BatchSource source, Options options);
  IngestDriver(IngestPipeline* pipeline, BatchSource source)
      : IngestDriver(pipeline, std::move(source), Options()) {}
  ~IngestDriver();

  IngestDriver(const IngestDriver&) = delete;
  IngestDriver& operator=(const IngestDriver&) = delete;

  void Start();
  void RequestStop();

  /// Waits for the thread to finish; returns the first error seen.
  Status Join();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint64_t batches_applied() const {
    return batches_applied_.load(std::memory_order_relaxed);
  }

 private:
  void Run();

  IngestPipeline* pipeline_;
  BatchSource source_;
  Options options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> batches_applied_{0};

  Mutex status_mu_{LockRank::kIngestDriverStatus};
  Status status_ GUARDED_BY(status_mu_);
};

}  // namespace rfid::ingest

#endif  // RFID_INGEST_INGEST_H_
