// Anomaly injection (Section 6.1): adds the five anomaly types of
// Section 4.3 to clean case reads by *reversing* the cleansing-rule
// actions — where a rule deletes a read, inject a false read meeting the
// rule's condition; where a rule compensates a missing read, remove one.
// Anomalies are distributed evenly among the enabled types.
#ifndef RFID_RFIDGEN_ANOMALY_H_
#define RFID_RFIDGEN_ANOMALY_H_

#include "rfidgen/rfidgen.h"

namespace rfid::rfidgen {

struct AnomalyOptions {
  /// Fraction of clean case reads to turn into anomalies (paper: 0.1-0.4).
  double dirty_fraction = 0.1;
  uint64_t seed = 7;

  // Rule parameters (defaults match the experiments: t1=5, t2=10, t3=20).
  int64_t t1_micros = 5LL * 60 * 1000000;
  int64_t t2_micros = 10LL * 60 * 1000000;
  int64_t t3_micros = 20LL * 60 * 1000000;

  bool duplicates = true;
  bool reader = true;
  bool replacing = true;
  bool cycles = true;
  bool missing = true;

  /// Re-index and recompute statistics afterwards.
  bool finalize = true;
};

struct AnomalyStats {
  int64_t duplicates = 0;
  int64_t reader = 0;
  int64_t replacing = 0;  // pairs injected (one modified-away read each)
  int64_t cycles = 0;     // injected cycle reads (two per cycle)
  int64_t missing = 0;    // case reads removed
  int64_t total() const {
    return duplicates + reader + replacing + cycles + missing;
  }
};

/// Injects anomalies into db->caseR (pallet reads stay reliable, as in
/// the paper). The database must have been produced by Generate().
Result<AnomalyStats> InjectAnomalies(const AnomalyOptions& options, Database* db);

}  // namespace rfid::rfidgen

#endif  // RFID_RFIDGEN_ANOMALY_H_
