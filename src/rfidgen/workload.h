// The benchmark workload of Section 6: the five cleansing rules of
// Section 4.3 with the experiment parameters (t1=5, t2=10, t3=20 minutes)
// and the analytic queries of Figure 6 (q1 "dwell", q2 "site analysis",
// and the q2' variant whose predicate is uncorrelated with EPCs).
#ifndef RFID_RFIDGEN_WORKLOAD_H_
#define RFID_RFIDGEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "storage/catalog.h"

namespace rfid::workload {

/// Rule definitions in the order of Table 1: reader, duplicate, replacing,
/// cycle, missing (the missing rule contributes its two sub-rules). Pass a
/// prefix count to enable only the first k rules (k in 1..5).
std::vector<std::string> StandardRuleDefinitions(int num_rules = 5);

/// Names the rule groups in Table 1 order.
std::vector<std::string> StandardRuleNames();

/// q1 — dwell analysis: average time between consecutive locations, for
/// reads with rtime <= t1.
std::string Q1(int64_t t1_micros);

/// q2 — site analysis: per-manufacturer distinct business-step types and
/// readers at one distribution center, for reads with rtime >= t2.
std::string Q2(int64_t t2_micros, const std::string& site = "dc2");

/// q2' — q2 with the site predicate replaced by a business-step type
/// predicate (uncorrelated with EPC sequences; Figure 8).
std::string Q2Prime(int64_t t2_micros, int64_t step_type = 3);

/// Timestamps hitting a target selectivity of the rtime predicate against
/// caseR's [min, max] rtime range (fraction in (0, 1]).
int64_t T1ForSelectivity(const Database& db, double fraction);  // rtime <= T1
int64_t T2ForSelectivity(const Database& db, double fraction);  // rtime >= T2

}  // namespace rfid::workload

#endif  // RFID_RFIDGEN_WORKLOAD_H_
