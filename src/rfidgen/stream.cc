#include "rfidgen/stream.h"

#include <algorithm>

#include "common/random.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "rfidgen/rfidgen.h"

namespace rfid::rfidgen {

namespace {

// Ensures the RFIDGen tables exist; creates them (dimensions populated,
// read tables empty) when the database is fresh.
Status EnsureTables(Database* db, const StreamOptions& opt) {
  if (db->GetTable("caseR") != nullptr) {
    for (const char* name :
         {"palletR", "parent", "epc_info", "locs", "product", "steps"}) {
      if (db->GetTable(name) == nullptr) {
        return Status::InvalidArgument(
            std::string("partial RFIDGen schema: missing table ") + name);
      }
    }
    return Status::OK();
  }
  GeneratorOptions gen;
  gen.num_pallets = 0;  // dimensions only; reads arrive via the stream
  gen.seed = opt.seed;
  gen.num_stores = opt.num_stores;
  gen.num_warehouses = opt.num_warehouses;
  gen.num_dcs = opt.num_dcs;
  gen.locations_per_site = opt.locations_per_site;
  gen.num_products = opt.num_products;
  gen.num_steps = opt.num_steps;
  gen.finalize = true;  // empty-table indexes/stats; ingest maintains them
  Result<GeneratedStats> generated = Generate(gen, db);
  if (!generated.ok()) return generated.status();
  return Status::OK();
}

// Site layout read back from the locs table, so the stream draws GLNs
// that actually exist whether the tables were just created or populated
// by an earlier, larger Generate() run.
struct Layout {
  std::vector<std::vector<std::string>> glns;  // per site, any order
};

Result<Layout> LoadLayout(const Database& db) {
  const Table* locs = db.GetTable("locs");
  if (locs == nullptr) return Status::NotFound("locs table missing");
  Layout layout;
  std::string last_site;
  for (size_t i = 0; i < locs->num_rows(); ++i) {
    const Row& row = locs->row(i);
    const std::string& gln = row[0].string_value();
    const std::string& site = row[1].string_value();
    if (gln.rfind("GLN-CROSS", 0) == 0) continue;  // replacing-rule docks
    if (layout.glns.empty() || site != last_site) {
      layout.glns.emplace_back();
      last_site = site;
    }
    layout.glns.back().push_back(gln);
  }
  if (layout.glns.size() < 3) {
    return Status::InvalidArgument("locs table has fewer than 3 sites");
  }
  return layout;
}

}  // namespace

Result<std::unique_ptr<ReadStream>> ReadStream::Create(
    Database* db, const StreamOptions& opt) {
  RFID_RETURN_IF_ERROR(EnsureTables(db, opt));
  auto stream = std::unique_ptr<ReadStream>(new ReadStream());
  RFID_RETURN_IF_ERROR(stream->Build(db, opt));
  return stream;
}

Status ReadStream::Build(Database* db, const StreamOptions& opt) {
  RFID_ASSIGN_OR_RETURN(Layout layout, LoadLayout(*db));
  Random rng(opt.seed ^ 0x5741524d53545245ULL);  // distinct from Generate()

  const size_t num_sites = layout.glns.size();
  stats_.t_begin = INT64_MAX;
  stats_.t_end = INT64_MIN;
  int64_t case_counter = 0;

  for (int64_t p = 0; p < opt.num_pallets; ++p) {
    // Streamed EPCs carry their own prefixes: never collide with the
    // urn:epc:cas/pal values of a bulk Generate() into the same tables.
    std::string pallet_epc =
        StrFormat("urn:epc:spl:%010lld", static_cast<long long>(p));

    // A 3-site route through whatever sites the catalog has.
    size_t site_idx[3];
    site_idx[0] = rng.Uniform(num_sites);
    do {
      site_idx[1] = rng.Uniform(num_sites);
    } while (site_idx[1] == site_idx[0]);
    do {
      site_idx[2] = rng.Uniform(num_sites);
    } while (site_idx[2] == site_idx[0] || site_idx[2] == site_idx[1]);

    struct ReadStub {
      int64_t rtime;
      std::string reader;
      std::string gln;
    };
    std::vector<ReadStub> pallet_reads;
    int64_t t = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(opt.time_window_micros)));
    for (int s = 0; s < 3; ++s) {
      const auto& glns = layout.glns[site_idx[s]];
      for (int k = 0; k < opt.reads_per_site; ++k) {
        ReadStub stub;
        stub.rtime = t;
        stub.gln = glns[rng.Uniform(glns.size())];
        // No back-and-forth in clean data (cycle rule's [X Y X]).
        while (!pallet_reads.empty() &&
               (stub.gln == pallet_reads.back().gln ||
                (pallet_reads.size() >= 2 &&
                 stub.gln == pallet_reads[pallet_reads.size() - 2].gln))) {
          stub.gln = glns[rng.Uniform(glns.size())];
        }
        stub.reader = (k == 0) ? "readerX" : "RDR-" + stub.gln;
        pallet_reads.push_back(std::move(stub));
        t += rng.UniformRange(opt.min_latency_micros, opt.max_latency_micros);
      }
    }
    for (const ReadStub& r : pallet_reads) {
      events_.push_back(
          {r.rtime, Dest::kPallet,
           {Value::String(pallet_epc), Value::Timestamp(r.rtime),
            Value::String(r.reader), Value::String(r.gln),
            Value::Int64(static_cast<int64_t>(
                rng.Uniform(static_cast<uint64_t>(opt.num_steps))))}});
      ++stats_.pallet_reads;
    }

    int num_cases = static_cast<int>(
        rng.UniformRange(opt.min_cases_per_pallet, opt.max_cases_per_pallet));
    for (int c = 0; c < num_cases; ++c) {
      std::string case_epc =
          StrFormat("urn:epc:scs:%012lld", static_cast<long long>(case_counter++));
      int64_t first_rtime = pallet_reads.front().rtime;
      events_.push_back({first_rtime, Dest::kParent,
                         {Value::String(case_epc), Value::String(pallet_epc)}});
      int64_t manu = first_rtime - Days(30);
      events_.push_back(
          {first_rtime, Dest::kInfo,
           {Value::String(case_epc),
            Value::Int64(static_cast<int64_t>(rng.Uniform(100000))),
            Value::Timestamp(manu), Value::Timestamp(manu + Days(730)),
            Value::Int64(static_cast<int64_t>(
                rng.Uniform(static_cast<uint64_t>(opt.num_products))))}});

      for (const ReadStub& r : pallet_reads) {
        if (rng.Bernoulli(opt.missing_prob)) {
          ++stats_.missing;
          continue;
        }
        int64_t rtime =
            r.rtime + rng.UniformRange(1, opt.case_pallet_gap_micros - 1);
        auto emit = [&](int64_t at, const std::string& reader,
                        const std::string& gln) {
          events_.push_back(
              {at, Dest::kCase,
               {Value::String(case_epc), Value::Timestamp(at),
                Value::String(reader), Value::String(gln),
                Value::Int64(static_cast<int64_t>(
                    rng.Uniform(static_cast<uint64_t>(opt.num_steps))))}});
          stats_.t_begin = std::min(stats_.t_begin, at);
          stats_.t_end = std::max(stats_.t_end, at);
          ++stats_.case_reads;
        };
        emit(rtime, r.reader, r.gln);
        if (rng.Bernoulli(opt.duplicate_prob)) {
          // A neighboring reader catches the same tag seconds later.
          emit(rtime + rng.UniformRange(1, Minutes(2)), "RDR-DUP-" + r.gln,
               r.gln);
          ++stats_.duplicates;
        }
        if (rng.Bernoulli(opt.reader_prob)) {
          // The forklift's positioning reader sees the case again within
          // the reader rule's window.
          emit(rtime + rng.UniformRange(1, Minutes(5)), "readerX", r.gln);
          ++stats_.reader_rereads;
        }
      }
      ++stats_.cases;
    }
  }

  if (stats_.t_begin == INT64_MAX) {
    stats_.t_begin = 0;
    stats_.t_end = 0;
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const Event& a, const Event& b) {
                     return a.rtime < b.rtime;
                   });
  return Status::OK();
}

StreamBatch ReadStream::NextBatch(size_t max_rows) {
  StreamBatch batch;
  size_t end = std::min(events_.size(), pos_ + max_rows);
  for (; pos_ < end; ++pos_) {
    Event& e = events_[pos_];
    switch (e.dest) {
      case Dest::kCase:
        batch.case_rows.push_back(std::move(e.row));
        break;
      case Dest::kPallet:
        batch.pallet_rows.push_back(std::move(e.row));
        break;
      case Dest::kParent:
        batch.parent_rows.push_back(std::move(e.row));
        break;
      case Dest::kInfo:
        batch.info_rows.push_back(std::move(e.row));
        break;
    }
  }
  return batch;
}

}  // namespace rfid::rfidgen
