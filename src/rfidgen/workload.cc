#include "rfidgen/workload.h"

#include <cassert>

#include "common/string_util.h"
#include "rfidgen/rfidgen.h"

namespace rfid::workload {

std::vector<std::string> StandardRuleDefinitions(int num_rules) {
  assert(num_rules >= 1 && num_rules <= 5);
  std::vector<std::string> defs;
  // 1. reader (t2 = 10 minutes)
  defs.push_back(
      "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime "
      "AS (A, *B) "
      "WHERE B.reader = 'readerX' AND B.rtime - A.rtime < 10 MINUTES "
      "ACTION DELETE A");
  if (num_rules >= 2) {
    // 2. duplicate (t1 = 5 minutes)
    defs.push_back(
        "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime "
        "AS (A, B) "
        "WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 MINUTES "
        "ACTION DELETE B");
  }
  if (num_rules >= 3) {
    // 3. replacing (t3 = 20 minutes), on the generator's cross-read dock.
    defs.push_back(StrFormat(
        "DEFINE replacing ON caseR CLUSTER BY epc SEQUENCE BY rtime "
        "AS (A, B) "
        "WHERE A.biz_loc = '%s' AND B.biz_loc = '%s' AND "
        "B.rtime - A.rtime < 20 MINUTES "
        "ACTION MODIFY A.biz_loc = '%s'",
        rfidgen::kLoc2, rfidgen::kLocA, rfidgen::kLoc1));
  }
  if (num_rules >= 4) {
    // 4. cycle
    defs.push_back(
        "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime "
        "AS (A, B, C) "
        "WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc "
        "ACTION DELETE B");
  }
  if (num_rules >= 5) {
    // 5. missing (two sub-rules over the derived caseR ∪ pallet input).
    defs.push_back(
        "DEFINE missing_r1 ON caseR "
        "FROM (select epc, rtime, reader, biz_loc, biz_step, 0 as is_pallet "
        "      from caseR "
        "      union all "
        "      select parent.child_epc as epc, palletR.rtime, palletR.reader, "
        "             palletR.biz_loc, palletR.biz_step, 1 as is_pallet "
        "      from palletR, parent "
        "      where palletR.epc = parent.parent_epc) "
        "CLUSTER BY epc SEQUENCE BY rtime "
        "AS (X, A, Y) "
        "WHERE A.is_pallet = 1 AND "
        "((X.is_pallet = 0 AND A.biz_loc = X.biz_loc AND "
        "  A.rtime - X.rtime < 5 MINUTES) OR "
        " (Y.is_pallet = 0 AND A.biz_loc = Y.biz_loc AND "
        "  Y.rtime - A.rtime < 5 MINUTES)) "
        "ACTION MODIFY A.has_case_nearby = 1");
    defs.push_back(
        "DEFINE missing_r2 ON caseR CLUSTER BY epc SEQUENCE BY rtime "
        "AS (A, *B) "
        "WHERE A.is_pallet = 0 OR "
        "(A.has_case_nearby = 0 AND B.has_case_nearby = 1) "
        "ACTION KEEP A");
  }
  return defs;
}

std::vector<std::string> StandardRuleNames() {
  return {"reader", "duplicate", "replacing", "cycle", "missing"};
}

std::string Q1(int64_t t1_micros) {
  return StrFormat(
      "WITH v1 AS ("
      "SELECT biz_loc AS current_loc, rtime, "
      "MAX(rtime) OVER (PARTITION BY epc ORDER BY rtime "
      "ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS prev_time, "
      "MAX(biz_loc) OVER (PARTITION BY epc ORDER BY rtime "
      "ROWS BETWEEN 1 PRECEDING AND 1 PRECEDING) AS prev_loc "
      "FROM caseR WHERE rtime <= TIMESTAMP %lld) "
      "SELECT l1.loc_desc, l2.loc_desc, AVG(rtime - prev_time) "
      "FROM v1, locs l1, locs l2 "
      "WHERE v1.prev_loc = l1.gln AND v1.current_loc = l2.gln "
      "GROUP BY l1.loc_desc, l2.loc_desc",
      static_cast<long long>(t1_micros));
}

std::string Q2(int64_t t2_micros, const std::string& site) {
  return StrFormat(
      "SELECT p.manufacturer, COUNT(DISTINCT s.type), "
      "COUNT(DISTINCT c.reader) "
      "FROM caseR c, steps s, locs l, epc_info i, product p "
      "WHERE c.biz_step = s.biz_step AND c.biz_loc = l.gln "
      "AND c.epc = i.epc AND i.product = p.product "
      "AND c.rtime >= TIMESTAMP %lld AND l.site = '%s' "
      "GROUP BY p.manufacturer",
      static_cast<long long>(t2_micros), site.c_str());
}

std::string Q2Prime(int64_t t2_micros, int64_t step_type) {
  return StrFormat(
      "SELECT p.manufacturer, COUNT(DISTINCT l.site), "
      "COUNT(DISTINCT c.reader) "
      "FROM caseR c, steps s, locs l, epc_info i, product p "
      "WHERE c.biz_step = s.biz_step AND c.biz_loc = l.gln "
      "AND c.epc = i.epc AND i.product = p.product "
      "AND c.rtime >= TIMESTAMP %lld AND s.type = %lld "
      "GROUP BY p.manufacturer",
      static_cast<long long>(t2_micros), static_cast<long long>(step_type));
}

namespace {
void RtimeRange(const Database& db, int64_t* lo, int64_t* hi) {
  const Table* case_r = db.GetTable("caseR");
  assert(case_r != nullptr && case_r->has_stats());
  int col = case_r->schema().FindColumn("rtime");
  const ColumnStats& st = case_r->stats(static_cast<size_t>(col));
  *lo = st.min.timestamp_value();
  *hi = st.max.timestamp_value();
}
}  // namespace

int64_t T1ForSelectivity(const Database& db, double fraction) {
  int64_t lo;
  int64_t hi;
  RtimeRange(db, &lo, &hi);
  return lo + static_cast<int64_t>(fraction * static_cast<double>(hi - lo));
}

int64_t T2ForSelectivity(const Database& db, double fraction) {
  int64_t lo;
  int64_t hi;
  RtimeRange(db, &lo, &hi);
  return hi - static_cast<int64_t>(fraction * static_cast<double>(hi - lo));
}

}  // namespace rfid::workload
