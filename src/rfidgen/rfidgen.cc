#include "rfidgen/rfidgen.h"

#include <algorithm>
#include <climits>

#include "common/random.h"
#include "common/string_util.h"
#include "common/time_util.h"

namespace rfid::rfidgen {

namespace {

Schema ReadsSchema() {
  Schema s;
  s.AddColumn("epc", DataType::kString);
  s.AddColumn("rtime", DataType::kTimestamp);
  s.AddColumn("reader", DataType::kString);
  s.AddColumn("biz_loc", DataType::kString);
  s.AddColumn("biz_step", DataType::kInt64);
  return s;
}

std::string Gln(const std::string& site, int loc) {
  // 13-character Global Location Number lookalike.
  return StrFormat("G%s-%04d", site.c_str(), loc);
}

struct SiteLayout {
  std::vector<std::string> sites;           // "dc0".."store999"
  std::vector<std::vector<std::string>> glns;  // per site
};

}  // namespace

Result<GeneratedStats> Generate(const GeneratorOptions& opt, Database* db) {
  Random rng(opt.seed);
  GeneratedStats stats;

  // --- dimension tables ---
  Schema locs_schema;
  locs_schema.AddColumn("gln", DataType::kString);
  locs_schema.AddColumn("site", DataType::kString);
  locs_schema.AddColumn("loc_desc", DataType::kString);
  RFID_ASSIGN_OR_RETURN(Table * locs, db->CreateTable("locs", locs_schema));

  SiteLayout layout;
  auto add_site = [&](const std::string& site) -> Status {
    layout.sites.push_back(site);
    layout.glns.emplace_back();
    for (int l = 0; l < opt.locations_per_site; ++l) {
      std::string gln = Gln(site, l);
      RFID_RETURN_IF_ERROR(locs->Append(
          {Value::String(gln), Value::String(site),
           Value::String(StrFormat("%s location %d", site.c_str(), l))}));
      layout.glns.back().push_back(std::move(gln));
    }
    return Status::OK();
  };
  for (int i = 0; i < opt.num_dcs; ++i) {
    RFID_RETURN_IF_ERROR(add_site(StrFormat("dc%d", i)));
  }
  for (int i = 0; i < opt.num_warehouses; ++i) {
    RFID_RETURN_IF_ERROR(add_site(StrFormat("wh%d", i)));
  }
  for (int i = 0; i < opt.num_stores; ++i) {
    RFID_RETURN_IF_ERROR(add_site(StrFormat("store%d", i)));
  }
  // Special cross-read locations for the replacing-rule scenario.
  for (const char* gln : {kLoc1, kLoc2, kLocA}) {
    RFID_RETURN_IF_ERROR(locs->Append({Value::String(gln),
                                       Value::String("dc0"),
                                       Value::String("cross-read dock")}));
  }
  stats.locations = static_cast<int64_t>(locs->num_rows());

  Schema product_schema;
  product_schema.AddColumn("product", DataType::kInt64);
  product_schema.AddColumn("manufacturer", DataType::kString);
  RFID_ASSIGN_OR_RETURN(Table * product, db->CreateTable("product", product_schema));
  for (int p = 0; p < opt.num_products; ++p) {
    RFID_RETURN_IF_ERROR(product->Append(
        {Value::Int64(p),
         Value::String(StrFormat("mfg%02d",
                                 static_cast<int>(rng.Uniform(
                                     static_cast<uint64_t>(opt.num_manufacturers)))))}));
  }

  Schema steps_schema;
  steps_schema.AddColumn("biz_step", DataType::kInt64);
  steps_schema.AddColumn("type", DataType::kInt64);
  RFID_ASSIGN_OR_RETURN(Table * steps, db->CreateTable("steps", steps_schema));
  for (int s = 0; s < opt.num_steps; ++s) {
    // Evenly classified into types (s.type deliberately uncorrelated with
    // EPCs; biz_step assignment below is uniform per read).
    RFID_RETURN_IF_ERROR(steps->Append(
        {Value::Int64(s), Value::Int64(s % opt.num_step_types)}));
  }

  Schema parent_schema;
  parent_schema.AddColumn("child_epc", DataType::kString);
  parent_schema.AddColumn("parent_epc", DataType::kString);
  RFID_ASSIGN_OR_RETURN(Table * parent, db->CreateTable("parent", parent_schema));

  Schema info_schema;
  info_schema.AddColumn("epc", DataType::kString);
  info_schema.AddColumn("lot", DataType::kInt64);
  info_schema.AddColumn("manu_date", DataType::kTimestamp);
  info_schema.AddColumn("exp_date", DataType::kTimestamp);
  info_schema.AddColumn("product", DataType::kInt64);
  RFID_ASSIGN_OR_RETURN(Table * info, db->CreateTable("epc_info", info_schema));

  RFID_ASSIGN_OR_RETURN(Table * case_r, db->CreateTable("caseR", ReadsSchema()));
  RFID_ASSIGN_OR_RETURN(Table * pallet_r, db->CreateTable("palletR", ReadsSchema()));

  // --- shipments ---
  int64_t case_counter = 0;
  stats.t_begin = INT64_MAX;
  stats.t_end = INT64_MIN;
  for (int64_t p = 0; p < opt.num_pallets; ++p) {
    std::string pallet_epc = StrFormat("urn:epc:pal:%010lld",
                                       static_cast<long long>(p));
    // Route: store determines warehouse determines DC.
    int store = static_cast<int>(rng.Uniform(static_cast<uint64_t>(opt.num_stores)));
    int wh = store % opt.num_warehouses;
    int dc = wh % opt.num_dcs;
    int site_idx[3] = {dc, opt.num_dcs + wh, opt.num_dcs + opt.num_warehouses + store};

    // Pallet read times/places across the 3 sites.
    struct ReadStub {
      int64_t rtime;
      std::string reader;
      std::string gln;
      int64_t step;
    };
    std::vector<ReadStub> pallet_reads;
    int64_t t = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(opt.time_window_micros)));
    for (int s = 0; s < 3; ++s) {
      const auto& glns = layout.glns[static_cast<size_t>(site_idx[s])];
      for (int k = 0; k < opt.reads_per_site; ++k) {
        ReadStub stub;
        stub.rtime = t;
        stub.gln = glns[rng.Uniform(glns.size())];
        // Clean data must contain no back-and-forth patterns (the cycle
        // rule's [X Y X]); re-draw until the location differs from the
        // previous two reads' locations.
        while (!pallet_reads.empty() &&
               (stub.gln == pallet_reads.back().gln ||
                (pallet_reads.size() >= 2 &&
                 stub.gln == pallet_reads[pallet_reads.size() - 2].gln))) {
          stub.gln = glns[rng.Uniform(glns.size())];
        }
        // The forklift positioning read opens every site visit.
        stub.reader = (k == 0) ? "readerX" : "RDR-" + stub.gln;
        stub.step = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(opt.num_steps)));
        pallet_reads.push_back(std::move(stub));
        t += rng.UniformRange(opt.min_latency_micros, opt.max_latency_micros);
      }
    }
    for (const ReadStub& r : pallet_reads) {
      pallet_r->AppendUnchecked({Value::String(pallet_epc),
                                 Value::Timestamp(r.rtime),
                                 Value::String(r.reader), Value::String(r.gln),
                                 Value::Int64(r.step)});
    }
    stats.pallet_reads += static_cast<int64_t>(pallet_reads.size());
    ++stats.pallets;

    // Cases travel with the pallet; each pallet read has a matching case
    // read by the same reader within case_pallet_gap.
    int num_cases = static_cast<int>(
        rng.UniformRange(opt.min_cases_per_pallet, opt.max_cases_per_pallet));
    for (int c = 0; c < num_cases; ++c) {
      std::string case_epc = StrFormat("urn:epc:cas:%012lld",
                                       static_cast<long long>(case_counter++));
      parent->AppendUnchecked({Value::String(case_epc), Value::String(pallet_epc)});
      int64_t prod = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(opt.num_products)));
      int64_t manu = pallet_reads.front().rtime - Days(30);
      info->AppendUnchecked({Value::String(case_epc),
                             Value::Int64(static_cast<int64_t>(rng.Uniform(100000))),
                             Value::Timestamp(manu),
                             Value::Timestamp(manu + Days(730)),
                             Value::Int64(prod)});
      for (const ReadStub& r : pallet_reads) {
        int64_t rtime =
            r.rtime + rng.UniformRange(1, opt.case_pallet_gap_micros - 1);
        case_r->AppendUnchecked({Value::String(case_epc), Value::Timestamp(rtime),
                                 Value::String(r.reader), Value::String(r.gln),
                                 Value::Int64(static_cast<int64_t>(rng.Uniform(
                                     static_cast<uint64_t>(opt.num_steps))))});
        stats.t_begin = std::min(stats.t_begin, rtime);
        stats.t_end = std::max(stats.t_end, rtime);
        ++stats.case_reads;
      }
      ++stats.cases;
    }
  }
  stats.cases = case_counter;

  if (opt.finalize) {
    RFID_RETURN_IF_ERROR(FinalizeDatabase(db));
  }
  return stats;
}

Status FinalizeDatabase(Database* db) {
  for (const char* name : {"caseR", "palletR"}) {
    RFID_ASSIGN_OR_RETURN(Table * t, db->ResolveTable(name));
    RFID_RETURN_IF_ERROR(t->BuildIndex("rtime"));
    RFID_RETURN_IF_ERROR(t->BuildIndex("epc"));
    t->ComputeStats();
    t->EncodeColdSegments();  // bulk load is done: every segment is cold
  }
  RFID_ASSIGN_OR_RETURN(Table * parent, db->ResolveTable("parent"));
  RFID_RETURN_IF_ERROR(parent->BuildIndex("child_epc"));
  parent->ComputeStats();
  parent->EncodeColdSegments();
  for (const char* name : {"locs", "product", "steps", "epc_info"}) {
    Table* t = db->GetTable(name);
    if (t != nullptr) {
      t->ComputeStats();
      t->EncodeColdSegments();
    }
  }
  RFID_ASSIGN_OR_RETURN(Table * locs, db->ResolveTable("locs"));
  RFID_RETURN_IF_ERROR(locs->BuildIndex("gln"));
  RFID_ASSIGN_OR_RETURN(Table * info, db->ResolveTable("epc_info"));
  RFID_RETURN_IF_ERROR(info->BuildIndex("epc"));
  return Status::OK();
}

}  // namespace rfid::rfidgen
