// RFIDGen: the supply-chain data generator of Section 6.1 (Figure 5).
//
// Simulates retailer W: every shipment passes a distribution center, a
// warehouse, and a retail store (1000 stores <- 25 warehouses <- 5 DCs;
// 100 reader-equipped locations per site). A pallet holds 20-80 cases;
// pallets and cases travel together and are read by the same reader
// within minutes of each other; a shipment is read `reads_per_site`
// times per site with 1-36 h between consecutive reads; first reads fall
// uniformly in a five-year window.
//
// Tables produced (primary keys as in the paper):
//   caseR / palletR (epc, rtime, reader, biz_loc, biz_step)
//   parent (child_epc, parent_epc)
//   epc_info (epc, lot, manu_date, exp_date, product)
//   product (product, manufacturer)
//   locs (gln, site, loc_desc)
//   steps (biz_step, type)
//
// The first read at each site is made by the forklift reader, globally
// named 'readerX' (the reader rule's anchor); legitimate reads are
// always >= 1 h apart, so the reader rule (window of minutes) never
// fires on clean data.
#ifndef RFID_RFIDGEN_RFIDGEN_H_
#define RFID_RFIDGEN_RFIDGEN_H_

#include "storage/catalog.h"

namespace rfid::rfidgen {

struct GeneratorOptions {
  /// Scale factor s: number of pallet EPCs. Expected case reads are about
  /// s * 50 * 3 * reads_per_site.
  int64_t num_pallets = 100;
  uint64_t seed = 20060912;  // VLDB'06 opening day

  int num_stores = 1000;
  int num_warehouses = 25;
  int num_dcs = 5;
  int locations_per_site = 100;
  int reads_per_site = 10;
  int min_cases_per_pallet = 20;
  int max_cases_per_pallet = 80;

  int64_t time_window_micros = 5LL * 365 * 24 * 3600 * 1000000;  // five years
  int64_t min_latency_micros = 3600LL * 1000000;        // 1 hour
  int64_t max_latency_micros = 36LL * 3600 * 1000000;   // 36 hours
  int64_t case_pallet_gap_micros = 5LL * 60 * 1000000;  // within 5 minutes

  int num_products = 1000;
  int num_manufacturers = 50;
  int num_steps = 100;
  int num_step_types = 10;

  /// Build rtime/epc indexes and statistics after generation.
  bool finalize = true;
};

struct GeneratedStats {
  int64_t case_reads = 0;
  int64_t pallet_reads = 0;
  int64_t cases = 0;
  int64_t pallets = 0;
  int64_t locations = 0;
  /// The generated time window: [t_begin, t_end] over caseR.rtime.
  int64_t t_begin = 0;
  int64_t t_end = 0;
};

/// Populates `db` with all seven tables. Fails if they already exist.
Result<GeneratedStats> Generate(const GeneratorOptions& options, Database* db);

/// Rebuilds indexes (rtime, epc on the read tables; dimension keys) and
/// statistics. Called by Generate when options.finalize, and again by the
/// anomaly injector.
Status FinalizeDatabase(Database* db);

/// Special business locations used by the replacing-rule scenario
/// (cross-reads between kLoc2 and kLoc1; the follow-up location kLocA).
inline constexpr const char* kLoc1 = "GLN-CROSS-LOC1";
inline constexpr const char* kLoc2 = "GLN-CROSS-LOC2";
inline constexpr const char* kLocA = "GLN-CROSS-LOCA";

}  // namespace rfid::rfidgen

#endif  // RFID_RFIDGEN_RFIDGEN_H_
