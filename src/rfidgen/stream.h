// Streaming mode of RFIDGen: the same supply-chain simulation as
// Generate(), but emitted as a single time-ordered sequence of read
// events sliced into micro-batches — the shape of an RFID data feed
// arriving at the warehouse (Section 2's "readings keep streaming in
// while analysts query"). Anomalies (duplicate reads, forklift re-reads,
// missing reads) are injected inline as the stream is produced, so the
// deferred-cleansing rewrites have work to do on streamed data exactly
// as on bulk-generated data.
//
// The stream writes nothing itself: NextBatch() returns rows grouped by
// destination table (caseR / palletR / parent / epc_info) and the ingest
// subsystem applies them. Dimension rows for a case (parent, epc_info)
// are emitted at the rtime of the case's first read, so referential
// lookups succeed for every read already streamed.
#ifndef RFID_RFIDGEN_STREAM_H_
#define RFID_RFIDGEN_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/catalog.h"

namespace rfid::rfidgen {

struct StreamOptions {
  uint64_t seed = 20060912;
  /// Pallets whose shipments the stream covers (scale knob).
  int64_t num_pallets = 20;

  int num_stores = 20;
  int num_warehouses = 5;
  int num_dcs = 2;
  int locations_per_site = 10;
  int reads_per_site = 3;
  int min_cases_per_pallet = 2;
  int max_cases_per_pallet = 5;

  int64_t time_window_micros = 30LL * 24 * 3600 * 1000000;  // one month
  int64_t min_latency_micros = 3600LL * 1000000;            // 1 hour
  int64_t max_latency_micros = 36LL * 3600 * 1000000;       // 36 hours
  int64_t case_pallet_gap_micros = 5LL * 60 * 1000000;      // 5 minutes

  int num_products = 100;
  int num_steps = 100;

  /// Per-clean-case-read anomaly probabilities.
  double duplicate_prob = 0.05;  // second reader sees the tag seconds later
  double reader_prob = 0.03;     // forklift (readerX) re-read within minutes
  double missing_prob = 0.02;    // the read never happens
};

struct StreamStats {
  int64_t case_reads = 0;    // emitted caseR rows (anomalies included)
  int64_t pallet_reads = 0;
  int64_t cases = 0;
  int64_t duplicates = 0;
  int64_t reader_rereads = 0;
  int64_t missing = 0;
  int64_t t_begin = 0;
  int64_t t_end = 0;
};

/// One micro-batch of the stream, grouped by destination table. Row
/// shapes match the schemas Generate() creates.
struct StreamBatch {
  std::vector<Row> case_rows;
  std::vector<Row> pallet_rows;
  std::vector<Row> parent_rows;
  std::vector<Row> info_rows;

  bool empty() const {
    return case_rows.empty() && pallet_rows.empty() && parent_rows.empty() &&
           info_rows.empty();
  }
  size_t total_rows() const {
    return case_rows.size() + pallet_rows.size() + parent_rows.size() +
           info_rows.size();
  }
};

class ReadStream {
 public:
  /// Builds the stream against `db`. If the RFIDGen tables are absent
  /// they are created (dimensions populated, read tables empty); if a
  /// prior Generate() already populated them, the stream feeds into the
  /// existing tables — streamed EPCs use a distinct prefix so they never
  /// collide with bulk-generated ones. The whole event timeline is
  /// materialized up front (deterministic in `seed`) and then sliced.
  static Result<std::unique_ptr<ReadStream>> Create(Database* db,
                                                    const StreamOptions& opt);

  /// Returns up to `max_rows` events (rows across all four tables) in
  /// non-decreasing rtime order. An empty batch means exhausted.
  StreamBatch NextBatch(size_t max_rows);

  bool exhausted() const { return pos_ >= events_.size(); }
  size_t events_remaining() const { return events_.size() - pos_; }
  const StreamStats& stats() const { return stats_; }

 private:
  enum class Dest : uint8_t { kCase, kPallet, kParent, kInfo };
  struct Event {
    int64_t rtime;
    Dest dest;
    Row row;
  };

  ReadStream() = default;
  Status Build(Database* db, const StreamOptions& opt);

  std::vector<Event> events_;  // non-decreasing rtime
  size_t pos_ = 0;
  StreamStats stats_;
};

}  // namespace rfid::rfidgen

#endif  // RFID_RFIDGEN_STREAM_H_
