#include "rfidgen/anomaly.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/random.h"
#include "common/string_util.h"

namespace rfid::rfidgen {

namespace {

// Column positions in caseR (fixed by the generator's schema).
constexpr size_t kEpc = 0;
constexpr size_t kRtime = 1;
constexpr size_t kReader = 2;
constexpr size_t kBizLoc = 3;
constexpr size_t kBizStep = 4;

struct Sequences {
  // Per EPC: row ids in rtime order.
  std::vector<std::vector<uint32_t>> seqs;
};

Sequences BuildSequences(const Table& table) {
  std::map<std::string, std::vector<uint32_t>> by_epc;
  for (uint32_t i = 0; i < table.num_rows(); ++i) {
    by_epc[table.row(i)[kEpc].string_value()].push_back(i);
  }
  Sequences out;
  for (auto& [epc, ids] : by_epc) {
    std::sort(ids.begin(), ids.end(), [&table](uint32_t a, uint32_t b) {
      return table.row(a)[kRtime].timestamp_value() <
             table.row(b)[kRtime].timestamp_value();
    });
    out.seqs.push_back(std::move(ids));
  }
  return out;
}

Row MakeRead(const std::string& epc, int64_t rtime, const std::string& reader,
             const std::string& loc, int64_t step) {
  return {Value::String(epc), Value::Timestamp(rtime), Value::String(reader),
          Value::String(loc), Value::Int64(step)};
}

}  // namespace

Result<AnomalyStats> InjectAnomalies(const AnomalyOptions& opt, Database* db) {
  if (opt.dirty_fraction < 0 || opt.dirty_fraction > 1) {
    return Status::InvalidArgument("dirty_fraction must be within [0, 1]");
  }
  RFID_ASSIGN_OR_RETURN(Table * case_r, db->ResolveTable("caseR"));
  Random rng(opt.seed);
  Sequences sequences = BuildSequences(*case_r);
  if (sequences.seqs.empty()) {
    return Status::InvalidArgument("caseR is empty");
  }

  int enabled = (opt.duplicates ? 1 : 0) + (opt.reader ? 1 : 0) +
                (opt.replacing ? 1 : 0) + (opt.cycles ? 1 : 0) +
                (opt.missing ? 1 : 0);
  if (enabled == 0) return AnomalyStats{};
  int64_t total = static_cast<int64_t>(
      opt.dirty_fraction * static_cast<double>(case_r->num_rows()));
  int64_t per_type = total / enabled;

  AnomalyStats stats;
  std::vector<Row> inserts;
  std::set<uint32_t> removals;
  // Gap slots already used by an insertion-based anomaly, keyed by the row
  // id the injection anchors to; collisions would interleave injected
  // reads and break the intended adjacency patterns.
  std::set<uint32_t> used_anchor;

  auto pick_seq = [&]() -> const std::vector<uint32_t>& {
    return sequences.seqs[rng.Uniform(sequences.seqs.size())];
  };
  auto row_of = [&](uint32_t id) -> const Row& { return case_r->row(id); };

  // --- duplicates: re-read of the same location shortly after a read ---
  if (opt.duplicates) {
    for (int64_t n = 0; n < per_type; ++n) {
      const auto& seq = pick_seq();
      const Row& r = row_of(seq[rng.Uniform(seq.size())]);
      int64_t gap = rng.UniformRange(1, opt.t1_micros - 1);
      inserts.push_back(MakeRead(r[kEpc].string_value(),
                                 r[kRtime].timestamp_value() + gap, "RDR-DUP",
                                 r[kBizLoc].string_value(),
                                 r[kBizStep].int64_value()));
      ++stats.duplicates;
    }
  }

  // --- reader: a stray read shortly before a forklift (readerX) read ---
  if (opt.reader) {
    int64_t injected = 0;
    int64_t attempts = 0;
    while (injected < per_type && attempts < per_type * 20) {
      ++attempts;
      const auto& seq = pick_seq();
      const Row& x = row_of(seq[rng.Uniform(seq.size())]);
      if (x[kReader].string_value() != "readerX") continue;
      // Place the false read at the forklift read's own location so the
      // only rule it can trigger is the reader rule (gap > t1 avoids the
      // duplicate rule).
      int64_t gap = rng.UniformRange(opt.t1_micros + 1, opt.t2_micros - 1);
      inserts.push_back(MakeRead(x[kEpc].string_value(),
                                 x[kRtime].timestamp_value() - gap, "RDR-STRAY",
                                 x[kBizLoc].string_value(),
                                 x[kBizStep].int64_value()));
      ++injected;
      ++stats.reader;
    }
  }

  // --- replacing: a cross-read at LOC2 followed by LOCA within t3 ---
  if (opt.replacing) {
    int64_t injected = 0;
    int64_t attempts = 0;
    while (injected < per_type && attempts < per_type * 20) {
      ++attempts;
      const auto& seq = pick_seq();
      if (seq.size() < 2) continue;
      size_t i = rng.Uniform(seq.size() - 1);
      if (!used_anchor.insert(seq[i]).second) continue;
      const Row& r = row_of(seq[i]);
      int64_t base = r[kRtime].timestamp_value() + opt.t3_micros;
      int64_t gap = rng.UniformRange(opt.t1_micros + 1, opt.t3_micros - 1);
      inserts.push_back(MakeRead(r[kEpc].string_value(), base, "RDR-CROSS",
                                 kLoc2, r[kBizStep].int64_value()));
      inserts.push_back(MakeRead(r[kEpc].string_value(), base + gap, "RDR-NEXT",
                                 kLocA, r[kBizStep].int64_value()));
      ++stats.replacing;
      ++injected;
    }
  }

  // --- cycles: [L N L N] inserted between two consecutive reads ---
  if (opt.cycles) {
    int64_t injected = 0;
    int64_t attempts = 0;
    while (injected < per_type && attempts < per_type * 20) {
      ++attempts;
      const auto& seq = pick_seq();
      if (seq.size() < 2) continue;
      size_t i = rng.Uniform(seq.size() - 1);
      if (used_anchor.count(seq[i]) > 0) continue;
      const Row& r = row_of(seq[i]);
      const Row& next = row_of(seq[i + 1]);
      const std::string& loc_l = r[kBizLoc].string_value();
      const std::string& loc_n = next[kBizLoc].string_value();
      if (loc_l == loc_n) continue;  // need an alternation
      int64_t t0 = r[kRtime].timestamp_value();
      int64_t gap = next[kRtime].timestamp_value() - t0;
      if (gap < 3 * (opt.t1_micros + 1)) continue;
      // Sequence becomes L, N, L, N: the cycle rule deletes exactly the
      // two injected reads (the middle N and L).
      inserts.push_back(MakeRead(r[kEpc].string_value(), t0 + gap / 3,
                                 "RDR-CYC", loc_n, r[kBizStep].int64_value()));
      inserts.push_back(MakeRead(r[kEpc].string_value(), t0 + 2 * gap / 3,
                                 "RDR-CYC", loc_l, r[kBizStep].int64_value()));
      used_anchor.insert(seq[i]);
      stats.cycles += 2;
      injected += 2;
    }
  }

  // --- missing: drop a case read outside the final site ---
  if (opt.missing) {
    int64_t injected = 0;
    int64_t attempts = 0;
    while (injected < per_type && attempts < per_type * 20) {
      ++attempts;
      const auto& seq = pick_seq();
      if (seq.size() < 3) continue;
      // Never the last site's reads: a later case+pallet sighting must
      // remain so the compensation rule is confident (Example 5).
      size_t last_third = seq.size() - seq.size() / 3;
      size_t i = rng.Uniform(last_third);
      if (!removals.insert(seq[i]).second) continue;
      ++injected;
      ++stats.missing;
    }
  }

  // Apply removals and insertions.
  std::vector<Row> rows;
  rows.reserve(case_r->num_rows() - removals.size() + inserts.size());
  for (uint32_t i = 0; i < case_r->num_rows(); ++i) {
    if (removals.count(i) > 0) continue;
    rows.push_back(case_r->row(i));
  }
  for (Row& r : inserts) rows.push_back(std::move(r));
  RFID_RETURN_IF_ERROR(case_r->ReplaceRows(std::move(rows)));

  if (opt.finalize) {
    RFID_RETURN_IF_ERROR(FinalizeDatabase(db));
  }
  return stats;
}

}  // namespace rfid::rfidgen
