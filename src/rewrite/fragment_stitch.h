// Region-scoped deferred cleansing over the cleansed-fragment cache.
//
// Every compiled cleansing rule windows PARTITION BY the rule's cluster
// key, so the cleansing chain Φ distributes over any partition of the
// input into cluster-key value ranges: Φ(R) = Φ(R₁) ∪ ... ∪ Φ(Rₖ) when
// the Rᵢ are contiguous ckey ranges. The chain's output is stably sorted
// by (ckey, skey) with NULLs first, so concatenating the per-region
// results in ascending range order reproduces the global output *row for
// row* — which is what makes the stitched plan bit-identical to the
// uncached rewrite (naive ≡ expanded ≡ join-back by construction).
//
// The stitcher therefore rewrites an eligible query as
//
//   WITH __cl_frags AS (SELECT * FROM __frag_0 UNION ALL ... __frag_k)
//   <original query with the rules' table replaced by __cl_frags>
//
// where each __frag_r is a fragment binding on the ExecContext: a cached
// cleansed region (scanned directly — the cache hit path skips the
// rewrite *and* the cleansing windows entirely) or, on a miss, the
// region-restricted naive cleansing chain wrapped in a materializing tee
// that publishes the fragment back to the cache on clean end-of-stream.
// UNION ALL opens its arms lazily, so miss regions are cleansed only if
// the consumer actually drains into them.
//
// Eligibility is conservative; anything outside it falls back to the
// regular rewriter: a single occurrence of a single ruled table, no
// derived rule inputs, one shared cluster key, no MODIFY of the cluster
// key, no colliding WITH names.
#ifndef RFID_REWRITE_FRAGMENT_STITCH_H_
#define RFID_REWRITE_FRAGMENT_STITCH_H_

#include <string>
#include <vector>

#include "cache/fragment_cache.h"
#include "cleansing/rule.h"
#include "exec/exec_context.h"

namespace rfid {

struct FragmentRegionDetail {
  size_t region = 0;
  std::string range;  // human-readable ckey range
  bool hit = false;
};

struct FragmentStitchInfo {
  bool used = false;
  std::string reason;  // why the cache path was not taken (when !used)
  std::string sql;     // stitched statement (when used)
  std::string table;   // the ruled table (when used)
  size_t hits = 0;
  size_t misses = 0;
  std::vector<FragmentRegionDetail> regions;
};

/// Content fingerprint of a rule list: two sessions whose catalogs define
/// the same rules for a table (same keys, pattern, condition, action — in
/// the same order) get the same fingerprint even if unrelated rules
/// differ, so their sessions share cached fragments.
uint64_t FingerprintRules(const std::vector<const CleansingRule*>& rules);

/// Attempts the fragment-cache path for `sql`. When it applies, installs
/// one fragment binding per region on `ctx` and returns used=true with
/// the stitched statement (execute it with the same `ctx`); otherwise
/// returns used=false with a reason and leaves `ctx` untouched. Errors
/// only on malformed SQL.
Result<FragmentStitchInfo> StitchWithFragmentCache(
    std::string_view sql, Database* db, const CleansingRuleEngine& engine,
    cache::FragmentCache* cache, ExecContext* ctx);

}  // namespace rfid

#endif  // RFID_REWRITE_FRAGMENT_STITCH_H_
