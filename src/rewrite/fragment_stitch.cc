#include "rewrite/fragment_stitch.h"

#include <algorithm>
#include <utility>

#include "cleansing/chain.h"
#include "common/string_util.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace rfid {

namespace {

uint64_t HashMix(uint64_t h, std::string_view s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV-1a
  }
  h ^= '\x1f';
  h *= 1099511628211ULL;
  return h;
}

void CountRefsInStatement(const SelectStatement& stmt, std::string_view name,
                          size_t* count);

void CountRefsInExpr(const ExprPtr& e, std::string_view name, size_t* count) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kInSubquery && e->subquery != nullptr) {
    CountRefsInStatement(*e->subquery, name, count);
  }
  for (const ExprPtr& c : e->children) CountRefsInExpr(c, name, count);
}

void CountRefsInStatement(const SelectStatement& stmt, std::string_view name,
                          size_t* count) {
  for (const WithClause& w : stmt.with) {
    if (w.body != nullptr) CountRefsInStatement(*w.body, name, count);
  }
  for (const SelectCore& core : stmt.cores) {
    for (const TableRef& ref : core.from) {
      if (EqualsIgnoreCase(ref.table_name, name)) ++*count;
    }
    for (const SelectItem& item : core.items) {
      CountRefsInExpr(item.expr, name, count);
    }
    CountRefsInExpr(core.where, name, count);
    CountRefsInExpr(core.having, name, count);
    for (const ExprPtr& g : core.group_by) CountRefsInExpr(g, name, count);
  }
  for (const SortKey& k : stmt.order_by) CountRefsInExpr(k.expr, name, count);
}

/// All table names referenced anywhere in the statement (FROM clauses of
/// every core, WITH body, and IN-subquery).
void CollectRefNames(const SelectStatement& stmt,
                     std::vector<std::string>* names);

void CollectRefNamesExpr(const ExprPtr& e, std::vector<std::string>* names) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kInSubquery && e->subquery != nullptr) {
    CollectRefNames(*e->subquery, names);
  }
  for (const ExprPtr& c : e->children) CollectRefNamesExpr(c, names);
}

void CollectRefNames(const SelectStatement& stmt,
                     std::vector<std::string>* names) {
  for (const WithClause& w : stmt.with) {
    if (w.body != nullptr) CollectRefNames(*w.body, names);
  }
  for (const SelectCore& core : stmt.cores) {
    for (const TableRef& ref : core.from) {
      names->push_back(ToLower(ref.table_name));
    }
    for (const SelectItem& item : core.items) {
      CollectRefNamesExpr(item.expr, names);
    }
    CollectRefNamesExpr(core.where, names);
    CollectRefNamesExpr(core.having, names);
    for (const ExprPtr& g : core.group_by) CollectRefNamesExpr(g, names);
  }
  for (const SortKey& k : stmt.order_by) CollectRefNamesExpr(k.expr, names);
}

FragmentStitchInfo NotUsed(std::string reason) {
  FragmentStitchInfo info;
  info.used = false;
  info.reason = std::move(reason);
  return info;
}

}  // namespace

uint64_t FingerprintRules(const std::vector<const CleansingRule*>& rules) {
  uint64_t fp = 1469598103934665603ULL;
  for (const CleansingRule* rule : rules) {
    fp = HashMix(fp, "rule");
    fp = HashMix(fp, ToLower(rule->on_table));
    fp = HashMix(fp, ToLower(rule->from_table));
    fp = HashMix(fp, ToLower(rule->ckey));
    fp = HashMix(fp, ToLower(rule->skey));
    for (const PatternRef& ref : rule->pattern) {
      fp = HashMix(fp, ref.name);
      fp = HashMix(fp, ref.is_set ? "*" : "");
    }
    fp = HashMix(fp, rule->condition != nullptr ? RenderExpr(rule->condition)
                                                : "");
    fp = HashMix(fp, RuleActionName(rule->action));
    fp = HashMix(fp, rule->target);
    for (const ModifyAssignment& a : rule->assignments) {
      fp = HashMix(fp, ToLower(a.column));
      fp = HashMix(fp, a.value != nullptr ? RenderExpr(a.value) : "");
    }
  }
  return fp;
}

Result<FragmentStitchInfo> StitchWithFragmentCache(
    std::string_view sql, Database* db, const CleansingRuleEngine& engine,
    cache::FragmentCache* cache, ExecContext* ctx) {
  if (cache == nullptr || !cache->enabled()) {
    return NotUsed("fragment cache disabled");
  }
  if (db == nullptr || ctx == nullptr) return NotUsed("no database/context");
  if (engine.rules().empty()) return NotUsed("no rules defined");

  RFID_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSql(sql));

  // Find the (single) referenced table that has cleansing rules.
  std::vector<std::string> names;
  CollectRefNames(*stmt, &names);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  const Table* table = nullptr;
  std::vector<const CleansingRule*> rules;
  for (const std::string& name : names) {
    Table* t = db->GetTable(name);
    if (t == nullptr) continue;
    std::vector<const CleansingRule*> r = engine.RulesFor(t->name());
    if (r.empty()) continue;
    if (table != nullptr) return NotUsed("query reads multiple ruled tables");
    table = t;
    rules = std::move(r);
  }
  if (table == nullptr) return NotUsed("no ruled table in query");

  size_t occurrences = 0;
  CountRefsInStatement(*stmt, table->name(), &occurrences);
  if (occurrences != 1) {
    return NotUsed("ruled table referenced more than once");
  }
  for (const WithClause& w : stmt->with) {
    if (EqualsIgnoreCase(w.name, table->name())) {
      return NotUsed("ruled table shadowed by a WITH clause");
    }
    if (w.name.rfind("__", 0) == 0) {
      return NotUsed("query defines reserved __ WITH names");
    }
  }

  // Rule-set eligibility: the region decomposition needs every rule to
  // read the ON table directly and to partition by one shared ckey that
  // no rule rewrites.
  const std::string& ckey = rules.front()->ckey;
  for (const CleansingRule* rule : rules) {
    if (rule->HasDerivedInput()) {
      return NotUsed("rule '" + rule->name + "' has a derived input");
    }
    if (!rule->from_table.empty() &&
        !EqualsIgnoreCase(rule->from_table, rule->on_table)) {
      return NotUsed("rule '" + rule->name + "' reads another table");
    }
    if (!EqualsIgnoreCase(rule->ckey, ckey)) {
      return NotUsed("rules disagree on the cluster key");
    }
    for (const ModifyAssignment& a : rule->assignments) {
      if (EqualsIgnoreCase(a.column, ckey)) {
        return NotUsed("rule '" + rule->name + "' modifies the cluster key");
      }
    }
  }
  if (table->schema().FindColumn(ckey) < 0) {
    return NotUsed("cluster key not in table schema");
  }

  // Query watermark: the pinned snapshot's, else the published one.
  uint64_t watermark = table->visible_rows();
  if (ctx->snapshot() != nullptr) {
    const TableSnapshot* ts = ctx->snapshot()->ForTable(table);
    if (ts == nullptr) return NotUsed("table missing from pinned snapshot");
    watermark = ts->watermark;
  }

  cache::RegionSchemePtr scheme = cache->SchemeFor(*table, ckey, watermark);
  if (scheme == nullptr) return NotUsed("region scheme unavailable");

  // The chain is identical for every region except the restricted-input
  // body, so build it once.
  RFID_ASSIGN_OR_RETURN(
      CleansingChain chain,
      BuildCleansingChain(rules, *db, "__cl_input",
                          table->schema().columns()));
  RowDesc frag_desc;
  for (const Column& col : chain.output_columns) {
    frag_desc.AddField("", col.name, col.type);
  }
  std::string chain_sql;
  for (const auto& [name, body] : chain.with_clauses) {
    chain_sql += ", " + name + " AS (" + body + ")";
  }

  const uint64_t rule_fp = FingerprintRules(rules);
  const std::string table_lower = ToLower(table->name());
  FragmentStitchInfo info;
  info.used = true;
  info.table = table->name();
  std::string union_sql;
  for (size_t r = 0; r < scheme->num_regions(); ++r) {
    cache::FragmentKey key{table_lower, rule_fp, scheme->fingerprint, r};
    const std::string frag_name = StrFormat("__frag_%zu", r);
    FragmentBinding binding;
    binding.desc = frag_desc;
    binding.rows = cache->Lookup(key, watermark);
    if (binding.rows != nullptr) {
      ++info.hits;
    } else {
      ++info.misses;
      std::string pred = scheme->RegionPredicateSql(r);
      binding.fill_sql = "WITH __cl_input AS (SELECT * FROM " + table->name() +
                         (pred.empty() ? "" : " WHERE " + pred) + ")" +
                         chain_sql + " SELECT * FROM " + chain.output_name;
      cache::FragmentCache* cache_ptr = cache;
      binding.on_filled = [cache_ptr, key, watermark](std::vector<Row> rows) {
        cache_ptr->Insert(key, watermark, std::move(rows));
      };
    }
    info.regions.push_back(
        {r, scheme->RegionLabel(r), binding.rows != nullptr});
    ctx->BindFragment(frag_name, std::move(binding));
    if (r > 0) union_sql += " UNION ALL ";
    union_sql += "SELECT * FROM " + frag_name;
  }

  ReplaceTableRefs(stmt.get(), table->name(), "__cl_frags");
  RFID_ASSIGN_OR_RETURN(StatementPtr frags_body, ParseSql(union_sql));
  stmt->with.insert(stmt->with.begin(),
                    WithClause{"__cl_frags", std::move(frags_body)});
  info.sql = StatementToSql(*stmt);
  return info;
}

}  // namespace rfid
