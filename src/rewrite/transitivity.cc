#include "rewrite/transitivity.h"

#include "common/string_util.h"
#include "expr/conjunct.h"
#include "expr/interval.h"

namespace rfid {

namespace {

bool Allowed(const std::set<std::string>& allowed, const std::string& col) {
  return allowed.count(ToLower(col)) > 0;
}

// True if every column referenced is in the allowed set.
bool AllColumnsAllowed(const ExprPtr& e, const std::set<std::string>& allowed) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const Expr* r : refs) {
    if (!Allowed(allowed, r->column)) return false;
  }
  return true;
}

// True when the conjunct's only column reference is an unqualified `col`
// (after stripping) — i.e. it constrains that single column of the target.
bool ConstrainsOnly(const ExprPtr& conjunct, const std::string& col) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(conjunct, &refs);
  if (refs.empty()) return false;
  for (const Expr* r : refs) {
    if (!EqualsIgnoreCase(r->column, col)) return false;
  }
  // The probe of an IN-subquery is the outer reference; subquery columns
  // belong to other tables and are not collected here (CollectColumnRefs
  // does not descend into subquery statements).
  return true;
}

}  // namespace

ContextDerivation DeriveContextCondition(
    const ContextCorrelation& corr,
    const std::vector<ExprPtr>& query_conjuncts,
    const std::string& skey, const std::set<std::string>& allowed_columns) {
  std::vector<ExprPtr> derived;

  // (1) Sequence-key shifting: T.skey ∈ [a, b] and X.skey - T.skey ∈
  //     [lo, hi] derive X.skey ∈ [a + lo, b + hi].
  ValueInterval t_skey;
  for (const ExprPtr& c : query_conjuncts) {
    ColumnLiteralCmp m;
    if (MatchColumnLiteralCmp(c, &m) &&
        EqualsIgnoreCase(m.column->column, skey) && m.op != BinaryOp::kNe) {
      t_skey.IntersectCmp(m.op, m.literal);
    }
  }
  ValueInterval x_skey;
  if (t_skey.lo() && corr.skey_diff_lo) {
    Value shifted = t_skey.lo()->value;
    if (shifted.type() == DataType::kTimestamp) {
      x_skey.IntersectLo(
          Value::Timestamp(shifted.timestamp_value() + *corr.skey_diff_lo),
          t_skey.lo()->inclusive);
    }
  }
  if (t_skey.hi() && corr.skey_diff_hi) {
    Value shifted = t_skey.hi()->value;
    if (shifted.type() == DataType::kTimestamp) {
      x_skey.IntersectHi(
          Value::Timestamp(shifted.timestamp_value() + *corr.skey_diff_hi),
          t_skey.hi()->inclusive);
    }
  }
  bool restrictive = false;
  if (!x_skey.Unconstrained() && Allowed(allowed_columns, skey)) {
    derived.push_back(x_skey.ToConjuncts(MakeColumnRef("", skey)));
    restrictive = true;
  }

  // (2) Equality propagation: X.xcol = T.tcol carries any query conjunct
  //     that constrains only T.tcol over to X.xcol.
  for (const auto& [xcol, tcol] : corr.equalities) {
    if (!Allowed(allowed_columns, xcol)) continue;
    if (EqualsIgnoreCase(xcol, skey) && EqualsIgnoreCase(tcol, skey)) {
      continue;  // skey handled by interval shifting above
    }
    for (const ExprPtr& c : query_conjuncts) {
      if (!ConstrainsOnly(c, tcol)) continue;
      if (EqualsIgnoreCase(xcol, tcol)) {
        derived.push_back(c);
      } else {
        derived.push_back(TransformColumnRefs(c, [&](const Expr& ref) -> ExprPtr {
          if (EqualsIgnoreCase(ref.column, tcol)) {
            return MakeColumnRef("", xcol);
          }
          return nullptr;
        }));
      }
      if (c->kind != ExprKind::kInSubquery) restrictive = true;
    }
  }

  // (3) Context-only rule conjuncts restrict the context set directly
  //     (set-based contexts; position-based ones were already filtered).
  for (const ExprPtr& c : corr.context_only) {
    if (!AllColumnsAllowed(c, allowed_columns)) continue;
    derived.push_back(SubstituteQualifier(c, corr.name, ""));
    restrictive = true;
  }

  ContextDerivation out;
  out.condition = CombineConjuncts(derived);  // nullptr when nothing derived
  out.restrictive = restrictive;
  return out;
}

}  // namespace rfid
