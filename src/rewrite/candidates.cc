#include "rewrite/candidates.h"

#include "common/string_util.h"
#include "sql/parser.h"
#include "sql/render.h"

namespace rfid {

namespace {

constexpr const char* kInputName = "__cl_input";
constexpr const char* kKeysSourceName = "__jb_keysrc";
constexpr const char* kKeysName = "__jb_keys";

Result<WithClause> MakeWith(const std::string& name, const std::string& body) {
  RFID_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSql(body));
  return WithClause{name, std::move(stmt)};
}

}  // namespace

Result<std::string> AssembleRewrite(const SelectStatement& original,
                                    const std::string& table,
                                    const std::vector<const CleansingRule*>& rules,
                                    const Database& db,
                                    const CandidateSpec& spec) {
  const Table* base = db.GetTable(table);
  if (base == nullptr) {
    return Status::NotFound("rewrite target table not found: " + table);
  }
  std::vector<WithClause> clauses;

  std::string input_filter_sql =
      spec.input_condition == nullptr ? "" : RenderExpr(spec.input_condition);

  // Join-back preamble: the distinct cluster keys of the (derived or raw)
  // input that satisfy the query condition.
  const std::string& ckey = rules.front()->ckey;
  std::string keys_predicate;
  if (spec.join_back) {
    std::string keys_source = table;
    for (const CleansingRule* rule : rules) {
      if (rule->HasDerivedInput()) {
        // Conditions apply to both the reads table and the compensation
        // data (Section 6.3), so keys come from the derived input itself.
        RFID_ASSIGN_OR_RETURN(
            WithClause src,
            MakeWith(kKeysSourceName, StatementToSql(*rule->from_select)));
        clauses.push_back(std::move(src));
        keys_source = kKeysSourceName;
        break;
      }
    }
    std::string body = "SELECT DISTINCT " + ckey + " FROM " + keys_source;
    if (spec.keys_condition != nullptr) {
      body += " WHERE " + RenderExpr(spec.keys_condition);
    }
    RFID_ASSIGN_OR_RETURN(WithClause keys, MakeWith(kKeysName, body));
    clauses.push_back(std::move(keys));
    keys_predicate =
        ckey + " IN (SELECT " + ckey + " FROM " + std::string(kKeysName) + ")";
  }

  // Restricted input over the raw reads table.
  {
    std::string body = "SELECT * FROM " + table;
    std::vector<std::string> preds;
    if (spec.join_back) preds.push_back(keys_predicate);
    if (!input_filter_sql.empty()) preds.push_back("(" + input_filter_sql + ")");
    if (!preds.empty()) body += " WHERE " + Join(preds, " AND ");
    RFID_ASSIGN_OR_RETURN(WithClause input, MakeWith(kInputName, body));
    clauses.push_back(std::move(input));
  }

  // The cleansing chain. Derived rule inputs get the same restriction
  // re-applied after their union.
  std::string derived_filter;
  if (spec.join_back) derived_filter = keys_predicate;
  if (!input_filter_sql.empty()) {
    if (!derived_filter.empty()) derived_filter += " AND ";
    derived_filter += "(" + input_filter_sql + ")";
  }
  RFID_ASSIGN_OR_RETURN(
      CleansingChain chain,
      BuildCleansingChain(rules, db, kInputName, base->schema().columns(),
                          derived_filter));
  for (const auto& [name, body] : chain.with_clauses) {
    RFID_ASSIGN_OR_RETURN(WithClause clause, MakeWith(name, body));
    clauses.push_back(std::move(clause));
  }

  // Re-target the user query at the cleansed output.
  StatementPtr rewritten = CloneStatement(
      std::make_shared<SelectStatement>(original));
  ReplaceTableRefs(rewritten.get(), table, chain.output_name);
  rewritten->with.insert(rewritten->with.begin(),
                         std::make_move_iterator(clauses.begin()),
                         std::make_move_iterator(clauses.end()));
  return StatementToSql(*rewritten);
}

}  // namespace rfid
