#include "rewrite/rewriter.h"

#include <algorithm>

#include "common/fault.h"
#include "common/string_util.h"
#include "expr/conjunct.h"
#include "expr/interval.h"
#include "plan/cost_model.h"
#include "plan/planner.h"
#include "rewrite/candidates.h"
#include "rewrite/transitivity.h"
#include "sql/parser.h"
#include "sql/render.h"
#include "verify/verify.h"

namespace rfid {

const char* RewriteStrategyName(RewriteStrategy s) {
  switch (s) {
    case RewriteStrategy::kAuto: return "auto";
    case RewriteStrategy::kExpanded: return "expanded";
    case RewriteStrategy::kJoinBack: return "join-back";
    case RewriteStrategy::kNaive: return "naive";
    case RewriteStrategy::kNone: return "none";
  }
  return "?";
}

namespace {

// Where the rules' table appears in the user query.
struct TargetSite {
  SelectCore* core = nullptr;
  std::string alias;
  int occurrences = 0;
};

void FindTable(SelectStatement* stmt, const std::string& table, TargetSite* site) {
  for (WithClause& w : stmt->with) {
    if (EqualsIgnoreCase(w.name, table)) return;  // shadowed; do not rewrite
    FindTable(w.body.get(), table, site);
  }
  for (SelectCore& core : stmt->cores) {
    for (TableRef& ref : core.from) {
      if (EqualsIgnoreCase(ref.table_name, table)) {
        ++site->occurrences;
        site->core = &core;
        site->alias = ref.alias;
      }
    }
  }
}

// An n:1 dimension join found in the target core.
struct DimJoin {
  std::string dim_alias;
  const Table* dim_table = nullptr;
  std::string reads_column;           // join column on the reads table
  std::string dim_column;             // join column on the dimension
  std::vector<ExprPtr> dim_conjuncts; // local predicates (dim-qualified)
  double selectivity = 1.0;

  // IN-subquery form of the join restriction, probe column unqualified.
  ExprPtr AsInConjunct() const {
    auto sub = std::make_shared<SelectStatement>();
    SelectCore core;
    core.items.push_back({MakeColumnRef("", dim_column), "", false});
    core.from.push_back({dim_table->name(), dim_table->name()});
    std::vector<ExprPtr> stripped;
    for (const ExprPtr& c : dim_conjuncts) {
      stripped.push_back(SubstituteQualifier(c, dim_alias, ""));
    }
    core.where = CombineConjuncts(stripped);
    sub->cores.push_back(std::move(core));
    return MakeInSubquery(MakeColumnRef("", reads_column), sub);
  }
};

// Query analysis relative to the reads table.
struct QueryAnalysis {
  std::vector<ExprPtr> s_local;   // reads-local conjuncts, unqualified
  std::vector<DimJoin> joins;     // ascending selectivity
};

QueryAnalysis AnalyzeCore(const SelectCore& core, const std::string& alias,
                          const Table* reads, const Database& db) {
  QueryAnalysis out;
  // Dimension sources in the same core.
  std::map<std::string, const Table*> dims;
  for (const TableRef& ref : core.from) {
    if (EqualsIgnoreCase(ref.alias, alias)) continue;
    const Table* t = db.GetTable(ref.table_name);
    if (t != nullptr) dims[ToLower(ref.alias)] = t;
  }
  std::map<std::string, DimJoin> joins;  // by dim alias
  std::map<std::string, std::vector<ExprPtr>> dim_locals;

  auto is_reads_ref = [&](const Expr& ref) {
    if (EqualsIgnoreCase(ref.qualifier, alias)) return true;
    return ref.qualifier.empty() && reads->schema().HasColumn(ref.column);
  };

  for (const ExprPtr& c : SplitConjuncts(core.where)) {
    std::vector<const Expr*> refs;
    CollectColumnRefs(c, &refs);
    bool all_reads = !refs.empty();
    for (const Expr* r : refs) {
      if (!is_reads_ref(*r)) all_reads = false;
    }
    if (all_reads) {
      out.s_local.push_back(SubstituteQualifier(c, alias, ""));
      continue;
    }
    // Equi-join reads.K = dim.K' ?
    if (c->kind == ExprKind::kBinary && c->op == BinaryOp::kEq &&
        c->children[0]->kind == ExprKind::kColumnRef &&
        c->children[1]->kind == ExprKind::kColumnRef) {
      const Expr* l = c->children[0].get();
      const Expr* r = c->children[1].get();
      const Expr* reads_side = nullptr;
      const Expr* dim_side = nullptr;
      if (is_reads_ref(*l) && dims.count(ToLower(r->qualifier))) {
        reads_side = l;
        dim_side = r;
      } else if (is_reads_ref(*r) && dims.count(ToLower(l->qualifier))) {
        reads_side = r;
        dim_side = l;
      }
      if (reads_side != nullptr) {
        DimJoin join;
        join.dim_alias = dim_side->qualifier;
        join.dim_table = dims[ToLower(dim_side->qualifier)];
        join.reads_column = reads_side->column;
        join.dim_column = dim_side->column;
        joins[ToLower(dim_side->qualifier)] = std::move(join);
        continue;
      }
    }
    // Dimension-local conjunct?
    bool single_dim = !refs.empty();
    std::string dim_alias;
    for (const Expr* r : refs) {
      if (dims.count(ToLower(r->qualifier)) == 0) {
        single_dim = false;
        break;
      }
      if (dim_alias.empty()) {
        dim_alias = ToLower(r->qualifier);
      } else if (dim_alias != ToLower(r->qualifier)) {
        single_dim = false;
        break;
      }
    }
    if (single_dim) dim_locals[dim_alias].push_back(c);
    // Anything else is left in place; it is simply not exploited.
  }

  for (auto& [alias_key, join] : joins) {
    auto it = dim_locals.find(alias_key);
    if (it != dim_locals.end()) {
      join.dim_conjuncts = it->second;
      std::vector<ExprPtr> stripped;
      for (const ExprPtr& c : join.dim_conjuncts) {
        stripped.push_back(SubstituteQualifier(c, join.dim_alias, ""));
      }
      join.selectivity = EstimateSelectivity(stripped, join.dim_table);
    }
    out.joins.push_back(std::move(join));
  }
  std::sort(out.joins.begin(), out.joins.end(),
            [](const DimJoin& a, const DimJoin& b) {
              return a.selectivity < b.selectivity;
            });
  return out;
}

// The sequence-key interval hull of the disjuncts of ec (the paper's
// "relaxed" expanded condition, Section 5.2 / Table 1). Returns nullptr
// when some disjunct is unbounded on both sides.
ExprPtr RelaxToSkeyInterval(const std::vector<ExprPtr>& disjuncts,
                            const std::string& skey) {
  ValueInterval hull;
  bool first = true;
  for (const ExprPtr& d : disjuncts) {
    ValueInterval iv;
    for (const ExprPtr& c : SplitConjuncts(d)) {
      ColumnLiteralCmp m;
      if (MatchColumnLiteralCmp(c, &m) &&
          EqualsIgnoreCase(m.column->column, skey) && m.op != BinaryOp::kNe) {
        iv.IntersectCmp(m.op, m.literal);
      }
    }
    if (first) {
      hull = iv;
      first = false;
    } else {
      hull.UnionHull(iv);
    }
  }
  if (hull.Unconstrained()) return nullptr;
  return hull.ToConjuncts(MakeColumnRef("", skey));
}

// Conjunct c1 implies c2 when both are comparisons on the same column and
// c1's interval is contained in c2's.
bool ConjunctImplies(const ExprPtr& c1, const ExprPtr& c2) {
  if (ExprEquals(c1, c2)) return true;
  ColumnLiteralCmp m1;
  ColumnLiteralCmp m2;
  if (!MatchColumnLiteralCmp(c1, &m1) || !MatchColumnLiteralCmp(c2, &m2)) {
    return false;
  }
  if (!EqualsIgnoreCase(m1.column->column, m2.column->column) ||
      !EqualsIgnoreCase(m1.column->qualifier, m2.column->qualifier)) {
    return false;
  }
  if (!TypesComparable(m1.literal.type(), m2.literal.type())) return false;
  ValueInterval i1;
  i1.IntersectCmp(m1.op, m1.literal);
  ValueInterval i2;
  i2.IntersectCmp(m2.op, m2.literal);
  return i2.Contains(i1);
}

// Drops disjuncts that are implied by (contained in) another disjunct: D2
// is redundant when every conjunct of some other D1 is implied by a
// conjunct of D2 (then rows(D2) ⊆ rows(D1)).
std::vector<ExprPtr> SimplifyDisjuncts(std::vector<ExprPtr> disjuncts) {
  std::vector<bool> dead(disjuncts.size(), false);
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (dead[i]) continue;
    std::vector<ExprPtr> ci = SplitConjuncts(disjuncts[i]);
    for (size_t j = 0; j < disjuncts.size(); ++j) {
      if (i == j || dead[j] || dead[i]) continue;
      std::vector<ExprPtr> cj = SplitConjuncts(disjuncts[j]);
      bool covers = true;  // does D_i cover D_j (D_j redundant)?
      for (const ExprPtr& c1 : ci) {
        bool implied = false;
        for (const ExprPtr& c2 : cj) {
          if (ConjunctImplies(c2, c1)) {
            implied = true;
            break;
          }
        }
        if (!implied) {
          covers = false;
          break;
        }
      }
      if (covers) dead[j] = true;
    }
  }
  std::vector<ExprPtr> out;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (!dead[i]) out.push_back(disjuncts[i]);
  }
  return out;
}

// Rewrite invariant: every candidate statement must project the same
// schema as the user's original query — same column count, and per
// position the same name (case-insensitive) and type.
Status CheckProjectionPreserved(const RowDesc& original, const RowDesc& got,
                                const std::string& label) {
  const auto& want = original.fields();
  const auto& have = got.fields();
  if (want.size() != have.size()) {
    return Status::Internal(StrFormat(
        "verify[rewrite] op=%s: invariant=projection-schema: candidate "
        "projects %zu columns, original query projects %zu",
        label.c_str(), have.size(), want.size()));
  }
  for (size_t i = 0; i < want.size(); ++i) {
    if (!EqualsIgnoreCase(have[i].name, want[i].name) ||
        have[i].type != want[i].type) {
      return Status::Internal(StrFormat(
          "verify[rewrite] op=%s: invariant=projection-schema: output "
          "column %zu is %s '%s', original query has %s '%s'",
          label.c_str(), i, DataTypeName(have[i].type), have[i].name.c_str(),
          DataTypeName(want[i].type), want[i].name.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace

Result<RewriteInfo> QueryRewriter::Rewrite(std::string_view sql,
                                           const RewriteOptions& options) const {
  RFID_FAULT_POINT("rewrite.Rewrite");
  RFID_ASSIGN_OR_RETURN(StatementPtr stmt, ParseSql(sql));

  // Find the (single) table with rules that the query reads.
  std::string table;
  TargetSite site;
  for (const CleansingRule& rule : engine_->rules()) {
    TargetSite probe;
    FindTable(stmt.get(), rule.on_table, &probe);
    if (probe.occurrences > 0) {
      if (!table.empty() && !EqualsIgnoreCase(table, rule.on_table)) {
        return Status::Unimplemented(
            "query reads several tables with cleansing rules");
      }
      table = rule.on_table;
      site = probe;
    }
  }
  RewriteInfo info;
  if (table.empty()) {
    info.sql = std::string(sql);
    info.chosen = RewriteStrategy::kNone;
    return info;
  }
  if (site.occurrences > 1) {
    return Status::Unimplemented(
        "query references the cleansed table more than once");
  }
  std::vector<const CleansingRule*> rules = engine_->RulesFor(table);
  RFID_ASSIGN_OR_RETURN(Table * reads, db_->ResolveTable(table));
  info.lint = LintRulesFor(engine_->rules(), table);

  QueryAnalysis analysis = AnalyzeCore(*site.core, site.alias, reads, *db_);

  // --- transitivity: per-rule context conditions ---
  std::vector<ExprPtr> query_conjuncts = analysis.s_local;
  for (const DimJoin& j : analysis.joins) {
    // A join with no dimension-local predicate restricts nothing; leaving
    // it out keeps the derived context conditions (and the candidate
    // statements) free of no-op IN-subqueries.
    if (!j.dim_conjuncts.empty()) {
      query_conjuncts.push_back(j.AsInConjunct());
    }
  }
  bool expanded_feasible = true;
  std::vector<ExprPtr> rule_ccs;
  for (const CleansingRule* rule : rules) {
    RFID_ASSIGN_OR_RETURN(std::vector<Column> raw_cols,
                          RuleInputColumns(*rule, *db_));
    std::set<std::string> allowed;
    for (const Column& c : raw_cols) allowed.insert(ToLower(c.name));
    RuleContextInfo rule_info;
    rule_info.rule_name = rule->name;
    rule_info.feasible = true;
    ExprPtr rule_cc;
    for (const ContextCorrelation& corr : AnalyzeCorrelations(*rule)) {
      ContextDerivation d = DeriveContextCondition(corr, query_conjuncts,
                                                   rule->skey, allowed);
      if (d.condition == nullptr || !d.restrictive) {
        rule_info.feasible = false;
        rule_cc = nullptr;
        break;
      }
      rule_cc = (rule_cc == nullptr)
                    ? d.condition
                    : MakeBinary(BinaryOp::kOr, rule_cc, d.condition);
    }
    rule_info.context_condition = rule_cc;
    if (!rule_info.feasible) expanded_feasible = false;
    if (rule_cc != nullptr) rule_ccs.push_back(rule_cc);
    info.contexts.push_back(std::move(rule_info));
  }

  // --- expanded condition (s ∨ cc1 ∨ ... ∨ ccn) ---
  ExprPtr s_all = CombineConjuncts(analysis.s_local);
  if (expanded_feasible && s_all != nullptr) {
    std::vector<ExprPtr> disjuncts;
    disjuncts.push_back(s_all);
    for (const ExprPtr& cc : rule_ccs) disjuncts.push_back(cc);
    disjuncts = SimplifyDisjuncts(std::move(disjuncts));
    info.expanded_condition = CombineDisjuncts(disjuncts);
    info.relaxed_condition = RelaxToSkeyInterval(disjuncts, rules.front()->skey);
  }

  // --- generate and cost candidates ---
  struct PendingCandidate {
    CandidateSpec spec;
  };
  std::vector<PendingCandidate> pending;

  pending.push_back({{"naive", RewriteStrategy::kNaive, nullptr, false, nullptr}});

  // Joins with real dimension predicates, ascending selectivity: these
  // are the restrictions worth pushing (the paper's D'_i / semi-joins).
  std::vector<const DimJoin*> pushable;
  for (const DimJoin& j : analysis.joins) {
    if (!j.dim_conjuncts.empty()) pushable.push_back(&j);
  }
  // For the expanded rewrite, the paper pushes a join before cleansing
  // only when its restriction was derived onto every context reference
  // (always true for joins on the cluster key). Aggressive pushdown
  // relaxes this: the restriction is applied to the query part of ec
  // only, which is still correct (contexts stay covered by the cc
  // disjuncts) but goes beyond the published algorithm.
  std::vector<const DimJoin*> expanded_pushable;
  for (const DimJoin* j : pushable) {
    bool derivable_everywhere = true;
    for (const CleansingRule* rule : rules) {
      for (const ContextCorrelation& corr : AnalyzeCorrelations(*rule)) {
        bool found = false;
        for (const auto& [xcol, tcol] : corr.equalities) {
          if (EqualsIgnoreCase(tcol, j->reads_column)) found = true;
        }
        if (!found) derivable_everywhere = false;
      }
    }
    if (derivable_everywhere || options.aggressive_join_pushdown) {
      expanded_pushable.push_back(j);
    }
  }

  if (expanded_feasible) {
    // k = number of dimension restrictions pushed into the query part of
    // ec, in ascending selectivity order (Section 5.2's m+1 statements).
    for (size_t k = 0; k <= expanded_pushable.size(); ++k) {
      std::vector<ExprPtr> s_part = analysis.s_local;
      for (size_t i = 0; i < k; ++i) {
        s_part.push_back(expanded_pushable[i]->AsInConjunct());
      }
      ExprPtr s_comb = CombineConjuncts(s_part);
      ExprPtr ec;
      if (s_comb != nullptr) {
        std::vector<ExprPtr> disjuncts;
        disjuncts.push_back(s_comb);
        for (const ExprPtr& cc : rule_ccs) disjuncts.push_back(cc);
        disjuncts = SimplifyDisjuncts(std::move(disjuncts));
        ec = CombineDisjuncts(disjuncts);
      }
      // A query with no restriction on the reads table makes ec trivially
      // TRUE (s ∨ cc = TRUE): the expanded rewrite degenerates to cleansing
      // the unrestricted input, i.e. the naive plan. ec = nullptr encodes
      // that (no WHERE on the input).
      pending.push_back({{StrFormat("expanded+%zu joins", k),
                          RewriteStrategy::kExpanded, ec, false, nullptr}});
    }
    if (info.relaxed_condition != nullptr) {
      pending.push_back({{"expanded relaxed", RewriteStrategy::kExpanded,
                          info.relaxed_condition, false, nullptr}});
    }
  }

  // Join-back: n+1 key-source variants (Section 5.3), each plain and —
  // when available — improved with the expanded condition on the input.
  for (size_t k = 0; k <= pushable.size(); ++k) {
    std::vector<ExprPtr> keys_part = analysis.s_local;
    for (size_t i = 0; i < k; ++i) {
      keys_part.push_back(pushable[i]->AsInConjunct());
    }
    ExprPtr keys_cond = CombineConjuncts(keys_part);
    pending.push_back({{StrFormat("join-back+%zu semijoins", k),
                        RewriteStrategy::kJoinBack, nullptr, true, keys_cond}});
    if (info.expanded_condition != nullptr) {
      pending.push_back({{StrFormat("join-back improved+%zu semijoins", k),
                          RewriteStrategy::kJoinBack, info.expanded_condition,
                          true, keys_cond}});
    }
  }

  // Under verification, plan the user's statement once and hold every
  // candidate's output schema to it (the projection-schema invariant).
  RowDesc original_desc;
  const bool check_schema = VerifyEnabled();
  if (check_schema) {
    RFID_ASSIGN_OR_RETURN(PlannedQuery original,
                          PlanSql(*db_, sql, options.exec_context));
    original_desc = original.root->output_desc();
  }

  for (const PendingCandidate& p : pending) {
    RFID_ASSIGN_OR_RETURN(std::string candidate_sql,
                          AssembleRewrite(*stmt, table, rules, *db_, p.spec));
    RFID_ASSIGN_OR_RETURN(
        PlannedQuery plan,
        PlanSql(*db_, candidate_sql, options.exec_context));
    if (check_schema) {
      RFID_RETURN_IF_ERROR(CheckProjectionPreserved(
          original_desc, plan.root->output_desc(), p.spec.label));
    }
    info.candidates.push_back({p.spec.label, p.spec.strategy,
                               std::move(candidate_sql), plan.estimated_cost});
  }

  // --- pick the winner ---
  const RewriteCandidate* best = nullptr;
  for (const RewriteCandidate& c : info.candidates) {
    bool eligible = false;
    switch (options.strategy) {
      case RewriteStrategy::kAuto:
        eligible = c.strategy == RewriteStrategy::kExpanded ||
                   c.strategy == RewriteStrategy::kJoinBack;
        break;
      case RewriteStrategy::kNaive:
        eligible = c.strategy == RewriteStrategy::kNaive;
        break;
      case RewriteStrategy::kExpanded:
        eligible = c.strategy == RewriteStrategy::kExpanded;
        break;
      case RewriteStrategy::kJoinBack:
        eligible = c.strategy == RewriteStrategy::kJoinBack;
        break;
      case RewriteStrategy::kNone:
        break;
    }
    if (!eligible) continue;
    if (best == nullptr || c.estimated_cost < best->estimated_cost) best = &c;
  }
  if (best == nullptr) {
    if (options.strategy == RewriteStrategy::kExpanded) {
      return Status::RewriteInfeasible(
          "no expanded rewrite exists for this query/rule combination");
    }
    return Status::Internal("no rewrite candidate produced");
  }
  info.sql = best->sql;
  info.chosen = best->strategy;
  info.estimated_cost = best->estimated_cost;
  return info;
}

}  // namespace rfid
