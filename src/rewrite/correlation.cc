#include "rewrite/correlation.h"

#include "common/string_util.h"
#include "expr/conjunct.h"

namespace rfid {

namespace {

// Collects the conjuncts of the rule condition that reference X and can
// be attributed to X soundly. Conjuncts under an OR are usable when X
// appears in exactly one branch (that branch's X-conjuncts restrict the
// rows of X that can matter). Sets *multi_branch when X appears in more
// than one OR branch or under NOT (no sound attribution).
void CollectContextConjuncts(const ExprPtr& e, const std::string& x,
                             std::vector<ExprPtr>* out, bool* multi_branch) {
  if (e == nullptr || !References(e, x)) return;
  if (e->kind == ExprKind::kBinary && e->op == BinaryOp::kAnd) {
    CollectContextConjuncts(e->children[0], x, out, multi_branch);
    CollectContextConjuncts(e->children[1], x, out, multi_branch);
    return;
  }
  if (e->kind == ExprKind::kBinary && e->op == BinaryOp::kOr) {
    bool left = References(e->children[0], x);
    bool right = References(e->children[1], x);
    if (left && right) {
      *multi_branch = true;
      return;
    }
    CollectContextConjuncts(left ? e->children[0] : e->children[1], x, out,
                            multi_branch);
    return;
  }
  if (e->kind == ExprKind::kNot) {
    *multi_branch = true;  // negation flips bounds; be conservative
    return;
  }
  out->push_back(e);
}

}  // namespace

std::vector<ContextCorrelation> AnalyzeCorrelations(const CleansingRule& rule) {
  std::vector<ContextCorrelation> result;
  int ti = rule.TargetIndex();
  if (ti < 0) return result;
  const std::string& target = rule.target;

  for (size_t i = 0; i < rule.pattern.size(); ++i) {
    if (static_cast<int>(i) == ti) continue;
    const PatternRef& ref = rule.pattern[i];
    ContextCorrelation corr;
    corr.name = ref.name;
    corr.position_based = !ref.is_set;

    // Implied conjuncts: ckey equality and the pattern-order skey bound
    // (strict order folded to inclusive microsecond bounds).
    corr.equalities.emplace_back(rule.ckey, rule.ckey);
    if (static_cast<int>(i) < ti) {
      corr.skey_diff_hi = -1;
    } else {
      corr.skey_diff_lo = 1;
    }

    std::vector<ExprPtr> conjuncts;
    bool multi_branch = false;
    CollectContextConjuncts(rule.condition, ref.name, &conjuncts, &multi_branch);
    if (multi_branch) {
      corr.implied_only = true;
      result.push_back(std::move(corr));
      continue;
    }

    for (const ExprPtr& c : conjuncts) {
      // Context-only conjunct?
      if (RefersOnlyTo(c, ref.name)) {
        if (!corr.position_based) corr.context_only.push_back(c);
        continue;  // Observation 1(b): dropped for position-based contexts
      }
      ColumnDifferenceCmp m;
      if (!MatchColumnDifferenceCmp(c, &m)) continue;
      // Identify which side is X and which is the target.
      bool x_left = EqualsIgnoreCase(m.left->qualifier, ref.name) &&
                    EqualsIgnoreCase(m.right->qualifier, target);
      bool x_right = EqualsIgnoreCase(m.right->qualifier, ref.name) &&
                     EqualsIgnoreCase(m.left->qualifier, target);
      if (!x_left && !x_right) continue;  // correlates two contexts; unusable

      bool skey_pair = EqualsIgnoreCase(m.left->column, rule.skey) &&
                       EqualsIgnoreCase(m.right->column, rule.skey);
      if (skey_pair) {
        // Normalize to X - T OP offset.
        BinaryOp op = x_left ? m.op : SwapComparison(m.op);
        int64_t offset = x_left ? m.offset_micros : -m.offset_micros;
        auto tighten_lo = [&corr](int64_t v) {
          if (!corr.skey_diff_lo || v > *corr.skey_diff_lo) corr.skey_diff_lo = v;
        };
        auto tighten_hi = [&corr](int64_t v) {
          if (!corr.skey_diff_hi || v < *corr.skey_diff_hi) corr.skey_diff_hi = v;
        };
        // Position-preserving constraint (Observation 1a): for
        // position-based contexts only bounds that keep the window
        // adjacent to the target are usable — a lower bound for contexts
        // before the target, an upper bound for contexts after it.
        switch (op) {
          case BinaryOp::kLt:
            if (!corr.position_based || static_cast<int>(i) > ti) {
              tighten_hi(offset - 1);
            }
            break;
          case BinaryOp::kLe:
            if (!corr.position_based || static_cast<int>(i) > ti) {
              tighten_hi(offset);
            }
            break;
          case BinaryOp::kGt:
            if (!corr.position_based || static_cast<int>(i) < ti) {
              tighten_lo(offset + 1);
            }
            break;
          case BinaryOp::kGe:
            if (!corr.position_based || static_cast<int>(i) < ti) {
              tighten_lo(offset);
            }
            break;
          case BinaryOp::kEq:
            tighten_lo(offset);
            tighten_hi(offset);
            break;
          default:
            break;
        }
        continue;
      }
      // Column equality between X and T on an arbitrary column.
      if (m.op == BinaryOp::kEq && m.offset_micros == 0) {
        if (corr.position_based) continue;  // Observation 1(b)
        const Expr* x_side = x_left ? m.left : m.right;
        const Expr* t_side = x_left ? m.right : m.left;
        corr.equalities.emplace_back(x_side->column, t_side->column);
      }
    }
    result.push_back(std::move(corr));
  }
  return result;
}

}  // namespace rfid
