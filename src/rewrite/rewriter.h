// The query rewrite engine (Figure 1, components 3-5; Section 5).
//
// Given a user SQL query that reads a table with cleansing rules, the
// rewriter produces a new SQL statement whose answer equals the query
// over the cleansed table Q[C1..Cn]. Strategies:
//
//  - naive     : cleanse everything —  σ_s(Φ(R))                (baseline)
//  - expanded  : σ_s(Φ(σ_ec(R))) with ec = s ∨ cc1 ∨ ... derived by
//                transitivity analysis (Figure 4); infeasible when some
//                context condition cannot be derived
//  - join-back : σ_s(Φ(σ_[ec](R ⋉ Πckey σ_s(I)))) — always feasible
//
// Join queries: n:1 dimension joins are converted to IN-subqueries; the
// m+1 / n+1 pushdown variants of Sections 5.2-5.3 are generated as
// candidates, each planned by the engine, and the cheapest cost estimate
// wins — mirroring the paper's use of DBMS compile-time estimates.
#ifndef RFID_REWRITE_REWRITER_H_
#define RFID_REWRITE_REWRITER_H_

#include "cleansing/rule.h"
#include "exec/exec_context.h"
#include "verify/rule_linter.h"

namespace rfid {

enum class RewriteStrategy {
  kAuto,      // cheapest of expanded / join-back
  kExpanded,
  kJoinBack,
  kNaive,
  kNone,      // no rules applied; query returned unchanged
};

const char* RewriteStrategyName(RewriteStrategy s);

struct RewriteOptions {
  RewriteStrategy strategy = RewriteStrategy::kAuto;

  /// Paper-faithful expanded rewrites (the default) push a dimension
  /// restriction before cleansing only when it is derivable on every
  /// context reference (Section 5.2's D'_i tables). With aggressive
  /// pushdown enabled — an extension beyond the paper — any dimension
  /// restriction may be AND-ed into the query part of the expanded
  /// condition: context rows are still covered by the cc disjuncts, so
  /// answers stay correct, and the cleansing input shrinks further.
  bool aggressive_join_pushdown = false;

  /// Execution context used while costing candidates (plan-time subquery
  /// materialization runs under its budget/deadline/cancellation).
  /// nullptr = the unlimited default context.
  ExecContext* exec_context = nullptr;
};

struct RewriteCandidate {
  std::string label;
  RewriteStrategy strategy = RewriteStrategy::kNaive;
  std::string sql;
  double estimated_cost = 0;
};

/// Per-rule diagnostics: the derived context condition (Table 1 of the
/// paper prints exactly these).
struct RuleContextInfo {
  std::string rule_name;
  bool feasible = false;
  ExprPtr context_condition;  // OR over the rule's context references
};

struct RewriteInfo {
  std::string sql;  // chosen rewritten statement (or original when kNone)
  RewriteStrategy chosen = RewriteStrategy::kNone;
  double estimated_cost = 0;

  ExprPtr expanded_condition;  // full ec (disjunction); null if infeasible
  ExprPtr relaxed_condition;   // sequence-key interval relaxation of ec
  std::vector<RuleContextInfo> contexts;
  std::vector<RewriteCandidate> candidates;  // everything that was costed

  /// Static-lint findings for the rules that applied to this query's
  /// table (duplicate names, unsatisfiable conditions, DELETE/KEEP
  /// overlap, correction-order nondeterminism). Advisory: the rewrite
  /// proceeds regardless; EXPLAIN and `rfidsql` surface these.
  std::vector<LintFinding> lint;
};

class QueryRewriter {
 public:
  QueryRewriter(Database* db, const CleansingRuleEngine* engine)
      : db_(db), engine_(engine) {}

  /// Rewrites the query with respect to every rule defined on the tables
  /// it reads. Queries over rule-free tables pass through unchanged.
  Result<RewriteInfo> Rewrite(std::string_view sql,
                              const RewriteOptions& options = {}) const;

 private:
  Database* db_;
  const CleansingRuleEngine* engine_;
};

}  // namespace rfid

#endif  // RFID_REWRITE_REWRITER_H_
