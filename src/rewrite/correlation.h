// Correlation analysis between a rule's target reference and its context
// references (Section 5.2, Definitions 1-2, Observation 1).
//
// For each context reference X the analysis produces the correlation
// conjuncts usable for transitivity, in normalized form:
//   - column equalities X.col = T.col (the implied ckey equality always);
//   - bounds on the sequence-key difference X.skey - T.skey, folded to
//     inclusive microsecond bounds (pattern position implies X-T <= -1 or
//     >= +1; explicit "B.rtime - A.rtime < t" conjuncts tighten them);
//   - context-only conjuncts (e.g. B.reader = 'readerX').
//
// Position-based contexts (no '*') additionally imply a sequence-position
// conjunct; per Observation 1 only position-preserving correlation
// conjuncts may be used for them: the ckey equality and skey-difference
// bounds that keep the context window contiguous with the target. Their
// other conjuncts (and context-only predicates) are discarded.
#ifndef RFID_REWRITE_CORRELATION_H_
#define RFID_REWRITE_CORRELATION_H_

#include <optional>

#include "cleansing/rule.h"

namespace rfid {

struct ContextCorrelation {
  std::string name;           // context reference name
  bool position_based = false;

  // X.col = T.col equalities (column names on X side and T side).
  std::vector<std::pair<std::string, std::string>> equalities;

  // Inclusive microsecond bounds on X.skey - T.skey; nullopt = unbounded.
  std::optional<int64_t> skey_diff_lo;
  std::optional<int64_t> skey_diff_hi;

  // Conjuncts referencing only X (qualifier X), usable directly as
  // context conditions (set-based contexts only).
  std::vector<ExprPtr> context_only;

  // True when X appears in several OR branches of the rule condition; the
  // explicit conjuncts could not be used soundly, so only the implied
  // ckey/skey correlations are present.
  bool implied_only = false;
};

/// Analyzes every context reference of the rule. Never fails for a valid
/// rule; contexts whose conjuncts cannot be analyzed fall back to the
/// implied correlations only.
std::vector<ContextCorrelation> AnalyzeCorrelations(const CleansingRule& rule);

}  // namespace rfid

#endif  // RFID_REWRITE_CORRELATION_H_
