// Transitivity analysis (Figure 4, lines 3-9): derives a context
// condition — conjuncts referencing only the context reference — from the
// query condition s (bound to the target) and the usable correlation
// conjuncts.
#ifndef RFID_REWRITE_TRANSITIVITY_H_
#define RFID_REWRITE_TRANSITIVITY_H_

#include <set>

#include "rewrite/correlation.h"

namespace rfid {

struct ContextDerivation {
  // AND of derived conjuncts with qualifiers stripped (they apply to the
  // rule-input relation). nullptr means nothing could be derived: the
  // expanded rewrite is infeasible for this rule (Figure 4 line 9).
  ExprPtr condition;
  // True when something genuinely restrictive was derived (a sequence-key
  // interval, a propagated literal predicate, or a context-only rule
  // conjunct). A derivation consisting solely of join-membership
  // IN-subqueries does not make the expanded rewrite worthwhile — the
  // paper's Table 1 treats such contexts as having no expanded condition.
  bool restrictive = false;
};

/// `query_conjuncts`: the query's local conjuncts on the reads table,
/// with qualifiers stripped (they bind to the target reference).
/// `allowed_columns`: columns present in the raw rule input — derived
/// conjuncts on other columns (e.g. ones a previous MODIFY created) are
/// discarded. `skey`: the rule's sequence key.
ContextDerivation DeriveContextCondition(
    const ContextCorrelation& corr,
    const std::vector<ExprPtr>& query_conjuncts,
    const std::string& skey, const std::set<std::string>& allowed_columns);

}  // namespace rfid

#endif  // RFID_REWRITE_TRANSITIVITY_H_
