// Candidate assembly for the rewrite engine: turns a strategy choice plus
// restriction predicates into a complete SQL statement (WITH chain over
// the restricted input, user query body re-targeted at the cleansed
// output).
#ifndef RFID_REWRITE_CANDIDATES_H_
#define RFID_REWRITE_CANDIDATES_H_

#include "cleansing/chain.h"
#include "rewrite/rewriter.h"

namespace rfid {

struct CandidateSpec {
  std::string label;
  RewriteStrategy strategy = RewriteStrategy::kNaive;
  // Condition pushed onto the raw reads table (and onto a derived rule
  // input after its union); nullptr = none. Columns unqualified.
  ExprPtr input_condition;
  // Join-back: when set, the input is semi-joined to the distinct cluster
  // keys of the keys source filtered by this condition.
  bool join_back = false;
  ExprPtr keys_condition;
};

/// Builds the rewritten statement for one candidate. `original` is the
/// parsed user query (left untouched), `table` the rules' ON table.
Result<std::string> AssembleRewrite(const SelectStatement& original,
                                    const std::string& table,
                                    const std::vector<const CleansingRule*>& rules,
                                    const Database& db,
                                    const CandidateSpec& spec);

}  // namespace rfid

#endif  // RFID_REWRITE_CANDIDATES_H_
