#include "server/session.h"

#include "common/string_util.h"

namespace rfid::server {

Result<std::shared_ptr<Session>> SessionManager::Create(Database* db) {
  MutexLock lock(&mu_);
  if (static_cast<int>(sessions_.size()) >= max_sessions_) {
    return Status::ResourceExhausted(
        StrFormat("session limit reached (%d active, max %d)",
                  static_cast<int>(sessions_.size()), max_sessions_));
  }
  auto session = std::make_shared<Session>(next_id_++, db);
  sessions_[session->id] = session;
  ++total_created_;
  return session;
}

void SessionManager::Release(uint64_t id) {
  MutexLock lock(&mu_);
  sessions_.erase(id);
}

int SessionManager::active() const {
  MutexLock lock(&mu_);
  return static_cast<int>(sessions_.size());
}

uint64_t SessionManager::total_created() const {
  MutexLock lock(&mu_);
  return total_created_;
}

}  // namespace rfid::server
