#include "server/admission.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"

namespace rfid::server {

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {
  options_.max_concurrent = std::max(1, options_.max_concurrent);
  options_.per_query_bytes =
      std::max<uint64_t>(1, std::min(options_.per_query_bytes,
                                     options_.pool_bytes));
}

void AdmissionController::Ticket::Release() {
  if (controller_ == nullptr) return;
  {
    MutexLock lock(&controller_->mu_);
    controller_->ReleaseLocked(bytes_);
  }
  controller_->cv_.NotifyAll();
  controller_ = nullptr;
}

void AdmissionController::ReleaseLocked(uint64_t bytes) {
  --running_;
  pool_used_ -= bytes;
  stats_.running = running_;
  stats_.pool_used = pool_used_;
}

bool AdmissionController::CanRunLocked(uint64_t bytes) const {
  return running_ < options_.max_concurrent &&
         pool_used_ + bytes <= options_.pool_bytes;
}

Result<AdmissionController::Ticket> AdmissionController::Admit() {
  const uint64_t bytes = options_.per_query_bytes;
  MutexLock lock(&mu_);
  if (shutdown_) {
    ++stats_.rejected_shutdown;
    return Status::Cancelled("server shutting down");
  }
  if (!CanRunLocked(bytes) || !queue_.empty()) {
    if (queue_.size() >= options_.queue_depth) {
      ++stats_.rejected_queue_full;
      return Status::ResourceExhausted(StrFormat(
          "admission queue full: %d queries running, %zu queued "
          "(queue depth %zu)",
          running_, queue_.size(), options_.queue_depth));
    }
    const uint64_t id = next_waiter_++;
    queue_.push_back(id);
    ++stats_.queued;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(options_.queue_wait_micros);
    // FIFO: only the queue head may take the next free slot, so a burst
    // of late arrivals cannot starve an early waiter.
    bool granted = true;
    while (!shutdown_ && !(queue_.front() == id && CanRunLocked(bytes))) {
      if (cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
        granted = shutdown_ || (queue_.front() == id && CanRunLocked(bytes));
        break;
      }
    }
    auto self = std::find(queue_.begin(), queue_.end(), id);
    if (self != queue_.end()) queue_.erase(self);
    if (shutdown_) {
      ++stats_.rejected_shutdown;
      lock.Unlock();
      cv_.NotifyAll();
      return Status::Cancelled("server shutting down");
    }
    if (!granted) {
      ++stats_.rejected_timeout;
      const int running_now = running_;
      lock.Unlock();
      // The head slot may have opened for the next waiter.
      cv_.NotifyAll();
      return Status::ResourceExhausted(StrFormat(
          "queue wait deadline exceeded after %lld ms (%d queries running)",
          static_cast<long long>(options_.queue_wait_micros / 1000),
          running_now));
    }
  }
  ++running_;
  pool_used_ += bytes;
  ++stats_.admitted;
  stats_.running = running_;
  stats_.pool_used = pool_used_;
  lock.Unlock();
  // A successor may be admissible too (multiple slots can free at once).
  cv_.NotifyAll();
  return Ticket(this, bytes);
}

void AdmissionController::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
}

AdmissionController::Stats AdmissionController::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace rfid::server
