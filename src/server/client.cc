#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/string_util.h"

namespace rfid::server {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("bad server address: %s", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Internal(StrFormat(
        "connect %s:%d failed: %s", host.c_str(), port, std::strerror(errno)));
    ::close(fd);
    return st;
  }
  std::unique_ptr<Client> client(new Client(fd));
  std::string hello;
  PutU32(&hello, kProtocolVersion);
  auto response = client->RoundTrip(FrameType::kHello, hello);
  if (!response.ok()) return response.status();
  if (response->first != FrameType::kWelcome) {
    return Status::Internal(StrFormat("expected WELCOME, got %s frame",
                                      FrameTypeName(response->first)));
  }
  WireReader reader(response->second);
  uint32_t version = 0;
  Status st = reader.GetU32(&version);
  if (st.ok()) st = reader.GetU64(&client->session_id_);
  if (st.ok()) st = reader.ExpectDone();
  if (!st.ok()) return st;
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrFormat("protocol version mismatch: server v%u, client v%u",
                  version, kProtocolVersion));
  }
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::pair<FrameType, std::string>> Client::RoundTrip(
    FrameType type, const std::string& payload) {
  if (fd_ < 0) return Status::Internal("connection already closed");
  Status st = WriteFrame(fd_, type, payload);
  if (!st.ok()) return st;
  FrameType response_type;
  std::string response;
  st = ReadFrame(fd_, &response_type, &response);
  if (!st.ok()) return st;
  if (response_type == FrameType::kError) {
    return DecodeErrorPayload(response);
  }
  return std::make_pair(response_type, std::move(response));
}

Result<RowsPayload> Client::RowsRoundTrip(FrameType type,
                                          const std::string& payload) {
  auto response = RoundTrip(type, payload);
  if (!response.ok()) return response.status();
  if (response->first != FrameType::kRows) {
    return Status::Internal(StrFormat("expected ROWS, got %s frame",
                                      FrameTypeName(response->first)));
  }
  RowsPayload rows;
  Status st = DecodeRowsPayload(response->second, &rows);
  if (!st.ok()) return st;
  return rows;
}

Result<std::string> Client::TextRoundTrip(FrameType type,
                                          const std::string& payload) {
  auto response = RoundTrip(type, payload);
  if (!response.ok()) return response.status();
  if (response->first != FrameType::kOk) {
    return Status::Internal(StrFormat("expected OK, got %s frame",
                                      FrameTypeName(response->first)));
  }
  WireReader reader(response->second);
  std::string text;
  Status st = reader.GetString(&text);
  if (st.ok()) st = reader.ExpectDone();
  if (!st.ok()) return st;
  return text;
}

Result<RowsPayload> Client::Query(const std::string& sql) {
  std::string payload;
  PutString(&payload, sql);
  return RowsRoundTrip(FrameType::kQuery, payload);
}

Result<uint64_t> Client::Prepare(const std::string& sql) {
  std::string payload;
  PutString(&payload, sql);
  auto response = RoundTrip(FrameType::kPrepare, payload);
  if (!response.ok()) return response.status();
  if (response->first != FrameType::kPrepared) {
    return Status::Internal(StrFormat("expected PREPARED, got %s frame",
                                      FrameTypeName(response->first)));
  }
  WireReader reader(response->second);
  uint64_t id = 0;
  Status st = reader.GetU64(&id);
  if (st.ok()) st = reader.ExpectDone();
  if (!st.ok()) return st;
  return id;
}

Result<RowsPayload> Client::Execute(uint64_t statement_id) {
  std::string payload;
  PutU64(&payload, statement_id);
  return RowsRoundTrip(FrameType::kExecute, payload);
}

Status Client::CloseStatement(uint64_t statement_id) {
  std::string payload;
  PutU64(&payload, statement_id);
  return TextRoundTrip(FrameType::kCloseStmt, payload).status();
}

Result<std::string> Client::Set(const std::string& key,
                                const std::string& value) {
  std::string payload;
  PutString(&payload, key);
  PutString(&payload, value);
  return TextRoundTrip(FrameType::kSet, payload);
}

Result<std::string> Client::Command(const std::string& line) {
  std::string payload;
  PutString(&payload, line);
  return TextRoundTrip(FrameType::kCommand, payload);
}

Status Client::Quit() {
  Status st = TextRoundTrip(FrameType::kQuit, std::string()).status();
  ::close(fd_);
  fd_ = -1;
  return st;
}

}  // namespace rfid::server
