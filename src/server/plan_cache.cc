#include "server/plan_cache.h"

#include <tuple>

namespace rfid::server {

bool PlanKey::operator<(const PlanKey& other) const {
  return std::tie(sql, strategy, rewriting_enabled, aggressive_pushdown,
                  catalog_fingerprint) <
         std::tie(other.sql, other.strategy, other.rewriting_enabled,
                  other.aggressive_pushdown, other.catalog_fingerprint);
}

std::optional<CachedPlan> PlanCache::Lookup(const PlanKey& key,
                                            uint64_t data_version,
                                            uint64_t stats_version,
                                            CacheOutcome* outcome) {
  MutexLock lock(&mu_);
  if (!enabled_) {
    *outcome = CacheOutcome::kMiss;
    return std::nullopt;
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    *outcome = CacheOutcome::kMiss;
    return std::nullopt;
  }
  if (it->second.plan.data_version != data_version ||
      it->second.plan.stats_version != stats_version) {
    // Derived under an older catalog state: the rewrite is still
    // *semantically* valid SQL, but its cost-based strategy choice came
    // from statistics that no longer exist. Drop and re-derive.
    lru_.erase(it->second.lru);
    entries_.erase(it);
    ++stats_.invalidations;
    *outcome = CacheOutcome::kInvalidated;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru);  // touch
  ++stats_.hits;
  *outcome = CacheOutcome::kHit;
  return it->second.plan;
}

void PlanCache::Insert(const PlanKey& key, CachedPlan plan) {
  MutexLock lock(&mu_);
  if (!enabled_ || capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(plan), lru_.begin()});
}

void PlanCache::set_enabled(bool enabled) {
  MutexLock lock(&mu_);
  enabled_ = enabled;
  if (!enabled_) {
    entries_.clear();
    lru_.clear();
  }
}

bool PlanCache::enabled() const {
  MutexLock lock(&mu_);
  return enabled_;
}

void PlanCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  lru_.clear();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(&mu_);
  Stats s = stats_;
  s.entries = entries_.size();
  return s;
}

}  // namespace rfid::server
