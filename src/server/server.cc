#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "common/simd.h"
#include "common/string_util.h"
#include "plan/planner.h"
#include "storage/columnar.h"
#include "rewrite/fragment_stitch.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/rfidgen.h"
#include "sql/parser.h"
#include "storage/persist.h"
#include "verify/rule_linter.h"

namespace rfid::server {

namespace {

// Target of the installed SIGINT / SIGTERM handlers. The handler only
// dereferences this to call the async-signal-safe RequestShutdown().
std::atomic<Server*> g_signal_server{nullptr};

void HandleShutdownSignal(int /*signo*/) {
  Server* server = g_signal_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestShutdown();
}

void SendError(int fd, const Status& error) {
  // Best effort: the peer may already be gone.
  (void)WriteFrame(fd, FrameType::kError, EncodeErrorPayload(error));
}

bool ParseOnOff(const std::string& value, bool* out) {
  if (value == "on") {
    *out = true;
    return true;
  }
  if (value == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

Server::InflightGuard::InflightGuard(Server* server, ExecContext* ctx)
    : server_(server), ctx_(ctx) {
  MutexLock lock(&server_->inflight_mu_);
  server_->inflight_.insert(ctx_);
  // A shutdown that ran before this query registered still has to cancel
  // it; re-check the flag under the same mutex the drain holds.
  if (server_->refusing_.load(std::memory_order_acquire)) {
    ctx_->RequestCancel("server shutting down");
  }
}

Server::InflightGuard::~InflightGuard() {
  MutexLock lock(&server_->inflight_mu_);
  server_->inflight_.erase(ctx_);
}

namespace {

// The fragment cache's capacity is carved out of the admission pool so
// cached cleansing results and query working memory draw from one global
// envelope; the carve is capped at half the pool so admission always
// keeps a usable budget.
size_t FragmentCarveBytes(const ServerOptions& options) {
  if (!options.fragment_cache_enabled) return 0;
  return std::min(options.fragment_cache_bytes,
                  options.admission.pool_bytes / 2);
}

cache::FragmentCacheOptions FragmentCacheOptionsFor(
    const ServerOptions& options) {
  cache::FragmentCacheOptions f;
  f.capacity_bytes = FragmentCarveBytes(options);
  f.enabled = options.fragment_cache_enabled;
  return f;
}

AdmissionOptions CarvedAdmission(const ServerOptions& options) {
  AdmissionOptions a = options.admission;
  a.pool_bytes -= FragmentCarveBytes(options);
  return a;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      sessions_(options.max_sessions),
      plan_cache_(options.plan_cache_capacity, options.plan_cache_enabled),
      fragment_cache_(FragmentCacheOptionsFor(options)),
      admission_(CarvedAdmission(options)) {}

Result<std::unique_ptr<Server>> Server::Start(ServerOptions options) {
  std::unique_ptr<Server> server(new Server(std::move(options)));
  Status st = server->Listen();
  if (!st.ok()) return st;
  server->accept_thread_ = std::thread([s = server.get()] { s->AcceptLoop(); });
  return server;
}

Status Server::Listen() {
  if (::pipe(wake_fd_) != 0) {
    return Status::Internal(
        StrFormat("pipe failed: %s", std::strerror(errno)));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrFormat("bad listen address: %s", options_.host.c_str()));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal(StrFormat("bind %s:%d failed: %s",
                                      options_.host.c_str(), options_.port,
                                      std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::Internal(
        StrFormat("listen failed: %s", std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::Internal(
        StrFormat("getsockname failed: %s", std::strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);
  return Status::OK();
}

Server::~Server() {
  Shutdown();
  Server* self = this;
  g_signal_server.compare_exchange_strong(self, nullptr);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_[0] >= 0) ::close(wake_fd_[0]);
  if (wake_fd_[1] >= 0) ::close(wake_fd_[1]);
}

void Server::InstallSignalHandlers() {
  g_signal_server.store(this, std::memory_order_release);
  struct sigaction sa{};
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  (void)sigaction(SIGINT, &sa, nullptr);
  (void)sigaction(SIGTERM, &sa, nullptr);
}

void Server::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Wake the accept loop; a single byte suffices and a full pipe means a
  // wake-up is already pending.
  char byte = 0;
  ssize_t ignored = ::write(wake_fd_[1], &byte, 1);
  (void)ignored;
}

void Server::WaitForShutdown() {
  {
    MutexLock lock(&shutdown_mu_);
    while (!shutdown_requested_.load(std::memory_order_acquire)) {
      shutdown_cv_.Wait(lock);
    }
  }
  Shutdown();
}

void Server::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    shutdown_requested_.store(true, std::memory_order_release);
    {
      // Cancel in-flight queries under the registry mutex so a context
      // cannot be destroyed mid-cancel; InflightGuard re-checks
      // `refusing_` under the same mutex, closing the race with queries
      // that registered after this loop.
      MutexLock lock(&inflight_mu_);
      refusing_.store(true, std::memory_order_release);
      for (ExecContext* ctx : inflight_) {
        ctx->RequestCancel("server shutting down");
      }
    }
    {
      MutexLock lock(&shutdown_mu_);
    }
    shutdown_cv_.NotifyAll();
    admission_.Shutdown();
    // Unblock connection threads parked in ReadFrame; their writes (the
    // in-flight query's response) still go through.
    {
      MutexLock lock(&conns_mu_);
      for (const auto& conn : conns_) {
        (void)::shutdown(conn->fd, SHUT_RD);
      }
    }
    auto drain = [this] {
      while (true) {
        std::unique_ptr<Connection> conn;
        {
          MutexLock lock(&conns_mu_);
          if (conns_.empty()) break;
          conn = std::move(conns_.front());
          conns_.pop_front();
        }
        if (conn->thread.joinable()) conn->thread.join();
        ::close(conn->fd);
      }
    };
    drain();
    // The accept thread kept refusing new connections with ERROR frames
    // during the drain above; now stop it and catch any straggler it
    // admitted between the first drain and its exit.
    accept_stop_.store(true, std::memory_order_release);
    char byte = 0;
    ssize_t ignored = ::write(wake_fd_[1], &byte, 1);
    (void)ignored;
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      MutexLock lock(&conns_mu_);
      for (const auto& conn : conns_) {
        (void)::shutdown(conn->fd, SHUT_RD);
      }
    }
    drain();
    // Durability flush: a final checkpoint makes every published epoch
    // part of the base image, so restart recovery is instant.
    Status flush = Status::OK();
    {
      WriterLock state_lock(&state_mu_);
      if (pipeline_ != nullptr) {
        if (wal_ != nullptr) flush = pipeline_->Checkpoint();
      } else if (wal_ != nullptr) {
        flush = wal_->Checkpoint();
      }
    }
    MutexLock lock(&flush_mu_);
    final_flush_status_ = flush;
  });
}

Status Server::final_flush_status() const {
  MutexLock lock(&flush_mu_);
  return final_flush_status_;
}

void Server::ReapConnections() {
  std::vector<std::unique_ptr<Connection>> done;
  {
    MutexLock lock(&conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        done.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : done) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
}

void Server::AcceptLoop() {
  while (true) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fd_[0], POLLIN, 0}};
    int rc = ::poll(fds, 2, /*timeout_ms=*/200);
    ReapConnections();
    if (accept_stop_.load(std::memory_order_acquire)) return;
    if (shutdown_requested_.load(std::memory_order_acquire)) {
      // Hand the signal over to WaitForShutdown(); the drain keeps this
      // loop alive so late connections still get a clean ERROR frame.
      {
        MutexLock lock(&shutdown_mu_);
      }
      shutdown_cv_.NotifyAll();
    }
    if (rc <= 0) continue;
    if ((fds[1].revents & POLLIN) != 0) {
      char buf[64];
      ssize_t ignored = ::read(wake_fd_[0], buf, sizeof(buf));
      (void)ignored;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (refusing_.load(std::memory_order_acquire)) {
      SendError(fd, Status::Cancelled("server shutting down"));
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    // Start the handler before publishing the connection: a concurrent
    // Shutdown() drain pops whatever is in conns_ and joins it, so an
    // entry must never be visible with its thread member still
    // unassigned (the drain would see joinable()==false and destroy the
    // Connection out from under this assignment). A connection accepted
    // while the first drain runs is published after it, and the second
    // drain — after this loop is joined — reaps it.
    raw->thread = std::thread([this, raw] { HandleConnection(raw); });
    {
      MutexLock lock(&conns_mu_);
      conns_.push_back(std::move(conn));
    }
  }
}

void Server::HandleConnection(Connection* conn) {
  const int fd = conn->fd;
  FrameType type;
  std::string payload;
  Status st = ReadFrame(fd, &type, &payload);
  std::shared_ptr<Session> session;
  if (st.ok() && type != FrameType::kHello) {
    st = Status::InvalidArgument(
        StrFormat("expected HELLO, got %s frame", FrameTypeName(type)));
  }
  if (st.ok()) {
    WireReader reader(payload);
    uint32_t version = 0;
    st = reader.GetU32(&version);
    if (st.ok()) st = reader.ExpectDone();
    if (st.ok() && version != kProtocolVersion) {
      st = Status::InvalidArgument(
          StrFormat("protocol version mismatch: client v%u, server v%u",
                    version, kProtocolVersion));
    }
  }
  if (st.ok() && refusing_.load(std::memory_order_acquire)) {
    st = Status::Cancelled("server shutting down");
  }
  if (st.ok()) {
    auto created = sessions_.Create(&db_);
    if (created.ok()) {
      session = std::move(*created);
    } else {
      st = created.status();
    }
  }
  if (!st.ok()) {
    // kNotFound is ReadFrame's clean-hangup marker: nothing to answer.
    if (st.code() != StatusCode::kNotFound) SendError(fd, st);
    conn->done.store(true, std::memory_order_release);
    return;
  }
  std::string welcome;
  PutU32(&welcome, kProtocolVersion);
  PutU64(&welcome, session->id);
  if (WriteFrame(fd, FrameType::kWelcome, welcome).ok()) {
    while (true) {
      st = ReadFrame(fd, &type, &payload);
      if (!st.ok()) break;
      FrameType out_type = FrameType::kError;
      std::string out;
      bool keep = DispatchFrame(*session, type, payload, &out_type, &out);
      if (!WriteFrame(fd, out_type, out).ok()) break;
      if (!keep) break;
    }
  }
  sessions_.Release(session->id);
  conn->done.store(true, std::memory_order_release);
}

bool Server::DispatchFrame(Session& session, FrameType type,
                           const std::string& payload, FrameType* out_type,
                           std::string* out) {
  WireReader reader(payload);
  auto fail = [&](const Status& st) {
    *out_type = FrameType::kError;
    *out = EncodeErrorPayload(st);
    return true;
  };
  auto ok_text = [&](std::string text) {
    *out_type = FrameType::kOk;
    out->clear();
    PutString(out, text);
    return true;
  };
  switch (type) {
    case FrameType::kQuery:
    case FrameType::kPrepare: {
      std::string sql;
      Status st = reader.GetString(&sql);
      if (st.ok()) st = reader.ExpectDone();
      if (!st.ok()) return fail(st);
      if (type == FrameType::kPrepare) {
        // Validate now so the client learns about syntax errors (with
        // line/column) at PREPARE time, not first EXECUTE.
        auto parsed = ParseSql(sql);
        if (!parsed.ok()) return fail(parsed.status());
        uint64_t id = session.next_statement_id++;
        session.prepared[id] = sql;
        *out_type = FrameType::kPrepared;
        out->clear();
        PutU64(out, id);
        return true;
      }
      auto rows = ExecuteQuery(session, sql);
      if (!rows.ok()) return fail(rows.status());
      *out_type = FrameType::kRows;
      *out = EncodeRowsPayload(*rows);
      return true;
    }
    case FrameType::kExecute:
    case FrameType::kCloseStmt: {
      uint64_t id = 0;
      Status st = reader.GetU64(&id);
      if (st.ok()) st = reader.ExpectDone();
      if (!st.ok()) return fail(st);
      auto it = session.prepared.find(id);
      if (it == session.prepared.end()) {
        return fail(Status::NotFound(StrFormat(
            "unknown prepared statement id %llu",
            static_cast<unsigned long long>(id))));
      }
      if (type == FrameType::kCloseStmt) {
        session.prepared.erase(it);
        return ok_text(StrFormat("closed statement %llu",
                                 static_cast<unsigned long long>(id)));
      }
      auto rows = ExecuteQuery(session, it->second);
      if (!rows.ok()) return fail(rows.status());
      *out_type = FrameType::kRows;
      *out = EncodeRowsPayload(*rows);
      return true;
    }
    case FrameType::kSet: {
      std::string key, value;
      Status st = reader.GetString(&key);
      if (st.ok()) st = reader.GetString(&value);
      if (st.ok()) st = reader.ExpectDone();
      if (!st.ok()) return fail(st);
      auto text = HandleSet(session, key, value);
      if (!text.ok()) return fail(text.status());
      return ok_text(std::move(*text));
    }
    case FrameType::kCommand: {
      std::string line;
      Status st = reader.GetString(&line);
      if (st.ok()) st = reader.ExpectDone();
      if (!st.ok()) return fail(st);
      auto text = HandleCommand(session, line);
      if (!text.ok()) return fail(text.status());
      return ok_text(std::move(*text));
    }
    case FrameType::kQuit: {
      ok_text("bye");
      return false;
    }
    default:
      fail(Status::InvalidArgument(StrFormat(
          "unexpected %s frame", FrameTypeName(type))));
      return true;
  }
}

uint64_t Server::stats_version() const {
  // Caller holds state_mu_ (shared suffices: pipeline_ itself is only
  // swapped under the exclusive lock).
  return pipeline_ != nullptr ? pipeline_->stats_version() : 0;
}

Result<RowsPayload> Server::ExecuteQuery(Session& session,
                                         const std::string& sql) {
  if (refusing_.load(std::memory_order_acquire)) {
    return Status::Cancelled("server shutting down");
  }
  auto ticket = admission_.Admit();
  if (!ticket.ok()) return ticket.status();

  ReaderLock state_lock(&state_mu_);
  ExecLimits limits;
  // The session quota carves the admission pool: a query never gets more
  // budget than its session's share, even when the pool has room.
  limits.memory_budget_bytes =
      std::min(ticket->bytes(), admission_.options().session_quota_bytes);
  limits.timeout_micros = session.deadline_micros;
  limits.max_output_rows = session.max_rows;
  ExecContext ctx(limits);
  SnapshotPtr snapshot = session.held_snapshot;
  if (snapshot == nullptr && pipeline_ != nullptr) {
    snapshot = pipeline_->snapshot();
  }
  if (snapshot != nullptr) ctx.set_snapshot(snapshot);
  InflightGuard inflight(this, &ctx);

  RowsPayload out;
  std::string final_sql = sql;
  if (session.rewriting_enabled && !session.rules->rules().empty()) {
    const PlanKey key{sql, session.strategy, session.rewriting_enabled,
                      session.aggressive_pushdown,
                      session.rules->fingerprint()};
    const uint64_t data_version = data_version_.load(std::memory_order_acquire);
    const uint64_t stats = stats_version();
    const bool cache_on = plan_cache_.enabled();
    CacheOutcome outcome = CacheOutcome::kBypass;
    std::optional<CachedPlan> cached;
    if (cache_on) {
      cached = plan_cache_.Lookup(key, data_version, stats, &outcome);
    }
    if (cached.has_value()) {
      final_sql = cached->rewritten_sql;
      out.rewrite_note = cached->rewrite_note;
      out.warnings = cached->warnings;
      out.cache = outcome;
    } else {
      QueryRewriter rewriter(&db_, session.rules.get());
      RewriteOptions opts;
      opts.strategy = session.strategy;
      opts.aggressive_join_pushdown = session.aggressive_pushdown;
      opts.exec_context = &ctx;
      auto info = rewriter.Rewrite(sql, opts);
      if (!info.ok()) return info.status();
      final_sql = info->sql;
      std::string note;
      if (info->chosen != RewriteStrategy::kNone) {
        note = StrFormat("[rewritten: %s strategy, est. cost %.0f]",
                         RewriteStrategyName(info->chosen),
                         info->estimated_cost);
      }
      std::string warnings;
      for (const LintFinding& f : info->lint) {
        if (!warnings.empty()) warnings += "\n";
        warnings += f.ToString();
      }
      out.rewrite_note = note;
      if (session.show_candidates) {
        for (const RewriteCandidate& c : info->candidates) {
          out.rewrite_note += StrFormat("\n  candidate %-36s cost %12.0f",
                                        c.label.c_str(), c.estimated_cost);
        }
      }
      out.warnings = warnings;
      out.cache = outcome;
      if (cache_on) {
        CachedPlan plan;
        plan.rewritten_sql = final_sql;
        plan.chosen = info->chosen;
        plan.estimated_cost = info->estimated_cost;
        plan.rewrite_note = note;
        plan.warnings = warnings;
        plan.data_version = data_version;
        plan.stats_version = stats;
        plan_cache_.Insert(key, std::move(plan));
      }
    }
  }
  // Cleansed-fragment stitch: an execution-level substitution layered
  // under the rewrite decision above. The plan cache and rewriter keep
  // their semantics untouched (strategy errors, notes, cache outcomes);
  // when the stitch applies, the query instead executes region-scoped
  // cleansing sub-plans that consult the shared fragment cache — hit
  // regions skip the cleansing windows entirely, miss regions refill the
  // cache — stitched back together with UNION ALL. Results are
  // bit-identical to the rewritten SQL. The stitched text depends on
  // per-execution hit/miss state and on this query's context bindings,
  // so it never enters the plan cache; hit/miss counters surface in the
  // EXPLAIN header instead of the (cached, deterministic) rewrite note.
  std::string fragment_note;
  if (session.rewriting_enabled && !session.rules->rules().empty() &&
      fragment_cache_.enabled()) {
    auto stitch = StitchWithFragmentCache(sql, &db_, *session.rules,
                                          &fragment_cache_, &ctx);
    if (stitch.ok() && stitch->used) {
      final_sql = stitch->sql;
      fragment_note =
          StrFormat("fragments: hit=%zu miss=%zu", stitch->hits,
                    stitch->misses);
      if (session.show_candidates) {
        for (const FragmentRegionDetail& r : stitch->regions) {
          fragment_note += StrFormat("\n  region %-4zu %-28s %s", r.region,
                                     r.range.c_str(), r.hit ? "hit" : "miss");
        }
      }
    }
  }
  const auto start = std::chrono::steady_clock::now();
  auto res = ExecuteSql(db_, final_sql, &ctx);
  const auto end = std::chrono::steady_clock::now();
  if (!res.ok()) return res.status();
  out.elapsed_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count());
  for (size_t i = 0; i < res->desc.num_fields(); ++i) {
    out.fields.push_back(res->desc.field(i));
  }
  out.rows = std::move(res->rows);
  if (session.explain) {
    out.explain = res->explain;
    if (!fragment_note.empty()) {
      out.explain = fragment_note + "\n" + out.explain;
    }
  }
  ++session.queries_executed;
  return out;
}

Result<std::string> Server::HandleSet(Session& session, const std::string& key,
                                      const std::string& value) {
  if (key == "strategy") {
    if (value == "auto") {
      session.strategy = RewriteStrategy::kAuto;
    } else if (value == "expanded") {
      session.strategy = RewriteStrategy::kExpanded;
    } else if (value == "joinback") {
      session.strategy = RewriteStrategy::kJoinBack;
    } else if (value == "naive") {
      session.strategy = RewriteStrategy::kNaive;
    } else if (value == "off") {
      session.rewriting_enabled = false;
      return std::string("strategy = off (queries run on dirty data)");
    } else {
      return Status::InvalidArgument(
          "SET strategy expects auto|expanded|joinback|naive|off");
    }
    session.rewriting_enabled = true;
    return StrFormat("strategy = %s", value.c_str());
  }
  if (key == "pushdown" || key == "explain" || key == "candidates") {
    bool flag = false;
    if (!ParseOnOff(value, &flag)) {
      return Status::InvalidArgument(
          StrFormat("SET %s expects on|off", key.c_str()));
    }
    if (key == "pushdown") session.aggressive_pushdown = flag;
    if (key == "explain") session.explain = flag;
    if (key == "candidates") session.show_candidates = flag;
    return StrFormat("%s = %s", key.c_str(), flag ? "on" : "off");
  }
  if (key == "deadline_ms" || key == "max_rows") {
    errno = 0;
    char* endp = nullptr;
    const long long n = std::strtoll(value.c_str(), &endp, 10);
    if (errno != 0 || endp == value.c_str() || *endp != '\0' || n < 0) {
      return Status::InvalidArgument(
          StrFormat("SET %s expects a non-negative integer", key.c_str()));
    }
    if (key == "deadline_ms") {
      session.deadline_micros = static_cast<int64_t>(n) * 1000;
    } else {
      session.max_rows = static_cast<uint64_t>(n);
    }
    return StrFormat("%s = %lld", key.c_str(), n);
  }
  if (key == "snapshot") {
    if (value == "latest") {
      session.held_snapshot = nullptr;
      return std::string("snapshot = latest");
    }
    if (value == "hold") {
      ReaderLock state_lock(&state_mu_);
      if (pipeline_ == nullptr) {
        return Status::InvalidArgument(
            "SET snapshot hold requires a running ingest pipeline "
            "(.feed first)");
      }
      session.held_snapshot = pipeline_->snapshot();
      return StrFormat("snapshot held at epoch %llu",
                       static_cast<unsigned long long>(
                           session.held_snapshot->epoch));
    }
    return Status::InvalidArgument("SET snapshot expects hold|latest");
  }
  return Status::InvalidArgument(
      StrFormat("unknown SET key: %s (strategy, pushdown, explain, "
                "candidates, deadline_ms, max_rows, snapshot)",
                key.c_str()));
}

Result<std::string> Server::HandleCommand(Session& session,
                                          const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == ".gen") {
    int64_t pallets = 20;
    double dirty = 10;
    in >> pallets >> dirty;
    WriterLock state_lock(&state_mu_);
    rfidgen::GeneratorOptions gen;
    gen.num_pallets = pallets;
    auto g = rfidgen::Generate(gen, &db_);
    if (!g.ok()) return g.status();
    rfidgen::AnomalyOptions anomalies;
    anomalies.dirty_fraction = dirty / 100.0;
    auto a = rfidgen::InjectAnomalies(anomalies, &db_);
    if (!a.ok()) return a.status();
    data_version_.fetch_add(1, std::memory_order_acq_rel);
    fragment_cache_.Clear();  // bulk mutation breaks append-only
    return StrFormat(
        "generated %lld case reads across %lld cases; injected %lld "
        "anomalies (%.0f%%)",
        static_cast<long long>(g->case_reads), static_cast<long long>(g->cases),
        static_cast<long long>(a->total()), dirty);
  }
  if (cmd == ".feed") {
    int64_t batches = 10;
    int64_t rows = 256;
    in >> batches >> rows;
    if (batches <= 0 || rows <= 0) {
      return Status::InvalidArgument("usage: .feed <batches> <rows_per_batch>");
    }
    MutexLock feed_lock(&feed_mu_);
    {
      // Lazy creation mutates the catalog (stream tables) and swaps the
      // pipeline pointer: exclusive. Batch application below runs on the
      // pipeline's own writer lock, concurrent with snapshot-pinned
      // queries.
      WriterLock state_lock(&state_mu_);
      if (stream_ == nullptr || stream_->exhausted()) {
        rfidgen::StreamOptions opt;
        opt.seed = 20060912 + feed_generation_++;
        auto stream = rfidgen::ReadStream::Create(&db_, opt);
        if (!stream.ok()) return stream.status();
        stream_ = std::move(*stream);
      }
      if (pipeline_ == nullptr) {
        pipeline_ = std::make_unique<ingest::IngestPipeline>(
            &db_, /*accounting=*/nullptr, /*index_compact_threshold=*/8,
            wal_.get());
        pipeline_->set_fragment_cache(&fragment_cache_);
      }
    }
    // Shared lock during application: queries run concurrently (both
    // sides hold shared), while .wal / .recover (exclusive) cannot swap
    // the pipeline out from under the feed.
    ReaderLock state_lock(&state_mu_);
    if (stream_ == nullptr || pipeline_ == nullptr) {
      return Status::Internal("ingest state changed during .feed");
    }
    uint64_t applied = 0;
    uint64_t fed_rows = 0;
    for (int64_t i = 0; i < batches && !stream_->exhausted(); ++i) {
      rfidgen::StreamBatch b = stream_->NextBatch(static_cast<size_t>(rows));
      fed_rows += b.total_rows();
      std::vector<ingest::TableBatch> group;
      group.push_back({"caseR", std::move(b.case_rows)});
      group.push_back({"palletR", std::move(b.pallet_rows)});
      group.push_back({"parent", std::move(b.parent_rows)});
      group.push_back({"epc_info", std::move(b.info_rows)});
      Status st = pipeline_->Apply(std::move(group));
      if (!st.ok()) return st;
      ++applied;
    }
    return StrFormat(
        "fed %llu batches (%llu rows); epoch %llu%s",
        static_cast<unsigned long long>(applied),
        static_cast<unsigned long long>(fed_rows),
        static_cast<unsigned long long>(pipeline_->epoch()),
        stream_->exhausted() ? " (stream exhausted)" : "");
  }
  if (cmd == ".save" || cmd == ".load") {
    std::string dir;
    in >> dir;
    if (dir.empty()) {
      return Status::InvalidArgument(
          StrFormat("usage: %s <directory>", cmd.c_str()));
    }
    if (cmd == ".save") {
      ReaderLock state_lock(&state_mu_);
      Status st = SaveDatabase(db_, dir);
      if (!st.ok()) return st;
      return std::string("saved");
    }
    WriterLock state_lock(&state_mu_);
    Status st = LoadDatabase(dir, &db_, /*skip_existing=*/true);
    if (st.ok()) st = rfidgen::FinalizeDatabase(&db_);
    if (!st.ok()) return st;
    data_version_.fetch_add(1, std::memory_order_acq_rel);
    fragment_cache_.Clear();
    return std::string("loaded");
  }
  if (cmd == ".wal" || cmd == ".recover") {
    std::string dir, policy_name;
    in >> dir >> policy_name;
    if (dir.empty()) {
      return Status::InvalidArgument(
          StrFormat("usage: %s <directory> [always|epoch|off]", cmd.c_str()));
    }
    wal::WalOptions options;
    if (policy_name == "always") {
      options.fsync_policy = wal::FsyncPolicy::kAlways;
    } else if (policy_name == "off") {
      options.fsync_policy = wal::FsyncPolicy::kOff;
    } else if (!policy_name.empty() && policy_name != "epoch") {
      return Status::InvalidArgument(
          StrFormat("usage: %s <directory> [always|epoch|off]", cmd.c_str()));
    }
    WriterLock state_lock(&state_mu_);
    auto manager = wal::WalManager::Open(dir, &db_, options);
    if (!manager.ok()) return manager.status();
    if (cmd == ".recover" && !(*manager)->recovery().recovered) {
      return Status::InvalidArgument(StrFormat(
          "%s holds no durability manifest (use .wal to create one)",
          dir.c_str()));
    }
    pipeline_.reset();  // rebuilt WAL-backed by the next .feed
    stream_.reset();
    fragment_cache_.Clear();  // replay / pipeline swap: start fresh
    wal_ = std::move(*manager);
    const wal::RecoveryResult& r = wal_->recovery();
    if (r.recovered) {
      data_version_.fetch_add(1, std::memory_order_acq_rel);
      return StrFormat(
          "recovered: checkpoint epoch %llu + %llu replayed epoch%s "
          "(%llu rows); fsync=%s",
          static_cast<unsigned long long>(r.checkpoint_epoch),
          static_cast<unsigned long long>(r.replayed_epochs),
          r.replayed_epochs == 1 ? "" : "s",
          static_cast<unsigned long long>(r.replayed_rows),
          wal::FsyncPolicyName(wal_->fsync_policy()));
    }
    return StrFormat("durability attached at %s (checkpoint 0 written); "
                     "fsync=%s",
                     dir.c_str(), wal::FsyncPolicyName(wal_->fsync_policy()));
  }
  if (cmd == ".checkpoint") {
    {
      // Pipeline-backed checkpoints run under the *shared* state lock:
      // the pipeline's own writer lock serializes the WAL work against
      // concurrent Apply(), and shared suffices to pin the pipeline_ /
      // wal_ pointers. This used to take the lock exclusive, stalling
      // every query (and .feed) behind the checkpoint's fsync+rename
      // (DESIGN.md §15 defect log). The checkpointed epoch comes back
      // through the out-param, read under the pipeline lock — the WAL's
      // own durable_epoch() accessor is not safe against a concurrent
      // feed here.
      ReaderLock state_lock(&state_mu_);
      if (pipeline_ != nullptr && wal_ != nullptr) {
        uint64_t durable = 0;
        Status st = pipeline_->Checkpoint(&durable);
        if (!st.ok()) return st;
        return StrFormat("checkpoint written at epoch %llu; log truncated",
                         static_cast<unsigned long long>(durable));
      }
    }
    // No pipeline: the bare WalManager is externally synchronized, and
    // the exclusive state lock is that synchronization.
    WriterLock state_lock(&state_mu_);
    if (wal_ == nullptr) {
      return Status::InvalidArgument(
          "no durability directory attached (use .wal <dir>)");
    }
    Status st = pipeline_ != nullptr ? pipeline_->Checkpoint()
                                     : wal_->Checkpoint();
    if (!st.ok()) return st;
    return StrFormat("checkpoint written at epoch %llu; log truncated",
                     static_cast<unsigned long long>(wal_->durable_epoch()));
  }
  if (cmd == ".rule") {
    // The rest of the line (including newlines) is the rule text.
    const size_t pos = line.find(".rule");
    std::string rule_text = line.substr(pos + 5);
    Status st = session.rules->DefineRule(rule_text);
    if (!st.ok()) return st;
    return std::string("rule defined");
  }
  if (cmd == ".droprule") {
    std::string name;
    in >> name;
    if (name.empty()) return Status::InvalidArgument("usage: .droprule <name>");
    Status st = session.rules->DropRule(name);
    if (!st.ok()) return st;
    return StrFormat("rule %s dropped", name.c_str());
  }
  if (cmd == ".rules") {
    std::string text;
    for (const CleansingRule& r : session.rules->rules()) {
      text += StrFormat("%-4lld %-24s %-12s %s\n",
                        static_cast<long long>(r.seq), r.name.c_str(),
                        r.on_table.c_str(), RuleActionName(r.action));
    }
    text += StrFormat("(%zu rule%s)", session.rules->rules().size(),
                      session.rules->rules().size() == 1 ? "" : "s");
    return text;
  }
  if (cmd == ".lint") {
    std::vector<LintFinding> findings = LintRules(session.rules->rules());
    std::string text;
    for (const LintFinding& f : findings) {
      text += f.ToString() + "\n";
    }
    text += StrFormat("(%zu finding%s over %zu rule%s)", findings.size(),
                      findings.size() == 1 ? "" : "s",
                      session.rules->rules().size(),
                      session.rules->rules().size() == 1 ? "" : "s");
    return text;
  }
  if (cmd == ".strategy") {
    std::string which;
    in >> which;
    return HandleSet(session, "strategy", which);
  }
  if (cmd == ".set") {
    std::string key, value;
    in >> key >> value;
    return HandleSet(session, key, value);
  }
  if (cmd == ".explain" || cmd == ".candidates") {
    std::string flag;
    in >> flag;
    return HandleSet(session, cmd.substr(1), flag);
  }
  if (cmd == ".tables") {
    ReaderLock state_lock(&state_mu_);
    std::string text;
    for (const std::string& name : db_.TableNames()) {
      const Table* t = db_.GetTable(name);
      text += StrFormat("%-12s %8zu rows\n", name.c_str(), t->num_rows());
    }
    if (!text.empty()) text.pop_back();
    return text;
  }
  if (cmd == ".schema") {
    std::string table;
    in >> table;
    ReaderLock state_lock(&state_mu_);
    const Table* t = db_.GetTable(table);
    if (t == nullptr) {
      return Status::NotFound(StrFormat("no such table: %s", table.c_str()));
    }
    return StrFormat("%s %s", t->name().c_str(),
                     t->schema().ToString().c_str());
  }
  if (cmd == ".cache") {
    std::string arg;
    in >> arg;
    if (arg == "on" || arg == "off") {
      plan_cache_.set_enabled(arg == "on");
      return StrFormat("plan cache %s", arg.c_str());
    }
    if (arg == "clear") {
      plan_cache_.Clear();
      return std::string("plan cache cleared");
    }
    if (arg == "fragment") {
      std::string sub;
      in >> sub;
      if (sub == "on" || sub == "off") {
        fragment_cache_.set_enabled(sub == "on");
        return StrFormat("fragment cache %s", sub.c_str());
      }
      if (sub == "clear") {
        fragment_cache_.Clear();
        return std::string("fragment cache cleared");
      }
      return Status::InvalidArgument("usage: .cache fragment on|off|clear");
    }
    if (arg == "stats" || arg.empty()) {
      PlanCache::Stats s = plan_cache_.stats();
      cache::FragmentCache::Stats f = fragment_cache_.stats();
      return StrFormat(
          "plan cache: %s, %zu entries, %llu hits, %llu misses, "
          "%llu invalidations, %llu evictions\n"
          "fragment cache: %s, %zu entries, %llu hits, %llu misses, "
          "%llu invalidations, %llu evictions, %llu inserts, "
          "%llu resident bytes",
          plan_cache_.enabled() ? "on" : "off", s.entries,
          static_cast<unsigned long long>(s.hits),
          static_cast<unsigned long long>(s.misses),
          static_cast<unsigned long long>(s.invalidations),
          static_cast<unsigned long long>(s.evictions),
          fragment_cache_.enabled() ? "on" : "off", f.entries,
          static_cast<unsigned long long>(f.hits),
          static_cast<unsigned long long>(f.misses),
          static_cast<unsigned long long>(f.invalidations),
          static_cast<unsigned long long>(f.evictions),
          static_cast<unsigned long long>(f.inserts),
          static_cast<unsigned long long>(f.resident_bytes));
    }
    return Status::InvalidArgument(
        "usage: .cache on|off|clear|stats | .cache fragment on|off|clear");
  }
  if (cmd == ".stats") {
    AdmissionController::Stats a = admission_.stats();
    PlanCache::Stats p = plan_cache_.stats();
    cache::FragmentCache::Stats f = fragment_cache_.stats();
    ColumnarCounters c = GlobalColumnarCounters();
    return StrFormat(
        "sessions: %d active (%llu total)\n"
        "admission: %llu admitted, %llu queued, %llu rejected "
        "(queue-full %llu, timeout %llu, shutdown %llu), %d running, "
        "%llu pool bytes used\n"
        "plan cache: %zu entries, %llu hits, %llu misses, "
        "%llu invalidations\n"
        "fragment cache: %zu entries, %llu hits, %llu misses, "
        "%llu invalidations, %llu resident bytes\n"
        "columnar: %llu segments encoded, %llu invalidated, "
        "%llu scanned, %llu skipped (simd=%s)",
        sessions_.active(),
        static_cast<unsigned long long>(sessions_.total_created()),
        static_cast<unsigned long long>(a.admitted),
        static_cast<unsigned long long>(a.queued),
        static_cast<unsigned long long>(a.rejected_queue_full +
                                        a.rejected_timeout +
                                        a.rejected_shutdown),
        static_cast<unsigned long long>(a.rejected_queue_full),
        static_cast<unsigned long long>(a.rejected_timeout),
        static_cast<unsigned long long>(a.rejected_shutdown), a.running,
        static_cast<unsigned long long>(a.pool_used), p.entries,
        static_cast<unsigned long long>(p.hits),
        static_cast<unsigned long long>(p.misses),
        static_cast<unsigned long long>(p.invalidations), f.entries,
        static_cast<unsigned long long>(f.hits),
        static_cast<unsigned long long>(f.misses),
        static_cast<unsigned long long>(f.invalidations),
        static_cast<unsigned long long>(f.resident_bytes),
        static_cast<unsigned long long>(c.segments_encoded),
        static_cast<unsigned long long>(c.segments_invalidated),
        static_cast<unsigned long long>(c.segments_scanned),
        static_cast<unsigned long long>(c.segments_skipped),
        simd::ActiveLevelName());
  }
  if (cmd == ".debug_hold") {
    // Test hook: occupy an admission slot for a fixed duration so tests
    // can deterministically fill the run queue.
    int64_t hold_ms = 0;
    in >> hold_ms;
    if (hold_ms <= 0) {
      return Status::InvalidArgument("usage: .debug_hold <milliseconds>");
    }
    auto ticket = admission_.Admit();
    if (!ticket.ok()) return ticket.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
    ticket->Release();
    return StrFormat("held an admission slot for %lld ms",
                     static_cast<long long>(hold_ms));
  }
  return Status::InvalidArgument(
      StrFormat("unknown command: %s", cmd.c_str()));
}

}  // namespace rfid::server
