#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace rfid::server {

const char* FrameTypeName(FrameType t) {
  switch (t) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kQuery: return "QUERY";
    case FrameType::kPrepare: return "PREPARE";
    case FrameType::kExecute: return "EXECUTE";
    case FrameType::kCloseStmt: return "CLOSE_STMT";
    case FrameType::kSet: return "SET";
    case FrameType::kCommand: return "COMMAND";
    case FrameType::kQuit: return "QUIT";
    case FrameType::kWelcome: return "WELCOME";
    case FrameType::kRows: return "ROWS";
    case FrameType::kError: return "ERROR";
    case FrameType::kOk: return "OK";
    case FrameType::kPrepared: return "PREPARED";
  }
  return "?";
}

const char* CacheOutcomeName(CacheOutcome o) {
  switch (o) {
    case CacheOutcome::kBypass: return "bypass";
    case CacheOutcome::kHit: return "hit";
    case CacheOutcome::kMiss: return "miss";
    case CacheOutcome::kInvalidated: return "invalidated";
  }
  return "?";
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      PutU8(out, v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      PutU64(out, static_cast<uint64_t>(v.int64_value()));
      break;
    case DataType::kTimestamp:
      PutU64(out, static_cast<uint64_t>(v.timestamp_value()));
      break;
    case DataType::kInterval:
      PutU64(out, static_cast<uint64_t>(v.interval_value()));
      break;
    case DataType::kDouble: {
      // IEEE bit pattern, so remote doubles are the embedded doubles.
      uint64_t bits = 0;
      double d = v.double_value();
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      break;
    }
    case DataType::kString:
      PutString(out, v.string_value());
      break;
  }
}

Status WireReader::Need(size_t n) {
  if (pos_ + n > data_.size()) {
    pos_ = data_.size() + 1;  // poison: all further reads fail too
    return Status::Internal(
        StrFormat("malformed frame: truncated payload (need %zu more bytes)", n));
  }
  return Status::OK();
}

Status WireReader::GetU8(uint8_t* v) {
  RFID_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status WireReader::GetU32(uint32_t* v) {
  RFID_RETURN_IF_ERROR(Need(4));
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return Status::OK();
}

Status WireReader::GetU64(uint64_t* v) {
  RFID_RETURN_IF_ERROR(Need(8));
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return Status::OK();
}

Status WireReader::GetString(std::string* s) {
  uint32_t len = 0;
  RFID_RETURN_IF_ERROR(GetU32(&len));
  if (len > kMaxFrameBytes) {
    return Status::Internal("malformed frame: oversized string");
  }
  RFID_RETURN_IF_ERROR(Need(len));
  s->assign(data_.substr(pos_, len));
  pos_ += len;
  return Status::OK();
}

Status WireReader::GetValue(Value* v) {
  uint8_t tag = 0;
  RFID_RETURN_IF_ERROR(GetU8(&tag));
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      *v = Value::Null();
      return Status::OK();
    case DataType::kBool: {
      uint8_t b = 0;
      RFID_RETURN_IF_ERROR(GetU8(&b));
      *v = Value::Bool(b != 0);
      return Status::OK();
    }
    case DataType::kInt64: {
      uint64_t raw = 0;
      RFID_RETURN_IF_ERROR(GetU64(&raw));
      *v = Value::Int64(static_cast<int64_t>(raw));
      return Status::OK();
    }
    case DataType::kTimestamp: {
      uint64_t raw = 0;
      RFID_RETURN_IF_ERROR(GetU64(&raw));
      *v = Value::Timestamp(static_cast<int64_t>(raw));
      return Status::OK();
    }
    case DataType::kInterval: {
      uint64_t raw = 0;
      RFID_RETURN_IF_ERROR(GetU64(&raw));
      *v = Value::Interval(static_cast<int64_t>(raw));
      return Status::OK();
    }
    case DataType::kDouble: {
      uint64_t bits = 0;
      RFID_RETURN_IF_ERROR(GetU64(&bits));
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      *v = Value::Double(d);
      return Status::OK();
    }
    case DataType::kString: {
      std::string s;
      RFID_RETURN_IF_ERROR(GetString(&s));
      *v = Value::String(std::move(s));
      return Status::OK();
    }
  }
  return Status::Internal(
      StrFormat("malformed frame: unknown value type tag %u", tag));
}

Status WireReader::ExpectDone() const {
  if (pos_ != data_.size()) {
    return Status::Internal("malformed frame: trailing payload bytes");
  }
  return Status::OK();
}

std::string EncodeRowsPayload(const RowsPayload& rows) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(rows.fields.size()));
  for (const Field& f : rows.fields) {
    PutString(&out, f.qualifier);
    PutString(&out, f.name);
    PutU8(&out, static_cast<uint8_t>(f.type));
  }
  PutU32(&out, static_cast<uint32_t>(rows.rows.size()));
  for (const Row& row : rows.rows) {
    for (const Value& v : row) PutValue(&out, v);
  }
  PutU64(&out, rows.elapsed_micros);
  PutU8(&out, static_cast<uint8_t>(rows.cache));
  PutString(&out, rows.rewrite_note);
  PutString(&out, rows.warnings);
  PutString(&out, rows.explain);
  return out;
}

Status DecodeRowsPayload(std::string_view payload, RowsPayload* out) {
  WireReader r(payload);
  uint32_t ncols = 0;
  RFID_RETURN_IF_ERROR(r.GetU32(&ncols));
  out->fields.clear();
  out->fields.reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    Field f;
    RFID_RETURN_IF_ERROR(r.GetString(&f.qualifier));
    RFID_RETURN_IF_ERROR(r.GetString(&f.name));
    uint8_t type = 0;
    RFID_RETURN_IF_ERROR(r.GetU8(&type));
    f.type = static_cast<DataType>(type);
    out->fields.push_back(std::move(f));
  }
  uint32_t nrows = 0;
  RFID_RETURN_IF_ERROR(r.GetU32(&nrows));
  out->rows.clear();
  out->rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    Row row(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      RFID_RETURN_IF_ERROR(r.GetValue(&row[c]));
    }
    out->rows.push_back(std::move(row));
  }
  RFID_RETURN_IF_ERROR(r.GetU64(&out->elapsed_micros));
  uint8_t cache = 0;
  RFID_RETURN_IF_ERROR(r.GetU8(&cache));
  if (cache > static_cast<uint8_t>(CacheOutcome::kInvalidated)) {
    return Status::Internal("malformed frame: unknown cache outcome");
  }
  out->cache = static_cast<CacheOutcome>(cache);
  RFID_RETURN_IF_ERROR(r.GetString(&out->rewrite_note));
  RFID_RETURN_IF_ERROR(r.GetString(&out->warnings));
  RFID_RETURN_IF_ERROR(r.GetString(&out->explain));
  return r.ExpectDone();
}

std::string EncodeErrorPayload(const Status& error) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(error.code()));
  PutString(&out, error.message());
  return out;
}

Status DecodeErrorPayload(std::string_view payload) {
  WireReader r(payload);
  uint32_t code = 0;
  std::string message;
  RFID_RETURN_IF_ERROR(r.GetU32(&code));
  RFID_RETURN_IF_ERROR(r.GetString(&message));
  RFID_RETURN_IF_ERROR(r.ExpectDone());
  if (code == 0 || code > static_cast<uint32_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal(StrFormat("server error with unknown code %u: %s",
                                      code, message.c_str()));
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

namespace {

Status WriteAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a process-wide
    // SIGPIPE.
    ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("socket write failed: %s",
                                        std::strerror(errno)));
    }
    if (w == 0) return Status::Internal("socket write returned 0");
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

/// Reads exactly n bytes. `*clean_eof` is set when EOF arrives before the
/// first byte (an orderly peer hangup between frames).
Status ReadAll(int fd, char* data, size_t n, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::read(fd, data + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StrFormat("socket read failed: %s",
                                        std::strerror(errno)));
    }
    if (r == 0) {
      if (done == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::NotFound("connection closed");
      }
      return Status::Internal("connection closed mid-frame");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument(
        StrFormat("frame payload too large: %zu bytes", payload.size()));
  }
  std::string header;
  header.reserve(5);
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU8(&header, static_cast<uint8_t>(type));
  RFID_RETURN_IF_ERROR(WriteAll(fd, header.data(), header.size()));
  return WriteAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, FrameType* type, std::string* payload) {
  char header[5];
  bool clean_eof = false;
  Status st = ReadAll(fd, header, sizeof(header), &clean_eof);
  if (!st.ok()) return st;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  if (len > kMaxFrameBytes) {
    return Status::Internal(StrFormat("frame payload too large: %u bytes", len));
  }
  *type = static_cast<FrameType>(static_cast<uint8_t>(header[4]));
  payload->resize(len);
  if (len > 0) {
    RFID_RETURN_IF_ERROR(ReadAll(fd, payload->data(), len, nullptr));
  }
  return Status::OK();
}

}  // namespace rfid::server
