// Prepared-statement plan cache for the SQL server front end.
//
// Deferred cleansing pays a per-query rewrite tax: the rewriter derives
// expanded conditions, generates candidates, and costs each one with the
// planner (~5 ms with the five standard rules — a measurable slice of a
// per-EPC traceability lookup, whose execution is ~30 ms; see
// BENCH_server_throughput.json). Under repeated traffic that work is
// identical query over identical catalog over identical statistics, so
// the server memoizes the *rewrite decision*: the chosen rewritten SQL,
// strategy, and diagnostics.
//
// Key: the SQL text plus every session setting that feeds the rewriter
// (strategy, rewriting on/off, aggressive pushdown) plus the session's
// rule-catalog fingerprint — sessions with identical catalogs share
// entries; divergent catalogs cannot collide. Each entry additionally
// records the (data_version, stats_version) pair it was derived from;
// a lookup under bumped versions counts as an *invalidation* (the stale
// entry is dropped and re-derived), distinct from a plain miss. Rule-set
// changes move the fingerprint, so they surface as misses on the new
// fingerprint while the old entries age out of the LRU.
//
// Thread-safe; bounded LRU; enable/disable at runtime (the throughput
// bench measures cache-on vs cache-off).
#ifndef RFID_SERVER_PLAN_CACHE_H_
#define RFID_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "common/sync.h"
#include "rewrite/rewriter.h"
#include "server/protocol.h"

namespace rfid::server {

struct PlanKey {
  std::string sql;
  RewriteStrategy strategy = RewriteStrategy::kAuto;
  bool rewriting_enabled = true;
  bool aggressive_pushdown = false;
  uint64_t catalog_fingerprint = 0;

  bool operator<(const PlanKey& other) const;
};

/// The memoized rewrite decision plus the versions it was derived under.
struct CachedPlan {
  std::string rewritten_sql;
  RewriteStrategy chosen = RewriteStrategy::kNone;
  double estimated_cost = 0;
  std::string rewrite_note;  // preformatted "[rewritten: ...]" line
  std::string warnings;      // preformatted lint findings
  uint64_t data_version = 0;   // bulk loads / generator runs
  uint64_t stats_version = 0;  // ingest statistics generation
};

class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  explicit PlanCache(size_t capacity, bool enabled = true)
      : capacity_(capacity), enabled_(enabled) {}

  /// Returns the cached plan when the key matches and its versions equal
  /// the current ones. Sets *outcome to kHit, kMiss, or kInvalidated
  /// (entry existed but was derived under older versions; it has been
  /// dropped). A disabled cache always reports kMiss and records nothing.
  std::optional<CachedPlan> Lookup(const PlanKey& key, uint64_t data_version,
                                   uint64_t stats_version,
                                   CacheOutcome* outcome);

  /// Inserts (or replaces) the entry, evicting the least recently used
  /// entry past capacity. No-op while disabled.
  void Insert(const PlanKey& key, CachedPlan plan);

  void set_enabled(bool enabled);
  bool enabled() const;
  void Clear();

  Stats stats() const;

 private:
  using LruList = std::list<PlanKey>;
  struct Entry {
    CachedPlan plan;
    LruList::iterator lru;
  };

  mutable Mutex mu_{LockRank::kPlanCache};
  const size_t capacity_;  // immutable after construction
  bool enabled_ GUARDED_BY(mu_);
  std::map<PlanKey, Entry> entries_ GUARDED_BY(mu_);
  LruList lru_ GUARDED_BY(mu_);  // front = most recently used
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace rfid::server

#endif  // RFID_SERVER_PLAN_CACHE_H_
