// Wire protocol for the SQL server front end: length-prefixed binary
// frames over a byte stream (TCP), shared by the server and the client
// library.
//
// Frame layout (all integers little-endian):
//   u32 payload_length | u8 frame_type | payload bytes
//
// Client -> server: HELLO, QUERY, PREPARE, EXECUTE, CLOSE_STMT, SET,
// COMMAND, QUIT. Server -> client: WELCOME, ROWS, ERROR, OK, PREPARED.
// Every client frame gets exactly one response frame, so a connection is
// a strict request/response alternation (no pipelining).
//
// Values travel typed: a DataType tag followed by the payload — int64 /
// timestamp / interval as 8-byte two's complement, doubles as their IEEE
// bit pattern (so results round-trip bit-identical to embedded
// execution), strings length-prefixed. ERROR frames carry the structured
// StatusCode plus the engine's exact message — parser line/column
// diagnostics and verifier phase/operator/invariant text included — so a
// remote client reconstructs the same Status an embedded caller would
// see.
//
// Decoding is defensive end to end: a malformed or truncated frame turns
// into a Status error (never a crash or an over-read), and payloads are
// capped at kMaxFrameBytes.
#ifndef RFID_SERVER_PROTOCOL_H_
#define RFID_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "expr/eval.h"

namespace rfid::server {

inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

enum class FrameType : uint8_t {
  // client -> server
  kHello = 0x01,      // u32 protocol_version
  kQuery = 0x02,      // str sql
  kPrepare = 0x03,    // str sql
  kExecute = 0x04,    // u64 statement_id
  kCloseStmt = 0x05,  // u64 statement_id
  kSet = 0x06,        // str key, str value
  kCommand = 0x07,    // str command line (".gen 20 10", ".rule DEFINE ...")
  kQuit = 0x08,       // empty
  // server -> client
  kWelcome = 0x81,    // u32 protocol_version, u64 session_id
  kRows = 0x82,       // result set, see RowsPayload
  kError = 0x83,      // u32 status_code, str message
  kOk = 0x84,         // str text
  kPrepared = 0x85,   // u64 statement_id
};

const char* FrameTypeName(FrameType t);

/// How the plan cache treated the query that produced a result set.
enum class CacheOutcome : uint8_t {
  kBypass = 0,       // rewriting off / no rules / cache disabled
  kHit = 1,          // rewrite skipped, cached statement reused
  kMiss = 2,         // rewritten fresh and cached
  kInvalidated = 3,  // entry existed but a version bump forced a re-rewrite
};

const char* CacheOutcomeName(CacheOutcome o);

/// Decoded kRows payload: the output descriptor, all rows, and the
/// execution summary the shell prints in embedded mode.
struct RowsPayload {
  std::vector<Field> fields;
  std::vector<Row> rows;
  uint64_t elapsed_micros = 0;
  CacheOutcome cache = CacheOutcome::kBypass;
  std::string rewrite_note;  // "[rewritten: ...]" line(s); may be empty
  std::string warnings;      // lint findings, one per line; may be empty
  std::string explain;       // executed plan; empty unless SET explain on
};

// --- payload encoding (append to / read from a byte buffer) ---

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, std::string_view s);
void PutValue(std::string* out, const Value& v);

/// Cursor over a received payload. Get* methods fail (and poison the
/// cursor) on truncated or malformed input.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetString(std::string* s);
  Status GetValue(Value* v);

  /// Fails unless every payload byte has been consumed.
  Status ExpectDone() const;

 private:
  Status Need(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

std::string EncodeRowsPayload(const RowsPayload& rows);
Status DecodeRowsPayload(std::string_view payload, RowsPayload* out);

std::string EncodeErrorPayload(const Status& error);
/// Reconstructs the Status an ERROR frame carries (same code, same
/// message an embedded caller would have seen).
Status DecodeErrorPayload(std::string_view payload);

// --- framed socket I/O ---

/// Writes one frame; handles partial writes and EINTR. Returns an error
/// when the peer is gone.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame; handles partial reads and EINTR. A clean EOF before
/// any header byte yields kNotFound("connection closed") so callers can
/// tell an orderly hangup from a protocol error.
Status ReadFrame(int fd, FrameType* type, std::string* payload);

}  // namespace rfid::server

#endif  // RFID_SERVER_PROTOCOL_H_
