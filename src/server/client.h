// Thin client library for the SQL server: one blocking connection
// speaking the wire protocol, one request/response in flight at a time.
//
// Every server error arrives as a structured Status with the same code
// and message an embedded caller would have seen (ERROR frames carry
// the StatusCode + exact engine text), so callers can switch between
// embedded and remote execution without changing their error handling.
#ifndef RFID_SERVER_CLIENT_H_
#define RFID_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "server/protocol.h"

namespace rfid::server {

class Client {
 public:
  /// Connects, performs the HELLO/WELCOME handshake, and returns a ready
  /// client. A refusing (shutting down) or full server yields the
  /// server's structured error.
  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  uint64_t session_id() const { return session_id_; }

  /// Runs one SQL query (rewritten per the session's strategy).
  Result<RowsPayload> Query(const std::string& sql);

  /// Validates and registers a statement server-side; returns its id.
  Result<uint64_t> Prepare(const std::string& sql);

  /// Executes a prepared statement (this is the plan-cache fast path on
  /// repeat executions).
  Result<RowsPayload> Execute(uint64_t statement_id);

  Status CloseStatement(uint64_t statement_id);

  /// SET key value — strategy, pushdown, explain, candidates,
  /// deadline_ms, max_rows, snapshot. Returns the server's confirmation.
  Result<std::string> Set(const std::string& key, const std::string& value);

  /// Runs a dot-command (".gen 20 10", ".rule DEFINE ...", ".tables",
  /// ...) and returns its text output.
  Result<std::string> Command(const std::string& line);

  /// Orderly goodbye; the connection is unusable afterwards.
  Status Quit();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends one frame and reads the response. ERROR frames become the
  /// returned status; anything else is handed to the caller.
  Result<std::pair<FrameType, std::string>> RoundTrip(
      FrameType type, const std::string& payload);

  Result<RowsPayload> RowsRoundTrip(FrameType type,
                                    const std::string& payload);
  Result<std::string> TextRoundTrip(FrameType type,
                                    const std::string& payload);

  int fd_ = -1;
  uint64_t session_id_ = 0;
};

}  // namespace rfid::server

#endif  // RFID_SERVER_CLIENT_H_
