// Session manager for the SQL server front end.
//
// A session is one client connection's private state over the shared
// database: its own cleansing-rule catalog (a non-persisting
// CleansingRuleEngine, so rule sets never leak across connections), its
// rewrite settings (strategy, on/off, aggressive pushdown), its result
// shaping (explain, candidates, per-query deadline, row limit), its
// prepared statements, and — when requested via `SET snapshot hold` — a
// pinned epoch snapshot giving the session repeatable reads across
// queries while ingest keeps publishing.
//
// The manager bounds concurrent sessions (a connection past the limit is
// refused with ResourceExhausted before the protocol handshake
// completes) and hands out monotonically increasing session ids.
#ifndef RFID_SERVER_SESSION_H_
#define RFID_SERVER_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cleansing/rule.h"
#include "common/sync.h"
#include "rewrite/rewriter.h"
#include "storage/snapshot.h"

namespace rfid::server {

// A Session is owned by exactly one connection thread; its fields need
// no lock (the SessionManager's map of weak_ptrs is the shared part).
struct Session {
  uint64_t id = 0;

  /// Session-local rule catalog over the shared database (never persisted
  /// to the `__rules` system table).
  std::unique_ptr<CleansingRuleEngine> rules;

  // Rewrite settings (mirror the embedded shell's .strategy state).
  RewriteStrategy strategy = RewriteStrategy::kAuto;
  bool rewriting_enabled = true;
  bool aggressive_pushdown = false;

  // Result shaping.
  bool explain = false;
  bool show_candidates = false;
  int64_t deadline_micros = 0;  // 0 = no per-query deadline
  uint64_t max_rows = 0;        // 0 = unlimited

  /// Held snapshot for repeatable reads (SET snapshot hold). Null = every
  /// query pins the latest published snapshot.
  SnapshotPtr held_snapshot;

  // Prepared statements: id -> SQL text (validated at PREPARE time).
  std::map<uint64_t, std::string> prepared;
  uint64_t next_statement_id = 1;

  // Diagnostics.
  uint64_t queries_executed = 0;

  explicit Session(uint64_t session_id, Database* db)
      : id(session_id),
        rules(std::make_unique<CleansingRuleEngine>(db,
                                                    /*persist_templates=*/false)) {}
};

class SessionManager {
 public:
  explicit SessionManager(int max_sessions) : max_sessions_(max_sessions) {}

  /// Creates a session, or kResourceExhausted at the session limit.
  Result<std::shared_ptr<Session>> Create(Database* db);

  void Release(uint64_t id);

  int active() const;
  uint64_t total_created() const;

 private:
  const int max_sessions_;

  mutable Mutex mu_{LockRank::kSessionManager};
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  uint64_t total_created_ GUARDED_BY(mu_) = 0;
  std::map<uint64_t, std::weak_ptr<Session>> sessions_ GUARDED_BY(mu_);
};

}  // namespace rfid::server

#endif  // RFID_SERVER_SESSION_H_
