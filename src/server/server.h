// SQL server front end: a TCP server exposing the deferred-cleansing
// engine over the wire protocol in server/protocol.h.
//
// Architecture:
//  - one accept thread multiplexing the listen socket and a self-pipe
//    (the async-signal-safe shutdown wake-up);
//  - one thread per connection running a strict request/response loop;
//  - a SessionManager giving each connection its own rule catalog,
//    rewrite settings, prepared statements, and (optionally) a pinned
//    snapshot;
//  - a shared PlanCache memoizing rewrite decisions across sessions,
//    keyed on the SQL text, the rewrite settings, and the session's
//    rule-catalog fingerprint, and invalidated by data / statistics
//    version bumps;
//  - an AdmissionController mapping concurrent queries onto the
//    engine's worker pool and ExecContext budgets (every admitted query
//    reserves its budget from a global pool; over-quota work fails with
//    structured ResourceExhausted, never an OOM or a hang).
//
// Locking: queries and read-only commands take `state_mu_` shared;
// catalog-mutating commands (.gen, .load, .wal, .recover, .checkpoint)
// take it exclusive, so they wait for in-flight queries and vice versa.
// Streaming ingest (.feed) only needs the exclusive lock to lazily
// create the stream and pipeline — batch application runs against the
// pipeline's own writer lock while queries read pinned snapshots.
//
// Graceful shutdown (SIGINT / SIGTERM via InstallSignalHandlers, or
// Shutdown() directly): the signal handler only sets a flag and writes
// the self-pipe; the drain then (1) refuses new connections and new
// queries with a clean ERROR frame, (2) fails queued admissions,
// (3) cancels in-flight queries through their ExecContexts (clients
// receive kCancelled "server shutting down" as a normal response),
// (4) joins every connection thread, and (5) flushes durability with a
// final checkpoint when a WAL is attached.
#ifndef RFID_SERVER_SERVER_H_
#define RFID_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "cache/fragment_cache.h"
#include "common/sync.h"
#include "exec/exec_context.h"
#include "ingest/ingest.h"
#include "rfidgen/stream.h"
#include "server/admission.h"
#include "server/plan_cache.h"
#include "server/protocol.h"
#include "server/session.h"
#include "storage/catalog.h"
#include "wal/wal_manager.h"

namespace rfid::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port; the bound port is available via port().
  int port = 0;
  int max_sessions = 64;
  AdmissionOptions admission;
  size_t plan_cache_capacity = 256;
  bool plan_cache_enabled = true;
  /// Cleansed-fragment cache capacity. The bytes are carved out of the
  /// admission pool (admission.pool_bytes) at construction so cache
  /// growth and query budgets draw from one global memory envelope;
  /// capped at half the pool.
  size_t fragment_cache_bytes = 64ULL << 20;
  bool fragment_cache_enabled = true;
};

class Server {
 public:
  /// Binds, listens, and starts the accept thread. The returned server
  /// is serving when this returns.
  static Result<std::unique_ptr<Server>> Start(ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  int port() const { return port_; }

  /// Async-signal-safe shutdown request: sets a flag and writes the
  /// self-pipe. The drain itself runs in whatever thread calls
  /// WaitForShutdown() / Shutdown().
  void RequestShutdown();

  /// Blocks until a shutdown is requested (signal or RequestShutdown),
  /// then performs the full graceful drain.
  void WaitForShutdown();

  /// Graceful drain: refuse new work, cancel in-flight queries, join
  /// every thread, flush the WAL. Idempotent; safe to call concurrently
  /// (late callers block until the drain completes).
  void Shutdown();

  /// Routes SIGINT / SIGTERM to RequestShutdown() on this server. One
  /// server per process may install handlers at a time.
  void InstallSignalHandlers();

  // Introspection (tests, bench, .stats).
  PlanCache::Stats plan_cache_stats() const { return plan_cache_.stats(); }
  cache::FragmentCache::Stats fragment_cache_stats() const {
    return fragment_cache_.stats();
  }
  AdmissionController::Stats admission_stats() const {
    return admission_.stats();
  }
  int active_sessions() const { return sessions_.active(); }
  /// Status of the final WAL flush performed by Shutdown().
  Status final_flush_status() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Registers an in-flight query's ExecContext so shutdown can cancel
  /// it; unregisters on scope exit.
  class InflightGuard {
   public:
    InflightGuard(Server* server, ExecContext* ctx);
    ~InflightGuard();

   private:
    Server* server_;
    ExecContext* ctx_;
  };

  explicit Server(ServerOptions options);

  Status Listen();
  void AcceptLoop();
  void ReapConnections();
  void HandleConnection(Connection* conn);
  /// Handles one request frame; fills the response frame. Returns false
  /// when the connection should close after the response (QUIT).
  bool DispatchFrame(Session& session, FrameType type,
                     const std::string& payload, FrameType* out_type,
                     std::string* out);

  Result<RowsPayload> ExecuteQuery(Session& session, const std::string& sql);
  Result<std::string> HandleSet(Session& session, const std::string& key,
                                const std::string& value);
  Result<std::string> HandleCommand(Session& session, const std::string& line);

  uint64_t stats_version() const REQUIRES_SHARED(state_mu_);

  ServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;
  int wake_fd_[2] = {-1, -1};  // self-pipe: [0] read, [1] write

  Database db_;
  SessionManager sessions_;
  PlanCache plan_cache_;
  cache::FragmentCache fragment_cache_;
  AdmissionController admission_;

  /// Bumped by bulk mutations outside the ingest pipeline (.gen, .load,
  /// .recover); part of every plan-cache entry's version pair.
  std::atomic<uint64_t> data_version_{0};

  /// Shared: queries and read-only commands. Exclusive: commands that
  /// mutate the catalog or swap the pipeline / WAL. Guards the *pointers*
  /// below: a shared holder may call through them (the pipeline has its
  /// own writer lock; the stream is serialized by feed_mu_), it just
  /// cannot observe them being swapped.
  mutable SharedMutex state_mu_{LockRank::kServerState};
  std::unique_ptr<rfidgen::ReadStream> stream_ GUARDED_BY(state_mu_);
  std::unique_ptr<ingest::IngestPipeline> pipeline_ GUARDED_BY(state_mu_);
  std::unique_ptr<wal::WalManager> wal_ GUARDED_BY(state_mu_);
  uint64_t feed_generation_ GUARDED_BY(state_mu_) = 0;
  Mutex feed_mu_{LockRank::kServerFeed};  // serializes .feed application

  Mutex inflight_mu_{LockRank::kServerInflight};
  std::set<ExecContext*> inflight_ GUARDED_BY(inflight_mu_);

  Mutex conns_mu_{LockRank::kServerConns};
  std::list<std::unique_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);
  std::thread accept_thread_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> refusing_{false};     // drain: ERROR frames, no new work
  std::atomic<bool> accept_stop_{false};  // accept thread exit flag
  std::once_flag shutdown_once_;
  Mutex shutdown_mu_{LockRank::kServerShutdown};
  CondVar shutdown_cv_;
  mutable Mutex flush_mu_{LockRank::kServerFlush};
  Status final_flush_status_ GUARDED_BY(flush_mu_);
};

}  // namespace rfid::server

#endif  // RFID_SERVER_SERVER_H_
