// Admission control: maps concurrent client queries onto the engine's
// existing guardrails instead of letting them fight for memory and
// threads unbounded.
//
// Three gates, all surfaced as structured ResourceExhausted (never an
// OOM, never an unbounded wait):
//  - execution slots: at most `max_concurrent` queries run at once (the
//    morsel-driven worker pool is process-wide, so more coordinators than
//    cores just thrash it);
//  - a global memory pool: every admitted query reserves its budget
//    (`per_query_bytes`) from `pool_bytes` up front, and that exact
//    budget becomes the query's ExecContext memory limit — the engine's
//    own accounting then guarantees the reservation is never exceeded,
//    so the pool cannot be oversubscribed;
//  - a bounded FIFO run queue: when saturated, up to `queue_depth`
//    queries wait at most `queue_wait_micros` before failing with a
//    queue-deadline ResourceExhausted; a full queue rejects immediately.
//
// Per-session quotas are the pool carve: each session's queries get
// min(per_query_bytes, session_quota_bytes) as their ExecContext budget,
// so one session can never hold more than its quota of the pool even
// when the pool has room.
//
// Tickets are RAII: releasing one returns the slot and bytes and wakes
// the queue head. Shutdown() drains the queue with a Cancelled status so
// graceful shutdown never leaves a waiter blocked.
#ifndef RFID_SERVER_ADMISSION_H_
#define RFID_SERVER_ADMISSION_H_

#include <cstdint>
#include <deque>

#include "common/status.h"
#include "common/sync.h"

namespace rfid::server {

struct AdmissionOptions {
  int max_concurrent = 4;
  size_t queue_depth = 16;
  int64_t queue_wait_micros = 2'000'000;  // 2 s
  uint64_t pool_bytes = 1024ull << 20;     // global memory pool
  uint64_t per_query_bytes = 128ull << 20; // reserved per admitted query
  uint64_t session_quota_bytes = 256ull << 20;  // per-session budget cap
};

class AdmissionController {
 public:
  struct Stats {
    uint64_t admitted = 0;
    uint64_t queued = 0;            // admissions that had to wait
    uint64_t rejected_queue_full = 0;
    uint64_t rejected_timeout = 0;
    uint64_t rejected_shutdown = 0;
    int running = 0;
    uint64_t pool_used = 0;
  };

  /// RAII admission grant. Move-only; releases on destruction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(AdmissionController* controller, uint64_t bytes)
        : controller_(controller), bytes_(bytes) {}
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      controller_ = other.controller_;
      bytes_ = other.bytes_;
      other.controller_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release();
    bool granted() const { return controller_ != nullptr; }
    /// The memory reservation backing this ticket — the admitted query's
    /// ExecContext budget.
    uint64_t bytes() const { return bytes_; }

   private:
    AdmissionController* controller_ = nullptr;
    uint64_t bytes_ = 0;
  };

  explicit AdmissionController(const AdmissionOptions& options);

  /// Admits one query: immediately when a slot and pool bytes are free,
  /// otherwise by waiting in the bounded FIFO queue. Errors:
  ///  - kResourceExhausted "admission queue full"    (queue at depth)
  ///  - kResourceExhausted "queue wait deadline"     (waited too long)
  ///  - kCancelled         "server shutting down"    (shutdown drain)
  Result<Ticket> Admit();

  /// Fails all queued waiters and every future Admit with kCancelled.
  void Shutdown();

  Stats stats() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  friend class Ticket;
  void ReleaseLocked(uint64_t bytes) REQUIRES(mu_);
  /// A slot and pool bytes are free for a `bytes`-sized reservation.
  bool CanRunLocked(uint64_t bytes) const REQUIRES(mu_);

  AdmissionOptions options_;  // immutable after construction

  mutable Mutex mu_{LockRank::kAdmission};
  CondVar cv_;
  bool shutdown_ GUARDED_BY(mu_) = false;
  int running_ GUARDED_BY(mu_) = 0;
  uint64_t pool_used_ GUARDED_BY(mu_) = 0;
  uint64_t next_waiter_ GUARDED_BY(mu_) = 0;
  std::deque<uint64_t> queue_ GUARDED_BY(mu_);  // FIFO of waiter ids
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace rfid::server

#endif  // RFID_SERVER_ADMISSION_H_
