#include "cleansing/rule_compiler.h"

#include <cstdint>
#include <map>
#include <limits>

#include "common/string_util.h"
#include "common/time_util.h"
#include "expr/conjunct.h"
#include "plan/planner.h"
#include "sql/render.h"

namespace rfid {

namespace {

bool HasColumn(const std::vector<Column>& cols, std::string_view name) {
  for (const Column& c : cols) {
    if (EqualsIgnoreCase(c.name, name)) return true;
  }
  return false;
}

// Microsecond bounds on (X.skey - T.skey), intersected from the rule's
// sequence-key difference conjuncts plus the pattern-implied direction.
struct DiffBounds {
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();

  void Apply(BinaryOp op, int64_t offset) {
    switch (op) {
      case BinaryOp::kLt:
        hi = std::min(hi, offset - 1);
        break;
      case BinaryOp::kLe:
        hi = std::min(hi, offset);
        break;
      case BinaryOp::kGt:
        lo = std::max(lo, offset + 1);
        break;
      case BinaryOp::kGe:
        lo = std::max(lo, offset);
        break;
      case BinaryOp::kEq:
        lo = std::max(lo, offset);
        hi = std::min(hi, offset);
        break;
      default:
        break;  // kNe does not bound
    }
  }

  bool unbounded_lo() const { return lo == std::numeric_limits<int64_t>::min(); }
  bool unbounded_hi() const { return hi == std::numeric_limits<int64_t>::max(); }
};

class Compiler {
 public:
  Compiler(const CleansingRule& rule, const std::vector<Column>& input_columns,
           const std::string& prefix)
      : rule_(rule), input_(input_columns), prefix_(prefix) {}

  Result<CompiledRule> Compile() {
    target_index_ = rule_.TargetIndex();
    if (target_index_ < 0) {
      return Status::InvalidArgument("rule target missing from pattern");
    }
    if (!HasColumn(input_, rule_.ckey) || !HasColumn(input_, rule_.skey)) {
      return Status::InvalidArgument(StrFormat(
          "rule input lacks cluster/sequence key %s/%s", rule_.ckey.c_str(),
          rule_.skey.c_str()));
    }

    // 1. Pull sequence-key difference conjuncts out of the condition; they
    //    parameterize set-reference frames. COUNT(X) threshold conjuncts
    //    (the SQL/OLAP capability Section 4.3 points at: "how many reads
    //    by readerX should be observed before taking an action") are
    //    consumed here too and turn the existential flag into a count.
    std::vector<ExprPtr> conjuncts = SplitConjuncts(rule_.condition);
    for (const PatternRef& ref : rule_.pattern) {
      if (!ref.is_set) continue;
      RFID_RETURN_IF_ERROR(ExtractCountThreshold(ref, &conjuncts));
      RFID_RETURN_IF_ERROR(ExtractFrameBounds(ref, &conjuncts));
    }
    ExprPtr cond = CombineConjuncts(conjuncts);
    if (cond != nullptr && ContainsAggregate(cond)) {
      return Status::Unimplemented(
          "aggregates in rule conditions are only supported as top-level "
          "COUNT(<set reference>) OP <integer> thresholds");
    }

    // 2. Existential flags for set references.
    for (const PatternRef& ref : rule_.pattern) {
      if (!ref.is_set) continue;
      if (cond != nullptr && References(cond, ref.name)) {
        RFID_ASSIGN_OR_RETURN(cond, ReplaceSetSubtrees(cond, ref));
      }
    }

    // 2b. A threshold with no accompanying φ subtree counts every frame
    //     row: COUNT(B) >= k alone.
    for (const PatternRef& ref : rule_.pattern) {
      if (!ref.is_set) continue;
      auto threshold = count_thresholds_.find(ToLower(ref.name));
      if (threshold == count_thresholds_.end()) continue;
      if (cond != nullptr && References(cond, ref.name)) continue;
      bool already_flagged = false;
      for (const auto& [alias, agg] : window_aggs_) {
        if (alias.find("__ex_" + ToLower(ref.name)) == 0) already_flagged = true;
      }
      if (already_flagged) continue;
      std::string alias = StrFormat("__ex_%s%zu", ToLower(ref.name).c_str(),
                                    window_aggs_.size());
      window_aggs_.emplace_back(
          alias, MakeWindowCall("count", {MakeColumnRef("", rule_.skey)},
                                MakeWindow(FrameForSet(ref))));
      ExprPtr flag = MakeBinary(threshold->second.first,
                                MakeColumnRef("", alias),
                                MakeLiteral(Value::Int64(threshold->second.second)));
      cond = cond == nullptr ? flag : MakeBinary(BinaryOp::kAnd, cond, flag);
    }

    // 3. Column extraction for singleton contexts; target columns become
    //    unqualified references.
    if (cond != nullptr) {
      RFID_ASSIGN_OR_RETURN(cond, ReplaceSingletonRefs(cond));
    }

    // 4. Assemble the stages.
    CompiledRule out;
    std::string stage1 = prefix_ + "_w";
    std::string stage2 = prefix_;
    {
      std::string body = "SELECT ";
      std::vector<std::string> parts;
      for (const Column& c : input_) parts.push_back(c.name);
      for (const auto& [alias, agg] : window_aggs_) {
        parts.push_back(RenderExpr(agg) + " AS " + alias);
      }
      body += Join(parts, ", ");
      body += " FROM ";
      body += kInputPlaceholder;
      out.stages.push_back({stage1, std::move(body)});
    }
    std::string cond_sql = cond == nullptr ? "TRUE = TRUE" : RenderExpr(cond);
    switch (rule_.action) {
      case RuleAction::kDelete: {
        std::string body = "SELECT " + InputColumnList() + " FROM " + stage1 +
                           " WHERE NOT (" + cond_sql + ") OR (" + cond_sql +
                           ") IS NULL";
        out.stages.push_back({stage2, std::move(body)});
        out.output_columns = input_;
        break;
      }
      case RuleAction::kKeep: {
        std::string body = "SELECT " + InputColumnList() + " FROM " + stage1 +
                           " WHERE " + cond_sql;
        out.stages.push_back({stage2, std::move(body)});
        out.output_columns = input_;
        break;
      }
      case RuleAction::kModify: {
        RFID_ASSIGN_OR_RETURN(std::string body, BuildModifyStage(stage1, cond_sql));
        out.stages.push_back({stage2, std::move(body)});
        out.output_columns = modify_output_;
        break;
      }
    }
    out.output_name = stage2;
    return out;
  }

 private:
  const PatternRef& Target() const {
    return rule_.pattern[static_cast<size_t>(target_index_)];
  }

  // Consumes top-level conjuncts of the form "COUNT(X) OP k" for the set
  // reference X; the existential aggregate for X then becomes
  // SUM(CASE ...) OVER (frame) compared with OP k instead of MAX(...) = 1.
  Status ExtractCountThreshold(const PatternRef& set_ref,
                               std::vector<ExprPtr>* conjuncts) {
    std::vector<ExprPtr> remaining;
    for (const ExprPtr& c : *conjuncts) {
      bool consumed = false;
      if (c->kind == ExprKind::kBinary && IsComparisonOp(c->op)) {
        const ExprPtr& l = c->children[0];
        const ExprPtr& r = c->children[1];
        const Expr* call = nullptr;
        const Expr* lit = nullptr;
        BinaryOp op = c->op;
        if (l->kind == ExprKind::kFuncCall && r->kind == ExprKind::kLiteral) {
          call = l.get();
          lit = r.get();
        } else if (r->kind == ExprKind::kFuncCall &&
                   l->kind == ExprKind::kLiteral) {
          call = r.get();
          lit = l.get();
          op = SwapComparison(op);
        }
        if (call != nullptr && call->func_name == "count" &&
            call->children.size() == 1 &&
            call->children[0]->kind == ExprKind::kColumnRef &&
            call->children[0]->qualifier.empty() &&
            EqualsIgnoreCase(call->children[0]->column, set_ref.name) &&
            lit->value.type() == DataType::kInt64) {
          count_thresholds_[ToLower(set_ref.name)] = {op, lit->value.int64_value()};
          consumed = true;
        }
      }
      if (!consumed) remaining.push_back(c);
    }
    *conjuncts = std::move(remaining);
    return Status::OK();
  }

  // Consumes top-level conjuncts of the form "X.skey - T.skey OP offset"
  // (either orientation) for the set reference X and folds them into the
  // RANGE frame for X.
  Status ExtractFrameBounds(const PatternRef& set_ref,
                            std::vector<ExprPtr>* conjuncts) {
    int set_index = -1;
    for (size_t i = 0; i < rule_.pattern.size(); ++i) {
      if (EqualsIgnoreCase(rule_.pattern[i].name, set_ref.name)) {
        set_index = static_cast<int>(i);
      }
    }
    DiffBounds bounds;
    // Pattern-implied direction: strictly before or after the target.
    if (set_index < target_index_) {
      bounds.Apply(BinaryOp::kLe, -1);
    } else {
      bounds.Apply(BinaryOp::kGe, 1);
    }
    std::vector<ExprPtr> remaining;
    for (const ExprPtr& c : *conjuncts) {
      ColumnDifferenceCmp m;
      bool consumed = false;
      if (MatchColumnDifferenceCmp(c, &m) &&
          EqualsIgnoreCase(m.left->column, rule_.skey) &&
          EqualsIgnoreCase(m.right->column, rule_.skey)) {
        if (EqualsIgnoreCase(m.left->qualifier, set_ref.name) &&
            EqualsIgnoreCase(m.right->qualifier, Target().name)) {
          bounds.Apply(m.op, m.offset_micros);
          consumed = true;
        } else if (EqualsIgnoreCase(m.right->qualifier, set_ref.name) &&
                   EqualsIgnoreCase(m.left->qualifier, Target().name)) {
          // T - X OP c  <=>  X - T swapped-OP -c
          bounds.Apply(SwapComparison(m.op), -m.offset_micros);
          consumed = true;
        }
      }
      if (!consumed) remaining.push_back(c);
    }
    *conjuncts = std::move(remaining);
    frame_bounds_[ToLower(set_ref.name)] = bounds;
    return Status::OK();
  }

  // Replaces every maximal subtree that references only the set reference
  // with "__ex_<ref><i> = 1", registering the existential window flag.
  Result<ExprPtr> ReplaceSetSubtrees(const ExprPtr& e, const PatternRef& ref) {
    if (!References(e, ref.name)) return e;
    std::set<std::string> quals = ReferencedQualifiers(e);
    bool only_ref = true;
    for (const std::string& q : quals) {
      if (!EqualsIgnoreCase(q, ref.name)) only_ref = false;
    }
    if (only_ref) {
      // φ(X): strip the qualifier so the CASE evaluates against each frame
      // row's own columns.
      std::vector<const Expr*> refs;
      CollectColumnRefs(e, &refs);
      for (const Expr* r : refs) {
        if (!HasColumn(input_, r->column)) {
          return Status::InvalidArgument(StrFormat(
              "rule condition references unknown column %s.%s",
              r->qualifier.c_str(), r->column.c_str()));
        }
      }
      ExprPtr phi = SubstituteQualifier(e, ref.name, "");
      std::string alias =
          StrFormat("__ex_%s%zu", ToLower(ref.name).c_str(), window_aggs_.size());
      ExprPtr case_expr =
          MakeCase({phi, MakeLiteral(Value::Int64(1)), MakeLiteral(Value::Int64(0))},
                   /*has_else=*/true);
      auto threshold = count_thresholds_.find(ToLower(ref.name));
      if (threshold != count_thresholds_.end()) {
        window_aggs_.emplace_back(alias,
                                  MakeWindowCall("sum", {case_expr},
                                                 MakeWindow(FrameForSet(ref))));
        return MakeBinary(threshold->second.first, MakeColumnRef("", alias),
                          MakeLiteral(Value::Int64(threshold->second.second)));
      }
      window_aggs_.emplace_back(alias,
                                MakeWindowCall("max", {case_expr},
                                               MakeWindow(FrameForSet(ref))));
      return MakeBinary(BinaryOp::kEq, MakeColumnRef("", alias),
                        MakeLiteral(Value::Int64(1)));
    }
    // Mixed subtree: recurse through boolean/CASE structure only.
    switch (e->kind) {
      case ExprKind::kBinary:
        if (e->op != BinaryOp::kAnd && e->op != BinaryOp::kOr) {
          return Status::Unimplemented(
              "a comparison may not mix a set reference with other references: " +
              ExprToSql(e));
        }
        break;
      case ExprKind::kNot:
      case ExprKind::kCase:
        break;
      default:
        return Status::Unimplemented(
            "unsupported use of set reference in condition: " + ExprToSql(e));
    }
    auto copy = std::make_shared<Expr>(*e);
    for (auto& child : copy->children) {
      RFID_ASSIGN_OR_RETURN(child, ReplaceSetSubtrees(child, ref));
    }
    return copy;
  }

  FrameSpec FrameForSet(const PatternRef& ref) const {
    const DiffBounds& b = frame_bounds_.at(ToLower(ref.name));
    FrameSpec f;
    f.unit = FrameUnit::kRange;
    f.start = b.unbounded_lo() ? FrameBound{true, -1} : FrameBound{false, b.lo};
    f.end = b.unbounded_hi() ? FrameBound{true, 1} : FrameBound{false, b.hi};
    return f;
  }

  WindowSpec MakeWindow(FrameSpec frame) const {
    WindowSpec w;
    w.partition_by = {MakeColumnRef("", rule_.ckey)};
    w.order_by = {{MakeColumnRef("", rule_.skey), true}};
    w.frame = frame;
    w.has_frame = true;
    return w;
  }

  // Replaces T.col -> col and singleton-context X.col -> __<x>_col,
  // creating one ROWS-frame scalar aggregate per (X, col).
  Result<ExprPtr> ReplaceSingletonRefs(const ExprPtr& e) {
    if (e == nullptr) return e;
    if (e->kind == ExprKind::kColumnRef) {
      if (e->qualifier.empty()) return e;  // already rewritten
      if (!HasColumn(input_, e->column)) {
        return Status::InvalidArgument(StrFormat(
            "rule condition references unknown column %s.%s",
            e->qualifier.c_str(), e->column.c_str()));
      }
      if (EqualsIgnoreCase(e->qualifier, Target().name)) {
        return MakeColumnRef("", e->column);
      }
      // Singleton context.
      int idx = -1;
      for (size_t i = 0; i < rule_.pattern.size(); ++i) {
        if (EqualsIgnoreCase(rule_.pattern[i].name, e->qualifier)) {
          idx = static_cast<int>(i);
        }
      }
      if (idx < 0) {
        return Status::InvalidArgument("unknown pattern reference: " +
                                       e->qualifier);
      }
      int offset = idx - target_index_;
      std::string alias = StrFormat("__%s_%s", ToLower(e->qualifier).c_str(),
                                    ToLower(e->column).c_str());
      bool exists = false;
      for (const auto& [a, agg] : window_aggs_) {
        if (a == alias) exists = true;
      }
      if (!exists) {
        FrameSpec f;
        f.unit = FrameUnit::kRows;
        f.start = {false, offset};
        f.end = {false, offset};
        window_aggs_.emplace_back(
            alias, MakeWindowCall("max", {MakeColumnRef("", e->column)},
                                  MakeWindow(f)));
      }
      return MakeColumnRef("", alias);
    }
    auto copy = std::make_shared<Expr>(*e);
    for (auto& child : copy->children) {
      RFID_ASSIGN_OR_RETURN(child, ReplaceSingletonRefs(child));
    }
    return copy;
  }

  std::string InputColumnList() const {
    std::vector<std::string> names;
    for (const Column& c : input_) names.push_back(c.name);
    return Join(names, ", ");
  }

  Result<std::string> BuildModifyStage(const std::string& stage1,
                                       const std::string& cond_sql) {
    modify_output_ = input_;
    std::vector<std::string> parts;
    auto assignment_for = [this](std::string_view col) -> const ModifyAssignment* {
      for (const ModifyAssignment& a : rule_.assignments) {
        if (EqualsIgnoreCase(a.column, col)) return &a;
      }
      return nullptr;
    };
    for (const Column& c : input_) {
      const ModifyAssignment* a = assignment_for(c.name);
      if (a == nullptr) {
        parts.push_back(c.name);
        continue;
      }
      RFID_ASSIGN_OR_RETURN(std::string value_sql, RenderAssignmentValue(*a));
      parts.push_back(StrFormat("CASE WHEN %s THEN %s ELSE %s END AS %s",
                                cond_sql.c_str(), value_sql.c_str(),
                                c.name.c_str(), c.name.c_str()));
    }
    // Columns created by MODIFY (Section 4.2: "If a column to be modified
    // does not exist, we create a new column on the fly"). Unaffected rows
    // get 0, so later rules can test flag = 0 (missing-read rule r2).
    for (const ModifyAssignment& a : rule_.assignments) {
      if (HasColumn(input_, a.column)) continue;
      RFID_ASSIGN_OR_RETURN(std::string value_sql, RenderAssignmentValue(a));
      parts.push_back(StrFormat("CASE WHEN %s THEN %s ELSE 0 END AS %s",
                                cond_sql.c_str(), value_sql.c_str(),
                                a.column.c_str()));
      DataType t = a.value->kind == ExprKind::kLiteral ? a.value->value.type()
                                                       : DataType::kInt64;
      modify_output_.push_back({a.column, t});
    }
    return "SELECT " + Join(parts, ", ") + " FROM " + stage1;
  }

  Result<std::string> RenderAssignmentValue(const ModifyAssignment& a) {
    // Values reference the target; in the stage the target's columns are
    // the plain input columns.
    std::vector<const Expr*> refs;
    CollectColumnRefs(a.value, &refs);
    for (const Expr* r : refs) {
      if (!HasColumn(input_, r->column)) {
        return Status::InvalidArgument("MODIFY value references unknown column: " +
                                       r->column);
      }
    }
    return RenderExpr(SubstituteQualifier(a.value, Target().name, ""));
  }

  const CleansingRule& rule_;
  const std::vector<Column>& input_;
  std::string prefix_;
  int target_index_ = -1;
  std::map<std::string, DiffBounds> frame_bounds_;
  std::map<std::string, std::pair<BinaryOp, int64_t>> count_thresholds_;
  std::vector<std::pair<std::string, ExprPtr>> window_aggs_;
  std::vector<Column> modify_output_;
};

}  // namespace

Result<CompiledRule> CompileRule(const CleansingRule& rule,
                                 const std::vector<Column>& input_columns,
                                 const std::string& stage_prefix) {
  Compiler compiler(rule, input_columns, stage_prefix);
  return compiler.Compile();
}

Result<std::vector<Column>> RuleInputColumns(const CleansingRule& rule,
                                             const Database& db) {
  if (rule.from_select != nullptr) {
    Planner planner(&db);
    RFID_ASSIGN_OR_RETURN(PlannedQuery plan, planner.Plan(*rule.from_select));
    std::vector<Column> cols;
    for (const Field& f : plan.root->output_desc().fields()) {
      cols.push_back({f.name, f.type});
    }
    return cols;
  }
  const std::string& table_name =
      rule.from_table.empty() ? rule.on_table : rule.from_table;
  const Table* table = db.GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("rule input table not found: " + table_name);
  }
  return table->schema().columns();
}

}  // namespace rfid
