#include "cleansing/rule_parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace rfid {

namespace {

class RuleParser {
 public:
  RuleParser(std::string_view text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  Result<CleansingRule> Parse() {
    CleansingRule rule;
    RFID_RETURN_IF_ERROR(ExpectKeyword("define"));
    RFID_ASSIGN_OR_RETURN(rule.name, ExpectIdentifier("rule name"));
    RFID_RETURN_IF_ERROR(ExpectKeyword("on"));
    RFID_ASSIGN_OR_RETURN(rule.on_table, ExpectIdentifier("table name"));
    if (MatchKeyword("from")) {
      if (PeekSymbol("(")) {
        RFID_ASSIGN_OR_RETURN(std::string sql, SliceParenthesized());
        RFID_ASSIGN_OR_RETURN(rule.from_select, ParseSql(sql));
      } else {
        RFID_ASSIGN_OR_RETURN(rule.from_table, ExpectIdentifier("input table"));
      }
    }
    RFID_RETURN_IF_ERROR(ExpectKeyword("cluster"));
    RFID_RETURN_IF_ERROR(ExpectKeyword("by"));
    RFID_ASSIGN_OR_RETURN(rule.ckey, ExpectIdentifier("cluster key"));
    RFID_RETURN_IF_ERROR(ExpectKeyword("sequence"));
    RFID_RETURN_IF_ERROR(ExpectKeyword("by"));
    RFID_ASSIGN_OR_RETURN(rule.skey, ExpectIdentifier("sequence key"));
    RFID_RETURN_IF_ERROR(ExpectKeyword("as"));
    RFID_RETURN_IF_ERROR(ParsePattern(&rule));
    RFID_RETURN_IF_ERROR(ExpectKeyword("where"));
    RFID_ASSIGN_OR_RETURN(rule.condition, SliceExpressionUntil({"action"}));
    RFID_RETURN_IF_ERROR(ExpectKeyword("action"));
    RFID_RETURN_IF_ERROR(ParseAction(&rule));
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return rule;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    return idx < tokens_.size() ? tokens_[idx] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const {
    const Token& t = Peek();
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool MatchKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(StrFormat("expected %s", std::string(kw).c_str()));
  }
  bool PeekSymbol(std::string_view sym) const {
    const Token& t = Peek();
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool MatchSymbol(std::string_view sym) {
    if (PeekSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(std::string_view sym) {
    if (MatchSymbol(sym)) return Status::OK();
    return Error(StrFormat("expected '%s'", std::string(sym).c_str()));
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error(StrFormat("expected %s", what));
    }
    return Advance().text;
  }
  Status Error(const std::string& message) const {
    const Token& t = Peek();
    std::string got =
        t.type == TokenType::kEnd ? "end of input" : "'" + t.text + "'";
    return Status::ParseError(
        StrFormat("rule: %s but got %s (%s)", message.c_str(), got.c_str(),
                  LocationString(text_, t.offset).c_str()));
  }

  Status ParsePattern(CleansingRule* rule) {
    RFID_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      PatternRef ref;
      if (MatchSymbol("*")) ref.is_set = true;
      RFID_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier("pattern reference"));
      rule->pattern.push_back(std::move(ref));
      if (!MatchSymbol(",")) break;
    }
    return ExpectSymbol(")");
  }

  Status ParseAction(CleansingRule* rule) {
    if (MatchKeyword("delete")) {
      rule->action = RuleAction::kDelete;
      RFID_ASSIGN_OR_RETURN(rule->target, ExpectIdentifier("target reference"));
      return Status::OK();
    }
    if (MatchKeyword("keep")) {
      rule->action = RuleAction::kKeep;
      RFID_ASSIGN_OR_RETURN(rule->target, ExpectIdentifier("target reference"));
      return Status::OK();
    }
    if (MatchKeyword("modify")) {
      rule->action = RuleAction::kModify;
      while (true) {
        RFID_ASSIGN_OR_RETURN(std::string ref, ExpectIdentifier("target reference"));
        RFID_RETURN_IF_ERROR(ExpectSymbol("."));
        RFID_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column"));
        RFID_RETURN_IF_ERROR(ExpectSymbol("="));
        RFID_ASSIGN_OR_RETURN(ExprPtr value, SliceExpressionUntil({","}));
        if (rule->target.empty()) {
          rule->target = ref;
        } else if (!EqualsIgnoreCase(rule->target, ref)) {
          return Status::ParseError(
              "MODIFY assignments must all target the same reference");
        }
        rule->assignments.push_back({std::move(col), std::move(value)});
        if (!MatchSymbol(",")) break;
      }
      return Status::OK();
    }
    return Error("expected DELETE, KEEP or MODIFY");
  }

  // Slices the raw text from the current token up to (not including) the
  // first top-level occurrence of any stop word/symbol, and parses it with
  // the SQL expression parser. Stops at end of input too.
  Result<ExprPtr> SliceExpressionUntil(const std::vector<std::string>& stops) {
    size_t start_tok = pos_;
    int depth = 0;
    while (Peek().type != TokenType::kEnd) {
      const Token& t = Peek();
      if (t.type == TokenType::kSymbol) {
        if (t.text == "(") ++depth;
        if (t.text == ")") --depth;
      }
      if (depth == 0) {
        bool stop = false;
        for (const std::string& s : stops) {
          if (t.type == TokenType::kSymbol ? t.text == s
                                           : EqualsIgnoreCase(t.text, s)) {
            stop = true;
            break;
          }
        }
        if (stop) break;
      }
      ++pos_;
    }
    if (pos_ == start_tok) return Error("expected expression");
    size_t begin = tokens_[start_tok].offset;
    size_t end = Peek().offset;
    return ParseExpression(text_.substr(begin, end - begin));
  }

  // Current token must be '('; returns the text inside the matching paren
  // and advances past it.
  Result<std::string> SliceParenthesized() {
    RFID_RETURN_IF_ERROR(ExpectSymbol("("));
    size_t begin = Peek().offset;
    int depth = 1;
    while (Peek().type != TokenType::kEnd) {
      const Token& t = Peek();
      if (t.type == TokenType::kSymbol) {
        if (t.text == "(") ++depth;
        if (t.text == ")") {
          --depth;
          if (depth == 0) {
            size_t end = t.offset;
            ++pos_;
            return std::string(text_.substr(begin, end - begin));
          }
        }
      }
      ++pos_;
    }
    return Error("unbalanced parentheses in FROM clause");
  }

  std::string_view text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<CleansingRule> ParseRule(std::string_view text) {
  RFID_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  RuleParser parser(text, std::move(tokens));
  RFID_ASSIGN_OR_RETURN(CleansingRule rule, parser.Parse());
  RFID_RETURN_IF_ERROR(ValidateRule(rule));
  return rule;
}

}  // namespace rfid
