#include "cleansing/chain.h"

#include <cstring>

#include "common/fault.h"
#include "common/string_util.h"
#include "sql/render.h"

namespace rfid {

namespace {

void ReplaceInExpr(const ExprPtr& e, std::string_view from,
                   const std::string& to) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kInSubquery && e->subquery != nullptr) {
    ReplaceTableRefs(e->subquery.get(), from, to);
  }
  for (const ExprPtr& c : e->children) ReplaceInExpr(c, from, to);
}

// Replaces the placeholder token in a stage body.
std::string SubstituteInput(const std::string& body, const std::string& input) {
  std::string out = body;
  size_t pos = out.find(kInputPlaceholder);
  while (pos != std::string::npos) {
    out.replace(pos, strlen(kInputPlaceholder), input);
    pos = out.find(kInputPlaceholder, pos + input.size());
  }
  return out;
}

}  // namespace

void ReplaceTableRefs(SelectStatement* stmt, std::string_view from,
                      const std::string& to) {
  for (WithClause& w : stmt->with) {
    ReplaceTableRefs(w.body.get(), from, to);
  }
  for (SelectCore& core : stmt->cores) {
    for (TableRef& ref : core.from) {
      if (EqualsIgnoreCase(ref.table_name, from)) {
        // Keep the visible alias: rows were addressed by the original
        // name/alias in predicates.
        if (EqualsIgnoreCase(ref.alias, ref.table_name)) {
          ref.alias = ref.table_name;  // alias stays the old name
        }
        ref.table_name = to;
      }
    }
    ReplaceInExpr(core.where, from, to);
    for (const SelectItem& item : core.items) ReplaceInExpr(item.expr, from, to);
    for (const ExprPtr& g : core.group_by) ReplaceInExpr(g, from, to);
  }
}

Result<CleansingChain> BuildCleansingChain(
    const std::vector<const CleansingRule*>& rules, const Database& db,
    const std::string& input_name, const std::vector<Column>& input_columns,
    const std::string& derived_filter_sql) {
  RFID_FAULT_POINT("cleansing.BuildChain");
  CleansingChain chain;
  std::string current = input_name;
  std::vector<Column> current_cols = input_columns;
  for (size_t i = 0; i < rules.size(); ++i) {
    const CleansingRule& rule = *rules[i];
    if (rule.HasDerivedInput()) {
      StatementPtr derived = CloneStatement(rule.from_select);
      ReplaceTableRefs(derived.get(), rule.on_table, current);
      std::string name = StrFormat("__rin%zu", i);
      chain.with_clauses.emplace_back(name, StatementToSql(*derived));
      current = name;
      RFID_ASSIGN_OR_RETURN(current_cols, RuleInputColumns(rule, db));
      if (!derived_filter_sql.empty()) {
        std::string filtered = StrFormat("__rinf%zu", i);
        chain.with_clauses.emplace_back(
            filtered,
            "SELECT * FROM " + name + " WHERE " + derived_filter_sql);
        current = filtered;
      }
    } else if (!rule.from_table.empty() &&
               !EqualsIgnoreCase(rule.from_table, rule.on_table)) {
      // Input is a different plain table: the chain switches to it; the
      // restricted input is not applicable (rare; kept for completeness).
      current = rule.from_table;
      RFID_ASSIGN_OR_RETURN(current_cols, RuleInputColumns(rule, db));
    }
    RFID_ASSIGN_OR_RETURN(
        CompiledRule compiled,
        CompileRule(rule, current_cols, StrFormat("__r%zu", i)));
    for (const CompiledStage& stage : compiled.stages) {
      chain.with_clauses.emplace_back(stage.with_name,
                                      SubstituteInput(stage.body_sql, current));
    }
    current = compiled.output_name;
    current_cols = compiled.output_columns;
  }
  chain.output_name = current;
  chain.output_columns = std::move(current_cols);
  return chain;
}

}  // namespace rfid
