// Parser for the extended SQL-TS rule language (grammar in rule.h).
#ifndef RFID_CLEANSING_RULE_PARSER_H_
#define RFID_CLEANSING_RULE_PARSER_H_

#include "cleansing/rule.h"

namespace rfid {

/// Parses one rule definition. The WHERE condition and MODIFY values are
/// parsed with the SQL expression grammar (so interval literals like
/// "5 MINUTES" work); FROM accepts a table name or a parenthesized SELECT.
Result<CleansingRule> ParseRule(std::string_view text);

}  // namespace rfid

#endif  // RFID_CLEANSING_RULE_PARSER_H_
