// Compiles cleansing rules into SQL/OLAP templates (Section 4.2):
//
//  - Each singleton context reference X at relative offset d from the
//    target becomes one scalar aggregate per referenced column:
//      MAX(col) OVER (PARTITION BY ckey ORDER BY skey
//                     ROWS BETWEEN |d| PRECEDING|FOLLOWING AND ...) AS __X_col
//  - Each set reference (*X) becomes an existential flag:
//      MAX(CASE WHEN <condition-on-X-columns> THEN 1 ELSE 0 END)
//        OVER (... RANGE BETWEEN <bounds from skey conjuncts>) AS __ex_X
//    where the RANGE bounds come from the rule's sequence-key difference
//    conjuncts (e.g. "B.rtime - A.rtime < 10 MINUTES") and the pattern
//    position (before/after the target).
//  - DELETE/KEEP become filters with the paper's NULL handling (DELETE
//    keeps a row whose condition is unknown; KEEP requires TRUE).
//  - MODIFY becomes CASE projections; assigning to a column that does not
//    exist creates it (default 0 / NULL elsewhere).
//
// The output is a chain of WITH-clause stage bodies in SQL text. The
// first stage reads from the placeholder relation kInputPlaceholder; the
// rewrite engine splices the chain behind whichever restricted input the
// chosen rewrite produces.
#ifndef RFID_CLEANSING_RULE_COMPILER_H_
#define RFID_CLEANSING_RULE_COMPILER_H_

#include "cleansing/rule.h"

namespace rfid {

/// Name of the placeholder relation the first stage selects FROM.
inline constexpr const char* kInputPlaceholder = "__RULE_INPUT__";

struct CompiledStage {
  std::string with_name;  // suggested WITH-clause name
  std::string body_sql;   // SELECT text; first stage reads kInputPlaceholder
};

struct CompiledRule {
  std::vector<CompiledStage> stages;
  std::string output_name;                  // last stage's WITH name
  std::vector<Column> output_columns;       // schema of the cleansed output
};

/// Compiles `rule` for an input with the given columns. `input_columns`
/// must contain ckey and skey and every data column the rule condition
/// touches. `stage_prefix` namespaces the generated WITH names so several
/// rules can chain in one statement.
Result<CompiledRule> CompileRule(const CleansingRule& rule,
                                 const std::vector<Column>& input_columns,
                                 const std::string& stage_prefix);

/// Resolves the rule's input schema: the ON/FROM table's schema or the
/// derived statement's output schema (planned against `db`).
Result<std::vector<Column>> RuleInputColumns(const CleansingRule& rule,
                                             const Database& db);

}  // namespace rfid

#endif  // RFID_CLEANSING_RULE_COMPILER_H_
