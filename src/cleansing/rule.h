// Cleansing-rule model: the extended SQL-TS rule of Section 4.2 —
//
//   DEFINE      <rule name>
//   ON          <table>                 -- table the rule cleanses
//   FROM        <table | (SELECT ...)>  -- rule input (defaults to ON table)
//   CLUSTER BY  <ckey>                  -- sequence grouping key (epc)
//   SEQUENCE BY <skey>                  -- sequence ordering key (rtime)
//   AS          (A, B, *C)              -- pattern references
//   WHERE       <condition over refs>
//   ACTION      DELETE r | KEEP r | MODIFY r.col = expr [, ...]
//
// plus the catalog that stores rules in creation order (Section 4.4: rule
// application order is creation order).
#ifndef RFID_CLEANSING_RULE_H_
#define RFID_CLEANSING_RULE_H_

#include <optional>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "storage/catalog.h"

namespace rfid {
struct CompiledRule;
}  // namespace rfid

namespace rfid {

enum class RuleAction { kDelete, kKeep, kModify };

const char* RuleActionName(RuleAction a);

struct PatternRef {
  std::string name;
  bool is_set = false;  // designated with '*'
};

struct ModifyAssignment {
  std::string column;  // on the target reference
  ExprPtr value;       // may reference target columns (qualified by target)
};

struct CleansingRule {
  std::string name;
  std::string on_table;
  // Input: either a plain table (from_table) or a derived statement
  // (from_select). When both are empty the input is the ON table.
  std::string from_table;
  StatementPtr from_select;
  std::string ckey;
  std::string skey;
  std::vector<PatternRef> pattern;
  ExprPtr condition;  // column refs qualified with pattern reference names
  RuleAction action = RuleAction::kDelete;
  std::string target;  // target reference name
  std::vector<ModifyAssignment> assignments;  // MODIFY only
  int64_t seq = 0;  // creation order, assigned by the catalog

  /// Index of the target reference within the pattern, or -1.
  int TargetIndex() const;
  /// True when the rule reads straight from its ON table.
  bool HasDerivedInput() const { return from_select != nullptr; }
};

/// Validates structural constraints: unique reference names, sets only at
/// the pattern edges, target is a singleton present in the pattern,
/// condition references only declared names, MODIFY assignments target
/// the target reference.
Status ValidateRule(const CleansingRule& rule);

/// The rule engine/catalog (Figure 1, components 1-2): accepts rule text,
/// validates, stores rules ordered by creation time, and persists each
/// rule's SQL/OLAP template into the `__rules` system table of the
/// database for inspection.
class CleansingRuleEngine {
 public:
  /// `persist_templates` = false gives a session-local catalog: rules are
  /// held only in this engine (nothing is written to the shared `__rules`
  /// table, which is not even created). The SQL server uses this so every
  /// session can carry its own rule set over one shared database.
  explicit CleansingRuleEngine(Database* db, bool persist_templates = true);

  /// Parses and registers a rule from extended SQL-TS text.
  Status DefineRule(std::string_view rule_text);

  /// Registers an already-built rule.
  Status AddRule(CleansingRule rule);

  Status DropRule(std::string_view name);

  const std::vector<CleansingRule>& rules() const { return rules_; }

  /// Monotonic catalog version: bumped by every successful AddRule /
  /// DropRule. Plan caches key on it so a rule change invalidates every
  /// rewrite derived from the previous catalog.
  uint64_t version() const { return version_; }

  /// Order-sensitive fingerprint of the catalog contents (name, table,
  /// action, seq of every rule, chained in definition order; drops are
  /// mixed in too). Two engines built by the same definition history have
  /// equal fingerprints, so sessions with identical catalogs can share
  /// plan-cache entries; any divergence changes the fingerprint.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Rules defined ON the given table, in creation order.
  std::vector<const CleansingRule*> RulesFor(std::string_view table) const;

  const CleansingRule* FindRule(std::string_view name) const;

 private:
  Status PersistTemplate(const CleansingRule& rule, const CompiledRule& compiled);
  Result<std::vector<Column>> EffectiveInputColumns(const CleansingRule& rule) const;
  void MixIntoFingerprint(std::string_view tag, const CleansingRule& rule);

  Database* db_;
  bool persist_templates_;
  std::vector<CleansingRule> rules_;
  int64_t next_seq_ = 1;
  uint64_t version_ = 0;
  uint64_t fingerprint_ = 0;
};

}  // namespace rfid

#endif  // RFID_CLEANSING_RULE_H_
