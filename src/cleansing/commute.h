// Conservative rule-commutativity analysis. Section 5.4 leaves "whether
// we can switch the evaluation order of rules without changing the query
// semantics" as future work; this module answers the easy-but-useful
// fragment soundly and says "unknown" otherwise.
//
// Two rules provably commute when neither can observe the other's effect:
//  - both are MODIFY rules (the row set and sequence positions are
//    unchanged, so each rule's windows see the same rows either way),
//  - the column sets they assign are disjoint,
//  - neither assigns its cluster or sequence key (assignments cannot
//    reorder or regroup sequences),
//  - neither rule's condition or assigned values read a column the other
//    assigns.
//
// Everything else — any DELETE or KEEP, overlapping columns — is kUnknown:
// the Section 4.4 example ([X Y X] under cycle+duplicate) shows deletion
// rules genuinely do not commute in general.
#ifndef RFID_CLEANSING_COMMUTE_H_
#define RFID_CLEANSING_COMMUTE_H_

#include "cleansing/rule.h"

namespace rfid {

enum class CommuteVerdict {
  kCommute,  // provably order-independent
  kUnknown,  // could not prove commutativity (treat as order-dependent)
};

CommuteVerdict RulesCommute(const CleansingRule& a, const CleansingRule& b);

}  // namespace rfid

#endif  // RFID_CLEANSING_COMMUTE_H_
