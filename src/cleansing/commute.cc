#include "cleansing/commute.h"

#include <set>

#include "common/string_util.h"
#include "expr/conjunct.h"

namespace rfid {

namespace {

std::set<std::string> AssignedColumns(const CleansingRule& rule) {
  std::set<std::string> out;
  for (const ModifyAssignment& a : rule.assignments) {
    out.insert(ToLower(a.column));
  }
  return out;
}

// Column names read by the rule's condition and assignment values
// (pattern qualifiers are irrelevant: a window over an assigned column
// observes the other rule's writes regardless of which reference reads it).
std::set<std::string> ReadColumns(const CleansingRule& rule) {
  std::set<std::string> out;
  std::vector<const Expr*> refs;
  CollectColumnRefs(rule.condition, &refs);
  for (const ModifyAssignment& a : rule.assignments) {
    CollectColumnRefs(a.value, &refs);
  }
  for (const Expr* r : refs) out.insert(ToLower(r->column));
  return out;
}

bool Intersects(const std::set<std::string>& a, const std::set<std::string>& b) {
  for (const std::string& x : a) {
    if (b.count(x) > 0) return true;
  }
  return false;
}

}  // namespace

CommuteVerdict RulesCommute(const CleansingRule& a, const CleansingRule& b) {
  // Deletions (and KEEPs) change adjacency and window contents; proving
  // commutativity there requires reasoning this analysis does not attempt.
  if (a.action != RuleAction::kModify || b.action != RuleAction::kModify) {
    return CommuteVerdict::kUnknown;
  }
  // Rules over different inputs interleave through the derived-input
  // substitution; do not attempt to reason about that.
  if (a.HasDerivedInput() || b.HasDerivedInput() || !a.from_table.empty() ||
      !b.from_table.empty()) {
    return CommuteVerdict::kUnknown;
  }
  std::set<std::string> wa = AssignedColumns(a);
  std::set<std::string> wb = AssignedColumns(b);
  if (Intersects(wa, wb)) return CommuteVerdict::kUnknown;
  // Assigning a key would regroup/reorder sequences for the other rule.
  std::set<std::string> keys = {ToLower(a.ckey), ToLower(a.skey),
                                ToLower(b.ckey), ToLower(b.skey)};
  if (Intersects(wa, keys) || Intersects(wb, keys)) {
    return CommuteVerdict::kUnknown;
  }
  // Neither rule may read what the other writes.
  if (Intersects(ReadColumns(a), wb) || Intersects(ReadColumns(b), wa)) {
    return CommuteVerdict::kUnknown;
  }
  return CommuteVerdict::kCommute;
}

}  // namespace rfid
