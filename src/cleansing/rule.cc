#include "cleansing/rule.h"

#include "cleansing/chain.h"
#include "cleansing/rule_parser.h"
#include "common/fault.h"
#include "common/string_util.h"
#include "expr/conjunct.h"
#include "sql/render.h"

namespace rfid {

const char* RuleActionName(RuleAction a) {
  switch (a) {
    case RuleAction::kDelete: return "DELETE";
    case RuleAction::kKeep: return "KEEP";
    case RuleAction::kModify: return "MODIFY";
  }
  return "?";
}

int CleansingRule::TargetIndex() const {
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (EqualsIgnoreCase(pattern[i].name, target)) return static_cast<int>(i);
  }
  return -1;
}

Status ValidateRule(const CleansingRule& rule) {
  if (rule.name.empty()) return Status::InvalidArgument("rule has no name");
  if (rule.on_table.empty()) {
    return Status::InvalidArgument("rule has no ON table");
  }
  if (rule.pattern.empty()) {
    return Status::InvalidArgument("rule pattern is empty");
  }
  // Unique reference names.
  for (size_t i = 0; i < rule.pattern.size(); ++i) {
    for (size_t j = i + 1; j < rule.pattern.size(); ++j) {
      if (EqualsIgnoreCase(rule.pattern[i].name, rule.pattern[j].name)) {
        return Status::InvalidArgument("duplicate pattern reference: " +
                                       rule.pattern[i].name);
      }
    }
  }
  // Set references only at the edges (Section 4.2).
  for (size_t i = 0; i < rule.pattern.size(); ++i) {
    if (rule.pattern[i].is_set && i != 0 && i + 1 != rule.pattern.size()) {
      return Status::InvalidArgument(
          "a set reference (*) may only appear at the beginning or end of "
          "the pattern: " +
          rule.pattern[i].name);
    }
  }
  // Target: declared, singleton.
  int ti = rule.TargetIndex();
  if (ti < 0) {
    return Status::InvalidArgument("action target is not a pattern reference: " +
                                   rule.target);
  }
  if (rule.pattern[static_cast<size_t>(ti)].is_set) {
    return Status::InvalidArgument(
        "action target must be a singleton reference: " + rule.target);
  }
  if (rule.action == RuleAction::kModify && rule.assignments.empty()) {
    return Status::InvalidArgument("MODIFY without assignments");
  }
  // Condition references only declared names.
  if (rule.condition != nullptr) {
    std::vector<const Expr*> refs;
    CollectColumnRefs(rule.condition, &refs);
    for (const Expr* ref : refs) {
      if (ref->qualifier.empty()) {
        // COUNT(B) thresholds reference a pattern name positionally.
        bool is_pattern_name = false;
        for (const PatternRef& p : rule.pattern) {
          if (EqualsIgnoreCase(p.name, ref->column)) is_pattern_name = true;
        }
        if (is_pattern_name) continue;
        return Status::InvalidArgument(
            "rule condition columns must be qualified with a pattern "
            "reference: " +
            ref->column);
      }
      bool found = false;
      for (const PatternRef& p : rule.pattern) {
        if (EqualsIgnoreCase(p.name, ref->qualifier)) {
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("unknown pattern reference in condition: " +
                                       ref->qualifier);
      }
    }
  }
  // MODIFY values may only reference the target.
  for (const ModifyAssignment& a : rule.assignments) {
    std::vector<const Expr*> refs;
    CollectColumnRefs(a.value, &refs);
    for (const Expr* ref : refs) {
      if (!EqualsIgnoreCase(ref->qualifier, rule.target)) {
        return Status::InvalidArgument(
            "MODIFY values may only reference the target reference");
      }
    }
  }
  return Status::OK();
}

CleansingRuleEngine::CleansingRuleEngine(Database* db, bool persist_templates)
    : db_(db), persist_templates_(persist_templates) {
  if (persist_templates_ && db_->GetTable("__rules") == nullptr) {
    Schema schema;
    schema.AddColumn("seq", DataType::kInt64);
    schema.AddColumn("name", DataType::kString);
    schema.AddColumn("on_table", DataType::kString);
    schema.AddColumn("action", DataType::kString);
    schema.AddColumn("template_sql", DataType::kString);
    // Best effort; the catalog owns the database.
    auto created = db_->CreateTable("__rules", std::move(schema));
    (void)created;
  }
}

Status CleansingRuleEngine::DefineRule(std::string_view rule_text) {
  RFID_FAULT_POINT("cleansing.DefineRule");
  RFID_ASSIGN_OR_RETURN(CleansingRule rule, ParseRule(rule_text));
  return AddRule(std::move(rule));
}

Status CleansingRuleEngine::AddRule(CleansingRule rule) {
  RFID_RETURN_IF_ERROR(ValidateRule(rule));
  if (FindRule(rule.name) != nullptr) {
    return Status::AlreadyExists("rule already defined: " + rule.name);
  }
  if (db_->GetTable(rule.on_table) == nullptr) {
    return Status::NotFound("rule ON table not found: " + rule.on_table);
  }
  // Compile once now to (a) reject rules the compiler cannot express and
  // (b) persist the SQL/OLAP template (Figure 1, step 2). The input
  // schema threads through the rules already defined on the table, so a
  // rule may reference columns a preceding MODIFY rule created.
  RFID_ASSIGN_OR_RETURN(std::vector<Column> input_cols, EffectiveInputColumns(rule));
  RFID_ASSIGN_OR_RETURN(CompiledRule compiled,
                        CompileRule(rule, input_cols, "__r"));
  rule.seq = next_seq_++;
  RFID_RETURN_IF_ERROR(PersistTemplate(rule, compiled));
  MixIntoFingerprint("add", rule);
  ++version_;
  rules_.push_back(std::move(rule));
  return Status::OK();
}

void CleansingRuleEngine::MixIntoFingerprint(std::string_view tag,
                                             const CleansingRule& rule) {
  // FNV-1a chain over the fields that identify a rule within a catalog
  // history. Not cryptographic — it only needs to make equal definition
  // histories collide and different ones (order included) diverge.
  auto mix = [this](std::string_view s) {
    for (char c : ToLower(s)) {
      fingerprint_ ^= static_cast<unsigned char>(c);
      fingerprint_ *= 1099511628211ULL;
    }
    fingerprint_ ^= 0xff;
    fingerprint_ *= 1099511628211ULL;
  };
  mix(tag);
  mix(rule.name);
  mix(rule.on_table);
  mix(RuleActionName(rule.action));
  mix(std::to_string(rule.seq));
}

Result<std::vector<Column>> CleansingRuleEngine::EffectiveInputColumns(
    const CleansingRule& rule) const {
  // A derived or redirected input defines its own schema.
  if (rule.HasDerivedInput() || !rule.from_table.empty()) {
    RFID_ASSIGN_OR_RETURN(std::vector<Column> cols, RuleInputColumns(rule, *db_));
    // Columns added by earlier MODIFY rules flow through a derived input
    // only when the derived SELECT projects them, so the db-based schema
    // is the right one here.
    return cols;
  }
  std::vector<const CleansingRule*> prior = RulesFor(rule.on_table);
  const Table* table = db_->GetTable(rule.on_table);
  if (table == nullptr) {
    return Status::NotFound("rule ON table not found: " + rule.on_table);
  }
  std::vector<Column> cols = table->schema().columns();
  if (prior.empty()) return cols;
  RFID_ASSIGN_OR_RETURN(CleansingChain chain,
                        BuildCleansingChain(prior, *db_, "__schema_probe", cols));
  return chain.output_columns;
}

Status CleansingRuleEngine::DropRule(std::string_view name) {
  for (auto it = rules_.begin(); it != rules_.end(); ++it) {
    if (EqualsIgnoreCase(it->name, name)) {
      MixIntoFingerprint("drop", *it);
      ++version_;
      rules_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("rule not found: " + std::string(name));
}

std::vector<const CleansingRule*> CleansingRuleEngine::RulesFor(
    std::string_view table) const {
  std::vector<const CleansingRule*> out;
  for (const CleansingRule& r : rules_) {
    if (EqualsIgnoreCase(r.on_table, table)) out.push_back(&r);
  }
  return out;
}

const CleansingRule* CleansingRuleEngine::FindRule(std::string_view name) const {
  for (const CleansingRule& r : rules_) {
    if (EqualsIgnoreCase(r.name, name)) return &r;
  }
  return nullptr;
}

Status CleansingRuleEngine::PersistTemplate(const CleansingRule& rule,
                                            const CompiledRule& compiled) {
  if (!persist_templates_) return Status::OK();
  Table* table = db_->GetTable("__rules");
  if (table == nullptr) return Status::OK();
  std::string sql;
  for (const CompiledStage& stage : compiled.stages) {
    if (!sql.empty()) sql += ", ";
    sql += stage.with_name + " AS (" + stage.body_sql + ")";
  }
  return table->Append({Value::Int64(rule.seq), Value::String(rule.name),
                        Value::String(rule.on_table),
                        Value::String(RuleActionName(rule.action)),
                        Value::String(sql)});
}

}  // namespace rfid
