// Builds the cleansing chain Φ_Cn(...Φ_C1(input)) as a list of WITH
// clauses over a caller-supplied restricted input relation.
//
// Rules apply in creation order (Section 4.4). A rule with a derived
// input (FROM (SELECT ...)) has every reference to the ON table inside
// that SELECT replaced by the chain's current output, so the extra
// compensation data (e.g. expected pallet reads) is unioned with the
// already-cleansed stream — this is how the missing-read rule composes
// with earlier rules.
#ifndef RFID_CLEANSING_CHAIN_H_
#define RFID_CLEANSING_CHAIN_H_

#include "cleansing/rule_compiler.h"

namespace rfid {

struct CleansingChain {
  // WITH clauses in order: (name, body SQL).
  std::vector<std::pair<std::string, std::string>> with_clauses;
  std::string output_name;             // relation holding cleansed rows
  std::vector<Column> output_columns;  // its schema
};

/// `input_name`/`input_columns`: the WITH clause (declared by the caller)
/// holding the — possibly restricted — rows of the rules' ON table.
/// `derived_filter_sql` (optional): a condition re-applied to the output
/// of any derived rule input (e.g. after the caseR ∪ pallet-reads union)
/// so compensation rows are restricted the same way as base rows.
Result<CleansingChain> BuildCleansingChain(
    const std::vector<const CleansingRule*>& rules, const Database& db,
    const std::string& input_name, const std::vector<Column>& input_columns,
    const std::string& derived_filter_sql = "");

/// Replaces FROM references to `from` (case-insensitive) with `to`
/// throughout the statement, including WITH bodies and IN-subqueries.
void ReplaceTableRefs(SelectStatement* stmt, std::string_view from,
                      const std::string& to);

}  // namespace rfid

#endif  // RFID_CLEANSING_CHAIN_H_
