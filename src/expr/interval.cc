#include "expr/interval.h"

#include <cassert>

namespace rfid {

bool ValueInterval::Empty() const {
  if (!lo_ || !hi_) return false;
  if (!TypesComparable(lo_->value.type(), hi_->value.type())) return false;
  int c = lo_->value.Compare(hi_->value);
  if (c > 0) return true;
  if (c == 0) return !(lo_->inclusive && hi_->inclusive);
  return false;
}

void ValueInterval::IntersectLo(Value v, bool inclusive) {
  if (!lo_) {
    lo_ = IntervalEndpoint{std::move(v), inclusive};
    return;
  }
  int c = v.Compare(lo_->value);
  if (c > 0 || (c == 0 && !inclusive && lo_->inclusive)) {
    lo_ = IntervalEndpoint{std::move(v), inclusive};
  }
}

void ValueInterval::IntersectHi(Value v, bool inclusive) {
  if (!hi_) {
    hi_ = IntervalEndpoint{std::move(v), inclusive};
    return;
  }
  int c = v.Compare(hi_->value);
  if (c < 0 || (c == 0 && !inclusive && hi_->inclusive)) {
    hi_ = IntervalEndpoint{std::move(v), inclusive};
  }
}

void ValueInterval::IntersectCmp(BinaryOp op, const Value& v) {
  switch (op) {
    case BinaryOp::kEq:
      IntersectLo(v, true);
      IntersectHi(v, true);
      break;
    case BinaryOp::kLt:
      IntersectHi(v, false);
      break;
    case BinaryOp::kLe:
      IntersectHi(v, true);
      break;
    case BinaryOp::kGt:
      IntersectLo(v, false);
      break;
    case BinaryOp::kGe:
      IntersectLo(v, true);
      break;
    case BinaryOp::kNe:
      break;  // does not narrow an interval
    default:
      assert(false && "not a comparison op");
  }
}

void ValueInterval::Intersect(const ValueInterval& other) {
  if (other.lo_) IntersectLo(other.lo_->value, other.lo_->inclusive);
  if (other.hi_) IntersectHi(other.hi_->value, other.hi_->inclusive);
}

void ValueInterval::UnionHull(const ValueInterval& other) {
  if (!other.lo_) {
    lo_.reset();
  } else if (lo_) {
    int c = other.lo_->value.Compare(lo_->value);
    if (c < 0 || (c == 0 && other.lo_->inclusive)) {
      lo_ = other.lo_;
    }
  }
  if (!other.hi_) {
    hi_.reset();
  } else if (hi_) {
    int c = other.hi_->value.Compare(hi_->value);
    if (c > 0 || (c == 0 && other.hi_->inclusive)) {
      hi_ = other.hi_;
    }
  }
}

namespace {

Value ShiftValue(const Value& v, int64_t delta) {
  switch (v.type()) {
    case DataType::kInt64:
      return Value::Int64(v.int64_value() + delta);
    case DataType::kTimestamp:
      return Value::Timestamp(v.timestamp_value() + delta);
    case DataType::kInterval:
      return Value::Interval(v.interval_value() + delta);
    default:
      assert(false && "Shift on non-numeric interval endpoint");
      return v;
  }
}

}  // namespace

void ValueInterval::Shift(int64_t delta_lo, bool lo_strict_shift,
                          int64_t delta_hi, bool hi_strict_shift) {
  if (lo_) {
    lo_ = IntervalEndpoint{ShiftValue(lo_->value, delta_lo),
                           lo_->inclusive && !lo_strict_shift};
  }
  if (hi_) {
    hi_ = IntervalEndpoint{ShiftValue(hi_->value, delta_hi),
                           hi_->inclusive && !hi_strict_shift};
  }
}

bool ValueInterval::Contains(const ValueInterval& inner) const {
  if (lo_) {
    if (!inner.lo_) return false;
    int c = inner.lo_->value.Compare(lo_->value);
    if (c < 0) return false;
    if (c == 0 && inner.lo_->inclusive && !lo_->inclusive) return false;
  }
  if (hi_) {
    if (!inner.hi_) return false;
    int c = inner.hi_->value.Compare(hi_->value);
    if (c > 0) return false;
    if (c == 0 && inner.hi_->inclusive && !hi_->inclusive) return false;
  }
  return true;
}

ExprPtr ValueInterval::ToConjuncts(const ExprPtr& column_ref) const {
  // Equality collapses to a single conjunct.
  if (lo_ && hi_ && lo_->inclusive && hi_->inclusive &&
      lo_->value.DistinctEquals(hi_->value)) {
    return MakeBinary(BinaryOp::kEq, column_ref, MakeLiteral(lo_->value));
  }
  ExprPtr out;
  if (lo_) {
    out = MakeBinary(lo_->inclusive ? BinaryOp::kGe : BinaryOp::kGt,
                     column_ref, MakeLiteral(lo_->value));
  }
  if (hi_) {
    ExprPtr hi_conj = MakeBinary(hi_->inclusive ? BinaryOp::kLe : BinaryOp::kLt,
                                 column_ref, MakeLiteral(hi_->value));
    out = (out == nullptr) ? hi_conj : MakeBinary(BinaryOp::kAnd, out, hi_conj);
  }
  return out;
}

std::string ValueInterval::ToString() const {
  std::string out;
  out += lo_ ? (lo_->inclusive ? "[" : "(") + lo_->value.ToString() : "(-inf";
  out += ", ";
  out += hi_ ? hi_->value.ToString() + (hi_->inclusive ? "]" : ")") : "+inf)";
  return out;
}

}  // namespace rfid
