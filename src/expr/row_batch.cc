#include "expr/row_batch.h"

#include <strings.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <functional>

namespace rfid {

void ColumnVector::SetValue(size_t i, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      SetNull(i);
      return;
    case DataType::kDouble:
      SetDouble(i, v.double_value());
      return;
    case DataType::kString:
      SetString(i, v.string_value());
      return;
    default:
      SetRaw(i, v.type(), v.int64_value());
      return;
  }
}

void ColumnVector::AppendValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      AppendNull();
      return;
    case DataType::kDouble:
      AppendDouble(v.double_value());
      return;
    case DataType::kString:
      AppendString(v.string_value());
      return;
    default:
      AppendRaw(v.type(), v.int64_value());
      return;
  }
}

void ColumnVector::AppendValue(Value&& v) {
  if (v.type() == DataType::kString) {
    AppendString(std::move(v).ReleaseString());
    return;
  }
  AppendValue(v);
}

void ColumnVector::AppendFrom(const ColumnVector& src, size_t i) {
  DataType t = src.tag(i);
  if (t == DataType::kString) {
    AppendString(src.strs_[i]);
    return;
  }
  AppendRaw(t, src.data_[i]);
}

Value ColumnVector::ValueAt(size_t i) const {
  switch (tag(i)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value::Bool(data_[i] != 0);
    case DataType::kInt64:
      return Value::Int64(data_[i]);
    case DataType::kDouble:
      return Value::Double(dbl(i));
    case DataType::kString:
      return Value::String(strs_[i]);
    case DataType::kTimestamp:
      return Value::Timestamp(data_[i]);
    case DataType::kInterval:
      return Value::Interval(data_[i]);
  }
  return Value::Null();
}

Value ColumnVector::MoveValueAt(size_t i) {
  if (tag(i) == DataType::kString) {
    return Value::String(std::move(strs_[i]));
  }
  return ValueAt(i);
}

uint64_t ColumnVector::ApproxBytes() const {
  // Per-entry tag + payload lane, plus live string bytes; approximate the
  // same order of magnitude as ApproxValueBytes on boxed rows.
  uint64_t bytes = tags_.size() * (sizeof(int64_t) + 1);
  for (const std::string& s : strs_) bytes += s.size();
  return bytes;
}

int CompareEntries(const ColumnVector& a, size_t ai, const ColumnVector& b,
                   size_t bi) {
  if (a.tag(ai) == DataType::kString) {
    return a.str(ai).compare(b.str(bi));
  }
  if (a.tag(ai) == DataType::kDouble || b.tag(bi) == DataType::kDouble) {
    double x = a.AsDouble(ai);
    double y = b.AsDouble(bi);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  int64_t x = a.raw(ai);
  int64_t y = b.raw(bi);
  return x < y ? -1 : (x > y ? 1 : 0);
}

int CompareEntryToValue(const ColumnVector& a, size_t ai, const Value& v) {
  if (a.tag(ai) == DataType::kString) {
    return a.str(ai).compare(v.string_value());
  }
  if (a.tag(ai) == DataType::kDouble || v.type() == DataType::kDouble) {
    double x = a.AsDouble(ai);
    double y = v.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  int64_t x = a.raw(ai);
  int64_t y = v.int64_value();
  return x < y ? -1 : (x > y ? 1 : 0);
}

size_t EntryHash(const ColumnVector& a, size_t i) {
  switch (a.tag(i)) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kString:
      return std::hash<std::string>()(a.str(i));
    case DataType::kDouble: {
      double d = a.dbl(i);
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<int64_t>()(as_int);
      }
      return std::hash<double>()(d);
    }
    default:
      return std::hash<int64_t>()(a.raw(i));
  }
}

bool EntryEqualsValue(const ColumnVector& a, size_t i, const Value& v) {
  if (a.is_null(i) || v.is_null()) return a.is_null(i) && v.is_null();
  if (!TypesComparable(a.tag(i), v.type())) return false;
  return CompareEntryToValue(a, i, v) == 0;
}

RowBatch::RowBatch(size_t num_columns, size_t capacity)
    : cols_(num_columns),
      capacity_(capacity == 0 ? BatchCapacity() : capacity) {}

void RowBatch::Clear() {
  for (ColumnVector& c : cols_) c.Clear();
  rows_ = 0;
}

void RowBatch::ResetColumns(size_t num_columns) {
  cols_.resize(num_columns);
  Clear();
}

void RowBatch::AppendRow(const Row& row) {
  for (size_t i = 0; i < cols_.size(); ++i) cols_[i].AppendValue(row[i]);
  ++rows_;
}

void RowBatch::AppendRow(Row&& row) {
  for (size_t i = 0; i < cols_.size(); ++i) {
    cols_[i].AppendValue(std::move(row[i]));
  }
  ++rows_;
}

void RowBatch::AppendGathered(const RowBatch& src, size_t i) {
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].AppendFrom(src.cols_[c], i);
  }
  ++rows_;
}

void RowBatch::EmitRow(size_t i, Row* out) const {
  out->clear();
  out->reserve(cols_.size());
  for (const ColumnVector& c : cols_) out->push_back(c.ValueAt(i));
}

void RowBatch::MoveRowInto(size_t i, Row* out) {
  out->clear();
  out->reserve(cols_.size());
  for (ColumnVector& c : cols_) out->push_back(c.MoveValueAt(i));
}

uint64_t RowBatch::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const ColumnVector& c : cols_) bytes += c.ApproxBytes();
  return bytes;
}

namespace {

constexpr size_t kDefaultBatchSize = 1024;
constexpr size_t kMaxBatchSize = 65536;

size_t EnvBatchSize() {
  const char* v = std::getenv("RFID_BATCH_SIZE");
  if (v == nullptr || *v == '\0') return kDefaultBatchSize;
  long parsed = atol(v);
  if (parsed <= 0) return kDefaultBatchSize;
  return std::min(static_cast<size_t>(parsed), kMaxBatchSize);
}

std::atomic<size_t> g_override_batch_size{0};

bool EnvVectorized() {
  const char* v = std::getenv("RFID_VECTORIZED");
  if (v == nullptr || *v == '\0') return true;
  return !(strcmp(v, "0") == 0 || strcasecmp(v, "off") == 0 ||
           strcasecmp(v, "false") == 0);
}

// -1 = use env default; 0 = forced off; 1 = forced on.
std::atomic<int> g_override_vectorized{-1};

}  // namespace

size_t BatchCapacity() {
  size_t o = g_override_batch_size.load(std::memory_order_relaxed);
  if (o > 0) return o;
  static const size_t env = EnvBatchSize();
  return env;
}

void SetBatchCapacityForTest(size_t n) {
  g_override_batch_size.store(std::min(n, kMaxBatchSize),
                              std::memory_order_relaxed);
}

bool VectorizedEnabled() {
#ifdef RFID_VECTORIZED_OFF
  return false;
#else
  int o = g_override_vectorized.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  static const bool env = EnvVectorized();
  return env;
#endif
}

void SetVectorizedForTest(int mode) {
  g_override_vectorized.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                              std::memory_order_relaxed);
}

}  // namespace rfid
