#include "expr/expr.h"

#include <cassert>

#include "common/string_util.h"
#include "common/time_util.h"

namespace rfid {

namespace internal {
std::string (*subquery_renderer)(const SelectStatement&) = nullptr;
}  // namespace internal

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

BinaryOp SwapComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // =, <> are symmetric
  }
}

BinaryOp NegateComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return BinaryOp::kNe;
    case BinaryOp::kNe: return BinaryOp::kEq;
    case BinaryOp::kLt: return BinaryOp::kGe;
    case BinaryOp::kLe: return BinaryOp::kGt;
    case BinaryOp::kGt: return BinaryOp::kLe;
    case BinaryOp::kGe: return BinaryOp::kLt;
    default:
      assert(false && "not a comparison");
      return op;
  }
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->value = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr MakeNot(ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kNot;
  e->children = {std::move(operand)};
  return e;
}

ExprPtr MakeIsNull(ExprPtr operand, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->children = {std::move(operand)};
  e->negated = negated;
  return e;
}

ExprPtr MakeCase(std::vector<ExprPtr> children, bool has_else) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCase;
  e->children = std::move(children);
  e->has_else = has_else;
  return e;
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args, bool distinct) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFuncCall;
  e->func_name = ToLower(name);
  e->children = std::move(args);
  e->distinct = distinct;
  return e;
}

ExprPtr MakeWindowCall(std::string name, std::vector<ExprPtr> args,
                       WindowSpec window) {
  auto e = MakeFuncCall(std::move(name), std::move(args));
  e->window = std::move(window);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr MakeInList(ExprPtr probe, std::vector<ExprPtr> items) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInList;
  e->children.push_back(std::move(probe));
  for (auto& item : items) e->children.push_back(std::move(item));
  return e;
}

ExprPtr MakeInSubquery(ExprPtr probe, std::shared_ptr<SelectStatement> subquery) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInSubquery;
  e->children.push_back(std::move(probe));
  e->subquery = std::move(subquery);
  return e;
}

ExprPtr CloneExpr(const ExprPtr& e) {
  if (e == nullptr) return nullptr;
  auto copy = std::make_shared<Expr>(*e);
  for (auto& child : copy->children) child = CloneExpr(child);
  if (copy->window.has_value()) {
    for (auto& p : copy->window->partition_by) p = CloneExpr(p);
    for (auto& k : copy->window->order_by) k.expr = CloneExpr(k.expr);
  }
  return copy;
}

bool ExprEquals(const ExprPtr& a, const ExprPtr& b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case ExprKind::kLiteral:
      if (!a->value.DistinctEquals(b->value)) return false;
      break;
    case ExprKind::kColumnRef:
      if (!EqualsIgnoreCase(a->qualifier, b->qualifier) ||
          !EqualsIgnoreCase(a->column, b->column)) {
        return false;
      }
      break;
    case ExprKind::kBinary:
      if (a->op != b->op) return false;
      break;
    case ExprKind::kIsNull:
      if (a->negated != b->negated) return false;
      break;
    case ExprKind::kCase:
      if (a->has_else != b->has_else) return false;
      break;
    case ExprKind::kFuncCall:
      if (a->func_name != b->func_name || a->distinct != b->distinct ||
          a->window.has_value() != b->window.has_value()) {
        return false;
      }
      break;
    case ExprKind::kInSubquery:
      if (a->subquery != b->subquery) return false;
      break;
    default:
      break;
  }
  if (a->children.size() != b->children.size()) return false;
  for (size_t i = 0; i < a->children.size(); ++i) {
    if (!ExprEquals(a->children[i], b->children[i])) return false;
  }
  return true;
}

namespace {

int Precedence(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr: return 1;
    case BinaryOp::kAnd: return 2;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: return 3;
    case BinaryOp::kAdd:
    case BinaryOp::kSub: return 4;
    case BinaryOp::kMul:
    case BinaryOp::kDiv: return 5;
  }
  return 0;
}

std::string ToSqlInner(const ExprPtr& e, int parent_prec);

std::string WindowToSql(const WindowSpec& w) {
  std::string out = "OVER (";
  bool first_section = true;
  if (!w.partition_by.empty()) {
    out += "PARTITION BY ";
    for (size_t i = 0; i < w.partition_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToSqlInner(w.partition_by[i], 0);
    }
    first_section = false;
  }
  if (!w.order_by.empty()) {
    if (!first_section) out += " ";
    out += "ORDER BY ";
    for (size_t i = 0; i < w.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToSqlInner(w.order_by[i].expr, 0);
      out += w.order_by[i].ascending ? " ASC" : " DESC";
    }
    first_section = false;
  }
  if (w.has_frame) {
    if (!first_section) out += " ";
    const FrameSpec& f = w.frame;
    out += (f.unit == FrameUnit::kRows) ? "ROWS BETWEEN " : "RANGE BETWEEN ";
    auto bound_str = [&f](const FrameBound& b) -> std::string {
      if (b.unbounded) {
        return b.delta <= 0 ? "UNBOUNDED PRECEDING" : "UNBOUNDED FOLLOWING";
      }
      if (b.delta == 0) return "CURRENT ROW";
      std::string amount =
          (f.unit == FrameUnit::kRows)
              ? std::to_string(b.delta < 0 ? -b.delta : b.delta)
              : FormatIntervalSql(b.delta < 0 ? -b.delta : b.delta);
      return amount + (b.delta < 0 ? " PRECEDING" : " FOLLOWING");
    };
    out += bound_str(f.start);
    out += " AND ";
    out += bound_str(f.end);
  }
  out += ")";
  return out;
}

std::string ToSqlInner(const ExprPtr& e, int parent_prec) {
  if (e == nullptr) return "<null>";
  switch (e->kind) {
    case ExprKind::kLiteral:
      return e->value.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return e->qualifier.empty() ? e->column : e->qualifier + "." + e->column;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kBinary: {
      int prec = Precedence(e->op);
      // Comparisons are non-associative: a nested comparison (or IS NULL
      // / IN) on either side must be parenthesized, so the left child is
      // rendered at prec + 1 too.
      int left_prec = IsComparisonOp(e->op) ? prec + 1 : prec;
      std::string s = ToSqlInner(e->children[0], left_prec) + " " +
                      BinaryOpSymbol(e->op) + " " +
                      ToSqlInner(e->children[1], prec + 1);
      if (prec < parent_prec) return "(" + s + ")";
      return s;
    }
    case ExprKind::kNot: {
      std::string s = "NOT " + ToSqlInner(e->children[0], 6);
      if (parent_prec > 2) return "(" + s + ")";
      return s;
    }
    case ExprKind::kIsNull: {
      std::string s = ToSqlInner(e->children[0], 6) +
                      (e->negated ? " IS NOT NULL" : " IS NULL");
      if (parent_prec > 3) return "(" + s + ")";
      return s;
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t pairs = e->children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        out += " WHEN " + ToSqlInner(e->children[2 * i], 0);
        out += " THEN " + ToSqlInner(e->children[2 * i + 1], 0);
      }
      if (e->has_else) {
        out += " ELSE " + ToSqlInner(e->children.back(), 0);
      }
      out += " END";
      return out;
    }
    case ExprKind::kInList: {
      std::string out = ToSqlInner(e->children[0], 6) + " IN (";
      for (size_t i = 1; i < e->children.size(); ++i) {
        if (i > 1) out += ", ";
        out += ToSqlInner(e->children[i], 0);
      }
      out += ")";
      if (parent_prec > 3) return "(" + out + ")";
      return out;
    }
    case ExprKind::kInValueSet: {
      std::string out = ToSqlInner(e->children[0], 6) + " IN (<" +
                        std::to_string(e->value_set ? e->value_set->size() : 0) +
                        " values>)";
      if (parent_prec > 3) return "(" + out + ")";
      return out;
    }
    case ExprKind::kInSubquery: {
      std::string body = "<subquery>";
      if (internal::subquery_renderer != nullptr && e->subquery != nullptr) {
        body = internal::subquery_renderer(*e->subquery);
      }
      std::string out = ToSqlInner(e->children[0], 6) + " IN (" + body + ")";
      if (parent_prec > 3) return "(" + out + ")";
      return out;
    }
    case ExprKind::kFuncCall: {
      // LIKE is a reserved word, so LIKE(a, b) would not re-parse as a
      // call; render the infix form the parser desugars from.
      if (e->func_name == "like" && !e->window.has_value() &&
          e->children.size() == 2) {
        std::string out = ToSqlInner(e->children[0], 6) + " LIKE " +
                          ToSqlInner(e->children[1], 6);
        if (parent_prec > 3) return "(" + out + ")";
        return out;
      }
      std::string out = ToUpper(e->func_name) + "(";
      if (e->distinct) out += "DISTINCT ";
      for (size_t i = 0; i < e->children.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToSqlInner(e->children[i], 0);
      }
      out += ")";
      if (e->window.has_value()) {
        out += " " + WindowToSql(*e->window);
      }
      return out;
    }
  }
  return "?";
}

}  // namespace

std::string ExprToSql(const ExprPtr& e) { return ToSqlInner(e, 0); }

bool ContainsAggregate(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kFuncCall && !e->window.has_value()) {
    const std::string& f = e->func_name;
    if (f == "count" || f == "sum" || f == "avg" || f == "min" || f == "max") {
      return true;
    }
  }
  for (const auto& c : e->children) {
    if (ContainsAggregate(c)) return true;
  }
  return false;
}

bool ContainsWindowCall(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kFuncCall && e->window.has_value()) return true;
  for (const auto& c : e->children) {
    if (ContainsWindowCall(c)) return true;
  }
  return false;
}

ExprPtr TransformColumnRefs(const ExprPtr& e,
                            const std::function<ExprPtr(const Expr&)>& fn) {
  if (e == nullptr) return nullptr;
  if (e->kind == ExprKind::kColumnRef) {
    ExprPtr replacement = fn(*e);
    return replacement != nullptr ? replacement : e;
  }
  auto copy = std::make_shared<Expr>(*e);
  bool changed = false;
  for (auto& child : copy->children) {
    ExprPtr nc = TransformColumnRefs(child, fn);
    if (nc != child) changed = true;
    child = nc;
  }
  if (copy->window.has_value()) {
    for (auto& p : copy->window->partition_by) {
      ExprPtr np = TransformColumnRefs(p, fn);
      if (np != p) changed = true;
      p = np;
    }
    for (auto& k : copy->window->order_by) {
      ExprPtr nk = TransformColumnRefs(k.expr, fn);
      if (nk != k.expr) changed = true;
      k.expr = nk;
    }
  }
  return changed ? copy : e;
}

}  // namespace rfid
