// Binding and evaluation of scalar expressions against rows.
//
// A RowDesc describes an operator's output row: an ordered list of fields,
// each with an optional qualifier (table alias or rule pattern reference).
// BindExpr resolves column references to slots and infers result types;
// EvalExpr evaluates a bound expression with SQL three-valued logic.
#ifndef RFID_EXPR_EVAL_H_
#define RFID_EXPR_EVAL_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "storage/table.h"

namespace rfid {

struct Field {
  std::string qualifier;  // may be empty
  std::string name;
  DataType type = DataType::kNull;
};

class RowDesc {
 public:
  RowDesc() = default;
  explicit RowDesc(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(std::string qualifier, std::string name, DataType type) {
    fields_.push_back({std::move(qualifier), std::move(name), type});
  }

  /// Resolves a (possibly unqualified) column reference. Errors on
  /// ambiguity or absence.
  Result<size_t> Resolve(std::string_view qualifier, std::string_view name) const;

  /// Builds a RowDesc from a table schema with the given qualifier.
  static RowDesc FromSchema(const Schema& schema, std::string qualifier);

  /// Concatenation (for joins): left fields then right fields.
  static RowDesc Concat(const RowDesc& left, const RowDesc& right);

  /// Converts to a plain schema (drops qualifiers).
  Schema ToSchema() const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// Resolves column refs to slots and infers types. Returns a new bound
/// tree. Rejects aggregates, window calls, and IN-subqueries — those are
/// handled by dedicated operators before scalar binding.
Result<ExprPtr> BindExpr(const ExprPtr& e, const RowDesc& desc);

/// Evaluates a bound expression against a row (three-valued logic).
Result<Value> EvalExpr(const Expr& e, const Row& row);

/// Convenience: evaluates a bound boolean predicate; NULL counts as false.
Result<bool> EvalPredicate(const Expr& e, const Row& row);

/// Constant folding on *unbound* expressions: any subtree free of column
/// references, subqueries, aggregates and window calls is evaluated and
/// replaced by its literal value. Makes computed predicates sargable
/// (e.g. "rtime <= TIMESTAMP 100 + 5 MINUTES" folds to a plain bound the
/// index-selection and rewrite analyses can use). Nodes that fail to
/// evaluate (type errors surface at bind time instead) are left intact.
ExprPtr FoldConstants(const ExprPtr& e);

}  // namespace rfid

#endif  // RFID_EXPR_EVAL_H_
