// Expression AST shared by the SQL front end, the SQL-TS rule language,
// the evaluator, and the rewrite engine's predicate analysis.
//
// A single tagged node type (rather than a class hierarchy) keeps the
// rewrite engine's structural manipulation — cloning, substitution,
// conjunct surgery, transitivity analysis — simple and uniform.
// Expressions are immutable by convention once built; transformations
// produce new nodes.
#ifndef RFID_EXPR_EXPR_H_
#define RFID_EXPR_EXPR_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace rfid {

struct SelectStatement;  // defined in sql/ast.h; Expr may hold a subquery

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,    // comparison, arithmetic, AND/OR
  kNot,
  kIsNull,    // IS NULL / IS NOT NULL (negated flag)
  kCase,      // searched CASE
  kInList,    // expr IN (literal, ...)
  kInSubquery,  // expr IN (SELECT ...)
  kInValueSet,  // expr IN <materialized hash set> (planner-internal)
  kFuncCall,  // scalar, aggregate, or window function call
  kStar,      // "*" in COUNT(*) or SELECT *
};

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv,
  kAnd, kOr,
};

const char* BinaryOpSymbol(BinaryOp op);
bool IsComparisonOp(BinaryOp op);
/// For comparisons: the op with sides swapped (a < b  <=>  b > a).
BinaryOp SwapComparison(BinaryOp op);
/// Logical negation of a comparison (a < b  <=>  NOT a >= b).
BinaryOp NegateComparison(BinaryOp op);

struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

enum class FrameUnit { kRows, kRange };

/// One endpoint of a window frame. `delta` is a row count for ROWS frames
/// and a microsecond interval for RANGE frames; sign encodes direction
/// (negative = PRECEDING, positive = FOLLOWING, 0 = CURRENT ROW unless
/// unbounded).
struct FrameBound {
  bool unbounded = false;
  int64_t delta = 0;
};

struct FrameSpec {
  FrameUnit unit = FrameUnit::kRows;
  FrameBound start{true, 0};  // default UNBOUNDED PRECEDING
  FrameBound end{false, 0};   // default CURRENT ROW
};

struct WindowSpec {
  std::vector<ExprPtr> partition_by;
  std::vector<SortKey> order_by;
  FrameSpec frame;
  bool has_frame = false;
};

struct Expr {
  ExprKind kind;

  // kLiteral
  Value value;

  // kColumnRef: qualifier is a table name/alias or a rule pattern
  // reference (A, B, ...); empty when unqualified. `slot` is filled by the
  // binder (index into the operator's output row), -1 while unbound.
  std::string qualifier;
  std::string column;
  int slot = -1;

  // kBinary
  BinaryOp op = BinaryOp::kEq;

  // Children. kBinary: [lhs, rhs]; kNot/kIsNull: [operand];
  // kCase: [when1, then1, ..., whenN, thenN] (+ [else] if has_else);
  // kInList: [probe, item1, ...]; kInSubquery: [probe];
  // kFuncCall: arguments.
  std::vector<ExprPtr> children;

  // kIsNull
  bool negated = false;  // IS NOT NULL

  // kCase
  bool has_else = false;

  // kFuncCall
  std::string func_name;   // lower-cased: count, sum, avg, min, max, abs...
  bool distinct = false;   // COUNT(DISTINCT x)
  std::optional<WindowSpec> window;  // present => window function

  // kInSubquery
  std::shared_ptr<SelectStatement> subquery;

  // kInValueSet: the planner materializes IN-subqueries that cannot be
  // planned as semi-joins (e.g. under an OR) into a shared hash set.
  std::shared_ptr<const std::unordered_set<Value, ValueHash>> value_set;
  bool value_set_has_null = false;  // for three-valued FALSE vs NULL

  // Result type, filled by the binder.
  DataType result_type = DataType::kNull;
};

// ---- Constructors ----
ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr operand);
ExprPtr MakeIsNull(ExprPtr operand, bool negated);
ExprPtr MakeCase(std::vector<ExprPtr> children, bool has_else);
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args,
                     bool distinct = false);
ExprPtr MakeWindowCall(std::string name, std::vector<ExprPtr> args,
                       WindowSpec window);
ExprPtr MakeStar();
ExprPtr MakeInList(ExprPtr probe, std::vector<ExprPtr> items);
ExprPtr MakeInSubquery(ExprPtr probe, std::shared_ptr<SelectStatement> subquery);

/// Deep copy.
ExprPtr CloneExpr(const ExprPtr& e);

/// Structural equality (ignores bound slots; case-insensitive identifiers).
bool ExprEquals(const ExprPtr& a, const ExprPtr& b);

/// Renders the expression as SQL text. IN (SELECT ...) subqueries render
/// through the statement renderer once sql/render.cc has been linked in
/// (it installs internal::subquery_renderer); otherwise a placeholder is
/// emitted.
std::string ExprToSql(const ExprPtr& e);

namespace internal {
/// Hook installed by sql/render.cc so expression rendering can recurse
/// into IN-subquery statement bodies without an expr->sql dependency.
extern std::string (*subquery_renderer)(const SelectStatement&);
}  // namespace internal

/// True if the expression is an aggregate function call (no window) or
/// contains one.
bool ContainsAggregate(const ExprPtr& e);
/// True if the expression is/contains a window function call.
bool ContainsWindowCall(const ExprPtr& e);

/// Rewrites every column reference through `fn`; fn may return nullptr to
/// keep the original node. Returns a new tree (shares unchanged subtrees).
ExprPtr TransformColumnRefs(const ExprPtr& e,
                            const std::function<ExprPtr(const Expr&)>& fn);

}  // namespace rfid

#endif  // RFID_EXPR_EXPR_H_
