// Columnar batches for the vectorized execution path.
//
// A RowBatch carries up to BatchCapacity() rows (default 1024, overridable
// with RFID_BATCH_SIZE) as one ColumnVector per output field. A
// ColumnVector stores a DataType tag per entry — kNull doubles as the null
// bitmap — plus a raw int64 payload lane (BOOL/INT64/TIMESTAMP/INTERVAL
// directly, DOUBLE via bit_cast) and a lazily-materialized string lane.
// Tags are per-entry rather than per-column because the engine's
// expressions are weakly typed at runtime (CASE/COALESCE branches may mix
// INT64 and DOUBLE), and bit-identical output with the row interpreter is
// non-negotiable.
//
// The Entry* helpers mirror Value::Compare / Value::Hash /
// Value::DistinctEquals exactly so hash-join probes and aggregations can
// work on column entries without boxing a Value per row.
#ifndef RFID_EXPR_ROW_BATCH_H_
#define RFID_EXPR_ROW_BATCH_H_

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace rfid {

using Row = std::vector<Value>;

class ColumnVector {
 public:
  size_t size() const { return tags_.size(); }

  /// Drops all entries but keeps capacity for reuse across batches.
  void Clear() {
    tags_.clear();
    data_.clear();
    strs_.clear();
  }

  /// Resizes to n all-null entries with undefined payloads. Kernels that
  /// write positionally call this first, then Set* only the selected
  /// positions; unselected positions stay null and are never read.
  void Reset(size_t n) {
    tags_.assign(n, static_cast<uint8_t>(DataType::kNull));
    data_.resize(n);
    if (!strs_.empty()) strs_.resize(n);
  }

  DataType tag(size_t i) const { return static_cast<DataType>(tags_[i]); }
  bool is_null(size_t i) const {
    return tags_[i] == static_cast<uint8_t>(DataType::kNull);
  }
  int64_t raw(size_t i) const { return data_[i]; }
  double dbl(size_t i) const { return std::bit_cast<double>(data_[i]); }
  const std::string& str(size_t i) const { return strs_[i]; }

  /// Numeric view of an INT64/DOUBLE entry; mirrors Value::AsDouble.
  double AsDouble(size_t i) const {
    return tag(i) == DataType::kDouble ? dbl(i)
                                       : static_cast<double>(data_[i]);
  }

  void SetNull(size_t i) { tags_[i] = static_cast<uint8_t>(DataType::kNull); }
  void SetRaw(size_t i, DataType t, int64_t v) {
    tags_[i] = static_cast<uint8_t>(t);
    data_[i] = v;
  }
  void SetBool(size_t i, bool v) { SetRaw(i, DataType::kBool, v ? 1 : 0); }
  void SetDouble(size_t i, double v) {
    tags_[i] = static_cast<uint8_t>(DataType::kDouble);
    data_[i] = std::bit_cast<int64_t>(v);
  }
  void SetString(size_t i, std::string v) {
    EnsureStrs();
    tags_[i] = static_cast<uint8_t>(DataType::kString);
    data_[i] = 0;  // keep the payload lane deterministic for string entries
    strs_[i] = std::move(v);
  }
  void SetValue(size_t i, const Value& v);

  void AppendNull() {
    tags_.push_back(static_cast<uint8_t>(DataType::kNull));
    data_.push_back(0);
    if (!strs_.empty()) strs_.emplace_back();
  }
  void AppendRaw(DataType t, int64_t v) {
    tags_.push_back(static_cast<uint8_t>(t));
    data_.push_back(v);
    if (!strs_.empty()) strs_.emplace_back();
  }
  void AppendDouble(double v) {
    AppendRaw(DataType::kDouble, std::bit_cast<int64_t>(v));
  }
  void AppendString(std::string v) {
    EnsureStrs();
    tags_.push_back(static_cast<uint8_t>(DataType::kString));
    data_.push_back(0);
    strs_.push_back(std::move(v));
  }
  void AppendValue(const Value& v);
  /// Moves the string payload out of `v` when it holds one.
  void AppendValue(Value&& v);
  void AppendFrom(const ColumnVector& src, size_t i);

  /// Boxes entry i back into a Value (copies string payloads; the column
  /// stays intact for reuse).
  Value ValueAt(size_t i) const;

  /// Boxes entry i, surrendering the string payload (the entry keeps its
  /// tag but its string becomes unspecified). Only valid when the batch
  /// is drained front-to-back and cleared before reuse.
  Value MoveValueAt(size_t i);

  uint64_t ApproxBytes() const;

 private:
  void EnsureStrs() {
    if (strs_.empty() && !tags_.empty()) strs_.resize(tags_.size());
    if (strs_.size() < tags_.size()) strs_.resize(tags_.size());
  }

  std::vector<uint8_t> tags_;
  std::vector<int64_t> data_;
  std::vector<std::string> strs_;  // sized only once a string appears
};

/// Three-way comparison of two non-null entries; mirrors Value::Compare
/// (string compare; double path when either side is DOUBLE; int64
/// otherwise). Callers guarantee comparability, as with Value::Compare.
int CompareEntries(const ColumnVector& a, size_t ai, const ColumnVector& b,
                   size_t bi);
int CompareEntryToValue(const ColumnVector& a, size_t ai, const Value& v);

/// Mirrors Value::Hash bit-for-bit (including the integral-double trick)
/// so column entries and boxed Values land in the same hash bucket.
size_t EntryHash(const ColumnVector& a, size_t i);

/// Mirrors Value::DistinctEquals (NULLs equal each other).
bool EntryEqualsValue(const ColumnVector& a, size_t i, const Value& v);

class RowBatch {
 public:
  RowBatch() : RowBatch(0) {}
  explicit RowBatch(size_t num_columns, size_t capacity = 0);

  size_t num_columns() const { return cols_.size(); }
  size_t num_rows() const { return rows_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return rows_ == 0; }
  bool full() const { return rows_ >= capacity_; }

  ColumnVector& col(size_t i) { return cols_[i]; }
  const ColumnVector& col(size_t i) const { return cols_[i]; }

  /// Drops all rows, keeps the column layout and buffer capacity.
  void Clear();
  /// Changes the column count and drops all rows.
  void ResetColumns(size_t num_columns);

  void AppendRow(const Row& row);
  void AppendRow(Row&& row);
  /// Appends row i of src (same column layout).
  void AppendGathered(const RowBatch& src, size_t i);
  /// Boxes row i into *out (replaces its contents).
  void EmitRow(size_t i, Row* out) const;
  /// Boxes row i into *out, moving string payloads out of the batch. Use
  /// when every row is consumed exactly once before the batch is cleared.
  void MoveRowInto(size_t i, Row* out);

  /// Installs a fully-built column (e.g. a projection kernel's output).
  /// All installed columns must have matching sizes; the caller then sets
  /// the row count with set_num_rows.
  void TakeColumn(size_t i, ColumnVector&& c) { cols_[i] = std::move(c); }
  void set_num_rows(size_t n) { rows_ = n; }

  uint64_t ApproxBytes() const;

 private:
  std::vector<ColumnVector> cols_;
  size_t rows_ = 0;
  size_t capacity_;
};

/// Batch capacity: RFID_BATCH_SIZE env override, default 1024, clamped to
/// [1, 65536]. SetBatchCapacityForTest(0) restores the env/default value.
size_t BatchCapacity();
void SetBatchCapacityForTest(size_t n);

/// Whether operators should run their batch-native paths. Compiled out
/// entirely by RFID_VECTORIZED=OFF (mirrors RFID_PARALLEL); otherwise the
/// RFID_VECTORIZED env var (0/off/false disables) with a test override.
/// SetVectorizedForTest: -1 restores the env default, 0 forces off, 1 on.
bool VectorizedEnabled();
void SetVectorizedForTest(int mode);

}  // namespace rfid

#endif  // RFID_EXPR_ROW_BATCH_H_
