#include "expr/conjunct.h"

#include "common/string_util.h"

namespace rfid {

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e) {
  std::vector<ExprPtr> out;
  if (e == nullptr) return out;
  if (e->kind == ExprKind::kBinary && e->op == BinaryOp::kAnd) {
    auto left = SplitConjuncts(e->children[0]);
    auto right = SplitConjuncts(e->children[1]);
    out.insert(out.end(), left.begin(), left.end());
    out.insert(out.end(), right.begin(), right.end());
    return out;
  }
  out.push_back(e);
  return out;
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr out;
  for (const ExprPtr& c : conjuncts) {
    if (c == nullptr) continue;
    out = (out == nullptr) ? c : MakeBinary(BinaryOp::kAnd, out, c);
  }
  return out;
}

ExprPtr CombineDisjuncts(const std::vector<ExprPtr>& disjuncts) {
  ExprPtr out;
  for (const ExprPtr& d : disjuncts) {
    if (d == nullptr) continue;
    out = (out == nullptr) ? d : MakeBinary(BinaryOp::kOr, out, d);
  }
  return out;
}

void CollectColumnRefs(const ExprPtr& e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef) {
    out->push_back(e.get());
    return;
  }
  for (const auto& c : e->children) CollectColumnRefs(c, out);
  if (e->window.has_value()) {
    for (const auto& p : e->window->partition_by) CollectColumnRefs(p, out);
    for (const auto& k : e->window->order_by) CollectColumnRefs(k.expr, out);
  }
}

std::set<std::string> ReferencedQualifiers(const ExprPtr& e) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  std::set<std::string> out;
  for (const Expr* r : refs) out.insert(ToLower(r->qualifier));
  return out;
}

bool RefersOnlyTo(const ExprPtr& e, std::string_view qualifier) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const Expr* r : refs) {
    if (!EqualsIgnoreCase(r->qualifier, qualifier)) return false;
  }
  return true;
}

bool References(const ExprPtr& e, std::string_view qualifier) {
  std::vector<const Expr*> refs;
  CollectColumnRefs(e, &refs);
  for (const Expr* r : refs) {
    if (EqualsIgnoreCase(r->qualifier, qualifier)) return true;
  }
  return false;
}

ExprPtr SubstituteQualifier(const ExprPtr& e, std::string_view from,
                            std::string_view to) {
  return TransformColumnRefs(e, [&](const Expr& ref) -> ExprPtr {
    if (!EqualsIgnoreCase(ref.qualifier, from)) return nullptr;
    return MakeColumnRef(std::string(to), ref.column);
  });
}

ExprPtr StripQualifiers(const ExprPtr& e) {
  return TransformColumnRefs(e, [](const Expr& ref) -> ExprPtr {
    if (ref.qualifier.empty()) return nullptr;
    return MakeColumnRef("", ref.column);
  });
}

bool MatchColumnLiteralCmp(const ExprPtr& conjunct, ColumnLiteralCmp* out) {
  if (conjunct == nullptr || conjunct->kind != ExprKind::kBinary ||
      !IsComparisonOp(conjunct->op)) {
    return false;
  }
  const ExprPtr& l = conjunct->children[0];
  const ExprPtr& r = conjunct->children[1];
  if (l->kind == ExprKind::kColumnRef && r->kind == ExprKind::kLiteral) {
    out->column = l.get();
    out->op = conjunct->op;
    out->literal = r->value;
    return true;
  }
  if (l->kind == ExprKind::kLiteral && r->kind == ExprKind::kColumnRef) {
    out->column = r.get();
    out->op = SwapComparison(conjunct->op);
    out->literal = l->value;
    return true;
  }
  return false;
}

namespace {

// Extracts the raw int64 payload of an INT64/TIMESTAMP/INTERVAL literal.
bool RawInt64(const Value& v, int64_t* out) {
  switch (v.type()) {
    case DataType::kInt64:
      *out = v.int64_value();
      return true;
    case DataType::kTimestamp:
      *out = v.timestamp_value();
      return true;
    case DataType::kInterval:
      *out = v.interval_value();
      return true;
    default:
      return false;
  }
}

// Matches "col - col" or "col + lit" / "col - lit" style operands.
// Represents the side as col_left [- col_right] [+ bias].
struct SideDecomp {
  const Expr* pos_col = nullptr;  // column with + sign
  const Expr* neg_col = nullptr;  // column with - sign (may be null)
  int64_t bias = 0;
};

bool DecomposeSide(const ExprPtr& e, SideDecomp* out) {
  if (e->kind == ExprKind::kColumnRef) {
    out->pos_col = e.get();
    return true;
  }
  if (e->kind == ExprKind::kLiteral) {
    return RawInt64(e->value, &out->bias);
  }
  if (e->kind == ExprKind::kBinary &&
      (e->op == BinaryOp::kAdd || e->op == BinaryOp::kSub)) {
    const ExprPtr& l = e->children[0];
    const ExprPtr& r = e->children[1];
    if (l->kind != ExprKind::kColumnRef) return false;
    out->pos_col = l.get();
    if (r->kind == ExprKind::kLiteral) {
      int64_t lit;
      if (!RawInt64(r->value, &lit)) return false;
      out->bias = (e->op == BinaryOp::kAdd) ? lit : -lit;
      return true;
    }
    if (r->kind == ExprKind::kColumnRef && e->op == BinaryOp::kSub) {
      out->neg_col = r.get();
      return true;
    }
  }
  return false;
}

}  // namespace

bool MatchColumnDifferenceCmp(const ExprPtr& conjunct, ColumnDifferenceCmp* out) {
  if (conjunct == nullptr || conjunct->kind != ExprKind::kBinary ||
      !IsComparisonOp(conjunct->op)) {
    return false;
  }
  SideDecomp lhs, rhs;
  if (!DecomposeSide(conjunct->children[0], &lhs) ||
      !DecomposeSide(conjunct->children[1], &rhs)) {
    return false;
  }
  // Canonical target: L - R OP offset, i.e. move all columns left and all
  // constants right. Supported configurations:
  //   colA op colB [+/- bias]      -> colA - colB op bias
  //   colA - colB op bias          -> as-is
  //   colA [+bias] op colB         -> colA - colB op -bias... (bias moves)
  BinaryOp op = conjunct->op;
  const Expr* left = nullptr;
  const Expr* right = nullptr;
  int64_t offset = 0;
  if (lhs.pos_col != nullptr && lhs.neg_col != nullptr) {
    // colA - colB op bias (rhs must be constant only)
    if (rhs.pos_col != nullptr || rhs.neg_col != nullptr) return false;
    left = lhs.pos_col;
    right = lhs.neg_col;
    offset = rhs.bias - lhs.bias;
  } else if (lhs.pos_col != nullptr && rhs.pos_col != nullptr &&
             rhs.neg_col == nullptr) {
    // colA + biasL op colB + biasR  ->  colA - colB op biasR - biasL
    left = lhs.pos_col;
    right = rhs.pos_col;
    offset = rhs.bias - lhs.bias;
  } else if (lhs.pos_col == nullptr && rhs.pos_col != nullptr &&
             rhs.neg_col != nullptr) {
    // bias op colA - colB  ->  colA - colB swapped-op bias
    left = rhs.pos_col;
    right = rhs.neg_col;
    offset = lhs.bias;
    op = SwapComparison(op);
  } else {
    return false;
  }
  out->left = left;
  out->right = right;
  out->op = op;
  out->offset_micros = offset;
  return true;
}

}  // namespace rfid
