// One-dimensional value intervals with open/closed endpoints, used by the
// rewrite engine's transitivity analysis and by selectivity estimation.
//
// An interval constrains a single variable (a column of one pattern
// reference). Endpoints are Values; arithmetic shifting is defined for
// the int64-represented types (INT64 / TIMESTAMP / INTERVAL).
#ifndef RFID_EXPR_INTERVAL_H_
#define RFID_EXPR_INTERVAL_H_

#include <optional>
#include <string>

#include "common/value.h"
#include "expr/expr.h"

namespace rfid {

struct IntervalEndpoint {
  Value value;          // never NULL
  bool inclusive = true;
};

class ValueInterval {
 public:
  /// The unconstrained interval (-inf, +inf).
  ValueInterval() = default;

  static ValueInterval Exactly(Value v) {
    ValueInterval iv;
    iv.lo_ = IntervalEndpoint{v, true};
    iv.hi_ = IntervalEndpoint{std::move(v), true};
    return iv;
  }

  const std::optional<IntervalEndpoint>& lo() const { return lo_; }
  const std::optional<IntervalEndpoint>& hi() const { return hi_; }

  bool Unconstrained() const { return !lo_ && !hi_; }

  /// True if no value satisfies the interval.
  bool Empty() const;

  /// Narrows with "x >= v" / "x > v".
  void IntersectLo(Value v, bool inclusive);
  /// Narrows with "x <= v" / "x < v".
  void IntersectHi(Value v, bool inclusive);
  /// Narrows with a comparison "x OP v" (op oriented column-OP-literal).
  /// kNe is ignored (does not constrain an interval).
  void IntersectCmp(BinaryOp op, const Value& v);
  /// Intersection with another interval.
  void Intersect(const ValueInterval& other);

  /// Widens to the union-hull of this and other (used to OR contexts).
  void UnionHull(const ValueInterval& other);

  /// Shifts endpoints by [delta_lo, delta_hi] (adds delta_lo to the lower
  /// endpoint, delta_hi to the upper). Only valid for int64-repped value
  /// types; endpoints keep their type. Open-ness: an endpoint shifted by a
  /// strict difference bound becomes strict.
  void Shift(int64_t delta_lo, bool lo_strict_shift, int64_t delta_hi,
             bool hi_strict_shift);

  /// True if every value in `inner` also lies in this interval.
  bool Contains(const ValueInterval& inner) const;

  /// Converts back to conjuncts on the given column reference; returns
  /// nullptr when unconstrained.
  ExprPtr ToConjuncts(const ExprPtr& column_ref) const;

  std::string ToString() const;

 private:
  std::optional<IntervalEndpoint> lo_;
  std::optional<IntervalEndpoint> hi_;
};

}  // namespace rfid

#endif  // RFID_EXPR_INTERVAL_H_
