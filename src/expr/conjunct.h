// Conjunct surgery: splitting predicates into AND-ed conjuncts,
// recombining them, and inspecting/rewriting the column references they
// touch. Used heavily by predicate pushdown and the rewrite engine.
#ifndef RFID_EXPR_CONJUNCT_H_
#define RFID_EXPR_CONJUNCT_H_

#include <set>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace rfid {

/// Splits e on top-level ANDs. A null expression yields an empty list.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& e);

/// ANDs the conjuncts together; returns nullptr for an empty list.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

/// ORs the disjuncts together; returns nullptr for an empty list.
ExprPtr CombineDisjuncts(const std::vector<ExprPtr>& disjuncts);

/// Collects every column reference node in the tree (including inside
/// window specs).
void CollectColumnRefs(const ExprPtr& e, std::vector<const Expr*>* out);

/// The set of distinct qualifiers referenced (lower-cased). Unqualified
/// references contribute "".
std::set<std::string> ReferencedQualifiers(const ExprPtr& e);

/// True if every column reference in e is qualified with `qualifier`
/// (case-insensitive). Vacuously true for reference-free expressions.
bool RefersOnlyTo(const ExprPtr& e, std::string_view qualifier);

/// True if some column reference in e has the qualifier.
bool References(const ExprPtr& e, std::string_view qualifier);

/// Replaces qualifier `from` with `to` on every column reference.
ExprPtr SubstituteQualifier(const ExprPtr& e, std::string_view from,
                            std::string_view to);

/// Strips all qualifiers from column references.
ExprPtr StripQualifiers(const ExprPtr& e);

/// A conjunct of the form <qualifier.column> <cmp> <literal> (either
/// orientation), decomposed into a canonical column-op-literal view.
struct ColumnLiteralCmp {
  const Expr* column = nullptr;  // the column-ref node
  BinaryOp op = BinaryOp::kEq;   // oriented as column OP literal
  Value literal;
};

/// Tries to view the conjunct as column-cmp-literal. Also matches
/// "col - col2" style only when that is NOT the case — returns false for
/// anything but a direct column/literal comparison.
bool MatchColumnLiteralCmp(const ExprPtr& conjunct, ColumnLiteralCmp* out);

/// A conjunct comparing two columns, possibly with a literal interval
/// offset on one side, canonicalized to:
///   left.column - right.column  <op>  offset
/// Matches shapes such as "A.rtime < B.rtime", "B.rtime - A.rtime < 5 MINUTES",
/// "A.x = B.y".
struct ColumnDifferenceCmp {
  const Expr* left = nullptr;
  const Expr* right = nullptr;
  BinaryOp op = BinaryOp::kEq;  // oriented: left - right OP offset
  int64_t offset_micros = 0;    // 0 when no explicit offset
};

bool MatchColumnDifferenceCmp(const ExprPtr& conjunct, ColumnDifferenceCmp* out);

}  // namespace rfid

#endif  // RFID_EXPR_CONJUNCT_H_
