#include "expr/eval.h"

#include <cassert>

#include "common/string_util.h"

namespace rfid {

Result<size_t> RowDesc::Resolve(std::string_view qualifier,
                                std::string_view name) const {
  int found = -1;
  for (size_t i = 0; i < fields_.size(); ++i) {
    const Field& f = fields_[i];
    if (!EqualsIgnoreCase(f.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(f.qualifier, qualifier)) continue;
    if (found >= 0) {
      return Status::BindError(StrFormat(
          "ambiguous column reference %s%s%s",
          std::string(qualifier).c_str(), qualifier.empty() ? "" : ".",
          std::string(name).c_str()));
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::BindError(StrFormat(
        "unresolved column reference %s%s%s",
        std::string(qualifier).c_str(), qualifier.empty() ? "" : ".",
        std::string(name).c_str()));
  }
  return static_cast<size_t>(found);
}

RowDesc RowDesc::FromSchema(const Schema& schema, std::string qualifier) {
  RowDesc desc;
  for (const Column& c : schema.columns()) {
    desc.AddField(qualifier, c.name, c.type);
  }
  return desc;
}

RowDesc RowDesc::Concat(const RowDesc& left, const RowDesc& right) {
  RowDesc out = left;
  for (const Field& f : right.fields()) {
    out.fields_.push_back(f);
  }
  return out;
}

Schema RowDesc::ToSchema() const {
  Schema schema;
  for (const Field& f : fields_) schema.AddColumn(f.name, f.type);
  return schema;
}

std::string RowDesc::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!fields_[i].qualifier.empty()) out += fields_[i].qualifier + ".";
    out += fields_[i].name;
    out += ":";
    out += DataTypeName(fields_[i].type);
  }
  out += "]";
  return out;
}

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble;
}

Result<DataType> InferBinaryType(BinaryOp op, DataType lhs, DataType rhs) {
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    return DataType::kBool;
  }
  if (IsComparisonOp(op)) {
    if (lhs != DataType::kNull && rhs != DataType::kNull &&
        !TypesComparable(lhs, rhs)) {
      return Status::BindError(StrFormat("cannot compare %s with %s",
                                         DataTypeName(lhs), DataTypeName(rhs)));
    }
    return DataType::kBool;
  }
  // Arithmetic.
  if (lhs == DataType::kNull || rhs == DataType::kNull) {
    return lhs == DataType::kNull ? rhs : lhs;
  }
  if (IsNumeric(lhs) && IsNumeric(rhs)) {
    if (op == BinaryOp::kDiv || lhs == DataType::kDouble ||
        rhs == DataType::kDouble) {
      return DataType::kDouble;
    }
    return DataType::kInt64;
  }
  if (op == BinaryOp::kSub && lhs == DataType::kTimestamp &&
      rhs == DataType::kTimestamp) {
    return DataType::kInterval;
  }
  if ((op == BinaryOp::kAdd || op == BinaryOp::kSub) &&
      lhs == DataType::kTimestamp && rhs == DataType::kInterval) {
    return DataType::kTimestamp;
  }
  if (op == BinaryOp::kAdd && lhs == DataType::kInterval &&
      rhs == DataType::kTimestamp) {
    return DataType::kTimestamp;
  }
  if ((op == BinaryOp::kAdd || op == BinaryOp::kSub) &&
      lhs == DataType::kInterval && rhs == DataType::kInterval) {
    return DataType::kInterval;
  }
  return Status::BindError(StrFormat("invalid operand types for %s: %s, %s",
                                     BinaryOpSymbol(op), DataTypeName(lhs),
                                     DataTypeName(rhs)));
}

}  // namespace

Result<ExprPtr> BindExpr(const ExprPtr& e, const RowDesc& desc) {
  if (e == nullptr) return Status::Internal("BindExpr on null expression");
  auto bound = std::make_shared<Expr>(*e);
  switch (e->kind) {
    case ExprKind::kLiteral:
      bound->result_type = e->value.type();
      return bound;
    case ExprKind::kColumnRef: {
      RFID_ASSIGN_OR_RETURN(size_t slot, desc.Resolve(e->qualifier, e->column));
      bound->slot = static_cast<int>(slot);
      bound->result_type = desc.field(slot).type;
      return bound;
    }
    case ExprKind::kBinary: {
      RFID_ASSIGN_OR_RETURN(bound->children[0], BindExpr(e->children[0], desc));
      RFID_ASSIGN_OR_RETURN(bound->children[1], BindExpr(e->children[1], desc));
      RFID_ASSIGN_OR_RETURN(
          bound->result_type,
          InferBinaryType(e->op, bound->children[0]->result_type,
                          bound->children[1]->result_type));
      return bound;
    }
    case ExprKind::kNot: {
      RFID_ASSIGN_OR_RETURN(bound->children[0], BindExpr(e->children[0], desc));
      bound->result_type = DataType::kBool;
      return bound;
    }
    case ExprKind::kIsNull: {
      RFID_ASSIGN_OR_RETURN(bound->children[0], BindExpr(e->children[0], desc));
      bound->result_type = DataType::kBool;
      return bound;
    }
    case ExprKind::kCase: {
      DataType result = DataType::kNull;
      for (size_t i = 0; i < e->children.size(); ++i) {
        RFID_ASSIGN_OR_RETURN(bound->children[i], BindExpr(e->children[i], desc));
      }
      size_t pairs = e->children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        DataType then_type = bound->children[2 * i + 1]->result_type;
        if (result == DataType::kNull) result = then_type;
      }
      if (e->has_else && result == DataType::kNull) {
        result = bound->children.back()->result_type;
      }
      bound->result_type = result;
      return bound;
    }
    case ExprKind::kInList:
    case ExprKind::kInValueSet: {
      for (size_t i = 0; i < e->children.size(); ++i) {
        RFID_ASSIGN_OR_RETURN(bound->children[i], BindExpr(e->children[i], desc));
      }
      bound->result_type = DataType::kBool;
      return bound;
    }
    case ExprKind::kInSubquery:
      return Status::BindError(
          "IN (SELECT ...) must be planned as a semi-join before scalar binding");
    case ExprKind::kFuncCall:
      if (e->window.has_value()) {
        return Status::BindError(
            "window function in scalar context: " + e->func_name);
      }
      if (e->func_name == "coalesce") {
        if (e->children.empty()) {
          return Status::BindError("COALESCE requires at least one argument");
        }
        DataType result = DataType::kNull;
        for (size_t i = 0; i < e->children.size(); ++i) {
          RFID_ASSIGN_OR_RETURN(bound->children[i],
                                BindExpr(e->children[i], desc));
          if (result == DataType::kNull) {
            result = bound->children[i]->result_type;
          }
        }
        bound->result_type = result;
        return bound;
      }
      if (e->func_name == "like") {
        if (e->children.size() != 2) {
          return Status::BindError("LIKE requires exactly two arguments");
        }
        for (size_t i = 0; i < e->children.size(); ++i) {
          RFID_ASSIGN_OR_RETURN(bound->children[i],
                                BindExpr(e->children[i], desc));
          DataType t = bound->children[i]->result_type;
          if (t != DataType::kString && t != DataType::kNull) {
            return Status::BindError(StrFormat(
                "LIKE requires string operands, got %s", DataTypeName(t)));
          }
        }
        bound->result_type = DataType::kBool;
        return bound;
      }
      if (ContainsAggregate(e)) {
        return Status::BindError(
            "aggregate function in scalar context: " + e->func_name);
      }
      return Status::BindError("unknown scalar function: " + e->func_name);
    case ExprKind::kStar:
      return Status::BindError("* is only valid in COUNT(*) or SELECT *");
  }
  return Status::Internal("unhandled expression kind");
}

namespace {

Value EvalArithmetic(BinaryOp op, const Value& l, const Value& r,
                     DataType result_type) {
  if (result_type == DataType::kDouble) {
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op) {
      case BinaryOp::kAdd: return Value::Double(a + b);
      case BinaryOp::kSub: return Value::Double(a - b);
      case BinaryOp::kMul: return Value::Double(a * b);
      case BinaryOp::kDiv: return b == 0 ? Value::Null() : Value::Double(a / b);
      default: break;
    }
  }
  // Integer-repped types (INT64, TIMESTAMP, INTERVAL) share the same
  // underlying arithmetic; the bound result_type selects the wrapper.
  auto raw = [](const Value& v) -> int64_t {
    switch (v.type()) {
      case DataType::kInt64: return v.int64_value();
      case DataType::kTimestamp: return v.timestamp_value();
      case DataType::kInterval: return v.interval_value();
      default: assert(false); return 0;
    }
  };
  int64_t x = raw(l);
  int64_t y = raw(r);
  int64_t res = 0;
  switch (op) {
    case BinaryOp::kAdd: res = x + y; break;
    case BinaryOp::kSub: res = x - y; break;
    case BinaryOp::kMul: res = x * y; break;
    case BinaryOp::kDiv:
      if (y == 0) return Value::Null();
      res = x / y;
      break;
    default:
      assert(false);
  }
  switch (result_type) {
    case DataType::kTimestamp: return Value::Timestamp(res);
    case DataType::kInterval: return Value::Interval(res);
    default: return Value::Int64(res);
  }
}

// Kleene three-valued logic values: 0=false, 1=true, 2=unknown.
int ToTri(const Value& v) {
  if (v.is_null()) return 2;
  return v.bool_value() ? 1 : 0;
}

}  // namespace

Result<Value> EvalExpr(const Expr& e, const Row& row) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.value;
    case ExprKind::kColumnRef:
      if (e.slot < 0 || static_cast<size_t>(e.slot) >= row.size()) {
        return Status::Internal("evaluating unbound column reference " +
                                e.column);
      }
      return row[static_cast<size_t>(e.slot)];
    case ExprKind::kBinary: {
      if (e.op == BinaryOp::kAnd || e.op == BinaryOp::kOr) {
        RFID_ASSIGN_OR_RETURN(Value lv, EvalExpr(*e.children[0], row));
        int lt = ToTri(lv);
        // Short-circuit on the dominating value.
        if (e.op == BinaryOp::kAnd && lt == 0) return Value::Bool(false);
        if (e.op == BinaryOp::kOr && lt == 1) return Value::Bool(true);
        RFID_ASSIGN_OR_RETURN(Value rv, EvalExpr(*e.children[1], row));
        int rt = ToTri(rv);
        if (e.op == BinaryOp::kAnd) {
          if (rt == 0) return Value::Bool(false);
          if (lt == 1 && rt == 1) return Value::Bool(true);
          return Value::Null();
        }
        if (rt == 1) return Value::Bool(true);
        if (lt == 0 && rt == 0) return Value::Bool(false);
        return Value::Null();
      }
      RFID_ASSIGN_OR_RETURN(Value lv, EvalExpr(*e.children[0], row));
      RFID_ASSIGN_OR_RETURN(Value rv, EvalExpr(*e.children[1], row));
      if (lv.is_null() || rv.is_null()) return Value::Null();
      if (IsComparisonOp(e.op)) {
        int c = lv.Compare(rv);
        switch (e.op) {
          case BinaryOp::kEq: return Value::Bool(c == 0);
          case BinaryOp::kNe: return Value::Bool(c != 0);
          case BinaryOp::kLt: return Value::Bool(c < 0);
          case BinaryOp::kLe: return Value::Bool(c <= 0);
          case BinaryOp::kGt: return Value::Bool(c > 0);
          case BinaryOp::kGe: return Value::Bool(c >= 0);
          default: break;
        }
      }
      return EvalArithmetic(e.op, lv, rv, e.result_type);
    }
    case ExprKind::kNot: {
      RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      int t = ToTri(v);
      if (t == 2) return Value::Null();
      return Value::Bool(t == 0);
    }
    case ExprKind::kIsNull: {
      RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.children[0], row));
      bool is_null = v.is_null();
      return Value::Bool(e.negated ? !is_null : is_null);
    }
    case ExprKind::kCase: {
      size_t pairs = e.children.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        RFID_ASSIGN_OR_RETURN(Value cond, EvalExpr(*e.children[2 * i], row));
        if (ToTri(cond) == 1) {
          return EvalExpr(*e.children[2 * i + 1], row);
        }
      }
      if (e.has_else) return EvalExpr(*e.children.back(), row);
      return Value::Null();
    }
    case ExprKind::kFuncCall: {
      // Only COALESCE and LIKE reach evaluation (the binder rejects the
      // rest).
      if (e.func_name == "like") {
        RFID_ASSIGN_OR_RETURN(Value text, EvalExpr(*e.children[0], row));
        RFID_ASSIGN_OR_RETURN(Value pattern, EvalExpr(*e.children[1], row));
        if (text.is_null() || pattern.is_null()) return Value::Null();
        return Value::Bool(
            SqlLikeMatch(text.string_value(), pattern.string_value()));
      }
      for (const ExprPtr& child : e.children) {
        RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(*child, row));
        if (!v.is_null()) return v;
      }
      return Value::Null();
    }
    case ExprKind::kInValueSet: {
      RFID_ASSIGN_OR_RETURN(Value probe, EvalExpr(*e.children[0], row));
      if (probe.is_null()) return Value::Null();
      if (e.value_set != nullptr && e.value_set->count(probe) > 0) {
        return Value::Bool(true);
      }
      return e.value_set_has_null ? Value::Null() : Value::Bool(false);
    }
    case ExprKind::kInList: {
      RFID_ASSIGN_OR_RETURN(Value probe, EvalExpr(*e.children[0], row));
      if (probe.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < e.children.size(); ++i) {
        RFID_ASSIGN_OR_RETURN(Value item, EvalExpr(*e.children[i], row));
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (TypesComparable(probe.type(), item.type()) &&
            probe.Compare(item) == 0) {
          return Value::Bool(true);
        }
      }
      return saw_null ? Value::Null() : Value::Bool(false);
    }
    default:
      return Status::Internal("unevaluable expression kind");
  }
}

Result<bool> EvalPredicate(const Expr& e, const Row& row) {
  RFID_ASSIGN_OR_RETURN(Value v, EvalExpr(e, row));
  return !v.is_null() && v.bool_value();
}

namespace {

bool IsFoldableKind(ExprKind kind) {
  switch (kind) {
    case ExprKind::kBinary:
    case ExprKind::kNot:
    case ExprKind::kIsNull:
    case ExprKind::kCase:
    case ExprKind::kInList:
      return true;
    default:
      return false;
  }
}

bool HasNonConstant(const ExprPtr& e) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case ExprKind::kColumnRef:
    case ExprKind::kInSubquery:
    case ExprKind::kInValueSet:
    case ExprKind::kStar:
    case ExprKind::kFuncCall:  // aggregates/windows; COALESCE rarely constant
      return true;
    default:
      break;
  }
  for (const ExprPtr& child : e->children) {
    if (HasNonConstant(child)) return true;
  }
  return false;
}

}  // namespace

ExprPtr FoldConstants(const ExprPtr& e) {
  if (e == nullptr) return nullptr;
  if (e->kind == ExprKind::kLiteral || e->kind == ExprKind::kColumnRef) {
    return e;
  }
  // Fold children first so partially-constant trees shrink bottom-up.
  auto copy = std::make_shared<Expr>(*e);
  bool changed = false;
  for (auto& child : copy->children) {
    ExprPtr folded = FoldConstants(child);
    if (folded != child) changed = true;
    child = folded;
  }
  ExprPtr current = changed ? copy : e;
  if (!IsFoldableKind(current->kind) || HasNonConstant(current)) {
    return current;
  }
  RowDesc empty;
  auto bound = BindExpr(current, empty);
  if (!bound.ok()) return current;  // type errors surface later, with context
  Row no_row;
  auto value = EvalExpr(*bound.value(), no_row);
  if (!value.ok()) return current;
  return MakeLiteral(std::move(value).value());
}

}  // namespace rfid
