// Compiled expression programs for the vectorized execution path.
//
// ExprProgram::Compile flattens a *bound* expression tree into a postfix
// bytecode program evaluated a column at a time over a RowBatch with a
// selection vector. Kernels mirror the row interpreter (EvalExpr /
// EvalArithmetic / Value::Compare) operation for operation so results are
// bit-identical; anything the kernels do not cover (IN-subqueries,
// aggregates, window calls, unknown functions) fails to compile and the
// operator falls back to the interpreter.
//
// Eager evaluation of AND/OR/CASE/COALESCE branches is safe here because
// bound scalar expressions cannot fail at runtime: the only eval error is
// an unbound column reference (rejected at compile), and division by zero
// yields NULL, not an error. Short-circuiting in the interpreter is thus
// purely an optimization, never a semantic guard.
#ifndef RFID_EXPR_BYTECODE_H_
#define RFID_EXPR_BYTECODE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "expr/row_batch.h"

namespace rfid {

enum class BcOp : uint8_t {
  kLoadCol,     // a = slot
  kLoadConst,   // a = constant index
  kCompare,     // a = BinaryOp (kEq..kGe)
  kArith,       // a = BinaryOp (kAdd..kDiv), rtype = bound result type
  kAnd,         // Kleene
  kOr,          // Kleene
  kNot,
  kIsNull,      // b = negated (IS NOT NULL)
  kCase,        // a = #WHEN/THEN pairs, b = has_else
  kInList,      // a = total children (probe + items)
  kInValueSet,  // a = set index, b = set_has_null
  kCoalesce,    // a = #children
  kLike,        // [text, pattern] -> BOOL
};

struct BcInst {
  BcOp op;
  int32_t a = 0;
  int32_t b = 0;
  DataType rtype = DataType::kNull;
};

/// Owning structural snapshot of a compiled program: everything the
/// bytecode verifier needs to prove the program safe to run (and
/// everything a mutation test needs to corrupt). `num_sets` is the size
/// of the IN-value-set pool; set contents are irrelevant to structure.
struct BytecodeImage {
  std::vector<BcInst> code;
  std::vector<Value> consts;
  size_t num_sets = 0;
  int max_stack = 0;
};

/// Reusable evaluation scratch (register pool). One per thread of
/// execution; programs themselves are immutable and shareable.
struct ExprScratch {
  std::vector<ColumnVector> regs;
  std::vector<const ColumnVector*> refs;
  std::vector<const Value*> konsts;
  ColumnVector tmp;
  ColumnVector pred;
};

class ExprProgram {
 public:
  /// Compiles a bound expression. Fails (caller falls back to EvalExpr)
  /// on unsupported node kinds or unbound column references.
  static Result<ExprProgram> Compile(const Expr& bound);

  /// Evaluates over the rows listed in sel (or all batch rows when sel is
  /// null). *out is Reset to batch.num_rows(); entries outside the
  /// selection are left NULL and must not be read.
  void Eval(const RowBatch& batch, const uint32_t* sel, size_t sel_size,
            ColumnVector* out, ExprScratch* scratch) const;

  /// Predicate form: narrows *sel to the rows where the program yields
  /// TRUE (NULL counts false, as in EvalPredicate).
  void EvalFilter(const RowBatch& batch, std::vector<uint32_t>* sel,
                  ExprScratch* scratch) const;

  /// Slots read by kLoadCol instructions (deduplicated, ascending) — lets
  /// callers build partial batches holding only the referenced columns.
  const std::vector<int>& referenced_slots() const { return slots_; }

  /// If the whole program is a single column load, its slot; else -1.
  int single_column_slot() const {
    return code_.size() == 1 && code_[0].op == BcOp::kLoadCol ? code_[0].a
                                                              : -1;
  }

  size_t size() const { return code_.size(); }

  /// Structural snapshot for verification and corruption tests.
  BytecodeImage Image() const { return {code_, consts_, sets_.size(), max_stack_}; }

 private:
  friend struct ProgramBuilder;

  std::vector<BcInst> code_;
  std::vector<Value> consts_;
  std::vector<std::shared_ptr<const std::unordered_set<Value, ValueHash>>>
      sets_;
  std::vector<int> slots_;
  int max_stack_ = 0;
};

/// A WHERE clause compiled as its top-level conjuncts, applied in order,
/// each narrowing the selection vector — evaluation work shrinks with the
/// running selectivity exactly like the interpreter's short-circuit AND.
class FilterProgram {
 public:
  static Result<FilterProgram> Compile(const Expr& bound_predicate);

  /// Narrows *sel to rows passing every conjunct.
  void Apply(const RowBatch& batch, std::vector<uint32_t>* sel,
             ExprScratch* scratch) const;

  size_t num_conjuncts() const { return conjuncts_.size(); }

  /// The compiled conjunct programs, for the bytecode verifier.
  const std::vector<ExprProgram>& conjuncts() const { return conjuncts_; }

 private:
  std::vector<ExprProgram> conjuncts_;
};

}  // namespace rfid

#endif  // RFID_EXPR_BYTECODE_H_
