#include "expr/bytecode.h"

#include <algorithm>
#include <bit>

#include "common/string_util.h"

namespace rfid {

namespace {

// One operand of a kernel: either a batch/register column or a broadcast
// constant. The per-element branch on `col` is perfectly predicted inside
// a kernel loop, which keeps every kernel a single implementation instead
// of col/const specializations.
struct OpView {
  const ColumnVector* col = nullptr;
  DataType ktag = DataType::kNull;
  int64_t kraw = 0;
  const std::string* kstr = nullptr;

  DataType tag(size_t i) const { return col != nullptr ? col->tag(i) : ktag; }
  bool is_null(size_t i) const { return tag(i) == DataType::kNull; }
  int64_t raw(size_t i) const { return col != nullptr ? col->raw(i) : kraw; }
  const std::string& str(size_t i) const {
    return col != nullptr ? col->str(i) : *kstr;
  }
  double AsDouble(size_t i) const {
    return tag(i) == DataType::kDouble ? std::bit_cast<double>(raw(i))
                                       : static_cast<double>(raw(i));
  }
};

OpView ConstView(const Value& v) {
  OpView o;
  o.ktag = v.type();
  switch (v.type()) {
    case DataType::kNull:
      break;
    case DataType::kDouble:
      o.kraw = std::bit_cast<int64_t>(v.double_value());
      break;
    case DataType::kString:
      o.kstr = &v.string_value();
      break;
    default:
      o.kraw = v.int64_value();
      break;
  }
  return o;
}

template <typename F>
inline void ForSel(const uint32_t* sel, size_t n, F&& f) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) f(i);
  } else {
    for (size_t k = 0; k < n; ++k) f(sel[k]);
  }
}

// Mirrors Value::Compare. Both entries non-null and comparable (the
// binder's type check); the string-vs-non-string guard is defensive only.
inline int CompareViews(const OpView& l, const OpView& r, size_t i) {
  DataType lt = l.tag(i);
  DataType rt = r.tag(i);
  if (lt == DataType::kString) {
    return rt == DataType::kString ? l.str(i).compare(r.str(i)) : 0;
  }
  if (lt == DataType::kDouble || rt == DataType::kDouble) {
    double a = l.AsDouble(i);
    double b = r.AsDouble(i);
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int64_t a = l.raw(i);
  int64_t b = r.raw(i);
  return a < b ? -1 : (a > b ? 1 : 0);
}

// Mirrors the raw() lambda in EvalArithmetic: only integer-repped types
// contribute their payload; anything else reads as 0.
inline int64_t ArithRaw(const OpView& v, size_t i) {
  switch (v.tag(i)) {
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kInterval:
      return v.raw(i);
    default:
      return 0;
  }
}

// Kleene truth value: 0=false, 1=true, 2=unknown. Mirrors ToTri.
inline int Tri(const OpView& v, size_t i) {
  if (v.is_null(i)) return 2;
  return v.raw(i) != 0 ? 1 : 0;
}

inline void SetFromView(ColumnVector& out, size_t i, const OpView& v) {
  DataType t = v.tag(i);
  switch (t) {
    case DataType::kNull:
      out.SetNull(i);
      return;
    case DataType::kString:
      out.SetString(i, v.str(i));
      return;
    default:
      out.SetRaw(i, t, v.raw(i));
      return;
  }
}

inline Value ViewValueAt(const OpView& v, size_t i) {
  switch (v.tag(i)) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
      return Value::Bool(v.raw(i) != 0);
    case DataType::kInt64:
      return Value::Int64(v.raw(i));
    case DataType::kDouble:
      return Value::Double(std::bit_cast<double>(v.raw(i)));
    case DataType::kString:
      return Value::String(v.str(i));
    case DataType::kTimestamp:
      return Value::Timestamp(v.raw(i));
    case DataType::kInterval:
      return Value::Interval(v.raw(i));
  }
  return Value::Null();
}

}  // namespace

struct ProgramBuilder {
  ExprProgram* p;
  int cur = 0;

  void Emitted(int pops, int pushes) {
    cur += pushes - pops;
    p->max_stack_ = std::max(p->max_stack_, cur);
  }

  Status Compile(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        p->consts_.push_back(e.value);
        p->code_.push_back(
            {BcOp::kLoadConst, static_cast<int32_t>(p->consts_.size() - 1)});
        Emitted(0, 1);
        return Status::OK();
      case ExprKind::kColumnRef:
        if (e.slot < 0) {
          return Status::Internal("bytecode: unbound column reference " +
                                  e.column);
        }
        p->code_.push_back({BcOp::kLoadCol, e.slot});
        p->slots_.push_back(e.slot);
        Emitted(0, 1);
        return Status::OK();
      case ExprKind::kBinary: {
        RFID_RETURN_IF_ERROR(Compile(*e.children[0]));
        RFID_RETURN_IF_ERROR(Compile(*e.children[1]));
        BcInst inst;
        if (e.op == BinaryOp::kAnd) {
          inst.op = BcOp::kAnd;
        } else if (e.op == BinaryOp::kOr) {
          inst.op = BcOp::kOr;
        } else if (IsComparisonOp(e.op)) {
          inst.op = BcOp::kCompare;
          inst.a = static_cast<int32_t>(e.op);
        } else {
          inst.op = BcOp::kArith;
          inst.a = static_cast<int32_t>(e.op);
          inst.rtype = e.result_type;
        }
        p->code_.push_back(inst);
        Emitted(2, 1);
        return Status::OK();
      }
      case ExprKind::kNot:
        RFID_RETURN_IF_ERROR(Compile(*e.children[0]));
        p->code_.push_back({BcOp::kNot});
        Emitted(1, 1);
        return Status::OK();
      case ExprKind::kIsNull:
        RFID_RETURN_IF_ERROR(Compile(*e.children[0]));
        p->code_.push_back({BcOp::kIsNull, 0, e.negated ? 1 : 0});
        Emitted(1, 1);
        return Status::OK();
      case ExprKind::kCase: {
        for (const ExprPtr& c : e.children) RFID_RETURN_IF_ERROR(Compile(*c));
        int32_t pairs = static_cast<int32_t>(e.children.size() / 2);
        p->code_.push_back({BcOp::kCase, pairs, e.has_else ? 1 : 0});
        Emitted(static_cast<int>(e.children.size()), 1);
        return Status::OK();
      }
      case ExprKind::kInList: {
        for (const ExprPtr& c : e.children) RFID_RETURN_IF_ERROR(Compile(*c));
        p->code_.push_back(
            {BcOp::kInList, static_cast<int32_t>(e.children.size())});
        Emitted(static_cast<int>(e.children.size()), 1);
        return Status::OK();
      }
      case ExprKind::kInValueSet:
        RFID_RETURN_IF_ERROR(Compile(*e.children[0]));
        p->sets_.push_back(e.value_set);
        p->code_.push_back({BcOp::kInValueSet,
                            static_cast<int32_t>(p->sets_.size() - 1),
                            e.value_set_has_null ? 1 : 0});
        Emitted(1, 1);
        return Status::OK();
      case ExprKind::kFuncCall: {
        if (e.window.has_value()) {
          return Status::Unimplemented("bytecode: window call " + e.func_name);
        }
        if (e.func_name == "coalesce" && !e.children.empty()) {
          for (const ExprPtr& c : e.children) {
            RFID_RETURN_IF_ERROR(Compile(*c));
          }
          p->code_.push_back(
              {BcOp::kCoalesce, static_cast<int32_t>(e.children.size())});
          Emitted(static_cast<int>(e.children.size()), 1);
          return Status::OK();
        }
        if (e.func_name == "like" && e.children.size() == 2) {
          RFID_RETURN_IF_ERROR(Compile(*e.children[0]));
          RFID_RETURN_IF_ERROR(Compile(*e.children[1]));
          p->code_.push_back({BcOp::kLike});
          Emitted(2, 1);
          return Status::OK();
        }
        return Status::Unimplemented("bytecode: unsupported function " +
                                     e.func_name);
      }
      default:
        return Status::Unimplemented("bytecode: unsupported expression kind");
    }
  }
};

Result<ExprProgram> ExprProgram::Compile(const Expr& bound) {
  ExprProgram p;
  ProgramBuilder b{&p};
  RFID_RETURN_IF_ERROR(b.Compile(bound));
  std::sort(p.slots_.begin(), p.slots_.end());
  p.slots_.erase(std::unique(p.slots_.begin(), p.slots_.end()),
                 p.slots_.end());
  return p;
}

void ExprProgram::Eval(const RowBatch& batch, const uint32_t* sel,
                       size_t sel_size, ColumnVector* out,
                       ExprScratch* s) const {
  const size_t n = batch.num_rows();
  const size_t n_sel = sel == nullptr ? n : sel_size;
  if (s->regs.size() < static_cast<size_t>(max_stack_)) {
    s->regs.resize(static_cast<size_t>(max_stack_));
    s->refs.resize(static_cast<size_t>(max_stack_));
    s->konsts.resize(static_cast<size_t>(max_stack_));
  }
  auto view_of = [&](int j) -> OpView {
    if (s->refs[static_cast<size_t>(j)] != nullptr) {
      return OpView{s->refs[static_cast<size_t>(j)]};
    }
    if (s->konsts[static_cast<size_t>(j)] != nullptr) {
      return ConstView(*s->konsts[static_cast<size_t>(j)]);
    }
    return OpView{&s->regs[static_cast<size_t>(j)]};
  };

  int sp = 0;
  std::vector<OpView> views;  // reused for variadic ops
  for (const BcInst& inst : code_) {
    switch (inst.op) {
      case BcOp::kLoadCol:
        s->refs[static_cast<size_t>(sp)] =
            &batch.col(static_cast<size_t>(inst.a));
        s->konsts[static_cast<size_t>(sp)] = nullptr;
        ++sp;
        continue;
      case BcOp::kLoadConst:
        s->konsts[static_cast<size_t>(sp)] =
            &consts_[static_cast<size_t>(inst.a)];
        s->refs[static_cast<size_t>(sp)] = nullptr;
        ++sp;
        continue;
      default:
        break;
    }

    int arity;
    switch (inst.op) {
      case BcOp::kNot:
      case BcOp::kIsNull:
      case BcOp::kInValueSet:
        arity = 1;
        break;
      case BcOp::kCase:
        arity = 2 * inst.a + inst.b;
        break;
      case BcOp::kInList:
      case BcOp::kCoalesce:
        arity = inst.a;
        break;
      default:
        arity = 2;
        break;
    }
    const int base = sp - arity;
    ColumnVector& dst = s->tmp;
    dst.Reset(n);

    switch (inst.op) {
      case BcOp::kCompare: {
        OpView l = view_of(base);
        OpView r = view_of(base + 1);
        BinaryOp op = static_cast<BinaryOp>(inst.a);
        ForSel(sel, n_sel, [&](size_t i) {
          if (l.is_null(i) || r.is_null(i)) return;
          int c = CompareViews(l, r, i);
          bool v = false;
          switch (op) {
            case BinaryOp::kEq: v = c == 0; break;
            case BinaryOp::kNe: v = c != 0; break;
            case BinaryOp::kLt: v = c < 0; break;
            case BinaryOp::kLe: v = c <= 0; break;
            case BinaryOp::kGt: v = c > 0; break;
            case BinaryOp::kGe: v = c >= 0; break;
            default: break;
          }
          dst.SetBool(i, v);
        });
        break;
      }
      case BcOp::kArith: {
        OpView l = view_of(base);
        OpView r = view_of(base + 1);
        BinaryOp op = static_cast<BinaryOp>(inst.a);
        if (inst.rtype == DataType::kDouble) {
          ForSel(sel, n_sel, [&](size_t i) {
            if (l.is_null(i) || r.is_null(i)) return;
            double a = l.AsDouble(i);
            double b = r.AsDouble(i);
            switch (op) {
              case BinaryOp::kAdd: dst.SetDouble(i, a + b); break;
              case BinaryOp::kSub: dst.SetDouble(i, a - b); break;
              case BinaryOp::kMul: dst.SetDouble(i, a * b); break;
              case BinaryOp::kDiv:
                if (b != 0) dst.SetDouble(i, a / b);
                break;
              default: break;
            }
          });
        } else {
          // Integer-repped types share the arithmetic; the bound result
          // type picks the output tag, as in EvalArithmetic. Wrapping
          // unsigned ops keep UBSan builds honest without changing any
          // in-range result.
          DataType wt = (inst.rtype == DataType::kTimestamp ||
                         inst.rtype == DataType::kInterval)
                            ? inst.rtype
                            : DataType::kInt64;
          ForSel(sel, n_sel, [&](size_t i) {
            if (l.is_null(i) || r.is_null(i)) return;
            uint64_t x = static_cast<uint64_t>(ArithRaw(l, i));
            uint64_t y = static_cast<uint64_t>(ArithRaw(r, i));
            int64_t res = 0;
            switch (op) {
              case BinaryOp::kAdd: res = static_cast<int64_t>(x + y); break;
              case BinaryOp::kSub: res = static_cast<int64_t>(x - y); break;
              case BinaryOp::kMul: res = static_cast<int64_t>(x * y); break;
              case BinaryOp::kDiv: {
                int64_t sy = static_cast<int64_t>(y);
                if (sy == 0) return;
                res = sy == -1 ? static_cast<int64_t>(0 - x)
                               : static_cast<int64_t>(x) / sy;
                break;
              }
              default: break;
            }
            dst.SetRaw(i, wt, res);
          });
        }
        break;
      }
      case BcOp::kAnd: {
        OpView l = view_of(base);
        OpView r = view_of(base + 1);
        ForSel(sel, n_sel, [&](size_t i) {
          int lt = Tri(l, i);
          int rt = Tri(r, i);
          if (lt == 0 || rt == 0) dst.SetBool(i, false);
          else if (lt == 1 && rt == 1) dst.SetBool(i, true);
        });
        break;
      }
      case BcOp::kOr: {
        OpView l = view_of(base);
        OpView r = view_of(base + 1);
        ForSel(sel, n_sel, [&](size_t i) {
          int lt = Tri(l, i);
          int rt = Tri(r, i);
          if (lt == 1 || rt == 1) dst.SetBool(i, true);
          else if (lt == 0 && rt == 0) dst.SetBool(i, false);
        });
        break;
      }
      case BcOp::kNot: {
        OpView v = view_of(base);
        ForSel(sel, n_sel, [&](size_t i) {
          int t = Tri(v, i);
          if (t != 2) dst.SetBool(i, t == 0);
        });
        break;
      }
      case BcOp::kIsNull: {
        OpView v = view_of(base);
        bool negated = inst.b != 0;
        ForSel(sel, n_sel, [&](size_t i) {
          dst.SetBool(i, negated ? !v.is_null(i) : v.is_null(i));
        });
        break;
      }
      case BcOp::kCase: {
        views.clear();
        for (int j = 0; j < arity; ++j) views.push_back(view_of(base + j));
        int pairs = inst.a;
        bool has_else = inst.b != 0;
        ForSel(sel, n_sel, [&](size_t i) {
          for (int pidx = 0; pidx < pairs; ++pidx) {
            if (Tri(views[static_cast<size_t>(2 * pidx)], i) == 1) {
              SetFromView(dst, i, views[static_cast<size_t>(2 * pidx + 1)]);
              return;
            }
          }
          if (has_else) {
            SetFromView(dst, i, views[static_cast<size_t>(arity - 1)]);
          }
        });
        break;
      }
      case BcOp::kCoalesce: {
        views.clear();
        for (int j = 0; j < arity; ++j) views.push_back(view_of(base + j));
        ForSel(sel, n_sel, [&](size_t i) {
          for (const OpView& v : views) {
            if (!v.is_null(i)) {
              SetFromView(dst, i, v);
              return;
            }
          }
        });
        break;
      }
      case BcOp::kInList: {
        views.clear();
        for (int j = 0; j < arity; ++j) views.push_back(view_of(base + j));
        const OpView& probe = views[0];
        ForSel(sel, n_sel, [&](size_t i) {
          if (probe.is_null(i)) return;
          bool saw_null = false;
          for (size_t k = 1; k < views.size(); ++k) {
            if (views[k].is_null(i)) {
              saw_null = true;
              continue;
            }
            if (TypesComparable(probe.tag(i), views[k].tag(i)) &&
                CompareViews(probe, views[k], i) == 0) {
              dst.SetBool(i, true);
              return;
            }
          }
          if (!saw_null) dst.SetBool(i, false);
        });
        break;
      }
      case BcOp::kInValueSet: {
        OpView probe = view_of(base);
        const auto& set = sets_[static_cast<size_t>(inst.a)];
        bool has_null = inst.b != 0;
        ForSel(sel, n_sel, [&](size_t i) {
          if (probe.is_null(i)) return;
          if (set != nullptr && set->count(ViewValueAt(probe, i)) > 0) {
            dst.SetBool(i, true);
            return;
          }
          if (!has_null) dst.SetBool(i, false);
        });
        break;
      }
      case BcOp::kLike: {
        OpView l = view_of(base);
        OpView r = view_of(base + 1);
        ForSel(sel, n_sel, [&](size_t i) {
          if (l.tag(i) != DataType::kString ||
              r.tag(i) != DataType::kString) {
            return;  // NULL operand (or defensively, a non-string)
          }
          dst.SetBool(i, SqlLikeMatch(l.str(i), r.str(i)));
        });
        break;
      }
      default:
        break;
    }

    std::swap(s->regs[static_cast<size_t>(base)], s->tmp);
    s->refs[static_cast<size_t>(base)] = nullptr;
    s->konsts[static_cast<size_t>(base)] = nullptr;
    sp = base + 1;
  }

  // Materialize the top-of-stack result into *out.
  const int top = sp - 1;
  if (s->refs[static_cast<size_t>(top)] == nullptr &&
      s->konsts[static_cast<size_t>(top)] == nullptr) {
    std::swap(*out, s->regs[static_cast<size_t>(top)]);
    return;
  }
  OpView v = view_of(top);
  out->Reset(n);
  ForSel(sel, n_sel, [&](size_t i) { SetFromView(*out, i, v); });
}

void ExprProgram::EvalFilter(const RowBatch& batch, std::vector<uint32_t>* sel,
                             ExprScratch* s) const {
  Eval(batch, sel->data(), sel->size(), &s->pred, s);
  const ColumnVector& pred = s->pred;
  size_t w = 0;
  for (uint32_t i : *sel) {
    if (!pred.is_null(i) && pred.raw(i) != 0) (*sel)[w++] = i;
  }
  sel->resize(w);
}

namespace {

Status CompileConjuncts(const Expr& e, std::vector<ExprProgram>* out) {
  if (e.kind == ExprKind::kBinary && e.op == BinaryOp::kAnd) {
    RFID_RETURN_IF_ERROR(CompileConjuncts(*e.children[0], out));
    return CompileConjuncts(*e.children[1], out);
  }
  RFID_ASSIGN_OR_RETURN(ExprProgram p, ExprProgram::Compile(e));
  out->push_back(std::move(p));
  return Status::OK();
}

}  // namespace

Result<FilterProgram> FilterProgram::Compile(const Expr& bound_predicate) {
  FilterProgram fp;
  RFID_RETURN_IF_ERROR(CompileConjuncts(bound_predicate, &fp.conjuncts_));
  return fp;
}

void FilterProgram::Apply(const RowBatch& batch, std::vector<uint32_t>* sel,
                          ExprScratch* scratch) const {
  for (const ExprProgram& p : conjuncts_) {
    if (sel->empty()) return;
    p.EvalFilter(batch, sel, scratch);
  }
}

}  // namespace rfid
