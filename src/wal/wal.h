// Epoch-aligned write-ahead log for ingest batches.
//
// File layout (one segment file):
//   8-byte magic "RFIDWAL1", then records back to back:
//     u32 payload_len | u32 crc32(payload) | payload
//   payload: u8 type | u64 epoch | body        (all integers little-endian)
//     type 1 BATCH : u32 name_len | table name | u32 row_count |
//                    rows, each u32 line_len | persist-format TSV line
//     type 2 COMMIT: u32 batch_count
//
// An epoch is durable iff its COMMIT record is on disk: the writer logs
// every table batch of an epoch, the caller applies them in memory, and
// only then is the COMMIT appended (and fsync()ed per policy) — so a
// replayer never applies an epoch the writer did not acknowledge, and a
// crash between BATCH records and the COMMIT simply discards the epoch.
//
// The reader is paranoid by construction: a record whose length field
// runs past EOF, whose CRC mismatches, or whose payload fails to decode
// ends the scan — everything from the last COMMIT boundary onward is a
// torn/corrupt tail to be truncated, never served. Bad bytes in the
// middle of the file likewise stop replay at the preceding COMMIT (bit
// rot cannot silently skip ahead).
//
// Fsync policy trade-offs:
//   kAlways   fsync after every record — an acknowledged batch survives
//             power loss, at one fsync per table batch + commit.
//   kPerEpoch fsync once per COMMIT — an acknowledged *epoch* survives;
//             the default, matching the epoch-granularity snapshots.
//   kOff      never fsync — durability limited to what the OS flushes;
//             for bulk loads that end with a checkpoint.
#ifndef RFID_WAL_WAL_H_
#define RFID_WAL_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "storage/row_store.h"

namespace rfid::wal {

enum class FsyncPolicy { kAlways, kPerEpoch, kOff };

const char* FsyncPolicyName(FsyncPolicy p);

/// Single-writer appender over one WAL segment. Not thread-safe: the
/// ingest pipeline calls it under its writer lock. After any append or
/// sync error the writer is *broken* (the file may hold a torn record)
/// and refuses further traffic; recovery is the way back.
class WalWriter {
 public:
  /// Creates a fresh segment at `path` (magic written and synced).
  /// `next_epoch` seeds the epoch counter (last durable epoch + 1).
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   FsyncPolicy policy,
                                                   uint64_t next_epoch);

  /// Opens an existing segment for appending at `offset` (the reader's
  /// committed-prefix size; the file is truncated to it first).
  static Result<std::unique_ptr<WalWriter>> OpenAppend(const std::string& path,
                                                       FsyncPolicy policy,
                                                       uint64_t next_epoch,
                                                       uint64_t offset);

  /// Appends a BATCH record for the current epoch. Rows are encoded with
  /// the persistence TSV codec by the caller (see WalManager::LogBatch).
  Status AppendBatch(const std::string& table,
                     const std::vector<std::string>& row_lines);

  /// Appends the COMMIT record for the current epoch, fsyncs per policy,
  /// and advances to the next epoch.
  Status Commit();

  /// Abandons the current epoch (crash-equivalent: its BATCH records may
  /// be on disk but no COMMIT ever follows) and advances the counter so
  /// the next epoch's records are unambiguous to the replayer.
  void Abort();

  /// Epoch currently being logged.
  uint64_t epoch() const { return epoch_; }
  /// Last epoch whose COMMIT was appended (0 = none this segment).
  uint64_t last_committed() const { return last_committed_; }
  bool broken() const { return broken_; }
  uint64_t offset() const { return file_.offset(); }

  /// Explicit fsync (used by checkpointing regardless of policy).
  Status Sync();

 private:
  WalWriter(DurableFile file, FsyncPolicy policy, uint64_t next_epoch)
      : file_(std::move(file)), policy_(policy), epoch_(next_epoch) {}

  Status AppendRecord(const std::string& payload);

  DurableFile file_;
  FsyncPolicy policy_;
  uint64_t epoch_;
  uint64_t last_committed_ = 0;
  uint32_t batches_in_epoch_ = 0;
  bool broken_ = false;
};

/// One logged table batch, rows still in TSV form (schema-free until
/// replay resolves the destination table).
struct WalBatch {
  std::string table;
  std::vector<std::string> row_lines;
};

/// One durable epoch: its COMMIT record was read and verified.
struct WalEpoch {
  uint64_t epoch = 0;
  std::vector<WalBatch> batches;
};

struct WalReadResult {
  std::vector<WalEpoch> committed;
  /// Offset just past the last COMMIT record: the committed prefix.
  /// Everything beyond it (uncommitted batches, torn or corrupt bytes)
  /// is dead weight a writer reopening the segment truncates away.
  uint64_t committed_bytes = 0;
  /// Bytes present in the file beyond the committed prefix.
  uint64_t tail_bytes = 0;
  /// True when the tail contained a structurally bad record (torn
  /// length/CRC/decode failure) as opposed to merely uncommitted batches.
  bool tail_corrupt = false;
};

/// Scans a segment, returning every durable epoch in log order plus the
/// truncation watermark. NotFound if the file is missing; InvalidArgument
/// if the magic header itself is unreadable.
Result<WalReadResult> ReadWal(const std::string& path);

}  // namespace rfid::wal

#endif  // RFID_WAL_WAL_H_
