#include "wal/wal.h"

#include <cstring>

#include "common/fault.h"
#include "common/string_util.h"

namespace rfid::wal {

namespace {

constexpr char kMagic[8] = {'R', 'F', 'I', 'D', 'W', 'A', 'L', '1'};
constexpr uint8_t kRecordBatch = 1;
constexpr uint8_t kRecordCommit = 2;
// A BATCH record names one table and carries bounded row counts; a
// length beyond this is a torn/corrupt length field, not a real record.
constexpr uint32_t kMaxPayload = 1u << 30;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

bool GetU32(const std::string& s, size_t* pos, uint32_t* v) {
  if (*pos + 4 > s.size()) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(s[*pos + static_cast<size_t>(i)]))
           << (8 * i);
  }
  *pos += 4;
  *v = out;
  return true;
}

bool GetU64(const std::string& s, size_t* pos, uint64_t* v) {
  if (*pos + 8 > s.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(s[*pos + static_cast<size_t>(i)]))
           << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kPerEpoch: return "epoch";
    case FsyncPolicy::kOff: return "off";
  }
  return "?";
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     FsyncPolicy policy,
                                                     uint64_t next_epoch) {
  RFID_ASSIGN_OR_RETURN(DurableFile file, DurableFile::Create(path));
  RFID_RETURN_IF_ERROR(file.Append(kMagic, sizeof(kMagic)));
  RFID_RETURN_IF_ERROR(file.Sync());
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), policy, next_epoch));
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenAppend(
    const std::string& path, FsyncPolicy policy, uint64_t next_epoch,
    uint64_t offset) {
  RFID_RETURN_IF_ERROR(TruncateFile(path, offset));
  RFID_ASSIGN_OR_RETURN(DurableFile file, DurableFile::OpenAppend(path));
  if (file.offset() != offset) {
    return Status::Internal(
        StrFormat("wal segment %s: expected offset %llu after truncation, "
                  "got %llu",
                  path.c_str(), static_cast<unsigned long long>(offset),
                  static_cast<unsigned long long>(file.offset())));
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), policy, next_epoch));
}

Status WalWriter::AppendRecord(const std::string& payload) {
  if (broken_) {
    return Status::Internal("wal writer is broken (earlier append failed); "
                            "recover before logging again");
  }
  std::string rec;
  rec.reserve(payload.size() + 8);
  PutU32(&rec, static_cast<uint32_t>(payload.size()));
  PutU32(&rec, Crc32(payload));
  rec += payload;
  Status st = file_.Append(rec);
  if (!st.ok()) {
    broken_ = true;
    return st;
  }
  if (policy_ == FsyncPolicy::kAlways) {
    st = file_.Sync();
    if (!st.ok()) {
      broken_ = true;
      return st;
    }
  }
  return Status::OK();
}

Status WalWriter::AppendBatch(const std::string& table,
                              const std::vector<std::string>& row_lines) {
  RFID_FAULT_POINT("wal.AppendBatch");
  std::string payload;
  payload.push_back(static_cast<char>(kRecordBatch));
  PutU64(&payload, epoch_);
  PutU32(&payload, static_cast<uint32_t>(table.size()));
  payload += table;
  PutU32(&payload, static_cast<uint32_t>(row_lines.size()));
  for (const std::string& line : row_lines) {
    PutU32(&payload, static_cast<uint32_t>(line.size()));
    payload += line;
  }
  RFID_RETURN_IF_ERROR(AppendRecord(payload));
  ++batches_in_epoch_;
  return Status::OK();
}

Status WalWriter::Commit() {
  RFID_FAULT_POINT("wal.Commit");
  std::string payload;
  payload.push_back(static_cast<char>(kRecordCommit));
  PutU64(&payload, epoch_);
  PutU32(&payload, batches_in_epoch_);
  RFID_RETURN_IF_ERROR(AppendRecord(payload));
  if (policy_ == FsyncPolicy::kPerEpoch) {
    Status st = file_.Sync();
    if (!st.ok()) {
      broken_ = true;
      return st;
    }
  }
  last_committed_ = epoch_;
  ++epoch_;
  batches_in_epoch_ = 0;
  return Status::OK();
}

void WalWriter::Abort() {
  ++epoch_;
  batches_in_epoch_ = 0;
}

Status WalWriter::Sync() {
  Status st = file_.Sync();
  if (!st.ok()) broken_ = true;
  return st;
}

Result<WalReadResult> ReadWal(const std::string& path) {
  Result<std::string> read = ReadFileToString(path);
  RFID_RETURN_IF_ERROR(read.status());
  const std::string& data = *read;
  if (data.size() < sizeof(kMagic) ||
      memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a WAL segment: " + path);
  }

  WalReadResult result;
  result.committed_bytes = sizeof(kMagic);

  size_t pos = sizeof(kMagic);
  // Batches of the epoch currently being assembled; discarded when an
  // epoch ends without a COMMIT (writer aborted or crashed mid-epoch).
  uint64_t open_epoch = 0;
  std::vector<WalBatch> open_batches;

  while (pos < data.size()) {
    uint32_t len = 0, crc = 0;
    if (!GetU32(data, &pos, &len) || !GetU32(data, &pos, &crc) ||
        len > kMaxPayload || pos + len > data.size()) {
      result.tail_corrupt = true;  // torn length/header at the tail
      break;
    }
    const std::string payload = data.substr(pos, len);
    pos += len;
    if (Crc32(payload) != crc) {
      result.tail_corrupt = true;  // bit rot or torn payload
      break;
    }
    size_t p = 0;
    if (payload.empty()) {
      result.tail_corrupt = true;
      break;
    }
    uint8_t type = static_cast<uint8_t>(payload[p++]);
    uint64_t epoch = 0;
    if (!GetU64(payload, &p, &epoch)) {
      result.tail_corrupt = true;
      break;
    }
    if (type == kRecordBatch) {
      uint32_t name_len = 0;
      if (!GetU32(payload, &p, &name_len) || p + name_len > payload.size()) {
        result.tail_corrupt = true;
        break;
      }
      WalBatch batch;
      batch.table = payload.substr(p, name_len);
      p += name_len;
      uint32_t row_count = 0;
      if (!GetU32(payload, &p, &row_count)) {
        result.tail_corrupt = true;
        break;
      }
      batch.row_lines.reserve(row_count);
      bool bad = false;
      for (uint32_t i = 0; i < row_count; ++i) {
        uint32_t line_len = 0;
        if (!GetU32(payload, &p, &line_len) || p + line_len > payload.size()) {
          bad = true;
          break;
        }
        batch.row_lines.push_back(payload.substr(p, line_len));
        p += line_len;
      }
      if (bad) {
        result.tail_corrupt = true;
        break;
      }
      if (!open_batches.empty() && epoch != open_epoch) {
        open_batches.clear();  // previous epoch never committed
      }
      open_epoch = epoch;
      open_batches.push_back(std::move(batch));
    } else if (type == kRecordCommit) {
      uint32_t batch_count = 0;
      if (!GetU32(payload, &p, &batch_count)) {
        result.tail_corrupt = true;
        break;
      }
      if (!open_batches.empty() && epoch != open_epoch) {
        open_batches.clear();  // an earlier epoch was abandoned, not this one
      }
      if (open_batches.size() != batch_count) {
        // A COMMIT that does not match its batches is as corrupt as a
        // bad CRC: stop at the previous durable boundary.
        result.tail_corrupt = true;
        break;
      }
      WalEpoch e;
      e.epoch = epoch;
      e.batches = std::move(open_batches);
      result.committed.push_back(std::move(e));
      open_batches.clear();
      result.committed_bytes = pos;
    } else {
      result.tail_corrupt = true;
      break;
    }
  }

  result.tail_bytes = data.size() - result.committed_bytes;
  return result;
}

}  // namespace rfid::wal
