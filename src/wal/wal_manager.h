// Durability manager: ties the write-ahead log (wal.h), the checkpoint
// image (storage/persist.h), and recovery-by-replay together under one
// directory.
//
// Directory layout:
//   <dir>/DURABLE            manifest (atomic-rename updated):
//                              rfidwal 1
//                              checkpoint_epoch <E>
//                              checkpoint <checkpoint-E>
//                              segment <wal-E.log>
//   <dir>/checkpoint-<E>/    persistence dump (MANIFEST + *.tsv) plus a
//                            STRUCTURES sidecar recording, per table,
//                            which indexed columns and whether stats
//                            existed at checkpoint time
//   <dir>/wal-<E>.log        the active segment: epochs > E
//
// Checkpoint protocol (writer quiesced — the ingest pipeline calls this
// under its writer lock):
//   1. write the image to checkpoint-<E>.tmp, every file fsync+renamed
//   2. rename the .tmp directory to checkpoint-<E>
//   3. create a fresh segment wal-<E>.log
//   4. atomically swap the DURABLE manifest to point at both
//   5. best-effort delete of the previous checkpoint/segment
// A crash anywhere before step 4 leaves the previous manifest pointing
// at the previous (complete) checkpoint + segment; orphan .tmp files are
// overwritten by the next checkpoint.
//
// Recovery invariants (Open on an existing directory):
//   - the checkpoint image is loaded and indexes/stats rebuilt exactly
//     as the STRUCTURES sidecar recorded them;
//   - every *committed* WAL epoch is replayed through the same
//     Table::IngestBatch path live ingest uses, so indexes and the
//     mergeable statistics come out bit-identical to a run that never
//     crashed (KMV sketches are order-independent; see storage/stats.h);
//   - a torn or corrupt tail is truncated at the last COMMIT boundary,
//     never served — recovery always lands on a valid epoch boundary;
//   - replay is readable: concurrent snapshot captures + queries during
//     replay are safe (the same single-writer/epoch-watermark contract
//     as live ingest).
//
// Failure semantics while logging: after any append/sync error the
// writer is broken and every further LogBatch/LogCommit fails — from the
// durability layer's view the process has crashed, and reopening the
// directory (recovery) is the way back. In-memory table state may be
// ahead of the durable state at that point; callers that must not lose
// acknowledged batches use FsyncPolicy::kAlways or kPerEpoch and treat
// only Apply() == OK as acknowledged.
#ifndef RFID_WAL_WAL_MANAGER_H_
#define RFID_WAL_WAL_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "wal/wal.h"

namespace rfid::wal {

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kPerEpoch;
  /// Run-count bound for incremental index maintenance during replay
  /// (match the live pipeline's setting for bit-identical structures).
  size_t index_compact_threshold = 8;
  /// Invoked after the checkpoint image is loaded and its structures
  /// rebuilt, before WAL replay begins — the hook the query-during-
  /// replay tests use to start readers once tables exist.
  std::function<void()> after_checkpoint_load;
};

struct RecoveryResult {
  bool recovered = false;        // false = directory was fresh
  uint64_t checkpoint_epoch = 0;
  uint64_t replayed_epochs = 0;
  uint64_t replayed_rows = 0;
  uint64_t truncated_bytes = 0;  // tail dropped past the last COMMIT
  bool tail_corrupt = false;     // the dropped tail was torn/corrupt
};

class WalManager {
 public:
  /// Opens the durability directory over `db`.
  ///  - Fresh directory: checkpoints the database's current contents as
  ///    the base image (epoch 0) and starts an empty segment.
  ///  - Existing directory: recovers — loads the checkpoint into `db`
  ///    (its tables must not already exist), rebuilds structures,
  ///    replays committed epochs, truncates the tail, and reopens the
  ///    segment for appending.
  static Result<std::unique_ptr<WalManager>> Open(std::string dir,
                                                  Database* db,
                                                  WalOptions options = {});

  /// What Open found/did; meaningful after recovery.
  const RecoveryResult& recovery() const { return recovery_; }

  /// Last epoch that is safe on disk (committed in the WAL or covered by
  /// the checkpoint).
  uint64_t durable_epoch() const { return durable_epoch_; }

  const std::string& dir() const { return dir_; }
  FsyncPolicy fsync_policy() const { return options_.fsync_policy; }
  bool broken() const { return writer_ == nullptr || writer_->broken(); }

  /// Log-before-publish hooks for the ingest pipeline (single writer,
  /// called under its lock). LogBatch appends one BATCH record; LogCommit
  /// seals the epoch (fsync per policy); LogAbort abandons it.
  Status LogBatch(const std::string& table, const std::vector<Row>& rows);
  Status LogCommit();
  void LogAbort();

  /// Writes a consistent checkpoint of `db` (the database Open was given)
  /// at the current durable epoch and truncates the log. Caller must
  /// hold the writer role (no concurrent Apply).
  Status Checkpoint();

 private:
  WalManager(std::string dir, Database* db, WalOptions options)
      : dir_(std::move(dir)), db_(db), options_(std::move(options)) {}

  Status OpenFresh();
  Status Recover();
  Status WriteCheckpointImage(const std::string& tmp_dir);
  Status RotateAndSwapManifest(uint64_t epoch);
  Status ReplayEpoch(const WalEpoch& epoch);

  std::string dir_;
  Database* db_;
  WalOptions options_;

  std::unique_ptr<WalWriter> writer_;
  uint64_t durable_epoch_ = 0;
  uint64_t checkpoint_epoch_ = 0;
  std::string checkpoint_name_;
  std::string segment_name_;
  RecoveryResult recovery_;
};

}  // namespace rfid::wal

#endif  // RFID_WAL_WAL_MANAGER_H_
