#include "wal/wal_manager.h"

#include <filesystem>
#include <sstream>

#include "common/fault.h"
#include "common/string_util.h"
#include "storage/columnar.h"
#include "storage/persist.h"

namespace rfid::wal {

namespace {

constexpr const char* kManifestName = "DURABLE";
constexpr const char* kManifestMagic = "rfidwal 1";
constexpr const char* kStructuresName = "STRUCTURES";
constexpr const char* kColumnarName = "COLUMNAR";

std::string CheckpointName(uint64_t epoch) {
  return "checkpoint-" + std::to_string(epoch);
}

std::string SegmentName(uint64_t epoch) {
  return "wal-" + std::to_string(epoch) + ".log";
}

struct Manifest {
  uint64_t checkpoint_epoch = 0;
  std::string checkpoint;
  std::string segment;
};

Result<Manifest> ParseManifest(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return Status::InvalidArgument("unrecognized durability manifest");
  }
  Manifest m;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "checkpoint_epoch") {
      fields >> m.checkpoint_epoch;
    } else if (key == "checkpoint") {
      fields >> m.checkpoint;
    } else if (key == "segment") {
      fields >> m.segment;
    }
    // Unknown keys are ignored for forward compatibility.
  }
  if (m.checkpoint.empty() || m.segment.empty()) {
    return Status::InvalidArgument("incomplete durability manifest");
  }
  return m;
}

std::string RenderManifest(uint64_t checkpoint_epoch,
                           const std::string& checkpoint,
                           const std::string& segment) {
  std::string out = std::string(kManifestMagic) + "\n";
  out += "checkpoint_epoch " + std::to_string(checkpoint_epoch) + "\n";
  out += "checkpoint " + checkpoint + "\n";
  out += "segment " + segment + "\n";
  return out;
}

}  // namespace

Result<std::unique_ptr<WalManager>> WalManager::Open(std::string dir,
                                                     Database* db,
                                                     WalOptions options) {
  RFID_RETURN_IF_ERROR(EnsureDir(dir));
  std::unique_ptr<WalManager> m(
      new WalManager(std::move(dir), db, std::move(options)));
  auto manifest = ReadFileToString(m->dir_ + "/" + kManifestName);
  if (!manifest.ok()) {
    if (manifest.status().code() != StatusCode::kNotFound) {
      return manifest.status();
    }
    RFID_RETURN_IF_ERROR(m->OpenFresh());
  } else {
    RFID_RETURN_IF_ERROR(m->Recover());
  }
  return m;
}

Status WalManager::OpenFresh() {
  durable_epoch_ = 0;
  // The base image (whatever the database holds at attach time —
  // generated data, a bulk load, or nothing) becomes checkpoint 0; the
  // WAL then only ever needs to carry epochs, never the base.
  return Checkpoint();
}

Status WalManager::WriteCheckpointImage(const std::string& tmp_dir) {
  std::error_code ec;
  std::filesystem::remove_all(tmp_dir, ec);  // stale .tmp from a crash
  RFID_RETURN_IF_ERROR(SaveDatabase(*db_, tmp_dir));
  // STRUCTURES sidecar: which indexes/stats to rebuild before replay.
  std::string sidecar;
  for (const std::string& name : db_->TableNames()) {
    const Table* table = db_->GetTable(name);
    sidecar += name;
    sidecar += '\t';
    std::string cols;
    for (const SortedIndex* index : table->indexes()) {
      if (!cols.empty()) cols += ',';
      cols += index->column_name();
    }
    sidecar += cols.empty() ? "-" : cols;
    sidecar += '\t';
    sidecar += table->has_stats() ? '1' : '0';
    sidecar += '\n';
  }
  RFID_RETURN_IF_ERROR(
      WriteFileAtomic(tmp_dir + "/" + kStructuresName, sidecar));
  // COLUMNAR sidecar: encoded cold segments, so a recovered server scans
  // columnar immediately instead of re-encoding. Atomicity rides on the
  // checkpoint directory rename, same as the image itself.
  return SaveColumnarSidecar(tmp_dir + "/" + kColumnarName, *db_);
}

Status WalManager::RotateAndSwapManifest(uint64_t epoch) {
  const std::string new_checkpoint = CheckpointName(epoch);
  const std::string new_segment = SegmentName(epoch);

  // Fresh segment before the manifest points at it. If the name matches
  // the live segment (no epochs since the last checkpoint), truncating
  // it loses nothing: every committed epoch <= `epoch` is in the image.
  writer_.reset();
  RFID_FAULT_POINT("wal.Rotate");
  RFID_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> writer,
      WalWriter::Create(dir_ + "/" + new_segment, options_.fsync_policy,
                        epoch + 1));

  RFID_FAULT_POINT("wal.SwapManifest");
  RFID_RETURN_IF_ERROR(WriteFileAtomic(
      dir_ + "/" + kManifestName,
      RenderManifest(epoch, new_checkpoint, new_segment)));

  // The swap is the commit point; everything the old manifest referenced
  // is now garbage (best-effort cleanup, harmless if a crash leaves it).
  std::error_code ec;
  if (!checkpoint_name_.empty() && checkpoint_name_ != new_checkpoint) {
    std::filesystem::remove_all(dir_ + "/" + checkpoint_name_, ec);
  }
  if (!segment_name_.empty() && segment_name_ != new_segment) {
    std::filesystem::remove(dir_ + "/" + segment_name_, ec);
  }
  checkpoint_epoch_ = epoch;
  checkpoint_name_ = new_checkpoint;
  segment_name_ = new_segment;
  writer_ = std::move(writer);
  return Status::OK();
}

Status WalManager::Checkpoint() {
  RFID_FAULT_POINT("wal.Checkpoint");
  const uint64_t epoch = durable_epoch_;
  const std::string final_dir = dir_ + "/" + CheckpointName(epoch);
  const std::string tmp_dir = final_dir + ".tmp";
  RFID_RETURN_IF_ERROR(WriteCheckpointImage(tmp_dir));

  // Atomic directory swap: remove a same-epoch predecessor, rename the
  // complete image into place, sync the parent so the rename sticks.
  std::error_code ec;
  std::filesystem::remove_all(final_dir, ec);
  std::filesystem::rename(tmp_dir, final_dir, ec);
  if (ec) {
    return Status::Internal(StrFormat("checkpoint rename %s: %s",
                                      final_dir.c_str(),
                                      ec.message().c_str()));
  }
  RFID_RETURN_IF_ERROR(SyncDir(dir_));

  return RotateAndSwapManifest(epoch);
}

Status WalManager::ReplayEpoch(const WalEpoch& epoch) {
  for (const WalBatch& batch : epoch.batches) {
    RFID_ASSIGN_OR_RETURN(Table * table, db_->ResolveTable(batch.table));
    std::vector<Row> rows;
    rows.reserve(batch.row_lines.size());
    for (const std::string& line : batch.row_lines) {
      RFID_ASSIGN_OR_RETURN(Row row, ParseRowTsv(line, table->schema()));
      rows.push_back(std::move(row));
    }
    recovery_.replayed_rows += rows.size();
    Result<uint64_t> first =
        table->IngestBatch(std::move(rows), options_.index_compact_threshold);
    if (!first.ok()) return first.status();
  }
  return Status::OK();
}

Status WalManager::Recover() {
  RFID_ASSIGN_OR_RETURN(std::string text,
                        ReadFileToString(dir_ + "/" + kManifestName));
  RFID_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(text));
  recovery_.recovered = true;
  recovery_.checkpoint_epoch = manifest.checkpoint_epoch;
  checkpoint_epoch_ = manifest.checkpoint_epoch;
  checkpoint_name_ = manifest.checkpoint;
  segment_name_ = manifest.segment;

  // 1. Checkpoint image → tables.
  const std::string checkpoint_dir = dir_ + "/" + manifest.checkpoint;
  RFID_RETURN_IF_ERROR(LoadDatabase(checkpoint_dir, db_));
  // Encoded cold segments from the checkpoint. Missing or corrupt sidecar
  // degrades to an empty cache: the EncodeColdSegments pass below (and
  // ingest thereafter) rebuilds encodings on demand.
  RFID_RETURN_IF_ERROR(
      LoadColumnarSidecar(checkpoint_dir + "/" + kColumnarName, db_));

  // 2. Structures, exactly as recorded: rebuilding them *before* replay
  // makes replay's incremental maintenance mirror the original run.
  auto sidecar = ReadFileToString(checkpoint_dir + "/" + kStructuresName);
  if (sidecar.ok()) {
    std::istringstream in(*sidecar);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      std::string name, cols, stats_flag;
      std::getline(fields, name, '\t');
      std::getline(fields, cols, '\t');
      std::getline(fields, stats_flag, '\t');
      Table* table = db_->GetTable(name);
      if (table == nullptr) {
        return Status::InvalidArgument(
            "STRUCTURES names unknown table " + name);
      }
      if (cols != "-") {
        size_t start = 0;
        while (start <= cols.size()) {
          size_t comma = cols.find(',', start);
          std::string col = comma == std::string::npos
                                ? cols.substr(start)
                                : cols.substr(start, comma - start);
          if (!col.empty()) RFID_RETURN_IF_ERROR(table->BuildIndex(col));
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      }
      if (stats_flag == "1") table->ComputeStats();
    }
  }

  if (options_.after_checkpoint_load) options_.after_checkpoint_load();

  // 3. Replay every committed epoch; anything past the last COMMIT is a
  // torn/corrupt tail and gets truncated, never served.
  const std::string segment_path = dir_ + "/" + manifest.segment;
  RFID_ASSIGN_OR_RETURN(WalReadResult log, ReadWal(segment_path));
  durable_epoch_ = manifest.checkpoint_epoch;
  for (const WalEpoch& epoch : log.committed) {
    if (epoch.epoch <= durable_epoch_) continue;  // covered by checkpoint
    RFID_RETURN_IF_ERROR(ReplayEpoch(epoch));
    durable_epoch_ = epoch.epoch;
    ++recovery_.replayed_epochs;
  }
  recovery_.truncated_bytes = log.tail_bytes;
  recovery_.tail_corrupt = log.tail_corrupt;

  // Segments the replayed epochs filled are cold now; segments already
  // restored from the COLUMNAR sidecar are skipped (no re-encoding).
  for (const std::string& name : db_->TableNames()) {
    Table* table = db_->GetTable(name);
    if (table != nullptr) table->EncodeColdSegments();
  }

  // 4. Reopen the segment for appending at the committed prefix.
  RFID_ASSIGN_OR_RETURN(
      writer_, WalWriter::OpenAppend(segment_path, options_.fsync_policy,
                                     durable_epoch_ + 1, log.committed_bytes));
  return Status::OK();
}

Status WalManager::LogBatch(const std::string& table,
                            const std::vector<Row>& rows) {
  if (writer_ == nullptr || writer_->broken()) {
    return Status::Internal("durability log unavailable (broken writer); "
                            "checkpoint or recover to continue");
  }
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const Row& row : rows) lines.push_back(SerializeRowTsv(row));
  return writer_->AppendBatch(table, lines);
}

Status WalManager::LogCommit() {
  if (writer_ == nullptr || writer_->broken()) {
    return Status::Internal("durability log unavailable (broken writer); "
                            "checkpoint or recover to continue");
  }
  RFID_RETURN_IF_ERROR(writer_->Commit());
  durable_epoch_ = writer_->last_committed();
  return Status::OK();
}

void WalManager::LogAbort() {
  if (writer_ != nullptr) writer_->Abort();
}

}  // namespace rfid::wal
