// rfidsql — an interactive shell over the deferred-cleansing engine.
//
//   .gen <pallets> [dirty%]      generate RFIDGen data (+ anomalies)
//   .feed <batches> <rows>       stream micro-batches through the ingest
//                                pipeline (epoch snapshots published per
//                                batch; queries pin the latest snapshot;
//                                WAL-backed when .wal is active)
//   .wal <dir> [always|epoch|off]
//                                attach durability: fresh dir checkpoints
//                                the current data as the base image;
//                                existing dir recovers (checkpoint +
//                                committed WAL epochs, torn tail dropped)
//   .checkpoint                  write a checkpoint + truncate the log
//   .recover <dir> [policy]      recovery-only .wal (errors if <dir> has
//                                no durability manifest)
//   .rule DEFINE ...;            define a cleansing rule (SQL-TS)
//   .rules                       list defined rules and their templates
//   .lint                        static checks over the rule catalog
//                                (duplicate names, unsatisfiable
//                                conditions, DELETE/KEEP overlap,
//                                correction-order races)
//   .strategy auto|expanded|joinback|naive|off
//   .explain on|off              print executed plans (with a
//                                "fragments: hit=N miss=M" header when
//                                the cleansed-fragment cache applied)
//   .candidates on|off           print costed rewrite candidates and
//                                per-region fragment hit/miss detail
//   .cache [stats|on|off|clear]  cleansed-fragment cache control /
//                                counters (plan cache too over --connect)
//   .tables / .schema <table>    catalog inspection
//   .save <dir> / .load <dir>    persist / restore the database
//   SELECT ...;                  run a query (rewritten per strategy)
//   .quit
//
// Also usable in batch mode: rfidsql < script.sql
//
// Server modes:
//   rfidsql --serve [host:]port      serve the engine over TCP (SIGINT /
//                                    SIGTERM drain in-flight queries,
//                                    flush the WAL, and exit cleanly)
//   rfidsql --connect host:port      the same shell against a remote
//                                    server: every dot-command and query
//                                    above works unchanged, each
//                                    connection being its own session
//                                    with its own rule catalog
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "cache/fragment_cache.h"
#include "common/string_util.h"
#include "ingest/ingest.h"
#include "plan/planner.h"
#include "rewrite/fragment_stitch.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/stream.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/persist.h"
#include "sql/render.h"
#include "verify/rule_linter.h"
#include "wal/wal_manager.h"

using namespace rfid;

namespace {

struct ShellState {
  Database db;
  std::unique_ptr<CleansingRuleEngine> rules;
  RewriteStrategy strategy = RewriteStrategy::kAuto;
  bool rewriting_enabled = true;
  bool explain = false;
  bool show_candidates = false;

  // Streaming ingest state (created lazily by .feed).
  std::unique_ptr<rfidgen::ReadStream> stream;
  std::unique_ptr<ingest::IngestPipeline> pipeline;
  uint64_t feed_generation = 0;

  // Cleansed-fragment cache: memoizes rule-applied regions of the read
  // store across queries; .feed invalidates only the touched regions.
  cache::FragmentCache fragment_cache;

  // Durability (created by .wal / .recover; outlives the pipeline).
  std::unique_ptr<wal::WalManager> wal;

  ShellState() { rules = std::make_unique<CleansingRuleEngine>(&db); }
};

void PrintTable(const QueryResult& res, size_t max_rows = 40) {
  std::vector<size_t> widths;
  for (size_t i = 0; i < res.desc.num_fields(); ++i) {
    widths.push_back(res.desc.field(i).name.size());
  }
  std::vector<std::vector<std::string>> cells;
  for (size_t r = 0; r < res.rows.size() && r < max_rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < res.rows[r].size(); ++c) {
      row.push_back(res.rows[r][c].ToString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  for (size_t i = 0; i < widths.size(); ++i) {
    printf("%-*s  ", static_cast<int>(widths[i]), res.desc.field(i).name.c_str());
  }
  printf("\n");
  for (size_t i = 0; i < widths.size(); ++i) {
    printf("%s  ", std::string(widths[i], '-').c_str());
  }
  printf("\n");
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    printf("\n");
  }
  if (res.rows.size() > max_rows) {
    printf("... (%zu more rows)\n", res.rows.size() - max_rows);
  }
  printf("(%zu rows)\n", res.rows.size());
}

void RunSql(ShellState& state, const std::string& sql) {
  // Pin the latest ingest snapshot (when a pipeline exists) so the query
  // — both its cost-based rewrite choice and its execution — is isolated
  // from batches published while it runs.
  ExecContext ctx;
  if (state.pipeline != nullptr) {
    ctx.set_snapshot(state.pipeline->snapshot());
  }
  std::string final_sql = sql;
  if (state.rewriting_enabled && !state.rules->rules().empty()) {
    QueryRewriter rewriter(&state.db, state.rules.get());
    RewriteOptions opts;
    opts.strategy = state.strategy;
    opts.exec_context = &ctx;
    auto info = rewriter.Rewrite(sql, opts);
    if (!info.ok()) {
      printf("rewrite error: %s\n", info.status().ToString().c_str());
      return;
    }
    // Lint findings are warnings: the rewrite proceeds, but rules whose
    // outcome depends on creation order (or that can never fire) are
    // worth seeing next to every query they cleansed.
    for (const LintFinding& f : info->lint) {
      printf("warning: %s\n", f.ToString().c_str());
    }
    if (info->chosen != RewriteStrategy::kNone) {
      printf("[rewritten: %s strategy, est. cost %.0f]\n",
             RewriteStrategyName(info->chosen), info->estimated_cost);
      if (state.show_candidates) {
        for (const RewriteCandidate& c : info->candidates) {
          printf("  candidate %-36s cost %12.0f\n", c.label.c_str(),
                 c.estimated_cost);
        }
      }
    }
    final_sql = info->sql;
  }
  // Fragment stitch: execution-level substitution under the rewrite
  // decision. Hit regions reuse cached cleansed rows; miss regions run
  // region-scoped cleansing chains that refill the cache; UNION ALL
  // stitches the regions back in order. Bit-identical to the rewrite.
  std::string fragment_note;
  if (state.rewriting_enabled && !state.rules->rules().empty() &&
      state.fragment_cache.enabled()) {
    auto stitch = StitchWithFragmentCache(sql, &state.db, *state.rules,
                                          &state.fragment_cache, &ctx);
    if (stitch.ok() && stitch->used) {
      final_sql = stitch->sql;
      fragment_note = StrFormat("fragments: hit=%zu miss=%zu", stitch->hits,
                                stitch->misses);
      if (state.show_candidates) {
        for (const FragmentRegionDetail& r : stitch->regions) {
          fragment_note += StrFormat("\n  region %-4zu %-28s %s", r.region,
                                     r.range.c_str(), r.hit ? "hit" : "miss");
        }
      }
    } else if (stitch.ok() && state.show_candidates) {
      fragment_note =
          StrFormat("fragments: not used (%s)", stitch->reason.c_str());
    }
  }
  auto start = std::chrono::steady_clock::now();
  auto res = ExecuteSql(state.db, final_sql, &ctx);
  auto end = std::chrono::steady_clock::now();
  if (!res.ok()) {
    printf("error: %s\n", res.status().ToString().c_str());
    return;
  }
  PrintTable(*res);
  printf("%.1f ms\n", std::chrono::duration<double, std::milli>(end - start).count());
  if (state.explain) {
    if (!fragment_note.empty()) printf("\n%s\n", fragment_note.c_str());
    printf("\n%s", res->explain.c_str());
  }
}

void RunCommand(ShellState& state, const std::string& line) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == ".quit" || cmd == ".exit") {
    exit(0);
  }
  if (cmd == ".gen") {
    int64_t pallets = 20;
    double dirty = 10;
    in >> pallets >> dirty;
    rfidgen::GeneratorOptions gen;
    gen.num_pallets = pallets;
    auto g = rfidgen::Generate(gen, &state.db);
    if (!g.ok()) {
      printf("error: %s\n", g.status().ToString().c_str());
      return;
    }
    rfidgen::AnomalyOptions anomalies;
    anomalies.dirty_fraction = dirty / 100.0;
    auto a = rfidgen::InjectAnomalies(anomalies, &state.db);
    if (!a.ok()) {
      printf("error: %s\n", a.status().ToString().c_str());
      return;
    }
    state.fragment_cache.Clear();  // bulk mutation breaks append-only
    printf("generated %lld case reads across %lld cases; injected %lld "
           "anomalies (%.0f%%)\n",
           static_cast<long long>(g->case_reads),
           static_cast<long long>(g->cases),
           static_cast<long long>(a->total()), dirty);
    return;
  }
  if (cmd == ".feed") {
    int64_t batches = 10;
    int64_t rows = 256;
    in >> batches >> rows;
    if (batches <= 0 || rows <= 0) {
      printf("usage: .feed <batches> <rows_per_batch>\n");
      return;
    }
    if (state.stream == nullptr || state.stream->exhausted()) {
      rfidgen::StreamOptions opt;
      opt.seed = 20060912 + state.feed_generation++;
      auto stream = rfidgen::ReadStream::Create(&state.db, opt);
      if (!stream.ok()) {
        printf("error: %s\n", stream.status().ToString().c_str());
        return;
      }
      state.stream = std::move(*stream);
    }
    if (state.pipeline == nullptr) {
      state.pipeline = std::make_unique<ingest::IngestPipeline>(
          &state.db, /*accounting=*/nullptr, /*index_compact_threshold=*/8,
          state.wal.get());
      state.pipeline->set_fragment_cache(&state.fragment_cache);
    }
    uint64_t applied = 0;
    uint64_t fed_rows = 0;
    for (int64_t i = 0; i < batches && !state.stream->exhausted(); ++i) {
      rfidgen::StreamBatch b =
          state.stream->NextBatch(static_cast<size_t>(rows));
      fed_rows += b.total_rows();
      std::vector<ingest::TableBatch> group;
      group.push_back({"caseR", std::move(b.case_rows)});
      group.push_back({"palletR", std::move(b.pallet_rows)});
      group.push_back({"parent", std::move(b.parent_rows)});
      group.push_back({"epc_info", std::move(b.info_rows)});
      Status st = state.pipeline->Apply(std::move(group));
      if (!st.ok()) {
        printf("ingest error: %s\n", st.ToString().c_str());
        return;
      }
      ++applied;
    }
    const Table* case_r = state.db.GetTable("caseR");
    printf("fed %llu batches (%llu rows); epoch %llu; caseR now %llu rows%s\n",
           static_cast<unsigned long long>(applied),
           static_cast<unsigned long long>(fed_rows),
           static_cast<unsigned long long>(state.pipeline->epoch()),
           static_cast<unsigned long long>(
               case_r != nullptr ? case_r->visible_rows() : 0),
           state.stream->exhausted() ? " (stream exhausted)" : "");
    return;
  }
  if (cmd == ".save" || cmd == ".load") {
    std::string dir;
    in >> dir;
    if (dir.empty()) {
      printf("usage: %s <directory>\n", cmd.c_str());
      return;
    }
    if (cmd == ".save") {
      Status st = SaveDatabase(state.db, dir);
      printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
    } else {
      Status st = LoadDatabase(dir, &state.db, /*skip_existing=*/true);
      if (st.ok()) st = rfidgen::FinalizeDatabase(&state.db);
      state.fragment_cache.Clear();
      printf("%s\n", st.ok() ? "loaded" : st.ToString().c_str());
    }
    return;
  }
  if (cmd == ".wal" || cmd == ".recover") {
    std::string dir, policy_name;
    in >> dir >> policy_name;
    if (dir.empty()) {
      printf("usage: %s <directory> [always|epoch|off]\n", cmd.c_str());
      return;
    }
    wal::WalOptions options;
    if (policy_name == "always") {
      options.fsync_policy = wal::FsyncPolicy::kAlways;
    } else if (policy_name == "off") {
      options.fsync_policy = wal::FsyncPolicy::kOff;
    } else if (!policy_name.empty() && policy_name != "epoch") {
      printf("usage: %s <directory> [always|epoch|off]\n", cmd.c_str());
      return;
    }
    // Recovery loads tables from the checkpoint image; they must not
    // clash with tables already in the shell's database. The shell
    // pre-creates an empty `__rules` system table, and a checkpoint
    // image carries its own copy — drop ours while it is still pristine
    // and re-attach the rule engine below (its constructor adopts the
    // recovered table, or recreates an empty one on a fresh attach).
    Table* rules_tb = state.db.GetTable("__rules");
    if (rules_tb != nullptr && rules_tb->num_rows() == 0) {
      state.rules.reset();
      (void)state.db.DropTable("__rules");
    }
    auto manager = wal::WalManager::Open(dir, &state.db, options);
    if (state.rules == nullptr) {
      state.rules = std::make_unique<CleansingRuleEngine>(&state.db);
    }
    if (!manager.ok()) {
      printf("error: %s\n", manager.status().ToString().c_str());
      return;
    }
    if (cmd == ".recover" && !(*manager)->recovery().recovered) {
      printf("error: %s holds no durability manifest (use .wal to create "
             "one)\n", dir.c_str());
      return;
    }
    state.pipeline.reset();  // rebuilt WAL-backed by the next .feed
    state.fragment_cache.Clear();  // replay / pipeline swap: start fresh
    state.wal = std::move(*manager);
    const wal::RecoveryResult& r = state.wal->recovery();
    if (r.recovered) {
      printf("recovered: checkpoint epoch %llu + %llu replayed epoch%s "
             "(%llu rows)%s; fsync=%s\n",
             static_cast<unsigned long long>(r.checkpoint_epoch),
             static_cast<unsigned long long>(r.replayed_epochs),
             r.replayed_epochs == 1 ? "" : "s",
             static_cast<unsigned long long>(r.replayed_rows),
             r.truncated_bytes > 0
                 ? (" (" + std::to_string(r.truncated_bytes) +
                    " tail bytes truncated)").c_str()
                 : "",
             wal::FsyncPolicyName(state.wal->fsync_policy()));
    } else {
      printf("durability attached at %s (checkpoint 0 written); fsync=%s\n",
             dir.c_str(), wal::FsyncPolicyName(state.wal->fsync_policy()));
    }
    return;
  }
  if (cmd == ".checkpoint") {
    if (state.wal == nullptr) {
      printf("error: no durability directory attached (use .wal <dir>)\n");
      return;
    }
    Status st = state.pipeline != nullptr ? state.pipeline->Checkpoint()
                                          : state.wal->Checkpoint();
    if (st.ok()) {
      printf("checkpoint written at epoch %llu; log truncated\n",
             static_cast<unsigned long long>(state.wal->durable_epoch()));
    } else {
      printf("error: %s\n", st.ToString().c_str());
    }
    return;
  }
  if (cmd == ".rules") {
    auto res = ExecuteSql(state.db,
                          "SELECT seq, name, on_table, action FROM __rules");
    if (res.ok()) PrintTable(*res);
    return;
  }
  if (cmd == ".lint") {
    std::vector<LintFinding> findings = LintRules(state.rules->rules());
    for (const LintFinding& f : findings) {
      printf("%s\n", f.ToString().c_str());
    }
    printf("(%zu finding%s over %zu rule%s)\n", findings.size(),
           findings.size() == 1 ? "" : "s", state.rules->rules().size(),
           state.rules->rules().size() == 1 ? "" : "s");
    return;
  }
  if (cmd == ".strategy") {
    std::string which;
    in >> which;
    if (which == "auto") state.strategy = RewriteStrategy::kAuto;
    else if (which == "expanded") state.strategy = RewriteStrategy::kExpanded;
    else if (which == "joinback") state.strategy = RewriteStrategy::kJoinBack;
    else if (which == "naive") state.strategy = RewriteStrategy::kNaive;
    else if (which == "off") state.rewriting_enabled = false;
    else {
      printf("usage: .strategy auto|expanded|joinback|naive|off\n");
      return;
    }
    if (which != "off") state.rewriting_enabled = true;
    printf("strategy = %s%s\n", which.c_str(),
           state.rewriting_enabled ? "" : " (queries run on dirty data)");
    return;
  }
  if (cmd == ".explain" || cmd == ".candidates") {
    std::string flag;
    in >> flag;
    bool value = flag == "on";
    if (cmd == ".explain") state.explain = value;
    else state.show_candidates = value;
    printf("%s = %s\n", cmd.c_str() + 1, value ? "on" : "off");
    return;
  }
  if (cmd == ".cache") {
    std::string arg;
    in >> arg;
    if (arg == "on" || arg == "off" || (arg == "fragment" && (in >> arg))) {
      if (arg == "clear") {
        state.fragment_cache.Clear();
        printf("fragment cache cleared\n");
        return;
      }
      state.fragment_cache.set_enabled(arg == "on");
      printf("fragment cache %s\n", arg.c_str());
      return;
    }
    if (arg == "clear") {
      state.fragment_cache.Clear();
      printf("fragment cache cleared\n");
      return;
    }
    if (arg == "stats" || arg.empty()) {
      cache::FragmentCache::Stats f = state.fragment_cache.stats();
      printf("fragment cache: %s, %zu entries, %llu hits, %llu misses, "
             "%llu invalidations, %llu evictions, %llu inserts, "
             "%llu resident bytes\n",
             state.fragment_cache.enabled() ? "on" : "off", f.entries,
             static_cast<unsigned long long>(f.hits),
             static_cast<unsigned long long>(f.misses),
             static_cast<unsigned long long>(f.invalidations),
             static_cast<unsigned long long>(f.evictions),
             static_cast<unsigned long long>(f.inserts),
             static_cast<unsigned long long>(f.resident_bytes));
      return;
    }
    printf("usage: .cache on|off|clear|stats | .cache fragment on|off|clear\n");
    return;
  }
  if (cmd == ".tables") {
    for (const std::string& name : state.db.TableNames()) {
      const Table* t = state.db.GetTable(name);
      printf("%-12s %8zu rows\n", name.c_str(), t->num_rows());
    }
    return;
  }
  if (cmd == ".schema") {
    std::string table;
    in >> table;
    const Table* t = state.db.GetTable(table);
    if (t == nullptr) {
      printf("no such table: %s\n", table.c_str());
      return;
    }
    printf("%s %s\n", t->name().c_str(), t->schema().ToString().c_str());
    return;
  }
  printf("unknown command: %s\n", cmd.c_str());
}

// --- remote mode (--connect) ---

void PrintRemoteRows(const server::RowsPayload& rows, size_t max_rows = 40) {
  if (!rows.warnings.empty()) {
    std::istringstream lines(rows.warnings);
    std::string w;
    while (std::getline(lines, w)) printf("warning: %s\n", w.c_str());
  }
  if (!rows.rewrite_note.empty()) printf("%s\n", rows.rewrite_note.c_str());
  std::vector<size_t> widths;
  for (const Field& f : rows.fields) widths.push_back(f.name.size());
  std::vector<std::vector<std::string>> cells;
  for (size_t r = 0; r < rows.rows.size() && r < max_rows; ++r) {
    std::vector<std::string> row;
    for (size_t c = 0; c < rows.rows[r].size(); ++c) {
      row.push_back(rows.rows[r][c].ToString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  for (size_t i = 0; i < widths.size(); ++i) {
    printf("%-*s  ", static_cast<int>(widths[i]), rows.fields[i].name.c_str());
  }
  printf("\n");
  for (size_t i = 0; i < widths.size(); ++i) {
    printf("%s  ", std::string(widths[i], '-').c_str());
  }
  printf("\n");
  for (const auto& row : cells) {
    for (size_t c = 0; c < row.size(); ++c) {
      printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    printf("\n");
  }
  if (rows.rows.size() > max_rows) {
    printf("... (%zu more rows)\n", rows.rows.size() - max_rows);
  }
  printf("(%zu rows)\n", rows.rows.size());
  printf("%.1f ms [%s]\n", static_cast<double>(rows.elapsed_micros) / 1000.0,
         server::CacheOutcomeName(rows.cache));
  if (!rows.explain.empty()) printf("\n%s", rows.explain.c_str());
}

int RunRemoteShell(server::Client& client) {
  bool interactive = isatty(0);
  if (interactive) {
    printf("rfidsql — connected (session %llu). '.quit' to leave.\n",
           static_cast<unsigned long long>(client.session_id()));
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      printf(buffer.empty() ? "rfid> " : "  ... ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    size_t comment = line.find("--");
    if (comment != std::string::npos) line = line.substr(0, comment);
    std::string trimmed = line;
    while (!trimmed.empty() &&
           isspace(static_cast<unsigned char>(trimmed.front()))) {
      trimmed.erase(trimmed.begin());
    }
    if (buffer.empty() && trimmed.empty()) continue;
    if (buffer.empty() && trimmed[0] == '.') {
      if (trimmed.rfind(".quit", 0) == 0 || trimmed.rfind(".exit", 0) == 0) {
        (void)client.Quit();
        return 0;
      }
      auto text = client.Command(trimmed);
      if (text.ok()) {
        printf("%s\n", text->c_str());
      } else {
        printf("error: %s\n", text.status().ToString().c_str());
      }
      continue;
    }
    buffer += line + "\n";
    if (trimmed.empty() || trimmed.back() != ';') continue;
    std::string stmt = buffer;
    buffer.clear();
    while (!stmt.empty() && (isspace(static_cast<unsigned char>(stmt.back())) ||
                             stmt.back() == ';')) {
      stmt.pop_back();
    }
    if (stmt.empty()) continue;
    std::string head = stmt.substr(0, stmt.find_first_of(" \t\n"));
    if (EqualsIgnoreCase(head, ".rule") || EqualsIgnoreCase(head, "define")) {
      std::string cmd_text =
          EqualsIgnoreCase(head, ".rule") ? stmt : (".rule " + stmt);
      auto text = client.Command(cmd_text);
      if (text.ok()) {
        printf("%s\n", text->c_str());
      } else {
        printf("%s\n", text.status().ToString().c_str());
      }
      continue;
    }
    auto rows = client.Query(stmt);
    if (rows.ok()) {
      PrintRemoteRows(*rows);
    } else {
      printf("error: %s\n", rows.status().ToString().c_str());
    }
  }
  (void)client.Quit();
  return 0;
}

/// Splits "host:port" or bare "port" (host defaults to 127.0.0.1).
bool ParseEndpoint(const std::string& arg, std::string* host, int* port) {
  std::string port_str = arg;
  *host = "127.0.0.1";
  size_t colon = arg.rfind(':');
  if (colon != std::string::npos) {
    *host = arg.substr(0, colon);
    port_str = arg.substr(colon + 1);
  }
  char* endp = nullptr;
  long n = std::strtol(port_str.c_str(), &endp, 10);
  if (endp == port_str.c_str() || *endp != '\0' || n < 0 || n > 65535) {
    return false;
  }
  *port = static_cast<int>(n);
  return true;
}

int RunServe(const std::string& endpoint) {
  server::ServerOptions options;
  options.port = 20060;  // default; --serve host:port overrides
  if (!endpoint.empty() &&
      !ParseEndpoint(endpoint, &options.host, &options.port)) {
    fprintf(stderr, "bad endpoint: %s (expected [host:]port)\n",
            endpoint.c_str());
    return 1;
  }
  auto srv = server::Server::Start(options);
  if (!srv.ok()) {
    fprintf(stderr, "error: %s\n", srv.status().ToString().c_str());
    return 1;
  }
  printf("rfidsql serving on %s:%d (SIGINT/SIGTERM to stop)\n",
         options.host.c_str(), (*srv)->port());
  fflush(stdout);
  (*srv)->InstallSignalHandlers();
  (*srv)->WaitForShutdown();
  Status flush = (*srv)->final_flush_status();
  if (!flush.ok()) {
    fprintf(stderr, "shutdown flush error: %s\n", flush.ToString().c_str());
    return 1;
  }
  printf("server stopped\n");
  return 0;
}

int RunConnect(const std::string& endpoint) {
  std::string host;
  int port = 0;
  if (!ParseEndpoint(endpoint, &host, &port) || port == 0) {
    fprintf(stderr, "bad endpoint: %s (expected host:port)\n",
            endpoint.c_str());
    return 1;
  }
  auto client = server::Client::Connect(host, port);
  if (!client.ok()) {
    fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 1;
  }
  return RunRemoteShell(**client);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--serve") {
    return RunServe(argc >= 3 ? argv[2] : "");
  }
  if (argc >= 2 && std::string(argv[1]) == "--connect") {
    if (argc < 3) {
      fprintf(stderr, "usage: rfidsql --connect host:port\n");
      return 1;
    }
    return RunConnect(argv[2]);
  }
  if (argc >= 2) {
    fprintf(stderr,
            "usage: rfidsql [--serve [host:]port | --connect host:port]\n");
    return 1;
  }
  ShellState state;
  bool interactive = isatty(0);
  if (interactive) {
    printf("rfidsql — deferred cleansing shell. '.gen 20 10' to make data, "
           "'.quit' to leave.\n");
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      printf(buffer.empty() ? "rfid> " : "  ... ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    // Strip comments and whitespace.
    size_t comment = line.find("--");
    if (comment != std::string::npos) line = line.substr(0, comment);
    std::string trimmed = line;
    while (!trimmed.empty() && isspace(static_cast<unsigned char>(trimmed.front()))) {
      trimmed.erase(trimmed.begin());
    }
    if (buffer.empty() && trimmed.empty()) continue;
    if (buffer.empty() && trimmed[0] == '.') {
      RunCommand(state, trimmed);
      continue;
    }
    buffer += line + "\n";
    if (trimmed.empty() || trimmed.back() != ';') continue;
    // Complete statement.
    std::string stmt = buffer;
    buffer.clear();
    while (!stmt.empty() &&
           (isspace(static_cast<unsigned char>(stmt.back())) || stmt.back() == ';')) {
      stmt.pop_back();
    }
    if (stmt.empty()) continue;
    // Rule definition or query?
    std::string head = stmt.substr(0, stmt.find_first_of(" \t\n"));
    if (EqualsIgnoreCase(head, ".rule") || EqualsIgnoreCase(head, "define")) {
      std::string rule_text =
          EqualsIgnoreCase(head, ".rule") ? stmt.substr(5) : stmt;
      Status st = state.rules->DefineRule(rule_text);
      printf("%s\n", st.ok() ? "rule defined" : st.ToString().c_str());
      continue;
    }
    RunSql(state, stmt);
  }
  return 0;
}
