// Multiple applications, one data set — the paper's core motivation
// (Section 1): the same back-and-forth movement between a store's
// back-room and floor is *signal* for a shelf-space planner but *noise*
// for a dwell-time application. Eager cleansing can serve only one of
// them; deferred cleansing gives each application its own rule set over
// the same raw reads.
//
//   app A (shelf planning):   keeps cycles, removes only duplicates
//   app B (dwell analysis):   collapses cycles to first/last reads
#include <cstdio>

#include "common/time_util.h"
#include "plan/planner.h"
#include "rewrite/rewriter.h"

using namespace rfid;

namespace {

void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    exit(1);
  }
}

void PrintTrips(const char* app, const Database& db, const std::string& sql) {
  auto res = ExecuteSql(db, sql);
  if (!res.ok()) {
    fprintf(stderr, "query: %s\n", res.status().ToString().c_str());
    exit(1);
  }
  printf("%s sees %zu reads for tag P1:\n", app, res->rows.size());
  for (const Row& r : res->rows) {
    printf("  %-22s %s\n", r[0].ToString().c_str(), r[1].ToString().c_str());
  }
  printf("\n");
}

}  // namespace

int main() {
  Database db;
  Schema reads;
  reads.AddColumn("epc", DataType::kString);
  reads.AddColumn("rtime", DataType::kTimestamp);
  reads.AddColumn("reader", DataType::kString);
  reads.AddColumn("biz_loc", DataType::kString);
  Table* case_r = db.CreateTable("caseR", reads).value();

  // A pallet cycles between the back-room and the store floor three
  // times (no shelf space), with a duplicate read in the middle.
  struct Read {
    int minutes;
    const char* loc;
  } reads_data[] = {
      {0, "backroom"},   {60, "floor"},     {120, "backroom"},
      {180, "floor"},    {182, "floor"},  // duplicate read
      {240, "backroom"}, {300, "floor"},
  };
  for (const Read& r : reads_data) {
    Must(case_r->Append({Value::String("P1"), Value::Timestamp(Minutes(r.minutes)),
                         Value::String("rdr"), Value::String(r.loc)}),
         "append");
  }
  case_r->ComputeStats();

  const char* duplicate_rule =
      "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime "
      "AS (A, B) WHERE A.biz_loc = B.biz_loc AND B.rtime - A.rtime < 5 "
      "MINUTES ACTION DELETE B";
  const char* cycle_rule =
      "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime "
      "AS (A, B, C) WHERE A.biz_loc = C.biz_loc AND A.biz_loc <> B.biz_loc "
      "ACTION DELETE B";

  // Application A: shelf-space planning wants to SEE the churn.
  CleansingRuleEngine app_a(&db);
  Must(app_a.DefineRule(duplicate_rule), "app A rule");

  // Application B: dwell analysis wants cycles collapsed.
  CleansingRuleEngine app_b(&db);
  Must(app_b.DefineRule(duplicate_rule), "app B rule");
  Must(app_b.DefineRule(cycle_rule), "app B rule");

  std::string query =
      "SELECT rtime, biz_loc FROM caseR WHERE rtime <= TIMESTAMP " +
      std::to_string(Hours(10)) + " ORDER BY rtime";

  printf("raw reads: %zu (including churn and a duplicate)\n\n",
         case_r->num_rows());

  QueryRewriter rw_a(&db, &app_a);
  auto info_a = rw_a.Rewrite(query);
  Must(info_a.status(), "app A rewrite");
  PrintTrips("app A (shelf planning, keeps cycles)", db, info_a->sql);

  QueryRewriter rw_b(&db, &app_b);
  auto info_b = rw_b.Rewrite(query);
  Must(info_b.status(), "app B rewrite");
  PrintTrips("app B (dwell analysis, collapses cycles)", db, info_b->sql);

  printf("Same raw table, two answers — the reason cleansing must be "
         "deferred:\nno single eagerly-cleaned copy can serve both "
         "applications.\n");
  return 0;
}
