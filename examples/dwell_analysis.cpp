// Dwell analysis (the paper's query q1): how long do shipments spend
// between consecutive locations? Runs on generated supply-chain data with
// injected anomalies and compares the dirty answer with the deferred-
// cleansing answer under the expanded and join-back rewrites.
//
// Usage: dwell_analysis [pallets] [dirty_fraction]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "plan/planner.h"
#include "rewrite/rewriter.h"
#include "rfidgen/anomaly.h"
#include "rfidgen/workload.h"

using namespace rfid;

namespace {

double RunTimed(const Database& db, const std::string& sql, size_t* rows) {
  auto start = std::chrono::steady_clock::now();
  auto res = ExecuteSql(db, sql);
  auto end = std::chrono::steady_clock::now();
  if (!res.ok()) {
    fprintf(stderr, "query failed: %s\n", res.status().ToString().c_str());
    exit(1);
  }
  *rows = res->rows.size();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  rfidgen::GeneratorOptions gen;
  gen.num_pallets = argc > 1 ? atoll(argv[1]) : 30;
  rfidgen::AnomalyOptions anomalies;
  anomalies.dirty_fraction = argc > 2 ? atof(argv[2]) : 0.10;

  Database db;
  auto gstats = rfidgen::Generate(gen, &db);
  if (!gstats.ok()) {
    fprintf(stderr, "%s\n", gstats.status().ToString().c_str());
    return 1;
  }
  auto astats = rfidgen::InjectAnomalies(anomalies, &db);
  if (!astats.ok()) {
    fprintf(stderr, "%s\n", astats.status().ToString().c_str());
    return 1;
  }
  printf("generated %lld case reads (%lld cases, %lld pallets); "
         "injected %lld anomalies (%.0f%%)\n\n",
         static_cast<long long>(gstats->case_reads),
         static_cast<long long>(gstats->cases),
         static_cast<long long>(gstats->pallets),
         static_cast<long long>(astats->total()),
         anomalies.dirty_fraction * 100);

  CleansingRuleEngine rules(&db);
  for (const std::string& def : workload::StandardRuleDefinitions(3)) {
    Status st = rules.DefineRule(def);
    if (!st.ok()) {
      fprintf(stderr, "rule: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  printf("rules enabled: reader, duplicate, replacing (t=10/5/20 min)\n\n");

  std::string q1 = workload::Q1(workload::T1ForSelectivity(db, 0.25));
  QueryRewriter rewriter(&db, &rules);

  size_t rows = 0;
  double t_dirty = RunTimed(db, q1, &rows);
  printf("%-22s %8.1f ms   %6zu dwell pairs  (baseline, wrong answers)\n",
         "q1 dirty", t_dirty, rows);

  struct Variant {
    const char* name;
    RewriteStrategy strategy;
  } variants[] = {{"q1_e expanded", RewriteStrategy::kExpanded},
                  {"q1_j join-back", RewriteStrategy::kJoinBack},
                  {"q1_n naive", RewriteStrategy::kNaive}};
  for (const Variant& v : variants) {
    RewriteOptions opts;
    opts.strategy = v.strategy;
    auto info = rewriter.Rewrite(q1, opts);
    if (!info.ok()) {
      printf("%-22s infeasible (%s)\n", v.name,
             info.status().ToString().c_str());
      continue;
    }
    double t = RunTimed(db, info->sql, &rows);
    printf("%-22s %8.1f ms   %6zu dwell pairs  (est. cost %.0f)\n", v.name, t,
           rows, info->estimated_cost);
  }

  // Show a slice of the cleansed dwell table.
  auto info = rewriter.Rewrite(q1);
  auto res = ExecuteSql(db, info->sql);
  printf("\nsample dwell rows (from -> to : avg dwell):\n");
  size_t shown = 0;
  for (const Row& r : res->rows) {
    printf("  %-28s -> %-28s : %s\n", r[0].ToString().c_str(),
           r[1].ToString().c_str(), r[2].ToString().c_str());
    if (++shown == 8) break;
  }
  return 0;
}
